#!/usr/bin/env python3
"""Perf gate: compare net.delivery_delay_ns tails against a saved baseline.

For every BENCH_<name>.json in the current run that carries a
net.delivery_delay_ns histogram, compare p95/p99 against the same report in
the baseline directory. A tail that grew beyond --tolerance (relative) is a
regression: warn by default, fail with --strict.

usage: bench_gate.py --baseline DIR [--strict] [--tolerance 0.25] BENCH_*.json

Exit status: 0 OK (or warnings without --strict), 1 regression under
--strict, 2 usage error. Missing baseline files are never an error — first
runs simply seed the baseline.
"""

import argparse
import json
import os
import sys

HISTOGRAM = "net.delivery_delay_ns"
PERCENTILES = ("p95", "p99")


def load_tail(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench_gate: cannot parse {path}: {exc}", file=sys.stderr)
        return None
    hist = report.get("histograms", {}).get(HISTOGRAM)
    if not hist:
        return None
    return {p: hist[p] for p in PERCENTILES}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory holding previous BENCH_*.json")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on regression instead of warning")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative growth (default 0.25 = +25%%)")
    parser.add_argument("reports", nargs="+")
    args = parser.parse_args()

    regressions = []
    compared = 0
    for path in args.reports:
        current = load_tail(path)
        if current is None:
            continue
        base_path = os.path.join(args.baseline, os.path.basename(path))
        if not os.path.isfile(base_path):
            print(f"bench_gate: no baseline for {os.path.basename(path)} "
                  "(seeding)")
            continue
        baseline = load_tail(base_path)
        if baseline is None:
            continue
        compared += 1
        for pct in PERCENTILES:
            before, after = baseline[pct], current[pct]
            limit = before * (1.0 + args.tolerance)
            status = "REGRESSION" if after > limit and before > 0 else "ok"
            print(f"  {os.path.basename(path)} {HISTOGRAM}.{pct}: "
                  f"{before} -> {after} ns ({status})")
            if status == "REGRESSION":
                regressions.append((os.path.basename(path), pct, before,
                                    after))

    if regressions:
        verb = "FAIL" if args.strict else "WARN"
        for name, pct, before, after in regressions:
            growth = (after - before) / before * 100.0
            print(f"bench_gate {verb}: {name} {HISTOGRAM}.{pct} grew "
                  f"{growth:.0f}% ({before} -> {after} ns, tolerance "
                  f"+{args.tolerance * 100:.0f}%)", file=sys.stderr)
        if args.strict:
            return 1
    elif compared:
        print(f"bench_gate: {compared} report(s) within "
              f"+{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
