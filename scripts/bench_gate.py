#!/usr/bin/env python3
"""Perf gate: compare net.delivery_delay_ns tails against a saved baseline.

For every BENCH_<name>.json in the current run that carries a
net.delivery_delay_ns histogram, compare p95/p99 against the same report in
the baseline directory. A tail that grew beyond --tolerance (relative) is a
regression: warn by default, fail with --strict.

Additionally, any report carrying a recovery.mttr_ns histogram (the e10
recovery bench) is gated against an ABSOLUTE ceiling: mean time to repair is
measured in deterministic simulated time, so its max must stay inside the
recovery watchdog deadline regardless of host speed.

Reports that carry buffer copy accounting alongside an op counter (the e9
large-message bench exports buf.copies / buf.bytes_copied and e9.ops) get an
ADVISORY copies-per-op check: the zero-copy message path budgets a fixed
number of counted copies per invocation, and a jump past --copies-per-op
means an owning-buffer copy crept back in. Advisory means warn-only unless
--strict.

Reports that carry offered-load curves (the e11 bench exports a "curves"
block of latency-vs-offered-load points) get an ADVISORY p99 ceiling at a
named offered rate: --p99-ceiling-at-load RATE:NS requires that at RATE
requests/s at least one recorded configuration (curve) holds its p99
latency under NS simulated nanoseconds — i.e. the system, with its best
available response configuration, can still sustain that load. Curves
without a point at exactly RATE are skipped.

Reports whose curves are named "shards_<n>" (the e12 sharded-bank bench)
get an ADVISORY horizontal-scaling floor: at the top offered rate the two
curve families share, the largest shard count's goodput must be at least
--min-shard-goodput-scaling times the single-shard goodput. The single
domain saturating its admission bound while four domains absorb the same
stream IS the sharding claim; a ratio collapse means routing stopped
spreading the key mix.

Reports with batch_<n> curves (the e1 batch-size x pipeline-depth sweep)
get an ADVISORY batched-speedup floor: the best batched+pipelined goodput
must be at least --min-batch-speedup times the single-slot baseline
(batch_1 at depth 1). A collapse means batch formation quietly stopped
coalescing (or pipelining stopped overlapping agreement instances).

usage: bench_gate.py --baseline DIR [--strict] [--tolerance 0.25]
                     [--mttr-ceiling-ns N] [--copies-per-op N]
                     [--p99-ceiling-at-load RATE:NS]
                     [--min-shard-goodput-scaling X]
                     [--min-batch-speedup X] BENCH_*.json

Exit status: 0 OK (or warnings without --strict), 1 regression under
--strict, 2 usage error. Missing baseline files are never an error — first
runs simply seed the baseline.
"""

import argparse
import json
import os
import sys

HISTOGRAM = "net.delivery_delay_ns"
PERCENTILES = ("p95", "p99")

# Recovery MTTR (simulated ns) must stay inside the fault oracle's recovery
# budget — watchdog deadline (2s) x max attempts (3) + retry backoff (100ms)
# x 2 — the bound past which the oracle calls a recovery_deadline violation.
# A repair that needs a watchdog retry is still legal; one that outlives the
# budget is not.
MTTR_HISTOGRAM = "recovery.mttr_ns"
DEFAULT_MTTR_CEILING_NS = 6_200_000_000

# Advisory zero-copy budget: counted copies per e9 invocation. The converted
# message path makes a bounded number of explicit copies per call (fragment
# gather, unseal output, checkpoint snapshots, and legacy read_raw sites for
# small fixed fields in per-packet envelope decode); the e9 sweep measures
# ~1050 such copies per invocation averaged over its payload ladder. The
# ceiling leaves ~40% headroom: a by-value buffer parameter regressing back
# into the per-hop path roughly doubles the figure.
COPIES_COUNTER = "buf.copies"
BYTES_COPIED_COUNTER = "buf.bytes_copied"
OPS_COUNTER = "e9.ops"
DEFAULT_COPIES_PER_OP = 1500


# Advisory offered-load ceiling: at this offered rate (requests/s), the best
# configuration's p99 must stay under this many simulated nanoseconds. The
# default pins the e11 sweep's pre-knee rate with generous headroom over the
# controller-on curve.
DEFAULT_P99_AT_LOAD = "1600:50000000"

# Advisory sharding floor: goodput at the top shared rate, largest shard
# count vs one shard. The e12 ladder tops out past the single-domain knee,
# where measured scaling is ~4.5x; 2.0 leaves room for admission-tuning
# drift while still catching a routing layer that stopped fanning out.
DEFAULT_SHARD_SCALING = 2.0

# Advisory batching floor: reports with batch_<n> curves (the e1 batch-size
# x pipeline-depth sweep) must show the best batched+pipelined goodput at
# least this many times the single-slot baseline (batch_1 at depth 1). The
# measured sweep peaks >10x; 2.0 catches a formation layer that silently
# stopped coalescing without flapping on scheduler noise.
DEFAULT_BATCH_SPEEDUP = 2.0


def parse_rate_spec(spec):
    """Parses "RATE:NS" into (float, int); raises ValueError on junk."""
    rate_text, _, ns_text = spec.partition(":")
    if not ns_text:
        raise ValueError(f"expected RATE:NS, got {spec!r}")
    return float(rate_text), int(ns_text)


def check_p99_at_load(path, rate, ceiling_ns):
    """Returns (checked, violation_message_or_None) for one report."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        return False, None
    curves = report.get("curves")
    if not curves:
        return False, None
    # "Best configuration wins": the claim gated here is that the system CAN
    # sustain the rate, not that every (deliberately crippled) configuration
    # does — the controller-off curve collapsing past the knee is the point.
    best_curve, best_p99 = None, None
    for name, points in sorted(curves.items()):
        for point in points:
            if point.get("rate_per_s") != rate:
                continue
            p99 = point.get("p99_ns", 0)
            if best_p99 is None or p99 < best_p99:
                best_curve, best_p99 = name, p99
    if best_p99 is None:
        return False, None
    status = "VIOLATION" if best_p99 > ceiling_ns else "ok"
    print(f"  {os.path.basename(path)} p99@{rate:g}req/s: {best_p99} ns "
          f"[{best_curve}] (ceiling {ceiling_ns} ns, {status})")
    if best_p99 > ceiling_ns:
        return True, (f"{os.path.basename(path)} best p99 at {rate:g} req/s "
                      f"is {best_p99} ns [{best_curve}], advisory ceiling "
                      f"{ceiling_ns} ns")
    return True, None


def check_shard_scaling(path, floor):
    """Returns (checked, violation_message_or_None) for one report."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        return False, None
    shard_curves = {}
    for name, points in (report.get("curves") or {}).items():
        prefix, _, count_text = name.partition("_")
        if prefix != "shards" or not count_text.isdigit() or not points:
            continue
        shard_curves[int(count_text)] = {p["rate_per_s"]: p.get("goodput_per_s", 0.0)
                                         for p in points}
    if len(shard_curves) < 2:
        return False, None
    low, high = min(shard_curves), max(shard_curves)
    shared_rates = set(shard_curves[low]) & set(shard_curves[high])
    if not shared_rates:
        return False, None
    top_rate = max(shared_rates)
    base = shard_curves[low][top_rate]
    scaled = shard_curves[high][top_rate]
    ratio = scaled / base if base > 0 else float("inf")
    status = "VIOLATION" if ratio < floor else "ok"
    print(f"  {os.path.basename(path)} goodput@{top_rate:g}req/s: "
          f"shards_{low}={base:.0f}/s -> shards_{high}={scaled:.0f}/s "
          f"({ratio:.2f}x, floor {floor:g}x, {status})")
    if ratio < floor:
        return True, (f"{os.path.basename(path)} goodput scaled only "
                      f"{ratio:.2f}x from {low} to {high} shards at "
                      f"{top_rate:g} req/s (advisory floor {floor:g}x)")
    return True, None


def check_batch_speedup(path, floor):
    """Returns (checked, violation_message_or_None) for one report."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        return False, None
    batch_curves = {}
    for name, points in (report.get("curves") or {}).items():
        prefix, _, count_text = name.partition("_")
        if prefix != "batch" or not count_text.isdigit() or not points:
            continue
        batch_curves[int(count_text)] = points
    if 1 not in batch_curves or len(batch_curves) < 2:
        return False, None
    # Single-slot baseline: no formation, depth-1 clients (rate_per_s keys
    # the pipeline depth on these curves).
    baseline = next((p.get("goodput_per_s", 0.0) for p in batch_curves[1]
                     if p.get("rate_per_s") == 1), 0.0)
    if baseline <= 0:
        return False, None
    best_goodput, best_label = 0.0, None
    for entries, points in sorted(batch_curves.items()):
        if entries == 1:
            continue
        for point in points:
            goodput = point.get("goodput_per_s", 0.0)
            if goodput > best_goodput:
                best_goodput = goodput
                best_label = f"batch_{entries}@depth{point.get('rate_per_s'):g}"
    ratio = best_goodput / baseline
    status = "VIOLATION" if ratio < floor else "ok"
    print(f"  {os.path.basename(path)} batched goodput: {best_goodput:.0f}/s "
          f"[{best_label}] vs single-slot {baseline:.0f}/s "
          f"({ratio:.2f}x, floor {floor:g}x, {status})")
    if ratio < floor:
        return True, (f"{os.path.basename(path)} batched+pipelined goodput "
                      f"is only {ratio:.2f}x the single-slot baseline "
                      f"(advisory floor {floor:g}x)")
    return True, None


def check_copies_per_op(path, ceiling):
    """Returns (checked, violation_message_or_None) for one report."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        return False, None
    counters = report.get("counters", {})
    copies = counters.get(COPIES_COUNTER)
    ops = counters.get(OPS_COUNTER)
    if copies is None or not ops:
        return False, None
    per_op = copies / ops
    per_op_bytes = counters.get(BYTES_COPIED_COUNTER, 0) / ops
    status = "VIOLATION" if per_op > ceiling else "ok"
    print(f"  {os.path.basename(path)} {COPIES_COUNTER}/op: {per_op:.1f} "
          f"({per_op_bytes:.0f} bytes/op, ceiling {ceiling}, {status})")
    if per_op > ceiling:
        return True, (f"{os.path.basename(path)} makes {per_op:.1f} counted "
                      f"buffer copies per op (advisory ceiling {ceiling})")
    return True, None


def check_mttr(path, ceiling_ns):
    """Returns (checked, violation_message_or_None) for one report."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        return False, None
    hist = report.get("histograms", {}).get(MTTR_HISTOGRAM)
    if not hist:
        return False, None
    worst = hist["max"]
    print(f"  {os.path.basename(path)} {MTTR_HISTOGRAM}.max: {worst} ns "
          f"(ceiling {ceiling_ns} ns, "
          f"{'VIOLATION' if worst > ceiling_ns else 'ok'})")
    if worst > ceiling_ns:
        return True, (f"{os.path.basename(path)} {MTTR_HISTOGRAM}.max "
                      f"{worst} ns exceeds ceiling {ceiling_ns} ns")
    return True, None


def load_tail(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench_gate: cannot parse {path}: {exc}", file=sys.stderr)
        return None
    hist = report.get("histograms", {}).get(HISTOGRAM)
    if not hist:
        return None
    return {p: hist[p] for p in PERCENTILES}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory holding previous BENCH_*.json")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on regression instead of warning")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative growth (default 0.25 = +25%%)")
    parser.add_argument("--mttr-ceiling-ns", type=int,
                        default=DEFAULT_MTTR_CEILING_NS,
                        help="absolute ceiling on recovery.mttr_ns max "
                             "(simulated ns; default: the 2s watchdog "
                             "deadline)")
    parser.add_argument("--copies-per-op", type=float,
                        default=DEFAULT_COPIES_PER_OP,
                        help="advisory ceiling on counted buffer copies per "
                             "benchmark op (reports with buf.copies + "
                             "e9.ops counters)")
    parser.add_argument("--p99-ceiling-at-load", default=DEFAULT_P99_AT_LOAD,
                        metavar="RATE:NS",
                        help="advisory ceiling on the best curve's p99 "
                             "latency at RATE requests/s (reports with a "
                             "curves block)")
    parser.add_argument("--min-shard-goodput-scaling", type=float,
                        default=DEFAULT_SHARD_SCALING, metavar="X",
                        help="advisory floor on goodput scaling from the "
                             "smallest to the largest shard count (reports "
                             "with shards_<n> curves)")
    parser.add_argument("--min-batch-speedup", type=float,
                        default=DEFAULT_BATCH_SPEEDUP, metavar="X",
                        help="advisory floor on best batched+pipelined "
                             "goodput vs the single-slot baseline (reports "
                             "with batch_<n> curves)")
    parser.add_argument("reports", nargs="+")
    args = parser.parse_args()
    try:
        load_rate, load_ceiling_ns = parse_rate_spec(args.p99_ceiling_at_load)
    except ValueError as exc:
        print(f"bench_gate: bad --p99-ceiling-at-load: {exc}", file=sys.stderr)
        return 2

    mttr_failures = []
    mttr_checked = 0
    for path in args.reports:
        checked, violation = check_mttr(path, args.mttr_ceiling_ns)
        mttr_checked += checked
        if violation:
            mttr_failures.append(violation)
    if mttr_failures:
        for message in mttr_failures:
            print(f"bench_gate FAIL: {message}", file=sys.stderr)
        # MTTR is deterministic simulated time: a breach is a hard failure
        # even without --strict.
        return 1
    if mttr_checked:
        print(f"bench_gate: {mttr_checked} MTTR report(s) within the "
              f"{args.mttr_ceiling_ns} ns ceiling")

    copy_warnings = []
    copies_checked = 0
    for path in args.reports:
        checked, violation = check_copies_per_op(path, args.copies_per_op)
        copies_checked += checked
        if violation:
            copy_warnings.append(violation)
    if copy_warnings:
        verb = "FAIL" if args.strict else "WARN"
        for message in copy_warnings:
            print(f"bench_gate {verb}: {message}", file=sys.stderr)
        if args.strict:
            return 1
    elif copies_checked:
        print(f"bench_gate: {copies_checked} report(s) within the "
              f"{args.copies_per_op} copies/op advisory ceiling")

    load_warnings = []
    load_checked = 0
    for path in args.reports:
        checked, violation = check_p99_at_load(path, load_rate,
                                               load_ceiling_ns)
        load_checked += checked
        if violation:
            load_warnings.append(violation)
    if load_warnings:
        verb = "FAIL" if args.strict else "WARN"
        for message in load_warnings:
            print(f"bench_gate {verb}: {message}", file=sys.stderr)
        if args.strict:
            return 1
    elif load_checked:
        print(f"bench_gate: {load_checked} report(s) within the p99 ceiling "
              f"at {load_rate:g} req/s")

    shard_warnings = []
    shards_checked = 0
    for path in args.reports:
        checked, violation = check_shard_scaling(
            path, args.min_shard_goodput_scaling)
        shards_checked += checked
        if violation:
            shard_warnings.append(violation)
    if shard_warnings:
        verb = "FAIL" if args.strict else "WARN"
        for message in shard_warnings:
            print(f"bench_gate {verb}: {message}", file=sys.stderr)
        if args.strict:
            return 1
    elif shards_checked:
        print(f"bench_gate: {shards_checked} report(s) above the "
              f"{args.min_shard_goodput_scaling:g}x shard-scaling floor")

    batch_warnings = []
    batch_checked = 0
    for path in args.reports:
        checked, violation = check_batch_speedup(path, args.min_batch_speedup)
        batch_checked += checked
        if violation:
            batch_warnings.append(violation)
    if batch_warnings:
        verb = "FAIL" if args.strict else "WARN"
        for message in batch_warnings:
            print(f"bench_gate {verb}: {message}", file=sys.stderr)
        if args.strict:
            return 1
    elif batch_checked:
        print(f"bench_gate: {batch_checked} report(s) above the "
              f"{args.min_batch_speedup:g}x batched-speedup floor")

    regressions = []
    compared = 0
    for path in args.reports:
        current = load_tail(path)
        if current is None:
            continue
        base_path = os.path.join(args.baseline, os.path.basename(path))
        if not os.path.isfile(base_path):
            print(f"bench_gate: no baseline for {os.path.basename(path)} "
                  "(seeding)")
            continue
        baseline = load_tail(base_path)
        if baseline is None:
            continue
        compared += 1
        for pct in PERCENTILES:
            before, after = baseline[pct], current[pct]
            limit = before * (1.0 + args.tolerance)
            status = "REGRESSION" if after > limit and before > 0 else "ok"
            print(f"  {os.path.basename(path)} {HISTOGRAM}.{pct}: "
                  f"{before} -> {after} ns ({status})")
            if status == "REGRESSION":
                regressions.append((os.path.basename(path), pct, before,
                                    after))

    if regressions:
        verb = "FAIL" if args.strict else "WARN"
        for name, pct, before, after in regressions:
            growth = (after - before) / before * 100.0
            print(f"bench_gate {verb}: {name} {HISTOGRAM}.{pct} grew "
                  f"{growth:.0f}% ({before} -> {after} ns, tolerance "
                  f"+{args.tolerance * 100:.0f}%)", file=sys.stderr)
        if args.strict:
            return 1
    elif compared:
        print(f"bench_gate: {compared} report(s) within "
              f"+{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
