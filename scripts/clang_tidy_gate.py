#!/usr/bin/env python3
"""Baseline-gated clang-tidy: fail on NEW diagnostics only.

Promotes clang-tidy from advisory to a gate without demanding a one-shot
cleanup: known diagnostics live in tools/clang_tidy_baseline.json (with the
same zero-new-findings contract as the itdos_analyze baseline), and the gate
fails only when a diagnostic appears that the baseline does not cover.

Fingerprints are (check, repo-relative path, message) — line numbers are
deliberately excluded so unrelated edits above a baselined diagnostic do not
invalidate it. Each fingerprint carries an occurrence budget: duplicating a
baselined diagnostic is a new finding.

Degrades gracefully where the toolchain is absent (exit 0 with a notice):
  - no clang-tidy binary on PATH (minimal build containers)
  - no compile_commands.json yet (tree not configured)

Usage:
  clang_tidy_gate.py -p build [files...]          # gate (default file set)
  clang_tidy_gate.py -p build --update-baseline   # re-baseline
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO, "tools", "clang_tidy_baseline.json")

# The gated TU set: one representative translation unit per protocol layer.
# Grow it file-by-file (re-run with --update-baseline if a new file brings
# known debt); HeaderFilterRegex in .clang-tidy pulls the headers each TU
# includes into the same run.
DEFAULT_FILES = [
    "src/telemetry/trace.cpp",
    "src/net/network.cpp",
    "src/cdr/codec.cpp",
    "src/bft/replica.cpp",
    "src/itdos/smiop.cpp",
    "src/itdos/group_manager.cpp",
    "src/shard/shard_map.cpp",
]

_DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<sev>warning|error): (?P<msg>.*?) \[(?P<check>[^\]]+)\]$")


def parse_diagnostics(output):
    found = []
    for line in output.splitlines():
        m = _DIAG_RE.match(line.strip())
        if not m:
            continue
        path = os.path.relpath(os.path.abspath(m.group("path")), REPO)
        found.append({"check": m.group("check"),
                      "file": path.replace(os.sep, "/"),
                      "line": int(m.group("line")),
                      "message": m.group("msg")})
    return found


def fingerprint(diag):
    return (diag["check"], diag["file"], diag["message"])


def load_baseline():
    if not os.path.exists(BASELINE):
        return {}
    with open(BASELINE, encoding="utf-8") as fh:
        doc = json.load(fh)
    budget = {}
    for entry in doc.get("findings", []):
        key = (entry["check"], entry["file"], entry["message"])
        budget[key] = budget.get(key, 0) + entry.get("count", 1)
    return budget


def write_baseline(diags):
    merged = {}
    for d in diags:
        key = fingerprint(d)
        if key in merged:
            merged[key]["count"] += 1
        else:
            merged[key] = {"check": d["check"], "file": d["file"],
                           "message": d["message"], "count": 1}
    doc = {"_comment": "clang-tidy known-diagnostic baseline; gate = "
                       "scripts/clang_tidy_gate.py (zero NEW findings). "
                       "Regenerate with --update-baseline.",
           "findings": sorted(merged.values(),
                              key=lambda e: (e["check"], e["file"],
                                             e["message"]))}
    with open(BASELINE, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="TUs to check (default: the gated layer set)")
    parser.add_argument("-p", dest="build_dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--clang-tidy", default=None,
                        help="binary to use (default: from PATH)")
    args = parser.parse_args(argv)

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    if not tidy:
        print("clang_tidy_gate: no clang-tidy on PATH; skipping (the CI "
              "image has it — this container is not the gate)")
        return 0
    ccdb = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(ccdb):
        print(f"clang_tidy_gate: {ccdb} not found; configure the tree "
              "first (cmake --preset default) — skipping")
        return 0

    files = args.files or [os.path.join(REPO, f) for f in DEFAULT_FILES]
    files = [f for f in files if os.path.exists(f)]
    proc = subprocess.run([tidy, "-p", args.build_dir, *files],
                          capture_output=True, text=True, check=False)
    diags = parse_diagnostics(proc.stdout)
    if proc.returncode != 0 and not diags:
        # clang-tidy failed without diagnostics: broken invocation, not debt.
        sys.stderr.write(proc.stderr)
        print("clang_tidy_gate: clang-tidy failed to run", file=sys.stderr)
        return 2

    if args.update_baseline:
        write_baseline(diags)
        print(f"clang_tidy_gate: baseline rewritten with {len(diags)} "
              f"diagnostic(s) -> {BASELINE}")
        return 0

    budget = load_baseline()
    new = []
    for d in diags:
        key = fingerprint(d)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new.append(d)
    for d in new:
        print(f"{d['file']}:{d['line']}: {d['check']} {d['message']}")
    stale = sum(n for n in budget.values() if n > 0)
    print(f"clang_tidy_gate: {len(files)} TU(s), {len(diags)} diagnostic(s), "
          f"{len(new)} new, {stale} baseline entry(ies) now stale")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
