#!/usr/bin/env python3
"""Emit itdos_analyze run statistics as a schema-valid BENCH_analyze.json.

Runs the static analyzer programmatically (tools/itdos_analyze) over the
given paths and writes the same report shape every bench binary emits via
ITDOS_BENCH_MAIN, so scripts/validate_bench_json.py and the bench tooling
can consume analyzer health like any other benchmark:

  counters    files / functions scanned, wall time (µs), per-rule finding
              counts (analyze.rule.<RULE-ID>), baselined vs unbaselined
  histograms  functions-per-file distribution (analyzer workload shape)
  layers      scanned files per top-level src/ subdirectory

Usage: analyze_stats.py [--out BENCH_analyze.json] [paths...]
"""

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "tools"))

from itdos_analyze import driver  # noqa: E402
from itdos_analyze.baseline import Baseline  # noqa: E402


def percentile(sorted_values, q):
    """Nearest-rank percentile over a non-empty sorted list."""
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil without math
    return sorted_values[int(rank) - 1]


def histogram_of(values):
    vals = sorted(values)
    return {
        "count": len(vals),
        "min": vals[0],
        "max": vals[-1],
        "mean": round(sum(vals) / len(vals), 3),
        "p50": percentile(vals, 50),
        "p95": percentile(vals, 95),
        "p99": percentile(vals, 99),
    }


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(REPO, "src")])
    parser.add_argument("--out", default="BENCH_analyze.json")
    parser.add_argument("--backend", default="auto",
                        choices=["auto", "libclang", "internal"])
    args = parser.parse_args(argv)

    findings, stats, file_lines = driver.analyze(args.paths,
                                                 backend=args.backend)
    base = Baseline.load(driver.DEFAULT_BASELINE)
    unbaselined, baselined = base.apply(findings, driver.REPO_ROOT, file_lines)

    # Re-derive per-file function counts + layer membership for the report.
    backend_name, lex_fn = driver.pick_backend(args.backend)
    files = driver.LINT.collect_files(args.paths)
    models, _ = driver.build_file_models(files, lex_fn, backend_name)

    counters = {
        "analyze.files": stats["files"],
        "analyze.functions": stats["functions"],
        "analyze.wall_us": int(stats["wall_s"] * 1e6),
        "analyze.parse_us": int(stats["parse_s"] * 1e6),
        "analyze.rules_us": int(stats["rules_s"] * 1e6),
        "analyze.findings.unbaselined": len(unbaselined),
        "analyze.findings.baselined": len(baselined),
    }
    for rule, n in stats["per_rule"].items():
        counters[f"analyze.rule.{rule}"] = n

    layers = {}
    for fm in models:
        rel = os.path.relpath(fm.path, driver.REPO_ROOT)
        parts = rel.replace(os.sep, "/").split("/")
        layer = parts[1] if len(parts) > 2 and parts[0] == "src" else parts[0]
        layers[layer] = layers.get(layer, 0) + 1

    report = {
        "schema_version": 1,
        "bench": "analyze",
        "counters": counters,
        "gauges": {},
        "histograms": {
            "functions_per_file": histogram_of(
                [len(fm.functions) for fm in models] or [0]),
        },
        "layers": layers or {"src": 0},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"analyze_stats: {stats['files']} file(s), "
          f"{len(unbaselined)} unbaselined finding(s) -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
