#!/usr/bin/env bash
# Smoke-run one small shard of every paper-experiment bench binary and
# validate the BENCH_<name>.json each one emits against bench/bench_schema.json.
#
# Registered as the `bench_smoke` ctest (label: bench):
#   ctest --test-dir build -L bench
# or standalone:
#   scripts/bench_smoke.sh [build_dir] [--strict]
#
# --strict turns delivery-delay tail regressions (see bench_gate.py) into a
# nonzero exit instead of a warning.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
STRICT=""
ARGS=()
for arg in "$@"; do
  if [[ "${arg}" == "--strict" ]]; then STRICT="--strict"; else ARGS+=("${arg}"); fi
done
set -- "${ARGS[@]:-}"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
BUILD_DIR="$(cd "${BUILD_DIR}" 2>/dev/null && pwd || echo "${BUILD_DIR}")"
BENCH_DIR="${BUILD_DIR}/bench"
SCHEMA="${REPO_ROOT}/bench/bench_schema.json"

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: no bench binaries in ${BENCH_DIR}; build the tree first:" >&2
  echo "  cmake -B '${BUILD_DIR}' -S '${REPO_ROOT}' && cmake --build '${BUILD_DIR}'" >&2
  exit 1
fi

# Reports are written to the working directory; run in a scratch dir so smoke
# runs never clobber full-run reports.
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "${WORK_DIR}"' EXIT
cd "${WORK_DIR}"

# binary -> one cheap shard that still exercises telemetry (a simulated system
# that gets harvested, or a host-timed hot loop), so every report carries
# counters AND at least one latency histogram.
BENCHES=(
  "fig1_end_to_end:BM_Fig1EndToEnd/1/"
  "fig2_stack_breakdown:BM_Layer_Marshal/64\$"
  "fig3_connection_establishment:BM_Fig3WarmConnection/1/"
  "e1_group_size_scaling:BM_E1OrderingCost/1/|BM_E1BatchPipelineSweep"
  "e2_voting:BM_E2ExactUnmarshalled/4\$"
  "e3_state_sync:BM_E3SnapshotStateTransfer/1024\$"
  "e4_threshold_keys:BM_E4TraditionalKeygen\$"
  "e5_early_vote:BM_E5DecideLatency/0/"
  "e6_expulsion_rekey:BM_E6ProofVerification/1\$"
  "e7_it_overhead:BM_E7Itdos/1/"
  "e8_nested_invocations:BM_E8NestedDepth/0/"
  "e9_large_messages:BM_E9PayloadSweep/1024/"
  "a1_ablations:BM_A1Adaptive\$"
  "e10_recovery:BM_E10ExpelToRestored/"
  "e11_offered_load:BM_E11Attack"
  "e12_sharded_bank:BM_E12"
)

for entry in "${BENCHES[@]}"; do
  bench="${entry%%:*}"
  filter="${entry#*:}"
  binary="${BENCH_DIR}/${bench}"
  if [[ ! -x "${binary}" ]]; then
    echo "error: missing bench binary ${binary}" >&2
    exit 1
  fi
  echo "== ${bench} (${filter})"
  "${binary}" --benchmark_filter="${filter}" --benchmark_min_time=0.05 >/dev/null
  if [[ ! -f "BENCH_${bench}.json" ]]; then
    echo "error: ${bench} did not write BENCH_${bench}.json" >&2
    exit 1
  fi
done

python3 "${REPO_ROOT}/scripts/validate_bench_json.py" --schema "${SCHEMA}" BENCH_*.json
echo "bench smoke OK: ${#BENCHES[@]} reports validated against $(basename "${SCHEMA}")"

# Perf gate: delivery-delay tails (p95/p99) vs the previous smoke run, an
# absolute MTTR ceiling on the e10 recovery report (repair must land well
# inside the watchdog deadline), an advisory p99-at-offered-load ceiling
# on the e11 curves (the pre-knee rate must stay servable), and an advisory
# batched-speedup floor on the e1 batch sweep (batching + pipelining must
# keep beating the single-slot baseline at saturation). Warn by default;
# --strict makes a regression fail the test. The baseline is then refreshed
# so the next run compares against this one.
BASELINE_DIR="${ITDOS_BENCH_BASELINE_DIR:-${BUILD_DIR}/bench_baseline}"
mkdir -p "${BASELINE_DIR}"
python3 "${REPO_ROOT}/scripts/bench_gate.py" --baseline "${BASELINE_DIR}" \
  --p99-ceiling-at-load 1600:50000000 --min-batch-speedup 2.0 ${STRICT} \
  BENCH_*.json
cp BENCH_*.json "${BASELINE_DIR}/"
