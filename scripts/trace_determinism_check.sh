#!/usr/bin/env bash
# Runs the same fault scenario twice with the same seed and asserts the two
# causal traces are byte-identical (trace_diff.py reports the first divergent
# event otherwise). Registered as the `fault_trace_determinism` ctest.
#
# usage: trace_determinism_check.sh <fault_scenario_tool> <trace_diff.py> <workdir>
set -euo pipefail

TOOL="${1:?path to fault_scenario_tool}"
DIFF="${2:?path to trace_diff.py}"
WORKDIR="${3:?scratch directory for trace files}"

SCENARIOS="${ITDOS_TRACE_SCENARIOS:-expel_rekey_e2e partition_primary drop_storm}"
SEED="${ITDOS_TRACE_SEED:-4242}"

mkdir -p "$WORKDIR"

status=0
for scenario in $SCENARIOS; do
  a="$WORKDIR/${scenario}_a.jsonl"
  b="$WORKDIR/${scenario}_b.jsonl"
  "$TOOL" run "$scenario" "$SEED" "$a" >/dev/null
  "$TOOL" run "$scenario" "$SEED" "$b" >/dev/null
  if python3 "$DIFF" "$a" "$b"; then
    echo "determinism OK: $scenario seed=$SEED"
  else
    echo "determinism FAILED: $scenario seed=$SEED" >&2
    status=1
  fi
done
exit $status
