#!/usr/bin/env python3
"""Diff two causal-trace JSONL files and report the FIRST divergent event.

Deterministic fault runs with the same seed must produce byte-identical
traces; when they do not, the first divergent line (plus surrounding
context) is where the nondeterminism crept in — far more useful than a
whole-file diff.

usage: trace_diff.py A.jsonl B.jsonl [--context N]

Exit status: 0 identical, 1 divergent (or length mismatch), 2 usage/IO.
"""

import argparse
import sys


def load_lines(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return fh.read().splitlines()
    except OSError as exc:
        print(f"trace_diff: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def show_context(label, lines, index, context):
    lo = max(0, index - context)
    hi = min(len(lines), index + context + 1)
    for i in range(lo, hi):
        marker = ">>" if i == index else "  "
        text = lines[i] if i < len(lines) else "<end of trace>"
        print(f"  {label} {marker} {i + 1}: {text}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("a")
    parser.add_argument("b")
    parser.add_argument("--context", type=int, default=3,
                        help="lines of context around the divergence")
    args = parser.parse_args()

    a_lines = load_lines(args.a)
    b_lines = load_lines(args.b)

    for i, (la, lb) in enumerate(zip(a_lines, b_lines)):
        if la != lb:
            print(f"traces diverge at line {i + 1}:")
            show_context("A", a_lines, i, args.context)
            show_context("B", b_lines, i, args.context)
            return 1

    if len(a_lines) != len(b_lines):
        shorter, longer = (args.a, args.b) if len(a_lines) < len(b_lines) \
            else (args.b, args.a)
        extra = max(len(a_lines), len(b_lines)) - min(len(a_lines),
                                                      len(b_lines))
        print(f"traces match for {min(len(a_lines), len(b_lines))} lines, "
              f"then {longer} has {extra} extra event(s) missing from "
              f"{shorter}:")
        tail = a_lines if len(a_lines) > len(b_lines) else b_lines
        for i in range(min(len(a_lines), len(b_lines)),
                       min(len(tail), min(len(a_lines), len(b_lines))
                           + args.context)):
            print(f"  + {i + 1}: {tail[i]}")
        return 1

    print(f"traces identical ({len(a_lines)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
