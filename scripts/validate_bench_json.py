#!/usr/bin/env python3
"""Validate BENCH_<name>.json reports against bench/bench_schema.json.

Stdlib only (the build image has no jsonschema package): implements exactly
the JSON-Schema keyword subset the schema file uses — type, const, required,
properties, additionalProperties, minProperties, minimum, items — and errors
out on any schema keyword it does not know, so the schema file cannot
silently grow past what is enforced.

Beyond the schema, histogram sanity is checked directly: min <= p50 <= p95
<= p99 <= max (the percentile walk clamps to the observed max, so any other
ordering means the exporter or the histogram math regressed).

Usage: validate_bench_json.py --schema bench/bench_schema.json BENCH_*.json
"""

import argparse
import json
import sys

HANDLED = {
    "$schema", "title", "description",  # annotations
    "type", "const", "required", "properties", "additionalProperties",
    "minProperties", "minimum", "items",
}


def type_ok(value, expected):
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise SystemExit(f"schema error: unsupported type {expected!r}")


def validate(value, schema, path, errors):
    unknown = set(schema) - HANDLED
    if unknown:
        raise SystemExit(f"schema error: unhandled keywords {sorted(unknown)} at {path}")

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {value!r}")
        return
    if "type" in schema and not type_ok(value, schema["type"]):
        errors.append(f"{path}: expected {schema['type']}, got {type(value).__name__}")
        return
    if "minimum" in schema and isinstance(value, (int, float)) and value < schema["minimum"]:
        errors.append(f"{path}: {value} below minimum {schema['minimum']}")

    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{index}]", errors)

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required property {key!r}")
        if "minProperties" in schema and len(value) < schema["minProperties"]:
            errors.append(f"{path}: needs at least {schema['minProperties']} properties, has {len(value)}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}", errors)


def check_histogram_ordering(report, path, errors):
    for name, hist in report.get("histograms", {}).items():
        if not isinstance(hist, dict):
            continue
        stats = [hist.get(k) for k in ("min", "p50", "p95", "p99", "max")]
        if all(isinstance(s, int) for s in stats) and stats != sorted(stats):
            errors.append(f"{path}.histograms.{name}: percentiles not monotone: "
                          f"min/p50/p95/p99/max = {stats}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", required=True)
    parser.add_argument("reports", nargs="+", metavar="BENCH_JSON")
    args = parser.parse_args()

    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)

    failed = False
    for report_path in args.reports:
        try:
            with open(report_path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {report_path}: {exc}")
            failed = True
            continue
        errors = []
        validate(report, schema, "$", errors)
        check_histogram_ordering(report, "$", errors)
        if errors:
            failed = True
            print(f"FAIL {report_path}")
            for error in errors:
                print(f"  {error}")
        else:
            hists = len(report.get("histograms", {}))
            counters = len(report.get("counters", {}))
            layers = ",".join(sorted(report.get("layers", {})))
            print(f"OK   {report_path}: {counters} counters, {hists} histograms, layers [{layers}]")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
