#!/usr/bin/env python3
"""TraceKind coverage matrix over the canned fault scenarios.

Runs every scenario fault_scenario_tool knows (plus the f+1 boundary probe,
which is the only run that legitimately produces oracle.violation events),
collects each run's causal trace JSONL, and reports which TraceKinds each
scenario exercised. The kind universe is parsed from the wire-name string
table in src/telemetry/trace.cpp, so a newly added TraceKind is counted as
uncovered until some scenario actually emits it.

With --check, exits 1 if any TraceKind has zero coverage across all runs —
an enum entry no scenario can produce is either dead code or a hole in the
fault suite, and both deserve a failing test (tests/CMakeLists.txt registers
this as the `trace_coverage` ctest under the `fault` label).

Usage:
  trace_coverage.py --tool build/tests/fault_scenario_tool \
      --workdir build/trace_coverage [--check] [--seed N]
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Wire names in the string table: `return "bft.commit";`
_WIRE_NAME_RE = re.compile(r'return\s+"([a-z0-9_.]+)";')


def parse_trace_kinds(trace_cpp):
    """Every wire name trace_kind_name() can return, in table order."""
    names = []
    in_switch = False
    for line in trace_cpp.read_text(encoding="utf-8").splitlines():
        if "trace_kind_name" in line:
            in_switch = True
        if not in_switch:
            continue
        match = _WIRE_NAME_RE.search(line)
        if match and match.group(1) != "unknown":
            names.append(match.group(1))
        if line.strip() == "}" and names:
            break
    if not names:
        raise SystemExit(f"no TraceKind wire names parsed from {trace_cpp}")
    return names


def run_tool(tool, args, trace_path, allow_nonzero=False):
    proc = subprocess.run([str(tool), *args, str(trace_path)],
                          capture_output=True, text=True)
    if proc.returncode != 0 and not allow_nonzero:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"{tool} {' '.join(args)} exited {proc.returncode}")
    return proc


def kinds_in_trace(trace_path):
    counts = {}
    with open(trace_path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)["ev"]
            counts[event] = counts.get(event, 0) + 1
    return counts


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tool", required=True,
                        help="path to fault_scenario_tool")
    parser.add_argument("--workdir", required=True,
                        help="directory for per-scenario trace files")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--check", action="store_true",
                        help="exit 1 if any TraceKind has zero coverage")
    parser.add_argument("--trace-cpp",
                        default=str(REPO_ROOT / "src/telemetry/trace.cpp"))
    args = parser.parse_args()

    kinds = parse_trace_kinds(pathlib.Path(args.trace_cpp))
    workdir = pathlib.Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    scenarios = subprocess.run([args.tool, "list"], capture_output=True,
                               text=True, check=True).stdout.split()

    # runs: ordered (label, {kind: count}); the probe is a deliberate f+1
    # boundary crossing and the sole source of oracle.violation events.
    runs = []
    for name in scenarios:
        trace = workdir / f"{name}.jsonl"
        run_tool(args.tool, ["run", name, str(args.seed)], trace)
        runs.append((name, kinds_in_trace(trace)))
    probe_trace = workdir / "probe.jsonl"
    run_tool(args.tool, ["probe", str(args.seed)], probe_trace)
    runs.append(("probe(f+1)", kinds_in_trace(probe_trace)))

    # Matrix: one row per TraceKind, one column per run.
    label_width = max(len(k) for k in kinds) + 2
    print(f"TraceKind coverage, seed {args.seed} "
          f"({len(runs)} runs incl. boundary probe):\n")
    for index, (name, _) in enumerate(runs):
        print(f"  {'':{label_width}}col {index + 1:2}: {name}")
    header = "".join(f"{i + 1:>4}" for i in range(len(runs)))
    print(f"\n  {'':{label_width}}{header}   total")
    uncovered = []
    for kind in kinds:
        row = [counts.get(kind, 0) for _, counts in runs]
        total = sum(row)
        cells = "".join(f"{'x' if c else '.':>4}" for c in row)
        print(f"  {kind:{label_width}}{cells}{total:8}")
        if total == 0:
            uncovered.append(kind)

    stray = sorted({k for _, counts in runs for k in counts} - set(kinds))
    if stray:
        print(f"\nWARNING: trace events not in the string table: {stray}")

    if uncovered:
        print(f"\nUNCOVERED TraceKinds ({len(uncovered)}): "
              f"{', '.join(uncovered)}")
        if args.check:
            return 1
    else:
        print(f"\nAll {len(kinds)} TraceKinds covered.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
