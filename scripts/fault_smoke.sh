#!/usr/bin/env bash
# Builds the fault-injection suite under AddressSanitizer (the `fault-asan`
# CMake preset spelled out as explicit flags, since the repo's CMake floor
# predates presets) and runs every fault-labelled ctest. Byzantine scenarios
# exercise exactly the delayed-delivery / cancelled-callback paths where
# lifetime bugs hide — ASAN is the right microscope.
#
# usage: fault_smoke.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build-fault-asan}"
SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -S "$SOURCE_DIR" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DITDOS_SANITIZE=address >/dev/null
cmake --build "$BUILD_DIR" --target fault_test fault_scenario_tool -j "$JOBS"

ctest --test-dir "$BUILD_DIR" -L fault --output-on-failure
echo "fault smoke (ASAN) PASSED"
