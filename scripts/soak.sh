#!/usr/bin/env bash
# Randomized fault soak: sweep every canned scenario across a range of seeds
# via fault_scenario_tool. Any oracle violation or liveness shortfall fails
# the sweep with a forensic dump on stderr.
#
# usage: soak.sh [build-dir]
#   ITDOS_SOAK_ITERS  seeds per scenario            (default 10)
#   ITDOS_SOAK_SEED   base seed; consecutive seeds  (default $RANDOM-derived)
set -euo pipefail

BUILD_DIR="${1:-build}"
TOOL="$BUILD_DIR/tests/fault_scenario_tool"

if [[ ! -x "$TOOL" ]]; then
  echo "soak.sh: $TOOL not built — run: cmake --build $BUILD_DIR" >&2
  exit 2
fi

ITERS="${ITDOS_SOAK_ITERS:-10}"
BASE_SEED="${ITDOS_SOAK_SEED:-$((RANDOM * 32768 + RANDOM))}"

echo "fault soak: scenarios=$("$TOOL" list | wc -l) iters=$ITERS base_seed=$BASE_SEED"
if "$TOOL" sweep "$BASE_SEED" "$ITERS"; then
  echo "fault soak PASSED (reproduce any seed with: $TOOL run <scenario> <seed>)"
else
  echo "fault soak FAILED at base_seed=$BASE_SEED — rerun with" >&2
  echo "  ITDOS_SOAK_SEED=$BASE_SEED ITDOS_SOAK_ITERS=$ITERS $0 $BUILD_DIR" >&2
  exit 1
fi
