file(REMOVE_RECURSE
  "../bench/e3_state_sync"
  "../bench/e3_state_sync.pdb"
  "CMakeFiles/e3_state_sync.dir/e3_state_sync.cpp.o"
  "CMakeFiles/e3_state_sync.dir/e3_state_sync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_state_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
