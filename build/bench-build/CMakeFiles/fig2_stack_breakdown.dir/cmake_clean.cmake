file(REMOVE_RECURSE
  "../bench/fig2_stack_breakdown"
  "../bench/fig2_stack_breakdown.pdb"
  "CMakeFiles/fig2_stack_breakdown.dir/fig2_stack_breakdown.cpp.o"
  "CMakeFiles/fig2_stack_breakdown.dir/fig2_stack_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stack_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
