# Empty dependencies file for fig2_stack_breakdown.
# This may be replaced when dependencies are built.
