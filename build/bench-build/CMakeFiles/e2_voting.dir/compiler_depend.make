# Empty compiler generated dependencies file for e2_voting.
# This may be replaced when dependencies are built.
