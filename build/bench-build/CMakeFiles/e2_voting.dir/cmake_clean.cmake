file(REMOVE_RECURSE
  "../bench/e2_voting"
  "../bench/e2_voting.pdb"
  "CMakeFiles/e2_voting.dir/e2_voting.cpp.o"
  "CMakeFiles/e2_voting.dir/e2_voting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_voting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
