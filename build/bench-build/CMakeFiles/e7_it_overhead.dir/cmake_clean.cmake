file(REMOVE_RECURSE
  "../bench/e7_it_overhead"
  "../bench/e7_it_overhead.pdb"
  "CMakeFiles/e7_it_overhead.dir/e7_it_overhead.cpp.o"
  "CMakeFiles/e7_it_overhead.dir/e7_it_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_it_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
