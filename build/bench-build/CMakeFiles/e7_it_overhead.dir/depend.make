# Empty dependencies file for e7_it_overhead.
# This may be replaced when dependencies are built.
