file(REMOVE_RECURSE
  "../bench/fig3_connection_establishment"
  "../bench/fig3_connection_establishment.pdb"
  "CMakeFiles/fig3_connection_establishment.dir/fig3_connection_establishment.cpp.o"
  "CMakeFiles/fig3_connection_establishment.dir/fig3_connection_establishment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_connection_establishment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
