# Empty compiler generated dependencies file for fig3_connection_establishment.
# This may be replaced when dependencies are built.
