file(REMOVE_RECURSE
  "../bench/e5_early_vote"
  "../bench/e5_early_vote.pdb"
  "CMakeFiles/e5_early_vote.dir/e5_early_vote.cpp.o"
  "CMakeFiles/e5_early_vote.dir/e5_early_vote.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_early_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
