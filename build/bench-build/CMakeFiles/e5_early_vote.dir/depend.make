# Empty dependencies file for e5_early_vote.
# This may be replaced when dependencies are built.
