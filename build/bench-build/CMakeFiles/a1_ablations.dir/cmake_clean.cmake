file(REMOVE_RECURSE
  "../bench/a1_ablations"
  "../bench/a1_ablations.pdb"
  "CMakeFiles/a1_ablations.dir/a1_ablations.cpp.o"
  "CMakeFiles/a1_ablations.dir/a1_ablations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
