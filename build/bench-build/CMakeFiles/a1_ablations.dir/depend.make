# Empty dependencies file for a1_ablations.
# This may be replaced when dependencies are built.
