# Empty dependencies file for e6_expulsion_rekey.
# This may be replaced when dependencies are built.
