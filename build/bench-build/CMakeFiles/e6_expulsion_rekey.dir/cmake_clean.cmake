file(REMOVE_RECURSE
  "../bench/e6_expulsion_rekey"
  "../bench/e6_expulsion_rekey.pdb"
  "CMakeFiles/e6_expulsion_rekey.dir/e6_expulsion_rekey.cpp.o"
  "CMakeFiles/e6_expulsion_rekey.dir/e6_expulsion_rekey.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_expulsion_rekey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
