# Empty compiler generated dependencies file for e8_nested_invocations.
# This may be replaced when dependencies are built.
