file(REMOVE_RECURSE
  "../bench/e8_nested_invocations"
  "../bench/e8_nested_invocations.pdb"
  "CMakeFiles/e8_nested_invocations.dir/e8_nested_invocations.cpp.o"
  "CMakeFiles/e8_nested_invocations.dir/e8_nested_invocations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_nested_invocations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
