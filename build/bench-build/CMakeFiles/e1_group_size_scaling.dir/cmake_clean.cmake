file(REMOVE_RECURSE
  "../bench/e1_group_size_scaling"
  "../bench/e1_group_size_scaling.pdb"
  "CMakeFiles/e1_group_size_scaling.dir/e1_group_size_scaling.cpp.o"
  "CMakeFiles/e1_group_size_scaling.dir/e1_group_size_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_group_size_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
