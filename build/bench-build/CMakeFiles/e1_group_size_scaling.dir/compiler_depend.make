# Empty compiler generated dependencies file for e1_group_size_scaling.
# This may be replaced when dependencies are built.
