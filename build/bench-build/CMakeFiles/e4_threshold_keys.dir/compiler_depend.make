# Empty compiler generated dependencies file for e4_threshold_keys.
# This may be replaced when dependencies are built.
