file(REMOVE_RECURSE
  "../bench/e4_threshold_keys"
  "../bench/e4_threshold_keys.pdb"
  "CMakeFiles/e4_threshold_keys.dir/e4_threshold_keys.cpp.o"
  "CMakeFiles/e4_threshold_keys.dir/e4_threshold_keys.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_threshold_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
