file(REMOVE_RECURSE
  "../bench/fig1_end_to_end"
  "../bench/fig1_end_to_end.pdb"
  "CMakeFiles/fig1_end_to_end.dir/fig1_end_to_end.cpp.o"
  "CMakeFiles/fig1_end_to_end.dir/fig1_end_to_end.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
