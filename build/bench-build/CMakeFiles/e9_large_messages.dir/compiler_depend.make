# Empty compiler generated dependencies file for e9_large_messages.
# This may be replaced when dependencies are built.
