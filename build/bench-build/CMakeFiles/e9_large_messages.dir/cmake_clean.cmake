file(REMOVE_RECURSE
  "../bench/e9_large_messages"
  "../bench/e9_large_messages.pdb"
  "CMakeFiles/e9_large_messages.dir/e9_large_messages.cpp.o"
  "CMakeFiles/e9_large_messages.dir/e9_large_messages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_large_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
