
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/sensor_fusion.cpp" "examples/CMakeFiles/sensor_fusion.dir/sensor_fusion.cpp.o" "gcc" "examples/CMakeFiles/sensor_fusion.dir/sensor_fusion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/itdos/CMakeFiles/itdos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/itdos_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/itdos_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/itdos_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/itdos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/itdos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/itdos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
