# Empty compiler generated dependencies file for intrusion_demo.
# This may be replaced when dependencies are built.
