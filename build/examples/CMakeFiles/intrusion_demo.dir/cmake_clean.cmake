file(REMOVE_RECURSE
  "CMakeFiles/intrusion_demo.dir/intrusion_demo.cpp.o"
  "CMakeFiles/intrusion_demo.dir/intrusion_demo.cpp.o.d"
  "intrusion_demo"
  "intrusion_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrusion_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
