# Empty compiler generated dependencies file for itdos_orb.
# This may be replaced when dependencies are built.
