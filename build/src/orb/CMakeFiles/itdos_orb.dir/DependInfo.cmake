
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orb/adapter.cpp" "src/orb/CMakeFiles/itdos_orb.dir/adapter.cpp.o" "gcc" "src/orb/CMakeFiles/itdos_orb.dir/adapter.cpp.o.d"
  "/root/repo/src/orb/iiop.cpp" "src/orb/CMakeFiles/itdos_orb.dir/iiop.cpp.o" "gcc" "src/orb/CMakeFiles/itdos_orb.dir/iiop.cpp.o.d"
  "/root/repo/src/orb/object.cpp" "src/orb/CMakeFiles/itdos_orb.dir/object.cpp.o" "gcc" "src/orb/CMakeFiles/itdos_orb.dir/object.cpp.o.d"
  "/root/repo/src/orb/orb.cpp" "src/orb/CMakeFiles/itdos_orb.dir/orb.cpp.o" "gcc" "src/orb/CMakeFiles/itdos_orb.dir/orb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/itdos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/itdos_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/itdos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
