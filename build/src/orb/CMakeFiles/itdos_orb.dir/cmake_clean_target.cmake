file(REMOVE_RECURSE
  "libitdos_orb.a"
)
