file(REMOVE_RECURSE
  "CMakeFiles/itdos_orb.dir/adapter.cpp.o"
  "CMakeFiles/itdos_orb.dir/adapter.cpp.o.d"
  "CMakeFiles/itdos_orb.dir/iiop.cpp.o"
  "CMakeFiles/itdos_orb.dir/iiop.cpp.o.d"
  "CMakeFiles/itdos_orb.dir/object.cpp.o"
  "CMakeFiles/itdos_orb.dir/object.cpp.o.d"
  "CMakeFiles/itdos_orb.dir/orb.cpp.o"
  "CMakeFiles/itdos_orb.dir/orb.cpp.o.d"
  "libitdos_orb.a"
  "libitdos_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdos_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
