file(REMOVE_RECURSE
  "libitdos_crypto.a"
)
