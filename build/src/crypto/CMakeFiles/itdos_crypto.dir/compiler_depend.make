# Empty compiler generated dependencies file for itdos_crypto.
# This may be replaced when dependencies are built.
