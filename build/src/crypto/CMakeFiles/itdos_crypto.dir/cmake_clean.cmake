file(REMOVE_RECURSE
  "CMakeFiles/itdos_crypto.dir/cipher.cpp.o"
  "CMakeFiles/itdos_crypto.dir/cipher.cpp.o.d"
  "CMakeFiles/itdos_crypto.dir/dprf.cpp.o"
  "CMakeFiles/itdos_crypto.dir/dprf.cpp.o.d"
  "CMakeFiles/itdos_crypto.dir/hmac.cpp.o"
  "CMakeFiles/itdos_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/itdos_crypto.dir/sha256.cpp.o"
  "CMakeFiles/itdos_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/itdos_crypto.dir/signing.cpp.o"
  "CMakeFiles/itdos_crypto.dir/signing.cpp.o.d"
  "libitdos_crypto.a"
  "libitdos_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdos_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
