file(REMOVE_RECURSE
  "CMakeFiles/itdos_cdr.dir/codec.cpp.o"
  "CMakeFiles/itdos_cdr.dir/codec.cpp.o.d"
  "CMakeFiles/itdos_cdr.dir/giop.cpp.o"
  "CMakeFiles/itdos_cdr.dir/giop.cpp.o.d"
  "CMakeFiles/itdos_cdr.dir/value.cpp.o"
  "CMakeFiles/itdos_cdr.dir/value.cpp.o.d"
  "libitdos_cdr.a"
  "libitdos_cdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdos_cdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
