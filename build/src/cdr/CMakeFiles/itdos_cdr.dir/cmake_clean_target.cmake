file(REMOVE_RECURSE
  "libitdos_cdr.a"
)
