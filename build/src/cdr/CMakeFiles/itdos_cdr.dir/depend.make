# Empty dependencies file for itdos_cdr.
# This may be replaced when dependencies are built.
