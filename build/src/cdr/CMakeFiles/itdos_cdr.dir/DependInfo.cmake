
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdr/codec.cpp" "src/cdr/CMakeFiles/itdos_cdr.dir/codec.cpp.o" "gcc" "src/cdr/CMakeFiles/itdos_cdr.dir/codec.cpp.o.d"
  "/root/repo/src/cdr/giop.cpp" "src/cdr/CMakeFiles/itdos_cdr.dir/giop.cpp.o" "gcc" "src/cdr/CMakeFiles/itdos_cdr.dir/giop.cpp.o.d"
  "/root/repo/src/cdr/value.cpp" "src/cdr/CMakeFiles/itdos_cdr.dir/value.cpp.o" "gcc" "src/cdr/CMakeFiles/itdos_cdr.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/itdos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
