file(REMOVE_RECURSE
  "libitdos_bft.a"
)
