# Empty compiler generated dependencies file for itdos_bft.
# This may be replaced when dependencies are built.
