file(REMOVE_RECURSE
  "CMakeFiles/itdos_bft.dir/client.cpp.o"
  "CMakeFiles/itdos_bft.dir/client.cpp.o.d"
  "CMakeFiles/itdos_bft.dir/config.cpp.o"
  "CMakeFiles/itdos_bft.dir/config.cpp.o.d"
  "CMakeFiles/itdos_bft.dir/harness.cpp.o"
  "CMakeFiles/itdos_bft.dir/harness.cpp.o.d"
  "CMakeFiles/itdos_bft.dir/messages.cpp.o"
  "CMakeFiles/itdos_bft.dir/messages.cpp.o.d"
  "CMakeFiles/itdos_bft.dir/replica.cpp.o"
  "CMakeFiles/itdos_bft.dir/replica.cpp.o.d"
  "libitdos_bft.a"
  "libitdos_bft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdos_bft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
