
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bft/client.cpp" "src/bft/CMakeFiles/itdos_bft.dir/client.cpp.o" "gcc" "src/bft/CMakeFiles/itdos_bft.dir/client.cpp.o.d"
  "/root/repo/src/bft/config.cpp" "src/bft/CMakeFiles/itdos_bft.dir/config.cpp.o" "gcc" "src/bft/CMakeFiles/itdos_bft.dir/config.cpp.o.d"
  "/root/repo/src/bft/harness.cpp" "src/bft/CMakeFiles/itdos_bft.dir/harness.cpp.o" "gcc" "src/bft/CMakeFiles/itdos_bft.dir/harness.cpp.o.d"
  "/root/repo/src/bft/messages.cpp" "src/bft/CMakeFiles/itdos_bft.dir/messages.cpp.o" "gcc" "src/bft/CMakeFiles/itdos_bft.dir/messages.cpp.o.d"
  "/root/repo/src/bft/replica.cpp" "src/bft/CMakeFiles/itdos_bft.dir/replica.cpp.o" "gcc" "src/bft/CMakeFiles/itdos_bft.dir/replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/itdos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/itdos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/itdos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/itdos_cdr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
