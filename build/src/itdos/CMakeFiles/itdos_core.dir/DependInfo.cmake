
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/itdos/domain_element.cpp" "src/itdos/CMakeFiles/itdos_core.dir/domain_element.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/domain_element.cpp.o.d"
  "/root/repo/src/itdos/group_manager.cpp" "src/itdos/CMakeFiles/itdos_core.dir/group_manager.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/group_manager.cpp.o.d"
  "/root/repo/src/itdos/key_agent.cpp" "src/itdos/CMakeFiles/itdos_core.dir/key_agent.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/key_agent.cpp.o.d"
  "/root/repo/src/itdos/proxy.cpp" "src/itdos/CMakeFiles/itdos_core.dir/proxy.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/proxy.cpp.o.d"
  "/root/repo/src/itdos/queue.cpp" "src/itdos/CMakeFiles/itdos_core.dir/queue.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/queue.cpp.o.d"
  "/root/repo/src/itdos/smiop.cpp" "src/itdos/CMakeFiles/itdos_core.dir/smiop.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/smiop.cpp.o.d"
  "/root/repo/src/itdos/smiop_msg.cpp" "src/itdos/CMakeFiles/itdos_core.dir/smiop_msg.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/smiop_msg.cpp.o.d"
  "/root/repo/src/itdos/system.cpp" "src/itdos/CMakeFiles/itdos_core.dir/system.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/system.cpp.o.d"
  "/root/repo/src/itdos/system_directory.cpp" "src/itdos/CMakeFiles/itdos_core.dir/system_directory.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/system_directory.cpp.o.d"
  "/root/repo/src/itdos/voting.cpp" "src/itdos/CMakeFiles/itdos_core.dir/voting.cpp.o" "gcc" "src/itdos/CMakeFiles/itdos_core.dir/voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/itdos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/itdos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/itdos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/itdos_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/itdos_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/itdos_orb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
