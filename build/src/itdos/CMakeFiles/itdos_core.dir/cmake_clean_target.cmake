file(REMOVE_RECURSE
  "libitdos_core.a"
)
