file(REMOVE_RECURSE
  "CMakeFiles/itdos_core.dir/domain_element.cpp.o"
  "CMakeFiles/itdos_core.dir/domain_element.cpp.o.d"
  "CMakeFiles/itdos_core.dir/group_manager.cpp.o"
  "CMakeFiles/itdos_core.dir/group_manager.cpp.o.d"
  "CMakeFiles/itdos_core.dir/key_agent.cpp.o"
  "CMakeFiles/itdos_core.dir/key_agent.cpp.o.d"
  "CMakeFiles/itdos_core.dir/proxy.cpp.o"
  "CMakeFiles/itdos_core.dir/proxy.cpp.o.d"
  "CMakeFiles/itdos_core.dir/queue.cpp.o"
  "CMakeFiles/itdos_core.dir/queue.cpp.o.d"
  "CMakeFiles/itdos_core.dir/smiop.cpp.o"
  "CMakeFiles/itdos_core.dir/smiop.cpp.o.d"
  "CMakeFiles/itdos_core.dir/smiop_msg.cpp.o"
  "CMakeFiles/itdos_core.dir/smiop_msg.cpp.o.d"
  "CMakeFiles/itdos_core.dir/system.cpp.o"
  "CMakeFiles/itdos_core.dir/system.cpp.o.d"
  "CMakeFiles/itdos_core.dir/system_directory.cpp.o"
  "CMakeFiles/itdos_core.dir/system_directory.cpp.o.d"
  "CMakeFiles/itdos_core.dir/voting.cpp.o"
  "CMakeFiles/itdos_core.dir/voting.cpp.o.d"
  "libitdos_core.a"
  "libitdos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
