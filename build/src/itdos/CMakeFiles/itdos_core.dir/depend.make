# Empty dependencies file for itdos_core.
# This may be replaced when dependencies are built.
