# Empty compiler generated dependencies file for itdos_common.
# This may be replaced when dependencies are built.
