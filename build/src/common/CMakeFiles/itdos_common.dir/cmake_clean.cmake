file(REMOVE_RECURSE
  "CMakeFiles/itdos_common.dir/bytes.cpp.o"
  "CMakeFiles/itdos_common.dir/bytes.cpp.o.d"
  "CMakeFiles/itdos_common.dir/log.cpp.o"
  "CMakeFiles/itdos_common.dir/log.cpp.o.d"
  "CMakeFiles/itdos_common.dir/result.cpp.o"
  "CMakeFiles/itdos_common.dir/result.cpp.o.d"
  "CMakeFiles/itdos_common.dir/rng.cpp.o"
  "CMakeFiles/itdos_common.dir/rng.cpp.o.d"
  "libitdos_common.a"
  "libitdos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
