file(REMOVE_RECURSE
  "libitdos_common.a"
)
