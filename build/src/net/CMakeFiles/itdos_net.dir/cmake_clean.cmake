file(REMOVE_RECURSE
  "CMakeFiles/itdos_net.dir/network.cpp.o"
  "CMakeFiles/itdos_net.dir/network.cpp.o.d"
  "CMakeFiles/itdos_net.dir/sim.cpp.o"
  "CMakeFiles/itdos_net.dir/sim.cpp.o.d"
  "libitdos_net.a"
  "libitdos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
