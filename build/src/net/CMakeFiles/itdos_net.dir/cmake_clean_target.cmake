file(REMOVE_RECURSE
  "libitdos_net.a"
)
