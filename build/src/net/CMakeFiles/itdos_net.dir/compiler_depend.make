# Empty compiler generated dependencies file for itdos_net.
# This may be replaced when dependencies are built.
