# Empty compiler generated dependencies file for itdos_test.
# This may be replaced when dependencies are built.
