
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/itdos/fragment_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/fragment_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/fragment_test.cpp.o.d"
  "/root/repo/tests/itdos/group_manager_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/group_manager_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/group_manager_test.cpp.o.d"
  "/root/repo/tests/itdos/hostile_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/hostile_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/hostile_test.cpp.o.d"
  "/root/repo/tests/itdos/proxy_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/proxy_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/proxy_test.cpp.o.d"
  "/root/repo/tests/itdos/queue_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/queue_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/queue_test.cpp.o.d"
  "/root/repo/tests/itdos/replacement_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/replacement_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/replacement_test.cpp.o.d"
  "/root/repo/tests/itdos/smiop_msg_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/smiop_msg_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/smiop_msg_test.cpp.o.d"
  "/root/repo/tests/itdos/soak_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/soak_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/soak_test.cpp.o.d"
  "/root/repo/tests/itdos/system_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/system_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/system_test.cpp.o.d"
  "/root/repo/tests/itdos/voting_test.cpp" "tests/CMakeFiles/itdos_test.dir/itdos/voting_test.cpp.o" "gcc" "tests/CMakeFiles/itdos_test.dir/itdos/voting_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/itdos/CMakeFiles/itdos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/itdos_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/itdos_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/cdr/CMakeFiles/itdos_cdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/itdos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/itdos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/itdos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
