file(REMOVE_RECURSE
  "CMakeFiles/itdos_test.dir/itdos/fragment_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/fragment_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/group_manager_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/group_manager_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/hostile_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/hostile_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/proxy_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/proxy_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/queue_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/queue_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/replacement_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/replacement_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/smiop_msg_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/smiop_msg_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/soak_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/soak_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/system_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/system_test.cpp.o.d"
  "CMakeFiles/itdos_test.dir/itdos/voting_test.cpp.o"
  "CMakeFiles/itdos_test.dir/itdos/voting_test.cpp.o.d"
  "itdos_test"
  "itdos_test.pdb"
  "itdos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itdos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
