file(REMOVE_RECURSE
  "CMakeFiles/bft_test.dir/bft/config_test.cpp.o"
  "CMakeFiles/bft_test.dir/bft/config_test.cpp.o.d"
  "CMakeFiles/bft_test.dir/bft/messages_test.cpp.o"
  "CMakeFiles/bft_test.dir/bft/messages_test.cpp.o.d"
  "CMakeFiles/bft_test.dir/bft/recovery_test.cpp.o"
  "CMakeFiles/bft_test.dir/bft/recovery_test.cpp.o.d"
  "CMakeFiles/bft_test.dir/bft/replica_test.cpp.o"
  "CMakeFiles/bft_test.dir/bft/replica_test.cpp.o.d"
  "bft_test"
  "bft_test.pdb"
  "bft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
