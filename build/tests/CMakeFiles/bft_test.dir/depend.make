# Empty dependencies file for bft_test.
# This may be replaced when dependencies are built.
