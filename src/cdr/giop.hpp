// GIOP-style message framing (OMG GIOP [28], simplified) with the ITDOS
// extensions the paper describes:
//   * a strictly-increasing per-connection request id in every Request and
//     Reply (§3.6 "Message originators embed request identifiers in all the
//     requests and replies"),
//   * the full interface name carried in the Request header ("ITDOS adds
//     the full interface name to the GIOP message (which GIOP doesn't
//     normally provide)") so the Group Manager's standalone marshalling
//     engine can vote on proofs without an ORB.
//
// Framing: a 12-byte header (magic "GIOP", version, flags carrying the
// sender's byte order, message type, body size) followed by the body encoded
// in the sender's byte order. Body alignment is relative to the body start
// (the body is an encapsulation).
#pragma once

#include <string>
#include <variant>

#include "cdr/value.hpp"
#include "common/ids.hpp"

namespace itdos::cdr {

enum class GiopMsgType : std::uint8_t {
  kRequest = 0,
  kReply = 1,
  kCancelRequest = 2,
  kCloseConnection = 5,
  kMessageError = 6,
};

inline constexpr std::size_t kGiopHeaderSize = 12;
inline constexpr std::uint8_t kGiopVersionMajor = 1;
inline constexpr std::uint8_t kGiopVersionMinor = 2;

struct RequestMessage {
  RequestId request_id;
  bool response_expected = true;
  ObjectId object_key;
  std::string operation;
  std::string interface_name;  // ITDOS extension (§3.6)
  Value arguments;             // typically a kSequence of actual parameters

  bool operator==(const RequestMessage&) const = default;
};

enum class ReplyStatus : std::uint8_t {
  kNoException = 0,
  kUserException = 1,
  kSystemException = 2,
};

struct ReplyMessage {
  RequestId request_id;
  ReplyStatus status = ReplyStatus::kNoException;
  Value result;
  std::string exception_detail;  // set for non-kNoException replies

  bool operator==(const ReplyMessage&) const = default;
};

struct CancelRequestMessage {
  RequestId request_id;
  bool operator==(const CancelRequestMessage&) const = default;
};

struct CloseConnectionMessage {
  bool operator==(const CloseConnectionMessage&) const = default;
};

using GiopMessage = std::variant<RequestMessage, ReplyMessage, CancelRequestMessage,
                                 CloseConnectionMessage>;

/// Encodes a message (header + body) in the given byte order. Heterogeneous
/// replicas encode in their own native order; the receiver honours the
/// header flag — this is the mechanism that defeats byte-by-byte voting.
Bytes encode_giop(const GiopMessage& msg, ByteOrder order = native_byte_order());

/// Parses a full GIOP message. Rejects bad magic, versions, truncation and
/// trailing garbage with kMalformedMessage.
Result<GiopMessage> parse_giop(ByteView data);

/// Reads just the byte order flag from an encoded message (for diagnostics).
Result<ByteOrder> giop_byte_order(ByteView data);

/// Message type helpers.
GiopMsgType giop_type(const GiopMessage& msg);
std::string_view giop_type_name(GiopMsgType t);

}  // namespace itdos::cdr
