#include "cdr/giop.hpp"

namespace itdos::cdr {

namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'I', 'O', 'P'};
constexpr std::uint8_t kFlagLittleEndian = 0x01;

void encode_request_body(Encoder& enc, const RequestMessage& msg) {
  enc.write_uint64(msg.request_id.value);
  enc.write_boolean(msg.response_expected);
  enc.write_uint64(msg.object_key.value);
  enc.write_string(msg.operation);
  enc.write_string(msg.interface_name);
  msg.arguments.marshal(enc);
}

void encode_reply_body(Encoder& enc, const ReplyMessage& msg) {
  enc.write_uint64(msg.request_id.value);
  enc.write_octet(static_cast<std::uint8_t>(msg.status));
  enc.write_string(msg.exception_detail);
  msg.result.marshal(enc);
}

Result<RequestMessage> parse_request_body(Decoder& dec) {
  RequestMessage msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, dec.read_uint64());
  msg.request_id = RequestId(rid);
  ITDOS_ASSIGN_OR_RETURN(msg.response_expected, dec.read_boolean());
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t key, dec.read_uint64());
  msg.object_key = ObjectId(key);
  ITDOS_ASSIGN_OR_RETURN(msg.operation, dec.read_string());
  ITDOS_ASSIGN_OR_RETURN(msg.interface_name, dec.read_string());
  ITDOS_ASSIGN_OR_RETURN(msg.arguments, Value::unmarshal(dec));
  return msg;
}

Result<ReplyMessage> parse_reply_body(Decoder& dec) {
  ReplyMessage msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, dec.read_uint64());
  msg.request_id = RequestId(rid);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t status, dec.read_octet());
  if (status > static_cast<std::uint8_t>(ReplyStatus::kSystemException)) {
    return error(Errc::kMalformedMessage, "bad GIOP reply status");
  }
  msg.status = static_cast<ReplyStatus>(status);
  ITDOS_ASSIGN_OR_RETURN(msg.exception_detail, dec.read_string());
  ITDOS_ASSIGN_OR_RETURN(msg.result, Value::unmarshal(dec));
  return msg;
}

}  // namespace

GiopMsgType giop_type(const GiopMessage& msg) {
  switch (msg.index()) {
    case 0: return GiopMsgType::kRequest;
    case 1: return GiopMsgType::kReply;
    case 2: return GiopMsgType::kCancelRequest;
    default: return GiopMsgType::kCloseConnection;
  }
}

std::string_view giop_type_name(GiopMsgType t) {
  switch (t) {
    case GiopMsgType::kRequest: return "Request";
    case GiopMsgType::kReply: return "Reply";
    case GiopMsgType::kCancelRequest: return "CancelRequest";
    case GiopMsgType::kCloseConnection: return "CloseConnection";
    case GiopMsgType::kMessageError: return "MessageError";
  }
  return "<?>";
}

Bytes encode_giop(const GiopMessage& msg, ByteOrder order) {
  Encoder body(order);
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RequestMessage>) {
          encode_request_body(body, m);
        } else if constexpr (std::is_same_v<T, ReplyMessage>) {
          encode_reply_body(body, m);
        } else if constexpr (std::is_same_v<T, CancelRequestMessage>) {
          body.write_uint64(m.request_id.value);
        } else {
          // CloseConnection has an empty body.
        }
      },
      msg);

  Encoder out(order);
  out.write_raw(ByteView(kMagic, 4));
  out.write_octet(kGiopVersionMajor);
  out.write_octet(kGiopVersionMinor);
  out.write_octet(order == ByteOrder::kLittleEndian ? kFlagLittleEndian : 0);
  out.write_octet(static_cast<std::uint8_t>(giop_type(msg)));
  out.write_uint32(static_cast<std::uint32_t>(body.size()));
  out.write_raw(body.buffer());
  return out.take();
}

Result<ByteOrder> giop_byte_order(ByteView data) {
  if (data.size() < kGiopHeaderSize) {
    return error(Errc::kMalformedMessage, "GIOP message shorter than header");
  }
  return (data[6] & kFlagLittleEndian) ? ByteOrder::kLittleEndian
                                       : ByteOrder::kBigEndian;
}

Result<GiopMessage> parse_giop(ByteView data) {
  if (data.size() < kGiopHeaderSize) {
    return error(Errc::kMalformedMessage, "GIOP message shorter than header");
  }
  for (int i = 0; i < 4; ++i) {
    if (data[i] != kMagic[i]) {
      return error(Errc::kMalformedMessage, "bad GIOP magic");
    }
  }
  if (data[4] != kGiopVersionMajor || data[5] != kGiopVersionMinor) {
    return error(Errc::kMalformedMessage, "unsupported GIOP version");
  }
  const ByteOrder order =
      (data[6] & kFlagLittleEndian) ? ByteOrder::kLittleEndian : ByteOrder::kBigEndian;
  const std::uint8_t msg_type = data[7];

  Decoder header_size_dec(data.subspan(8, 4), order);
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t body_size, header_size_dec.read_uint32());
  if (data.size() != kGiopHeaderSize + body_size) {
    return error(Errc::kMalformedMessage, "GIOP size field mismatch");
  }
  Decoder body(data.subspan(kGiopHeaderSize), order);

  switch (static_cast<GiopMsgType>(msg_type)) {
    case GiopMsgType::kRequest: {
      ITDOS_ASSIGN_OR_RETURN(RequestMessage msg, parse_request_body(body));
      if (!body.exhausted()) {
        return error(Errc::kMalformedMessage, "trailing bytes after GIOP request");
      }
      return GiopMessage(std::move(msg));
    }
    case GiopMsgType::kReply: {
      ITDOS_ASSIGN_OR_RETURN(ReplyMessage msg, parse_reply_body(body));
      if (!body.exhausted()) {
        return error(Errc::kMalformedMessage, "trailing bytes after GIOP reply");
      }
      return GiopMessage(std::move(msg));
    }
    case GiopMsgType::kCancelRequest: {
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, body.read_uint64());
      if (!body.exhausted()) {
        return error(Errc::kMalformedMessage, "trailing bytes after GIOP cancel");
      }
      return GiopMessage(CancelRequestMessage{RequestId(rid)});
    }
    case GiopMsgType::kCloseConnection: {
      if (!body.exhausted()) {
        return error(Errc::kMalformedMessage, "trailing bytes after GIOP close");
      }
      return GiopMessage(CloseConnectionMessage{});
    }
    case GiopMsgType::kMessageError:
      // A peer reporting a protocol error; there is no body to act on and
      // replicated servants never originate one, so surface it as malformed.
      return error(Errc::kMalformedMessage, "peer sent GIOP MessageError");
    default:
      return error(Errc::kMalformedMessage, "unknown GIOP message type");
  }
}

}  // namespace itdos::cdr
