// Self-describing CDR value tree — the representation ITDOS votes on.
//
// The paper (§3.6): "voting must be accomplished in middleware, after the
// raw message stream has been unmarshalled. This process allows us to
// determine equivalency even when the underlying data representation is
// different." A Value is the unmarshalled form: a typed tree of primitives,
// strings, sequences and structs, independent of the byte order or platform
// that produced the wire bytes. Two heterogeneous replicas that compute the
// same logical result unmarshal to equal Values even though their raw GIOP
// bytes differ.
//
// The wire form is type-tagged (a miniature TypeCode stream), which is what
// lets the Group Manager's standalone marshalling engine re-unmarshal a
// message for proof verification without IDL knowledge (§3.6).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "cdr/codec.hpp"
#include "common/result.hpp"

namespace itdos::cdr {

enum class TypeKind : std::uint8_t {
  kVoid = 0,
  kBoolean = 1,
  kOctet = 2,
  kInt32 = 3,
  kInt64 = 4,
  kFloat = 5,
  kDouble = 6,
  kString = 7,
  kSequence = 8,
  kStruct = 9,
};

std::string_view type_kind_name(TypeKind k);

class Value;

/// A named struct member.
struct Field {
  std::string name;
  // Defined out-of-line; Value is incomplete here.
  std::vector<Value> value;  // exactly one element; vector for incompleteness

  Field(std::string n, Value v);
  const Value& get() const { return value.front(); }
  bool operator==(const Field& other) const;
};

class Value {
 public:
  /// Constructors, one per TypeKind.
  Value() : data_(std::monostate{}) {}  // void
  static Value void_() { return Value(); }
  static Value boolean(bool v) { return Value(v); }
  static Value octet(std::uint8_t v) { return Value(v); }
  static Value int32(std::int32_t v) { return Value(v); }
  static Value int64(std::int64_t v) { return Value(v); }
  static Value float32(float v) { return Value(v); }
  static Value float64(double v) { return Value(v); }
  static Value string(std::string v) { return Value(std::move(v)); }
  static Value sequence(std::vector<Value> elems);
  static Value structure(std::vector<Field> fields);

  TypeKind kind() const;

  bool is_void() const { return kind() == TypeKind::kVoid; }

  /// Typed accessors; precondition: kind() matches.
  bool as_boolean() const { return std::get<bool>(data_); }
  std::uint8_t as_octet() const { return std::get<std::uint8_t>(data_); }
  std::int32_t as_int32() const { return std::get<std::int32_t>(data_); }
  std::int64_t as_int64() const { return std::get<std::int64_t>(data_); }
  float as_float32() const { return std::get<float>(data_); }
  double as_float64() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const std::vector<Value>& elements() const;
  const std::vector<Field>& fields() const;

  /// Struct member lookup; kNotFound if absent or not a struct.
  Result<Value> field(std::string_view name) const;

  /// Exact structural equality (type + value; floats bitwise-ish via ==).
  bool operator==(const Value& other) const;

  /// Marshals type tag + payload into the encoder.
  void marshal(Encoder& enc) const;

  /// Unmarshals one tagged value. `max_depth` bounds hostile nesting.
  static Result<Value> unmarshal(Decoder& dec, int max_depth = 32);

  /// Convenience: full round trip through a fresh encapsulation.
  Bytes encode(ByteOrder order = native_byte_order()) const;
  static Result<Value> decode(ByteView data, ByteOrder order);

  /// Human-readable rendering ("{x: 1, y: [2.5, 3.5]}").
  std::string to_string() const;

  /// Total node count (tree size); used for voter cost accounting.
  std::size_t node_count() const;

 private:
  struct SequenceBox {
    std::vector<Value> elems;
    bool operator==(const SequenceBox&) const = default;
  };
  struct StructBox {
    std::vector<Field> fields;
    bool operator==(const StructBox&) const = default;
  };

  explicit Value(bool v) : data_(v) {}
  explicit Value(std::uint8_t v) : data_(v) {}
  explicit Value(std::int32_t v) : data_(v) {}
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(float v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(SequenceBox v) : data_(std::move(v)) {}
  explicit Value(StructBox v) : data_(std::move(v)) {}

  std::variant<std::monostate, bool, std::uint8_t, std::int32_t, std::int64_t,
               float, double, std::string, SequenceBox, StructBox>
      data_;
};

}  // namespace itdos::cdr
