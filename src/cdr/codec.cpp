#include "cdr/codec.hpp"

#include <bit>
#include <cstring>

namespace itdos::cdr {

ByteOrder native_byte_order() {
  return std::endian::native == std::endian::little ? ByteOrder::kLittleEndian
                                                    : ByteOrder::kBigEndian;
}

void Encoder::align(std::size_t alignment) {
  const std::size_t misalign = buffer_.size() % alignment;
  if (misalign != 0) {
    buffer_.resize(buffer_.size() + (alignment - misalign), 0);
  }
}

void Encoder::write_octet(std::uint8_t v) { buffer_.push_back(v); }

void Encoder::write_uint(std::uint64_t v, std::size_t width) {
  align(width);
  if (order_ == ByteOrder::kLittleEndian) {
    for (std::size_t i = 0; i < width; ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }
  } else {
    for (std::size_t i = width; i-- > 0;) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
    }
  }
}

void Encoder::write_float(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_uint(bits, 4);
}

void Encoder::write_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_uint(bits, 8);
}

void Encoder::write_string(std::string_view s) {
  write_uint32(static_cast<std::uint32_t>(s.size() + 1));
  for (char c : s) buffer_.push_back(static_cast<std::uint8_t>(c));
  buffer_.push_back(0);  // CDR strings are NUL-terminated on the wire
}

void Encoder::write_bytes(ByteView b) {
  write_uint32(static_cast<std::uint32_t>(b.size()));
  append(buffer_, b);
}

void Encoder::write_raw(ByteView b) { append(buffer_, b); }

Status Decoder::align(std::size_t alignment) {
  const std::size_t misalign = offset_ % alignment;
  if (misalign == 0) return Status::ok();
  const std::size_t pad = alignment - misalign;
  if (remaining() < pad) {
    return error(Errc::kMalformedMessage, "truncated CDR padding");
  }
  offset_ += pad;
  return Status::ok();
}

Result<std::uint64_t> Decoder::read_uint(std::size_t width) {
  ITDOS_RETURN_IF_ERROR(align(width));
  if (remaining() < width) {
    return error(Errc::kMalformedMessage, "truncated CDR primitive");
  }
  std::uint64_t v = 0;
  if (order_ == ByteOrder::kLittleEndian) {
    for (std::size_t i = 0; i < width; ++i) {
      v |= std::uint64_t(data_[offset_ + i]) << (i * 8);
    }
  } else {
    for (std::size_t i = 0; i < width; ++i) {
      v = (v << 8) | data_[offset_ + i];
    }
  }
  offset_ += width;
  return v;
}

Result<std::uint8_t> Decoder::read_octet() {
  if (remaining() < 1) return error(Errc::kMalformedMessage, "truncated CDR octet");
  return data_[offset_++];
}

Result<bool> Decoder::read_boolean() {
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t v, read_octet());
  if (v > 1) return error(Errc::kMalformedMessage, "CDR boolean out of range");
  return v == 1;
}

Result<std::int16_t> Decoder::read_int16() {
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t v, read_uint(2));
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(v));
}

Result<std::uint16_t> Decoder::read_uint16() {
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t v, read_uint(2));
  return static_cast<std::uint16_t>(v);
}

Result<std::int32_t> Decoder::read_int32() {
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t v, read_uint(4));
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
}

Result<std::uint32_t> Decoder::read_uint32() {
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t v, read_uint(4));
  return static_cast<std::uint32_t>(v);
}

Result<std::int64_t> Decoder::read_int64() {
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t v, read_uint(8));
  return static_cast<std::int64_t>(v);
}

Result<std::uint64_t> Decoder::read_uint64() { return read_uint(8); }

Result<float> Decoder::read_float() {
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t v, read_uint(4));
  const auto bits = static_cast<std::uint32_t>(v);
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

Result<double> Decoder::read_double() {
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t bits, read_uint(8));
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

Result<std::string> Decoder::read_string() {
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t len, read_uint32());
  if (len == 0) return error(Errc::kMalformedMessage, "CDR string length 0");
  if (remaining() < len) return error(Errc::kMalformedMessage, "truncated CDR string");
  if (data_[offset_ + len - 1] != 0) {
    return error(Errc::kMalformedMessage, "CDR string missing NUL");
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_), len - 1);
  offset_ += len;
  return out;
}

Result<Bytes> Decoder::read_bytes() {
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t len, read_uint32());
  return read_raw(len);
}

Result<Bytes> Decoder::read_raw(std::size_t n) {
  if (remaining() < n) return error(Errc::kMalformedMessage, "truncated CDR bytes");
  BufStats::note_copy(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

Result<BufView> Decoder::read_bytes_view() {
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t len, read_uint32());
  return read_raw_view(len);
}

Result<BufView> Decoder::read_raw_view(std::size_t n) {
  if (remaining() < n) return error(Errc::kMalformedMessage, "truncated CDR bytes");
  BufView out = owner_.slice(offset_, n);
  offset_ += n;
  return out;
}

}  // namespace itdos::cdr
