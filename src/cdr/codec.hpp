// CORBA Common Data Representation (CDR) encoder/decoder.
//
// CDR is byte-order-tagged: a message is marshalled in the *sender's* native
// byte order and the receiver swaps if needed. This is exactly why the paper
// cannot vote byte-by-byte across heterogeneous replicas (§3.6): two correct
// replicas of different endianness produce different marshalled bytes for
// the same value. Both byte orders are first-class here so tests and benches
// can construct genuinely heterogeneous replica populations.
//
// Alignment follows CDR: every primitive is aligned to its own size,
// measured from the start of the encapsulation.
#pragma once

#include <cstdint>
#include <string>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"

namespace itdos::cdr {

enum class ByteOrder : std::uint8_t { kBigEndian = 0, kLittleEndian = 1 };

/// The byte order this build's CPU uses (for "native" marshalling).
ByteOrder native_byte_order();

class Encoder {
 public:
  /// With an arena, the marshal buffer is a recycled chunk and take_view()
  /// seals it back into that arena — the single-marshal-step discipline.
  explicit Encoder(ByteOrder order = native_byte_order(), Arena* arena = nullptr)
      : order_(order), arena_(arena) {
    if (arena_) buffer_ = arena_->acquire();
  }

  ByteOrder order() const { return order_; }

  void write_octet(std::uint8_t v);
  void write_boolean(bool v) { write_octet(v ? 1 : 0); }
  void write_int16(std::int16_t v) { write_uint(static_cast<std::uint16_t>(v), 2); }
  void write_uint16(std::uint16_t v) { write_uint(v, 2); }
  void write_int32(std::int32_t v) { write_uint(static_cast<std::uint32_t>(v), 4); }
  void write_uint32(std::uint32_t v) { write_uint(v, 4); }
  void write_int64(std::int64_t v) { write_uint(static_cast<std::uint64_t>(v), 8); }
  void write_uint64(std::uint64_t v) { write_uint(v, 8); }
  void write_float(float v);
  void write_double(double v);

  /// CDR string: uint32 length including NUL, chars, NUL.
  void write_string(std::string_view s);

  /// Counted byte sequence: uint32 length, raw bytes.
  void write_bytes(ByteView b);

  /// Raw bytes, no length prefix, no alignment (already-encoded blobs).
  void write_raw(ByteView b);

  /// Pads to `alignment` (power of two) from encapsulation start.
  void align(std::size_t alignment);

  const Bytes& buffer() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

  /// Seals the marshalled bytes into an immutable view without copying.
  BufView take_view() {
    return arena_ ? arena_->seal(std::move(buffer_)) : BufView(std::move(buffer_));
  }

  std::size_t size() const { return buffer_.size(); }

 private:
  void write_uint(std::uint64_t v, std::size_t width);

  ByteOrder order_;
  Arena* arena_;
  Bytes buffer_;
};

class Decoder {
 public:
  /// Decodes a buffer whose contents were written with `order`. The caller
  /// keeps `data` alive for the decoder's lifetime; views returned by the
  /// *_view readers borrow it too.
  Decoder(ByteView data, ByteOrder order)
      : owner_(BufView::borrow(data)), data_(data), order_(order) {}

  /// Decodes a refcounted view; *_view readers return sub-views that keep
  /// the underlying chunk alive on their own.
  Decoder(const BufView& data, ByteOrder order)
      : owner_(data), data_(owner_.bytes()), order_(order) {}

  /// Lvalue byte vectors are borrowed (caller keeps them alive); rvalues are
  /// adopted so views decoded from a temporary stay valid.
  Decoder(const Bytes& data, ByteOrder order) : Decoder(ByteView(data), order) {}
  Decoder(Bytes&& data, ByteOrder order) : Decoder(BufView(std::move(data)), order) {}

  ByteOrder order() const { return order_; }
  std::size_t remaining() const { return data_.size() - offset_; }
  std::size_t offset() const { return offset_; }
  bool exhausted() const { return remaining() == 0; }

  Result<std::uint8_t> read_octet();
  Result<bool> read_boolean();
  Result<std::int16_t> read_int16();
  Result<std::uint16_t> read_uint16();
  Result<std::int32_t> read_int32();
  Result<std::uint32_t> read_uint32();
  Result<std::int64_t> read_int64();
  Result<std::uint64_t> read_uint64();
  Result<float> read_float();
  Result<double> read_double();
  Result<std::string> read_string();
  Result<Bytes> read_bytes();

  /// Reads `n` raw bytes without alignment.
  Result<Bytes> read_raw(std::size_t n);

  /// Counted byte sequence as a zero-copy sub-view of the decoded buffer
  /// (shares the chunk when the decoder was built from a BufView).
  Result<BufView> read_bytes_view();

  /// `n` raw bytes as a zero-copy sub-view, no alignment.
  Result<BufView> read_raw_view(std::size_t n);

  /// Skips padding to `alignment` from buffer start.
  Status align(std::size_t alignment);

 private:
  Result<std::uint64_t> read_uint(std::size_t width);

  BufView owner_;
  ByteView data_;
  ByteOrder order_;
  std::size_t offset_ = 0;
};

}  // namespace itdos::cdr
