#include "cdr/value.hpp"

#include <sstream>

namespace itdos::cdr {

std::string_view type_kind_name(TypeKind k) {
  switch (k) {
    case TypeKind::kVoid: return "void";
    case TypeKind::kBoolean: return "boolean";
    case TypeKind::kOctet: return "octet";
    case TypeKind::kInt32: return "int32";
    case TypeKind::kInt64: return "int64";
    case TypeKind::kFloat: return "float";
    case TypeKind::kDouble: return "double";
    case TypeKind::kString: return "string";
    case TypeKind::kSequence: return "sequence";
    case TypeKind::kStruct: return "struct";
  }
  return "<?>";
}

Field::Field(std::string n, Value v) : name(std::move(n)) {
  value.push_back(std::move(v));
}

bool Field::operator==(const Field& other) const {
  return name == other.name && value == other.value;
}

Value Value::sequence(std::vector<Value> elems) {
  return Value(SequenceBox{std::move(elems)});
}

Value Value::structure(std::vector<Field> fields) {
  return Value(StructBox{std::move(fields)});
}

TypeKind Value::kind() const {
  return static_cast<TypeKind>(data_.index());
}

const std::vector<Value>& Value::elements() const {
  return std::get<SequenceBox>(data_).elems;
}

const std::vector<Field>& Value::fields() const {
  return std::get<StructBox>(data_).fields;
}

Result<Value> Value::field(std::string_view name) const {
  if (kind() != TypeKind::kStruct) {
    return error(Errc::kInvalidArgument, "field() on non-struct value");
  }
  for (const Field& f : fields()) {
    if (f.name == name) return f.get();
  }
  return error(Errc::kNotFound, "no struct field named " + std::string(name));
}

bool Value::operator==(const Value& other) const { return data_ == other.data_; }

void Value::marshal(Encoder& enc) const {
  enc.write_octet(static_cast<std::uint8_t>(kind()));
  switch (kind()) {
    case TypeKind::kVoid:
      break;
    case TypeKind::kBoolean:
      enc.write_boolean(as_boolean());
      break;
    case TypeKind::kOctet:
      enc.write_octet(as_octet());
      break;
    case TypeKind::kInt32:
      enc.write_int32(as_int32());
      break;
    case TypeKind::kInt64:
      enc.write_int64(as_int64());
      break;
    case TypeKind::kFloat:
      enc.write_float(as_float32());
      break;
    case TypeKind::kDouble:
      enc.write_double(as_float64());
      break;
    case TypeKind::kString:
      enc.write_string(as_string());
      break;
    case TypeKind::kSequence: {
      enc.write_uint32(static_cast<std::uint32_t>(elements().size()));
      for (const Value& e : elements()) e.marshal(enc);
      break;
    }
    case TypeKind::kStruct: {
      enc.write_uint32(static_cast<std::uint32_t>(fields().size()));
      for (const Field& f : fields()) {
        enc.write_string(f.name);
        f.get().marshal(enc);
      }
      break;
    }
  }
}

Result<Value> Value::unmarshal(Decoder& dec, int max_depth) {
  if (max_depth <= 0) {
    return error(Errc::kMalformedMessage, "CDR value nesting too deep");
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t tag, dec.read_octet());
  if (tag > static_cast<std::uint8_t>(TypeKind::kStruct)) {
    return error(Errc::kMalformedMessage, "unknown CDR type tag");
  }
  switch (static_cast<TypeKind>(tag)) {
    case TypeKind::kVoid:
      return Value::void_();
    case TypeKind::kBoolean: {
      ITDOS_ASSIGN_OR_RETURN(bool v, dec.read_boolean());
      return Value::boolean(v);
    }
    case TypeKind::kOctet: {
      ITDOS_ASSIGN_OR_RETURN(std::uint8_t v, dec.read_octet());
      return Value::octet(v);
    }
    case TypeKind::kInt32: {
      ITDOS_ASSIGN_OR_RETURN(std::int32_t v, dec.read_int32());
      return Value::int32(v);
    }
    case TypeKind::kInt64: {
      ITDOS_ASSIGN_OR_RETURN(std::int64_t v, dec.read_int64());
      return Value::int64(v);
    }
    case TypeKind::kFloat: {
      ITDOS_ASSIGN_OR_RETURN(float v, dec.read_float());
      return Value::float32(v);
    }
    case TypeKind::kDouble: {
      ITDOS_ASSIGN_OR_RETURN(double v, dec.read_double());
      return Value::float64(v);
    }
    case TypeKind::kString: {
      ITDOS_ASSIGN_OR_RETURN(std::string v, dec.read_string());
      return Value::string(std::move(v));
    }
    case TypeKind::kSequence: {
      ITDOS_ASSIGN_OR_RETURN(std::uint32_t count, dec.read_uint32());
      if (count > dec.remaining()) {
        return error(Errc::kMalformedMessage, "CDR sequence count exceeds buffer");
      }
      std::vector<Value> elems;
      elems.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ITDOS_ASSIGN_OR_RETURN(Value e, unmarshal(dec, max_depth - 1));
        elems.push_back(std::move(e));
      }
      return Value::sequence(std::move(elems));
    }
    case TypeKind::kStruct: {
      ITDOS_ASSIGN_OR_RETURN(std::uint32_t count, dec.read_uint32());
      if (count > dec.remaining()) {
        return error(Errc::kMalformedMessage, "CDR struct count exceeds buffer");
      }
      std::vector<Field> fields;
      fields.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ITDOS_ASSIGN_OR_RETURN(std::string name, dec.read_string());
        ITDOS_ASSIGN_OR_RETURN(Value v, unmarshal(dec, max_depth - 1));
        fields.emplace_back(std::move(name), std::move(v));
      }
      return Value::structure(std::move(fields));
    }
  }
  return error(Errc::kInternal, "unreachable CDR tag");
}

Bytes Value::encode(ByteOrder order) const {
  Encoder enc(order);
  marshal(enc);
  return enc.take();
}

Result<Value> Value::decode(ByteView data, ByteOrder order) {
  Decoder dec(data, order);
  ITDOS_ASSIGN_OR_RETURN(Value v, unmarshal(dec));
  if (!dec.exhausted()) {
    return error(Errc::kMalformedMessage, "trailing bytes after CDR value");
  }
  return v;
}

std::string Value::to_string() const {
  std::ostringstream out;
  switch (kind()) {
    case TypeKind::kVoid:
      out << "void";
      break;
    case TypeKind::kBoolean:
      out << (as_boolean() ? "true" : "false");
      break;
    case TypeKind::kOctet:
      out << "0x" << std::hex << static_cast<int>(as_octet());
      break;
    case TypeKind::kInt32:
      out << as_int32();
      break;
    case TypeKind::kInt64:
      out << as_int64();
      break;
    case TypeKind::kFloat:
      out << as_float32() << 'f';
      break;
    case TypeKind::kDouble:
      out << as_float64();
      break;
    case TypeKind::kString:
      out << '"' << as_string() << '"';
      break;
    case TypeKind::kSequence: {
      out << '[';
      bool first = true;
      for (const Value& e : elements()) {
        if (!first) out << ", ";
        first = false;
        out << e.to_string();
      }
      out << ']';
      break;
    }
    case TypeKind::kStruct: {
      out << '{';
      bool first = true;
      for (const Field& f : fields()) {
        if (!first) out << ", ";
        first = false;
        out << f.name << ": " << f.get().to_string();
      }
      out << '}';
      break;
    }
  }
  return out.str();
}

std::size_t Value::node_count() const {
  std::size_t count = 1;
  if (kind() == TypeKind::kSequence) {
    for (const Value& e : elements()) count += e.node_count();
  } else if (kind() == TypeKind::kStruct) {
    for (const Field& f : fields()) count += f.get().node_count();
  }
  return count;
}

}  // namespace itdos::cdr
