// Safety and liveness oracles for fault-injected runs.
//
// The oracle watches the system through the hooks the protocol layers expose
// (execution observers, vote audits, expulsion observers) and records a
// Violation the moment an invariant breaks:
//
//   * kExecutionDivergence — two watched (correct) replicas of the same BFT
//     group executed different request digests at the same sequence number
//     (the paper's core safety property; Castro-Liskov §4);
//   * kVoteUnderSupported — a voted reply was delivered with fewer than f+1
//     matching ballots (§3.6's decision rule);
//   * kExpelledRejoined — an element the GM expelled shows up as active
//     again (§3.5/§3.6: rekey "keys them out of all communication groups");
//   * kLiveness — a correct client's request did not complete even though
//     all injected faults healed (liveness-under-quiescence);
//   * kRecoveryDeadline — a recovery cycle overran its time budget, or a
//     domain that started recovering never returned to full 3f+1 strength
//     (the window-of-vulnerability stayed open, DESIGN.md §6d);
//   * kRecoveryOverlap — more than the budgeted one element of a domain was
//     mid-recovery at once (recovery itself must not weaken the domain);
//   * kMembershipEpochRegression — a domain's membership epoch failed to
//     strictly increase across admissions (stale identities would be
//     accepted again).
//
// Each violation is also recorded through the telemetry Tracer
// (kOracleViolation), so a failing run dumps a causal JSONL forensic trail.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bft/replica.hpp"
#include "itdos/group_manager.hpp"
#include "itdos/smiop.hpp"
#include "recovery/recovery_manager.hpp"

namespace itdos::fault {

struct Violation {
  enum class Kind : std::uint64_t {
    kExecutionDivergence = 1,
    kVoteUnderSupported = 2,
    kExpelledRejoined = 3,
    kLiveness = 4,
    kRecoveryDeadline = 5,
    kRecoveryOverlap = 6,
    kMembershipEpochRegression = 7,
  };

  Kind kind{};
  NodeId node{};       // the node where the violation surfaced
  std::uint64_t a = 0; // kind-specific (seq / support / element / missing)
  std::uint64_t b = 0;
  std::string detail;
};

std::string_view violation_kind_name(Violation::Kind kind);

class Oracle {
 public:
  explicit Oracle(telemetry::Hub& hub) : tel_(&hub) {}

  // --- wiring (install before driving the simulation) ---

  /// Watches a CORRECT replica of BFT group `group` (distinct deployments —
  /// e.g. the GM domain vs. a server domain — use distinct group ids).
  /// Faulty replicas must NOT be watched: the invariant only binds correct
  /// ones.
  void watch_replica(int group, bft::Replica& replica);

  /// Audits every vote the party's connection voters decide.
  void watch_party(core::SmiopParty& party);

  /// Records expulsions ordered by this GM element's state machine.
  void watch_gm(core::GmElement& gm);

  /// Learns the f-exhaustion / window-of-vulnerability invariants from a
  /// recovery manager: per-completion deadline (the manager's full retry
  /// budget), at most one element per domain mid-recovery, and strictly
  /// increasing membership epochs.
  void watch_recovery(recovery::RecoveryManager& manager);

  // --- direct feeds (what the hooks above call; public for unit tests) ---

  /// Records that `node` (a watched, correct replica of `group`) executed
  /// `digest` at `seq`; flags divergence from earlier executions.
  void note_execution(int group, NodeId node, SeqNum seq,
                      const bft::Digest& digest);

  /// Audits one decided vote against the f+1-support rule.
  void note_vote(NodeId node, ConnectionId conn, RequestId rid, int f,
                 const core::VoteDecision& decision);

  // --- final checks (run after the simulation settles) ---

  /// Every correct-client request must have completed once faults healed.
  void check_liveness(std::size_t completed, std::size_t expected);

  /// Every recorded expulsion must still hold in the GM's final state.
  void check_expulsions(const core::GmStateMachine& gm);

  /// Every domain that started recovering must be back at full 3f+1
  /// strength in the GM's final state (window of vulnerability closed).
  void check_membership(const core::GmStateMachine& gm,
                        const core::SystemDirectory& directory);

  // --- results ---

  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

  /// One line per violation plus the full causal trace — the forensic
  /// artifact a failing scenario dumps.
  std::string forensic_report() const;

 private:
  void report(Violation violation);

  telemetry::Hub* tel_;
  std::vector<Violation> violations_;
  void note_recovery(const recovery::RecoveryEvent& event);

  // group -> seq -> first digest executed by any watched replica.
  std::map<int, std::map<std::uint64_t, bft::Digest>> executions_;
  std::vector<std::pair<DomainId, NodeId>> expulsions_seen_;

  // Recovery bookkeeping (watch_recovery).
  std::int64_t recovery_budget_ns_ = 0;        // full multi-attempt budget
  std::map<DomainId, int> recovering_now_;     // concurrent recoveries
  std::map<DomainId, std::uint64_t> last_epoch_seen_;
  std::set<DomainId> recovery_domains_;        // domains with >=1 kStarted
};

}  // namespace itdos::fault
