// Safety and liveness oracles for fault-injected runs.
//
// The oracle watches the system through the hooks the protocol layers expose
// (execution observers, vote audits, expulsion observers) and records a
// Violation the moment an invariant breaks:
//
//   * kExecutionDivergence — two watched (correct) replicas of the same BFT
//     group executed different request digests at the same sequence number
//     (the paper's core safety property; Castro-Liskov §4);
//   * kVoteUnderSupported — a voted reply was delivered with fewer than f+1
//     matching ballots (§3.6's decision rule);
//   * kExpelledRejoined — an element the GM expelled shows up as active
//     again (§3.5/§3.6: rekey "keys them out of all communication groups");
//   * kLiveness — a correct client's request did not complete even though
//     all injected faults healed (liveness-under-quiescence).
//
// Each violation is also recorded through the telemetry Tracer
// (kOracleViolation), so a failing run dumps a causal JSONL forensic trail.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "bft/replica.hpp"
#include "itdos/group_manager.hpp"
#include "itdos/smiop.hpp"

namespace itdos::fault {

struct Violation {
  enum class Kind : std::uint64_t {
    kExecutionDivergence = 1,
    kVoteUnderSupported = 2,
    kExpelledRejoined = 3,
    kLiveness = 4,
  };

  Kind kind{};
  NodeId node{};       // the node where the violation surfaced
  std::uint64_t a = 0; // kind-specific (seq / support / element / missing)
  std::uint64_t b = 0;
  std::string detail;
};

std::string_view violation_kind_name(Violation::Kind kind);

class Oracle {
 public:
  explicit Oracle(telemetry::Hub& hub) : tel_(&hub) {}

  // --- wiring (install before driving the simulation) ---

  /// Watches a CORRECT replica of BFT group `group` (distinct deployments —
  /// e.g. the GM domain vs. a server domain — use distinct group ids).
  /// Faulty replicas must NOT be watched: the invariant only binds correct
  /// ones.
  void watch_replica(int group, bft::Replica& replica);

  /// Audits every vote the party's connection voters decide.
  void watch_party(core::SmiopParty& party);

  /// Records expulsions ordered by this GM element's state machine.
  void watch_gm(core::GmElement& gm);

  // --- direct feeds (what the hooks above call; public for unit tests) ---

  /// Records that `node` (a watched, correct replica of `group`) executed
  /// `digest` at `seq`; flags divergence from earlier executions.
  void note_execution(int group, NodeId node, SeqNum seq,
                      const bft::Digest& digest);

  /// Audits one decided vote against the f+1-support rule.
  void note_vote(NodeId node, ConnectionId conn, RequestId rid, int f,
                 const core::VoteDecision& decision);

  // --- final checks (run after the simulation settles) ---

  /// Every correct-client request must have completed once faults healed.
  void check_liveness(std::size_t completed, std::size_t expected);

  /// Every recorded expulsion must still hold in the GM's final state.
  void check_expulsions(const core::GmStateMachine& gm);

  // --- results ---

  const std::vector<Violation>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

  /// One line per violation plus the full causal trace — the forensic
  /// artifact a failing scenario dumps.
  std::string forensic_report() const;

 private:
  void report(Violation violation);

  telemetry::Hub* tel_;
  std::vector<Violation> violations_;
  // group -> seq -> first digest executed by any watched replica.
  std::map<int, std::map<std::uint64_t, bft::Digest>> executions_;
  std::vector<std::pair<DomainId, NodeId>> expulsions_seen_;
};

}  // namespace itdos::fault
