#include "fault/injector.hpp"

namespace itdos::fault {

FaultInjector::FaultInjector(net::Network& net, FaultPlan plan)
    : net_(net),
      plan_(std::move(plan)),
      rng_(plan_.seed ^ 0xfa0175c0de5eedULL),
      tel_(&net.sim().telemetry()) {
  auto& reg = tel_->metrics();
  injected_ = &reg.counter("fault.injected");
  dropped_ = &reg.counter("fault.dropped");
  delayed_ = &reg.counter("fault.delayed");
  duplicated_ = &reg.counter("fault.duplicated");
  corrupted_ = &reg.counter("fault.corrupted");
}

FaultInjector::~FaultInjector() {
  for (NodeId node : intercepted_) net_.set_interceptor(node, nullptr);
}

void FaultInjector::trace_inject(NodeId node, InjectKind kind,
                                 std::uint64_t detail) {
  injected_->inc();
  tel_->trace(telemetry::TraceKind::kFaultInject, node, 0,
              static_cast<std::uint64_t>(kind), detail);
}

void FaultInjector::ensure_intercepted(NodeId node) {
  if (intercepted_.insert(node).second) {
    net_.set_interceptor(node, [this](const net::Packet& packet) {
      return intercept(packet);
    });
  }
}

void FaultInjector::arm_links() {
  for (const LinkFault& fault : plan_.link_faults) {
    ensure_intercepted(fault.from_node);
  }
  for (const PartitionWindow& window : plan_.partitions) {
    net_.sim().schedule_at(window.form, [this, &window] {
      net_.partition(window.side_a, window.side_b);
      trace_inject(*window.side_a.begin(), InjectKind::kPartitionForm,
                   window.side_b.size());
    });
    net_.sim().schedule_at(window.heal, [this, &window] {
      // Restore only the pairs this window cut — other injected cuts (or
      // test-made ones) must survive an unrelated heal.
      for (NodeId a : window.side_a) {
        for (NodeId b : window.side_b) net_.set_link(a, b, true);
      }
      trace_inject(*window.side_a.begin(), InjectKind::kPartitionHeal,
                   window.side_b.size());
    });
  }
}

std::optional<BufView> FaultInjector::intercept(const net::Packet& packet) {
  if (reinjecting_) return packet.payload;  // our own delayed/dup view
  const SimTime now = net_.sim().now();
  for (const AdaptiveState& st : adaptive_) {
    if (st.target.value == 0 || !st.targets.contains(packet.from) ||
        !st.spec.window.contains(now)) {
      continue;
    }
    if (st.spec.drop > 0.0 && rng_.chance(st.spec.drop)) {
      dropped_->inc();
      trace_inject(packet.from, InjectKind::kDrop, packet.to.value);
      return std::nullopt;
    }
    if (st.spec.delay_probability > 0.0 &&
        rng_.chance(st.spec.delay_probability)) {
      const std::int64_t lag =
          rng_.next_in(st.spec.delay_min_ns, st.spec.delay_max_ns);
      const NodeId from = packet.from;
      const NodeId to = packet.to;
      const BufView payload = packet.payload;
      net_.sim().schedule_after(lag, [this, from, to, payload] {
        reinjecting_ = true;
        net_.send(from, to, payload);
        reinjecting_ = false;
      });
      delayed_->inc();
      trace_inject(packet.from, InjectKind::kDelay,
                   static_cast<std::uint64_t>(lag));
      return std::nullopt;
    }
  }
  for (const LinkFault& fault : plan_.link_faults) {
    if (!fault.applies_to(packet.from, packet.to, now)) continue;
    // Copy-on-write: the sealed payload is shared with other recipients, so
    // corruption clones it (counted) and everything else passes the view.
    BufView payload = packet.payload;
    if (fault.corrupt > 0.0 && !payload.empty() && rng_.chance(fault.corrupt)) {
      Bytes mutated = payload.clone_bytes();
      const std::size_t index = rng_.next_below(mutated.size());
      mutated[index] ^= static_cast<std::uint8_t>(1 + rng_.next_below(255));
      payload = BufView(std::move(mutated));
      corrupted_->inc();
      trace_inject(packet.from, InjectKind::kCorrupt, packet.to.value);
    }
    if (fault.drop > 0.0 && rng_.chance(fault.drop)) {
      dropped_->inc();
      trace_inject(packet.from, InjectKind::kDrop, packet.to.value);
      return std::nullopt;
    }
    if (fault.duplicate > 0.0 && rng_.chance(fault.duplicate)) {
      const std::int64_t lag = rng_.next_in(micros(10), micros(500));
      const NodeId from = packet.from;
      const NodeId to = packet.to;
      net_.sim().schedule_after(lag, [this, from, to, payload] {
        reinjecting_ = true;
        net_.send(from, to, payload);
        reinjecting_ = false;
      });
      duplicated_->inc();
      trace_inject(packet.from, InjectKind::kDuplicate, packet.to.value);
    }
    if (fault.delay_probability > 0.0 && rng_.chance(fault.delay_probability)) {
      const std::int64_t lag = rng_.next_in(fault.delay_min_ns, fault.delay_max_ns);
      const NodeId from = packet.from;
      const NodeId to = packet.to;
      net_.sim().schedule_after(lag, [this, from, to, payload] {
        reinjecting_ = true;
        net_.send(from, to, payload);
        reinjecting_ = false;
      });
      delayed_->inc();
      trace_inject(packet.from, InjectKind::kDelay,
                   static_cast<std::uint64_t>(lag));
      return std::nullopt;  // the original is held back, not lost
    }
    return payload;  // first matching fault wins
  }
  return packet.payload;
}

void FaultInjector::arm_replica(const ReplicaFault& fault,
                                bft::Replica& replica) {
  bft::Replica::ByzantineHooks hooks;
  hooks.silent = fault.silent;
  hooks.corrupt_macs = fault.corrupt_macs;
  hooks.equivocate = fault.equivocate;
  bft::Replica* target = &replica;
  net_.sim().schedule_at(fault.window.from, [this, target, hooks] {
    target->set_byzantine(hooks);
    trace_inject(target->id(), InjectKind::kByzantineOn,
                 (hooks.silent ? 1u : 0u) | (hooks.corrupt_macs ? 2u : 0u) |
                     (hooks.equivocate ? 4u : 0u));
  });
  if (fault.window.bounded()) {
    net_.sim().schedule_at(fault.window.until, [this, target] {
      target->set_byzantine({});
      trace_inject(target->id(), InjectKind::kByzantineOff, 0);
    });
  }
  if (fault.stale_replay_period_ns > 0) {
    const SimTime end =
        fault.window.bounded() ? fault.window.until : plan_.heal_time;
    for (SimTime t{fault.window.from.ns + fault.stale_replay_period_ns};
         t.ns < end.ns; t.ns += fault.stale_replay_period_ns) {
      net_.sim().schedule_at(t, [target] { target->replay_stale_view_change(); });
    }
  }
}

void FaultInjector::arm_element(const ElementFault& fault,
                                core::ItdosSystem& system, DomainId domain) {
  core::ItdosSystem* sys = &system;
  const ElementFault spec = fault;
  net_.sim().schedule_at(fault.at, [this, sys, domain, spec] {
    core::DomainElement& element = sys->element(domain, spec.rank);
    switch (spec.kind) {
      case ElementFault::Kind::kDissentingReplies:
        element.set_reply_mutator([](cdr::ReplyMessage reply) {
          reply.result = cdr::Value::int64(-666);
          return reply;
        });
        break;
      case ElementFault::Kind::kCorruptStateBundles:
        element.set_bundle_corruptor([](Bytes plain) {
          // MAC-valid wrong content: the seal happens after this hook, so
          // only the joining element's f+1 byte-identical-offers rule can
          // reject the bundle.
          if (!plain.empty()) plain[plain.size() / 2] ^= 0x5a;
          return plain;
        });
        break;
      case ElementFault::Kind::kBogusChangeRequests: {
        // Frame a correct element. The reporter claims its (replicated)
        // domain, so the GM's f+1-matching-reports rule applies — one rogue
        // reporter must never reach the expulsion threshold.
        core::ChangeRequestMsg frame;
        frame.reporter = element.smiop_node();
        frame.reporter_domain = domain;
        frame.accused_domain = domain;
        frame.accused_element = sys->element(domain, spec.victim_rank).smiop_node();
        frame.conn = ConnectionId(1);
        frame.rid = RequestId(1);
        element.party().send_change_request(frame);
        break;
      }
    }
    trace_inject(element.smiop_node(), InjectKind::kElementFault,
                 static_cast<std::uint64_t>(spec.kind));
  });
}

void FaultInjector::arm_client(const ClientFault& fault,
                               core::ItdosClient& client) {
  core::ItdosClient* target = &client;
  const ClientFault spec = fault;
  net_.sim().schedule_at(fault.at, [this, target, spec] {
    switch (spec.kind) {
      case ClientFault::Kind::kDuplicateRequests:
        target->party().set_misbehavior(/*duplicate=*/true, /*replay=*/false);
        break;
      case ClientFault::Kind::kReplayStaleFrames:
        target->party().set_misbehavior(/*duplicate=*/false, /*replay=*/true);
        break;
    }
    trace_inject(target->smiop_node(), InjectKind::kClientFault,
                 static_cast<std::uint64_t>(spec.kind));
  });
}

void FaultInjector::arm_adaptive(const AdaptiveFault& fault,
                                 core::ItdosSystem& system, DomainId domain) {
  AdaptiveState state;
  state.spec = fault;
  state.domain = domain;
  state.system = &system;
  adaptive_.push_back(state);
  const std::size_t index = adaptive_.size() - 1;
  // Interceptors must exist before the first packet the adversary might
  // touch; cover every current element now, fresh identities on retarget.
  if (const core::DomainInfo* info = system.directory().find_domain(domain)) {
    for (NodeId node : info->smiop_nodes()) ensure_intercepted(node);
  }
  net_.sim().schedule_at(fault.window.from,
                         [this, index] { adaptive_tick(index); });
}

void FaultInjector::adaptive_tick(std::size_t index) {
  AdaptiveState& st = adaptive_[index];
  const SimTime now = net_.sim().now();
  if (!st.spec.window.contains(now)) {
    st.target = NodeId();  // stand down once the window closes
    return;
  }
  const core::DomainInfo* info = st.system->directory().find_domain(st.domain);
  if (info != nullptr) {
    // Deepest replicated queue wins; ties go to the lowest rank (the first
    // strictly-greater rule below). Identities come from the LIVE directory,
    // so a mid-run replacement is immediately targetable.
    NodeId best;
    NodeId best_bft;
    std::int64_t best_depth = -1;
    const auto& gauges = tel_->metrics().gauges();
    for (const core::ElementInfo& element : info->elements) {
      std::int64_t depth = 0;
      const auto it =
          gauges.find("queue." + element.smiop_node.to_string() + ".depth");
      if (it != gauges.end()) depth = it->second.value();
      if (depth > best_depth) {
        best_depth = depth;
        best = element.smiop_node;
        best_bft = element.bft_node;
      }
    }
    if (best.value != 0 && best != st.target) {
      st.target = best;
      st.targets = {best, best_bft};
      ensure_intercepted(best);
      ensure_intercepted(best_bft);
      ++retargets_;
      tel_->trace(telemetry::TraceKind::kAdversaryRetarget, best, 0, best.value,
                  static_cast<std::uint64_t>(best_depth));
    }
  }
  net_.sim().schedule_after(st.spec.interval_ns,
                            [this, index] { adaptive_tick(index); });
}

void FaultInjector::arm_gm(const GmFault& fault, core::ItdosSystem& system) {
  core::ItdosSystem* sys = &system;
  const GmFault spec = fault;
  net_.sim().schedule_at(fault.at, [this, sys, spec] {
    core::GmElement& gm = sys->gm_element(spec.index);
    if (spec.withhold_shares) gm.set_withhold_shares(true);
    if (spec.corrupt_shares) gm.set_corrupt_shares(true);
    trace_inject(gm.replica().id(), InjectKind::kGmFault,
                 (spec.withhold_shares ? 1u : 0u) |
                     (spec.corrupt_shares ? 2u : 0u));
  });
}

}  // namespace itdos::fault
