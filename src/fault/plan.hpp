// Declarative, seed-deterministic fault schedules (the adversary's script).
//
// A FaultPlan says WHAT goes wrong and WHEN, in simulated time: lossy /
// slow / duplicating / corrupting links, partition windows that form and
// heal, and Byzantine behaviors activated per BFT replica, ITDOS element or
// Group Manager element. fault::FaultInjector turns the plan into network
// interceptors and scheduled events; fault::Oracle checks that the system
// upholds the paper's safety and liveness guarantees under it.
//
// Everything is driven by the plan's own Rng stream, so a (scenario, seed)
// pair replays byte-identically — the trace JSONL of a faulty run is itself
// a regression artifact (see src/telemetry/trace.hpp).
#pragma once

#include <limits>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace itdos::fault {

/// Half-open activity window in simulated time: [from, until).
struct TimeWindow {
  SimTime from{0};
  SimTime until{std::numeric_limits<std::int64_t>::max()};

  bool contains(SimTime t) const { return t.ns >= from.ns && t.ns < until.ns; }
  bool bounded() const {
    return until.ns != std::numeric_limits<std::int64_t>::max();
  }
};

/// Degrades traffic a node emits (optionally only toward one peer) while the
/// window is open. Effects compose per packet: corruption mutates the
/// payload, then the drop/duplicate/delay dice roll independently.
struct LinkFault {
  NodeId from_node;
  std::optional<NodeId> to_node;  // nullopt: every destination
  TimeWindow window;
  double drop = 0.0;               // P(packet silently vanishes)
  double duplicate = 0.0;          // P(an extra delayed copy is injected)
  double corrupt = 0.0;            // P(one payload byte is flipped)
  double delay_probability = 0.0;  // P(packet is held back...)
  std::int64_t delay_min_ns = 0;   // ...for a uniform extra delay
  std::int64_t delay_max_ns = 0;

  bool applies_to(NodeId from, NodeId to, SimTime t) const {
    return from == from_node && (!to_node || *to_node == to) &&
           window.contains(t);
  }
};

/// A network partition that forms at `form` and heals at `heal`; while it
/// holds, no packet crosses between side_a and side_b.
struct PartitionWindow {
  std::set<NodeId> side_a;
  std::set<NodeId> side_b;
  SimTime form{0};
  SimTime heal{0};
};

/// Byzantine behaviors for one BFT replica (by rank), active in the window.
/// The behavior set maps onto bft::Replica::ByzantineHooks; stale-view
/// replays additionally fire every `stale_replay_period_ns` inside the
/// window (0 = never).
struct ReplicaFault {
  int rank = 0;
  TimeWindow window;
  bool silent = false;
  bool corrupt_macs = false;
  bool equivocate = false;
  std::int64_t stale_replay_period_ns = 0;
};

/// Byzantine behaviors for one ITDOS domain element (by rank), active from
/// `at` onward (element misbehavior is sticky: detection should expel it).
struct ElementFault {
  enum class Kind {
    kDissentingReplies,     // mutate every reply value (voter must mask it)
    kBogusChangeRequests,   // frame a correct element with forged proof
    kCorruptStateBundles,   // serve corrupt state offers to a joining
                            // replacement (f+1 matching rule must mask it)
  };
  int rank = 0;
  Kind kind = Kind::kDissentingReplies;
  SimTime at{0};
  int victim_rank = 0;  // kBogusChangeRequests: the framed element
};

/// Misbehavior of one compromised singleton client party, active from `at`
/// onward: duplicated ordered submissions and/or replays of previously
/// sealed GIOP frames. Every element must discard both identically (stale
/// rid, §3.6) — a split decision would fork the domain.
struct ClientFault {
  enum class Kind {
    kDuplicateRequests,   // each ordered request submitted twice
    kReplayStaleFrames,   // resubmit the previous sealed frame each round
  };
  int client_index = 0;   // which add_client() party is compromised
  Kind kind = Kind::kDuplicateRequests;
  SimTime at{0};
};

/// Misbehavior of one Group Manager element, active from `at` onward.
struct GmFault {
  int index = 0;
  bool withhold_shares = false;
  bool corrupt_shares = false;
  SimTime at{0};
};

/// An ADAPTIVE adversary: instead of a scripted target, it reads the same
/// live telemetry the §6f feedback controller does (the replicated
/// queue.<node>.depth gauges) every `interval_ns` and re-aims its link
/// degradation at whichever element of the domain currently has the deepest
/// queue — the worst possible victim, since delaying the most-loaded
/// element's traffic compounds its backlog and makes it look like a
/// laggard. Each retarget is traced (adversary.retarget), so the duel
/// between this adversary and the response controller is replayable.
struct AdaptiveFault {
  TimeWindow window;
  std::int64_t interval_ns = millis(50);  // retarget cadence
  // Degradation applied to the current target's OUTBOUND traffic.
  double drop = 0.0;
  double delay_probability = 0.0;
  std::int64_t delay_min_ns = 0;
  std::int64_t delay_max_ns = 0;
};

/// Codes carried in kFaultInject trace events (field `a`).
enum class InjectKind : std::uint64_t {
  kDrop = 1,
  kDelay = 2,
  kDuplicate = 3,
  kCorrupt = 4,
  kPartitionForm = 5,
  kPartitionHeal = 6,
  kByzantineOn = 7,
  kByzantineOff = 8,
  kElementFault = 9,
  kGmFault = 10,
  kClientFault = 11,
  kAdaptiveRetarget = 12,
};

/// The adversary's full script for one run.
struct FaultPlan {
  std::uint64_t seed = 1;  // drives the injector's OWN dice, not the sim's
  std::vector<LinkFault> link_faults;
  std::vector<PartitionWindow> partitions;
  std::vector<ReplicaFault> replica_faults;
  std::vector<ElementFault> element_faults;
  std::vector<GmFault> gm_faults;
  std::vector<ClientFault> client_faults;
  std::vector<AdaptiveFault> adaptive_faults;

  /// When the last injected fault is over: the oracle's liveness check
  /// demands every correct-client request completes after this point.
  SimTime heal_time{0};
};

}  // namespace itdos::fault
