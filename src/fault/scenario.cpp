#include "fault/scenario.hpp"

#include <functional>
#include <set>
#include <stdexcept>

#include "bft/harness.hpp"
#include "control/controller.hpp"
#include "fault/injector.hpp"
#include "itdos/system.hpp"
#include "recovery/proactive.hpp"
#include "shard/bank.hpp"

namespace itdos::fault {
namespace {

// ---------------------------------------------------------------------------
// BFT-cluster scenarios: a 3f+1 replica group ordering counter increments
// while the adversary works the network / individual replicas.
// ---------------------------------------------------------------------------

constexpr int kClusterRequests = 8;

ScenarioResult run_cluster(const std::string& name, std::uint64_t seed,
                           FaultPlan plan, int requests,
                           std::int64_t grace_after_heal,
                           const std::function<void(bft::ClusterOptions&)>& tune = {}) {
  bft::ClusterOptions options;
  options.f = 1;
  options.seed = seed;
  if (tune) tune(options);
  bft::Cluster cluster(options, [](int) {
    return std::make_unique<bft::CounterStateMachine>();
  });

  // Translate replica ranks to node ids now that the cluster exists.
  std::set<int> faulty_ranks;
  for (const ReplicaFault& fault : plan.replica_faults) {
    faulty_ranks.insert(fault.rank);
  }

  FaultInjector injector(cluster.network(), plan);
  injector.arm_links();
  for (const ReplicaFault& fault : injector.plan().replica_faults) {
    injector.arm_replica(fault, cluster.replica(fault.rank));
  }

  Oracle oracle(cluster.sim().telemetry());
  for (int rank = 0; rank < cluster.n(); ++rank) {
    if (!faulty_ranks.contains(rank)) {
      oracle.watch_replica(0, cluster.replica(rank));
    }
  }

  bft::Client& client = cluster.add_client();
  auto completed = std::make_shared<std::size_t>(0);
  for (int i = 0; i < requests; ++i) {
    // The outcome slot outlives this frame via shared_ptr: under faults a
    // completion may fire long after any particular drive step.
    client.invoke(to_bytes("add:1"), [completed](Result<Bytes> result) {
      if (result.is_ok()) ++*completed;
    });
  }

  const SimTime deadline{injector.plan().heal_time.ns + grace_after_heal};
  cluster.sim().run_until(injector.plan().heal_time);
  while (*completed < static_cast<std::size_t>(requests) &&
         cluster.sim().now() < deadline && !cluster.sim().idle()) {
    cluster.sim().run_for(millis(50));
  }
  oracle.check_liveness(*completed, static_cast<std::size_t>(requests));

  const telemetry::Hub& hub = cluster.sim().telemetry();
  ScenarioResult result;
  result.name = name;
  result.seed = seed;
  result.violations = oracle.violations();
  result.requests_sent = static_cast<std::size_t>(requests);
  result.requests_completed = *completed;
  result.view_changes = hub.tracer().count(telemetry::TraceKind::kBftNewView);
  result.trace_jsonl = hub.tracer().export_jsonl();
  return result;
}

std::set<NodeId> cluster_nodes(int f, const std::set<int>& ranks) {
  // bft::Cluster assigns replica node ids 1..3f+1 in rank order.
  std::set<NodeId> nodes;
  for (int rank : ranks) nodes.insert(NodeId(static_cast<std::uint64_t>(rank + 1)));
  (void)f;
  return nodes;
}

FaultPlan all_links_plan(std::uint64_t seed, int n,
                         const std::function<void(LinkFault&)>& configure) {
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{seconds(2)};
  for (int rank = 0; rank < n; ++rank) {
    LinkFault fault;
    fault.from_node = NodeId(static_cast<std::uint64_t>(rank + 1));
    fault.window.until = plan.heal_time;
    configure(fault);
    plan.link_faults.push_back(fault);
  }
  return plan;
}

ScenarioResult scenario_drop_storm(std::uint64_t seed) {
  FaultPlan plan = all_links_plan(seed, 4, [](LinkFault& fault) {
    fault.drop = 0.25;
  });
  return run_cluster("drop_storm", seed, std::move(plan), kClusterRequests,
                     seconds(10));
}

ScenarioResult scenario_delay_spike(std::uint64_t seed) {
  FaultPlan plan = all_links_plan(seed, 4, [](LinkFault& fault) {
    fault.delay_probability = 0.5;
    fault.delay_min_ns = millis(5);
    fault.delay_max_ns = millis(40);
  });
  return run_cluster("delay_spike", seed, std::move(plan), kClusterRequests,
                     seconds(10));
}

ScenarioResult scenario_duplicate_flood(std::uint64_t seed) {
  FaultPlan plan = all_links_plan(seed, 4, [](LinkFault& fault) {
    fault.duplicate = 0.5;
  });
  return run_cluster("duplicate_flood", seed, std::move(plan),
                     kClusterRequests, seconds(10));
}

ScenarioResult scenario_corrupt_link(std::uint64_t seed) {
  // One replica's outbound traffic is bit-flipped half the time; MACs reject
  // the garbage and retransmissions recover the rest.
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{seconds(2)};
  LinkFault fault;
  fault.from_node = NodeId(2);
  fault.corrupt = 0.5;
  fault.window.until = plan.heal_time;
  plan.link_faults.push_back(fault);
  return run_cluster("corrupt_link", seed, std::move(plan), kClusterRequests,
                     seconds(10));
}

ScenarioResult scenario_partition_minority(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{seconds(1)};
  PartitionWindow window;
  window.side_a = cluster_nodes(1, {3});
  window.side_b = cluster_nodes(1, {0, 1, 2});
  window.form = SimTime{0};  // before the first commit, or nothing is stressed
  window.heal = plan.heal_time;
  plan.partitions.push_back(window);
  return run_cluster("partition_minority", seed, std::move(plan),
                     kClusterRequests, seconds(10));
}

ScenarioResult scenario_partition_primary(std::uint64_t seed) {
  // Isolating the view-0 primary forces a view change; requests must still
  // complete once the group re-forms around the new primary.
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{millis(1500)};
  PartitionWindow window;
  window.side_a = cluster_nodes(1, {0});
  window.side_b = cluster_nodes(1, {1, 2, 3});
  window.form = SimTime{0};  // before the first commit, or nothing is stressed
  window.heal = plan.heal_time;
  plan.partitions.push_back(window);
  return run_cluster("partition_primary", seed, std::move(plan),
                     kClusterRequests, seconds(12));
}

ScenarioResult scenario_silent_replica(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};  // nothing heals; f = 1 absorbs the fault
  ReplicaFault fault;
  fault.rank = 3;
  fault.silent = true;
  plan.replica_faults.push_back(fault);
  return run_cluster("silent_replica", seed, std::move(plan),
                     kClusterRequests, seconds(10));
}

ScenarioResult scenario_corrupt_mac_replica(std::uint64_t seed) {
  // A replica whose authenticators never verify is indistinguishable from a
  // silent one to its peers — the quorum math must absorb it.
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};
  ReplicaFault fault;
  fault.rank = 3;
  fault.corrupt_macs = true;
  plan.replica_faults.push_back(fault);
  return run_cluster("corrupt_mac_replica", seed, std::move(plan),
                     kClusterRequests, seconds(10));
}

ScenarioResult scenario_equivocating_primary(std::uint64_t seed) {
  // The view-0 primary sends conflicting pre-prepares per backup; no quorum
  // can form, the view-change timeout fires, and the next primary takes
  // over (Castro-Liskov's documented recovery; DESIGN.md §ordering).
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{seconds(1)};
  ReplicaFault fault;
  fault.rank = 0;
  fault.equivocate = true;
  fault.window.until = plan.heal_time;
  plan.replica_faults.push_back(fault);
  return run_cluster("equivocating_primary", seed, std::move(plan),
                     kClusterRequests, seconds(12));
}

/// Batch-formation + pipelined-agreement knobs for the batched fault
/// scenarios: multi-entry slots with several agreement instances in flight.
void batched_tuning(bft::ClusterOptions& options) {
  options.batch.max_entries = 4;
  options.batch.max_hold_ns = micros(150);
  options.pipeline_depth = 8;
}

ScenarioResult scenario_batch_equivocating_primary(std::uint64_t seed) {
  // Same documented recovery as equivocating_primary, but the lie is now a
  // per-backup mutation of a batch ENTRY (digest recomputed, batch still
  // well-formed): prepare quorums cannot form on conflicting batch digests,
  // the view change fires, and the whole batch is either re-proposed
  // atomically by the next primary or retransmitted by the clients. The
  // oracle asserts no divergent execution and no partial entry survival.
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{seconds(1)};
  ReplicaFault fault;
  fault.rank = 0;
  fault.equivocate = true;
  fault.window.until = plan.heal_time;
  plan.replica_faults.push_back(fault);
  return run_cluster("batch_equivocating_primary", seed, std::move(plan), 16,
                     seconds(12), batched_tuning);
}

ScenarioResult scenario_viewchange_mid_pipeline(std::uint64_t seed) {
  // The view-0 primary is partitioned away AFTER the pipelined batches have
  // entered flight: several uncommitted agreement instances straddle the
  // view change. Every parked and in-flight entry must resurface exactly
  // once under the new primary (re-proposal from prepared proofs or client
  // retransmission after the dedup-horizon reset).
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{millis(1500)};
  PartitionWindow window;
  window.side_a = cluster_nodes(1, {0});
  window.side_b = cluster_nodes(1, {1, 2, 3});
  window.form = SimTime{micros(250)};  // first batches are mid-agreement
  window.heal = plan.heal_time;
  plan.partitions.push_back(window);
  return run_cluster("viewchange_mid_pipeline", seed, std::move(plan), 20,
                     seconds(12), batched_tuning);
}

ScenarioResult scenario_stale_view_replay(std::uint64_t seed) {
  // Phase 1: a brief primary partition forces a real view change, arming
  // every replica with a signed VIEW-CHANGE envelope. Phase 2: replica 2
  // replays its stale envelope every 100ms; correct peers must discard the
  // replays without spurious view changes or lost liveness.
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{seconds(2)};
  PartitionWindow window;
  window.side_a = cluster_nodes(1, {0});
  window.side_b = cluster_nodes(1, {1, 2, 3});
  window.form = SimTime{0};
  window.heal = SimTime{millis(500)};
  plan.partitions.push_back(window);
  ReplicaFault fault;
  fault.rank = 2;
  fault.window.from = SimTime{millis(600)};
  fault.window.until = plan.heal_time;
  fault.stale_replay_period_ns = millis(100);
  plan.replica_faults.push_back(fault);
  return run_cluster("stale_view_replay", seed, std::move(plan),
                     kClusterRequests, seconds(12));
}

// ---------------------------------------------------------------------------
// ITDOS scenarios: the full stack — SMIOP connections, unmarshalled voting,
// Group Manager detection / expulsion / rekey.
// ---------------------------------------------------------------------------

class SumServant : public orb::Servant {
 public:
  std::string interface_name() const override { return "IDL:fault/Sum:1.0"; }
  void dispatch(const std::string&, const cdr::Value& args, orb::ServerContext&,
                orb::ReplySinkPtr sink) override {
    std::int64_t sum = 0;
    for (const auto& v : args.elements()) sum += v.as_int64();
    sink->reply(cdr::Value::int64(sum));
  }
};

/// invoke_sync with a heap-allocated outcome slot: under faults the
/// completion may fire after a timeout return, which must not write into a
/// dead stack frame.
Result<cdr::Value> safe_invoke(core::ItdosSystem& system,
                               core::ItdosClient& client,
                               const orb::ObjectRef& ref,
                               const std::string& operation, cdr::Value args,
                               std::int64_t timeout_ns) {
  auto outcome = std::make_shared<std::optional<Result<cdr::Value>>>();
  client.orb().invoke(ref, operation, std::move(args),
                      [outcome](Result<cdr::Value> r) { *outcome = std::move(r); });
  const SimTime deadline = system.sim().now() + timeout_ns;
  while (!outcome->has_value() && system.sim().now() < deadline) {
    if (!system.sim().step()) break;
  }
  if (!outcome->has_value()) {
    return error(Errc::kUnavailable, "fault-scenario invocation timed out");
  }
  return std::move(**outcome);
}

/// Builds the system first, then asks `build_plan` for the fault plan —
/// plans that target specific endpoints (partitions around an element's
/// SMIOP node, say) need the directory's node-id assignments, which only
/// exist once the deployment is up.
ScenarioResult run_itdos_with(
    const std::string& name, std::uint64_t seed,
    const std::function<FaultPlan(const core::ItdosSystem&, DomainId)>& build_plan,
    int requests) {
  core::SystemOptions options;
  options.seed = seed;
  core::ItdosSystem system(options);
  const DomainId domain = system.add_domain(
      1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
        // Key 1 is free in a freshly built domain; activation cannot fail.
        (void)adapter.activate_with_key(ObjectId(1),
                                        std::make_shared<SumServant>());
      });
  FaultPlan plan = build_plan(system, domain);

  std::set<int> faulty_ranks;
  for (const ElementFault& fault : plan.element_faults) {
    if (fault.kind == ElementFault::Kind::kDissentingReplies) {
      faulty_ranks.insert(fault.rank);
    }
  }

  FaultInjector injector(system.network(), plan);
  injector.arm_links();
  for (const ElementFault& fault : injector.plan().element_faults) {
    injector.arm_element(fault, system, domain);
  }
  for (const GmFault& fault : injector.plan().gm_faults) {
    injector.arm_gm(fault, system);
  }

  Oracle oracle(system.sim().telemetry());
  for (int i = 0; i < system.gm_n(); ++i) {
    oracle.watch_replica(0, system.gm_element(i).replica());
    oracle.watch_gm(system.gm_element(i));
  }
  for (int rank = 0; rank < system.domain_n(domain); ++rank) {
    if (!faulty_ranks.contains(rank)) {
      oracle.watch_replica(1, system.element(domain, rank).replica());
    }
  }

  core::ItdosClient& client = system.add_client();
  oracle.watch_party(client.party());
  const orb::ObjectRef ref =
      system.object_ref(domain, ObjectId(1), "IDL:fault/Sum:1.0");

  std::size_t completed = 0;
  for (int i = 0; i < requests; ++i) {
    const Result<cdr::Value> result = safe_invoke(
        system, client, ref, "add",
        cdr::Value::sequence({cdr::Value::int64(i), cdr::Value::int64(7)}),
        seconds(30));
    if (result.is_ok() && result.value().as_int64() == i + 7) ++completed;
  }
  system.settle();

  oracle.check_liveness(completed, static_cast<std::size_t>(requests));
  oracle.check_expulsions(system.gm_element(0).state());

  const telemetry::Hub& hub = system.sim().telemetry();
  ScenarioResult result;
  result.name = name;
  result.seed = seed;
  result.violations = oracle.violations();
  result.requests_sent = static_cast<std::size_t>(requests);
  result.requests_completed = completed;
  result.expulsions = system.gm_element(0).state().expulsions();
  result.detection = result.expulsions > 0;
  result.rekeys = hub.tracer().count(telemetry::TraceKind::kGmRekey);
  result.view_changes = hub.tracer().count(telemetry::TraceKind::kBftNewView);
  result.trace_jsonl = hub.tracer().export_jsonl();
  return result;
}

ScenarioResult run_itdos(const std::string& name, std::uint64_t seed,
                         FaultPlan plan, int requests) {
  return run_itdos_with(
      name, seed,
      [&plan](const core::ItdosSystem&, DomainId) { return std::move(plan); },
      requests);
}

ScenarioResult scenario_expel_rekey_e2e(std::uint64_t seed) {
  // The paper's §3.6 -> §3.5 pipeline end-to-end: a dissenting element is
  // outvoted, detected from the signed-message proof, expelled, and keyed
  // out by an epoch rekey — all while the client keeps getting right
  // answers.
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};  // misbehavior is sticky; expulsion IS the heal
  ElementFault fault;
  fault.rank = 2;
  fault.kind = ElementFault::Kind::kDissentingReplies;
  plan.element_faults.push_back(fault);
  return run_itdos("expel_rekey_e2e", seed, std::move(plan), 4);
}

ScenarioResult scenario_bogus_change_request(std::uint64_t seed) {
  // One element of a replicated domain files a change_request framing a
  // correct peer. Replicated reporters are only believed at f+1 matching
  // reports (§3.6), so a lone rogue must never trigger an expulsion.
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{millis(100)};
  ElementFault fault;
  fault.rank = 1;
  fault.kind = ElementFault::Kind::kBogusChangeRequests;
  fault.victim_rank = 0;
  fault.at = SimTime{millis(50)};  // after the first connection exists
  plan.element_faults.push_back(fault);
  return run_itdos("bogus_change_request", seed, std::move(plan), 4);
}

ScenarioResult scenario_share_starvation(std::uint64_t seed) {
  // One element's SMIOP endpoint is cut off from every Group Manager
  // element for the whole run, so its connection-key shares never arrive
  // (and neither do the re-sent ones). The element still participates in
  // BFT ordering: it consumes the first sealed request, finds no key, and
  // files an authoritative resend request with the GM (§3.4). The run is
  // long enough (requests >> lag_window) that queue GC eventually declares
  // the stalled element dead and passes its consumption point: its own
  // queue marks virtual synchrony broken, every peer's laggard hook files a
  // change request, and the f+1 matching reports expel it (§3.6) — all
  // while the remaining three elements keep the client fully live. This is
  // the long-horizon scenario: BFT checkpoints, queue GC, laggard
  // detection and the virtual-synchrony break all only appear past ~130
  // ordered entries.
  return run_itdos_with(
      "share_starvation", seed,
      [seed](const core::ItdosSystem& system, DomainId domain) {
        const core::DomainInfo* info = system.directory().find_domain(domain);
        PartitionWindow window;
        window.side_a.insert(info->elements[1].smiop_node);
        for (const core::ElementInfo& gm : system.directory().gm().elements) {
          window.side_b.insert(gm.smiop_node);
        }
        window.form = SimTime{0};
        window.heal = SimTime{seconds(30)};  // far past the run's traffic
        FaultPlan plan;
        plan.seed = seed;
        plan.partitions.push_back(window);
        plan.heal_time = SimTime{0};  // expulsion IS the heal (§3.6)
        return plan;
      },
      150);
}

ScenarioResult scenario_gm_withhold_shares(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};
  GmFault fault;
  fault.index = 0;
  fault.withhold_shares = true;
  plan.gm_faults.push_back(fault);
  return run_itdos("gm_withhold_shares", seed, std::move(plan), 4);
}

ScenarioResult scenario_gm_corrupt_shares(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};
  GmFault fault;
  fault.index = 0;
  fault.corrupt_shares = true;
  plan.gm_faults.push_back(fault);
  return run_itdos("gm_corrupt_shares", seed, std::move(plan), 4);
}

// ---------------------------------------------------------------------------
// Recovery scenarios: the expel -> replace -> rekey loop of src/recovery/,
// including attacks on the recovery machinery itself (DESIGN.md §6d).
// ---------------------------------------------------------------------------

/// A stateful accumulator WITH persistence: recovery scenarios must move real
/// servant state through the f+1 byte-identical bundle certification.
class PersistentSum : public orb::Servant {
 public:
  std::string interface_name() const override { return "IDL:fault/PSum:1.0"; }

  void dispatch(const std::string& operation, const cdr::Value& args,
                orb::ServerContext&, orb::ReplySinkPtr sink) override {
    if (operation == "add") {
      for (const auto& v : args.elements()) total_ += v.as_int64();
      sink->reply(cdr::Value::int64(total_));
    } else {
      sink->reply(cdr::Value::int64(total_));
    }
  }

  Result<Bytes> save_state() const override {
    cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
    enc.write_int64(total_);
    return enc.take();
  }

  Status load_state(ByteView state) override {
    cdr::Decoder dec(state, cdr::ByteOrder::kLittleEndian);
    ITDOS_ASSIGN_OR_RETURN(total_, dec.read_int64());
    return Status::ok();
  }

 private:
  std::int64_t total_ = 0;
};

struct RecoverySpec {
  bool dissent = false;           // rank 2 dissents -> proof-based expulsion
  bool corrupt_bundles = false;   // rank 0 serves corrupt state offers
  bool partition_joiner = false;  // isolate the joining identity mid-onboarding
  bool proactive = false;         // scheduler-driven rejuvenation, no faults
  int requests = 6;
};

ScenarioResult run_recovery(const std::string& name, std::uint64_t seed,
                            const RecoverySpec& spec) {
  core::SystemOptions options;
  options.seed = seed;
  core::ItdosSystem system(options);
  const DomainId domain = system.add_domain(
      1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
        // Key 1 is free in a freshly built domain; activation cannot fail.
        (void)adapter.activate_with_key(ObjectId(1),
                                        std::make_shared<PersistentSum>());
      });

  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};  // expulsion + replacement IS the heal
  if (spec.dissent) {
    ElementFault fault;
    fault.rank = 2;
    fault.kind = ElementFault::Kind::kDissentingReplies;
    plan.element_faults.push_back(fault);
  }
  if (spec.corrupt_bundles) {
    ElementFault fault;
    fault.rank = 0;
    fault.kind = ElementFault::Kind::kCorruptStateBundles;
    plan.element_faults.push_back(fault);
  }

  FaultInjector injector(system.network(), plan);
  injector.arm_links();
  for (const ElementFault& fault : injector.plan().element_faults) {
    injector.arm_element(fault, system, domain);
  }

  recovery::RecoveryConfig config =
      recovery::RecoveryConfig::from_timing(system.directory().timing());
  if (spec.partition_joiner) {
    // Tight enough that attempt 1 watchdog-aborts INSIDE the partition and
    // the retry completes after the heal; the multi-attempt budget the
    // oracle learns stays above the healed-path MTTR.
    config.deadline_ns = millis(400);
    config.retry_backoff_ns = millis(50);
  }
  recovery::RecoveryManager manager(system, config);
  manager.watch();

  Oracle oracle(system.sim().telemetry());
  oracle.watch_recovery(manager);
  for (int i = 0; i < system.gm_n(); ++i) {
    oracle.watch_replica(0, system.gm_element(i).replica());
    oracle.watch_gm(system.gm_element(i));
  }
  for (int rank = 0; rank < system.domain_n(domain); ++rank) {
    if (!(spec.dissent && rank == 2)) {
      oracle.watch_replica(1, system.element(domain, rank).replica());
    }
  }

  // The partition attack forms around identities that only exist once the
  // manager picks them, so it triggers off the first kStarted event: the
  // joining identity (reused BFT slot + fresh SMIOP endpoint) is cut off
  // from its domain peers, then healed at a fixed offset.
  auto partitioned = std::make_shared<bool>(false);
  if (spec.partition_joiner) {
    manager.add_listener([&system, domain,
                          partitioned](const recovery::RecoveryEvent& event) {
      if (event.kind != recovery::RecoveryEvent::Kind::kStarted || *partitioned) {
        return;
      }
      *partitioned = true;
      const core::DomainInfo* info = system.directory().find_domain(domain);
      std::set<NodeId> joiner{info->elements[event.rank].bft_node,
                              event.admitted};
      std::set<NodeId> peers;
      for (int rank = 0; rank < static_cast<int>(info->elements.size()); ++rank) {
        if (rank == event.rank) continue;
        peers.insert(info->elements[rank].bft_node);
        peers.insert(info->elements[rank].smiop_node);
      }
      system.network().partition(joiner, peers);
      system.sim().schedule_after(millis(600), [&system, joiner, peers] {
        for (NodeId a : joiner) {
          for (NodeId b : peers) system.network().set_link(a, b, true);
        }
      });
    });
  }

  core::ItdosClient& client = system.add_client();
  oracle.watch_party(client.party());
  const orb::ObjectRef ref =
      system.object_ref(domain, ObjectId(1), "IDL:fault/PSum:1.0");

  std::size_t sent = 0;
  std::size_t completed = 0;
  const auto drive = [&](int count) {
    for (int i = 0; i < count; ++i) {
      ++sent;
      const Result<cdr::Value> result = safe_invoke(
          system, client, ref, "add",
          cdr::Value::sequence({cdr::Value::int64(1)}), seconds(30));
      if (result.is_ok()) ++completed;
    }
  };

  std::optional<recovery::ProactiveScheduler> scheduler;
  if (spec.proactive) {
    scheduler.emplace(manager, millis(150));
    scheduler->add_domain(domain, system.domain_n(domain));
    scheduler->start();
    // Live traffic interleaved with rejuvenation rounds: every element of
    // the domain should rotate out and back in while the client never
    // notices.
    for (int round = 0; round < 6; ++round) {
      drive(1);
      system.sim().run_for(millis(150));
    }
    scheduler->stop();
  } else {
    drive(spec.requests);
  }
  system.settle();
  drive(2);  // the restored 3f+1 domain must serve fresh requests
  system.settle();

  oracle.check_liveness(completed, sent);
  oracle.check_expulsions(system.gm_element(0).state());
  oracle.check_membership(system.gm_element(0).state(), system.directory());

  const telemetry::Hub& hub = system.sim().telemetry();
  ScenarioResult result;
  result.name = name;
  result.seed = seed;
  result.violations = oracle.violations();
  result.requests_sent = sent;
  result.requests_completed = completed;
  result.expulsions = system.gm_element(0).state().expulsions();
  result.detection = result.expulsions > 0;
  result.rekeys = hub.tracer().count(telemetry::TraceKind::kGmRekey);
  result.view_changes = hub.tracer().count(telemetry::TraceKind::kBftNewView);
  result.membership_updates =
      hub.tracer().count(telemetry::TraceKind::kGmMembershipUpdate);
  result.recoveries_started = manager.stats().started;
  result.recoveries_completed = manager.stats().completed;
  result.recoveries_aborted = manager.stats().aborted;
  result.last_mttr_ns = manager.stats().last_mttr_ns;
  for (int rank = 0; rank < system.domain_n(domain); ++rank) {
    result.element_discards.push_back(
        system.element(domain, rank).stats().entries_discarded);
  }
  result.trace_jsonl = hub.tracer().export_jsonl();
  return result;
}

ScenarioResult scenario_expel_replace_recover(std::uint64_t seed) {
  // The tentpole end-to-end: a dissenting element is expelled on its signed
  // proof, the recovery manager admits a fresh identity through an ordered
  // membership_update, certified state and epoch-refreshed keys install,
  // and the domain is back at 3f+1 serving requests.
  RecoverySpec spec;
  spec.dissent = true;
  return run_recovery("expel_replace_recover", seed, spec);
}

ScenarioResult scenario_recovery_corrupt_state_offer(std::uint64_t seed) {
  // Attack on recovery itself: a Byzantine peer serves MAC-valid but
  // corrupted state offers to the joining element. The f+1 byte-identical
  // bundle rule must mask it — two honest matching offers out-vote the
  // corrupt one and onboarding completes cleanly.
  RecoverySpec spec;
  spec.dissent = true;
  spec.corrupt_bundles = true;
  return run_recovery("recovery_corrupt_state_offer", seed, spec);
}

ScenarioResult scenario_recovery_partition_onboarding(std::uint64_t seed) {
  // Attack on recovery itself: the joining identity is partitioned from its
  // domain peers mid-onboarding. The watchdog must abort the stalled
  // attempt (clean retirement, never a forked domain) and the retry must
  // complete once the partition heals — MTTR inside the multi-attempt
  // budget.
  RecoverySpec spec;
  spec.dissent = true;
  spec.partition_joiner = true;
  return run_recovery("recovery_partition_onboarding", seed, spec);
}

ScenarioResult scenario_proactive_rejuvenation(std::uint64_t seed) {
  // No detected fault at all: the scheduler rotates every element of the
  // domain through periodic restart-from-certified-state with fresh keys,
  // staggered so the domain never drops below 3f live elements and client
  // traffic keeps completing throughout.
  RecoverySpec spec;
  spec.proactive = true;
  return run_recovery("proactive_rejuvenation", seed, spec);
}

ScenarioResult scenario_client_replay_storm(std::uint64_t seed) {
  // A compromised singleton client duplicates every ordered submission AND
  // replays the previous sealed GIOP frame each round. Both arrive with
  // already-consumed request ids, so every element must discard them
  // identically (§3.6 stale-rid rule) — a split decision would fork the
  // domain state.
  core::SystemOptions options;
  options.seed = seed;
  core::ItdosSystem system(options);
  const DomainId domain = system.add_domain(
      1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
        // Key 1 is free in a freshly built domain; activation cannot fail.
        (void)adapter.activate_with_key(ObjectId(1),
                                        std::make_shared<SumServant>());
      });

  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};  // misbehavior is masked, never healed
  for (const ClientFault::Kind kind : {ClientFault::Kind::kDuplicateRequests,
                                       ClientFault::Kind::kReplayStaleFrames}) {
    ClientFault fault;
    fault.client_index = 1;
    fault.kind = kind;
    plan.client_faults.push_back(fault);
  }

  core::ItdosClient& honest = system.add_client();
  core::ItdosClient& rogue = system.add_client();

  FaultInjector injector(system.network(), plan);
  injector.arm_links();
  for (const ClientFault& fault : injector.plan().client_faults) {
    injector.arm_client(fault, fault.client_index == 0 ? honest : rogue);
  }

  Oracle oracle(system.sim().telemetry());
  for (int i = 0; i < system.gm_n(); ++i) {
    oracle.watch_replica(0, system.gm_element(i).replica());
    oracle.watch_gm(system.gm_element(i));
  }
  for (int rank = 0; rank < system.domain_n(domain); ++rank) {
    oracle.watch_replica(1, system.element(domain, rank).replica());
  }
  oracle.watch_party(honest.party());

  const orb::ObjectRef ref =
      system.object_ref(domain, ObjectId(1), "IDL:fault/Sum:1.0");
  std::size_t sent = 0;
  std::size_t completed = 0;
  for (int round = 0; round < 6; ++round) {
    for (core::ItdosClient* who : {&rogue, &honest}) {
      ++sent;
      const Result<cdr::Value> result = safe_invoke(
          system, *who, ref, "add",
          cdr::Value::sequence({cdr::Value::int64(round), cdr::Value::int64(7)}),
          seconds(30));
      if (result.is_ok() && result.value().as_int64() == round + 7) ++completed;
    }
  }
  system.settle();

  oracle.check_liveness(completed, sent);
  oracle.check_expulsions(system.gm_element(0).state());

  const telemetry::Hub& hub = system.sim().telemetry();
  ScenarioResult result;
  result.name = "client_replay_storm";
  result.seed = seed;
  result.violations = oracle.violations();
  result.requests_sent = sent;
  result.requests_completed = completed;
  result.expulsions = system.gm_element(0).state().expulsions();
  result.detection = result.expulsions > 0;
  result.rekeys = hub.tracer().count(telemetry::TraceKind::kGmRekey);
  result.view_changes = hub.tracer().count(telemetry::TraceKind::kBftNewView);
  for (int rank = 0; rank < system.domain_n(domain); ++rank) {
    result.element_discards.push_back(
        system.element(domain, rank).stats().entries_discarded);
  }
  result.trace_jsonl = hub.tracer().export_jsonl();
  return result;
}

// ---------------------------------------------------------------------------
// Sharded multi-domain scenarios (DESIGN.md §6g): the bank of src/shard/ —
// replicated tellers in a front domain issuing nested invocations into
// hash-sharded account domains — under inter-domain partitions and callee
// expulsions. These are the cross-domain counterparts of the single-domain
// scenarios above: the fault lands on the SECOND hop of a nested call.
// ---------------------------------------------------------------------------

/// Every per-element node of a domain — the static ones from the directory
/// (BFT, SMIOP, the element's own client endpoints) AND each party's lazily
/// allocated per-target ordering client nodes: one side of a partition that
/// cuts ALL of the domain's traffic toward the other side while leaving
/// intra-domain and GM traffic untouched. Missing the dynamic client nodes
/// would let sealed nested requests tunnel through the cut while the
/// replies starve unrecoverably (DirectReplies are never re-sent).
std::set<NodeId> domain_nodes(core::ItdosSystem& system, DomainId domain) {
  std::set<NodeId> nodes;
  const core::DomainInfo* info = system.directory().find_domain(domain);
  for (const core::ElementInfo& element : info->elements) {
    nodes.insert(element.bft_node);
    nodes.insert(element.smiop_node);
    nodes.insert(element.gm_client_node);
    nodes.insert(element.self_client_node);
  }
  for (int rank = 0; rank < system.domain_n(domain); ++rank) {
    for (const NodeId node : system.element(domain, rank).party().transport_nodes()) {
      nodes.insert(node);
    }
  }
  return nodes;
}

cdr::Value bank_args(std::initializer_list<std::int64_t> values) {
  std::vector<cdr::Value> elems;
  for (const std::int64_t v : values) elems.push_back(cdr::Value::int64(v));
  return cdr::Value::sequence(std::move(elems));
}

ScenarioResult scenario_cross_domain_partition_mid_call(std::uint64_t seed) {
  // An inter-domain partition forms while a teller's nested transfer is in
  // flight: the client's request is already ordered in the teller domain,
  // but the nested withdraw toward the `from` account's domain cannot
  // cross. The callers' SMIOP machinery must keep the pending nested call
  // alive (BFT client retransmission carries it over the heal), the
  // transfer must complete exactly once afterwards, and nobody may be
  // expelled for a stall the NETWORK caused.
  core::SystemOptions options;
  options.seed = seed;
  // The pending cross-domain vote must out-wait the partition window, not
  // be GC'd into an error halfway through it.
  options.timing.reply_vote_timeout_ns = seconds(5);
  core::ItdosSystem system(options);

  shard::BankSpec spec;
  spec.shards = 2;
  spec.tellers = 1;
  spec.clients = 1;
  spec.accounts = 8;
  shard::Bank bank = shard::Bank::build(system, spec);

  const ObjectId from = bank.accounts_of_shard(0).front();
  const ObjectId to = bank.accounts_of_shard(1).front();
  const DomainId teller = bank.topology().front_domains().front();
  const DomainId callee = bank.topology().route(from);

  Oracle oracle(system.sim().telemetry());
  for (int i = 0; i < system.gm_n(); ++i) {
    oracle.watch_replica(0, system.gm_element(i).replica());
    oracle.watch_gm(system.gm_element(i));
  }
  int group = 1;
  for (const DomainId domain :
       {teller, bank.topology().shard_domains()[0],
        bank.topology().shard_domains()[1]}) {
    for (int rank = 0; rank < system.domain_n(domain); ++rank) {
      oracle.watch_replica(group, system.element(domain, rank).replica());
    }
    ++group;
  }
  oracle.watch_party(bank.client().party());

  std::size_t sent = 0;
  std::size_t completed = 0;
  std::int64_t from_balance = spec.initial_balance;
  const auto transfer = [&](std::int64_t timeout_ns) {
    ++sent;
    const Result<cdr::Value> result = safe_invoke(
        system, bank.client(), bank.teller_ref(), "transfer",
        bank_args({static_cast<std::int64_t>(from.value),
                   static_cast<std::int64_t>(to.value), 50}),
        timeout_ns);
    from_balance -= 50;
    if (result.is_ok() && result.value().as_int64() == from_balance) {
      ++completed;
    }
  };

  // Warm-up: routes the full nested path once (GM virtual connections on
  // both hops) and measures the round-trip the partition must interrupt.
  const SimTime before = system.sim().now();
  transfer(seconds(10));
  const std::int64_t round_trip = system.sim().now().ns - before.ns;

  // Cut teller <-> callee traffic from halfway into the next transfer's
  // round-trip: the client->teller hop is already ordered, the nested hop
  // is mid-flight. Heal well within the (raised) vote timeout.
  PartitionWindow window;
  window.side_a = domain_nodes(system, teller);
  window.side_b = domain_nodes(system, callee);
  window.form = SimTime{system.sim().now().ns + round_trip / 2};
  window.heal = SimTime{window.form.ns + 2 * round_trip + millis(150)};
  FaultPlan plan;
  plan.seed = seed;
  plan.partitions.push_back(window);
  plan.heal_time = window.heal;
  FaultInjector injector(system.network(), plan);
  injector.arm_links();

  transfer(seconds(30));  // rides through the partition, completes post-heal
  transfer(seconds(10));  // post-heal: the cross-domain route is live again

  system.settle();
  oracle.check_liveness(completed, sent);
  oracle.check_expulsions(system.gm_element(0).state());

  const telemetry::Hub& hub = system.sim().telemetry();
  ScenarioResult result;
  result.name = "cross_domain_partition_mid_call";
  result.seed = seed;
  result.violations = oracle.violations();
  result.requests_sent = sent;
  result.requests_completed = completed;
  result.expulsions = system.gm_element(0).state().expulsions();
  result.detection = result.expulsions > 0;
  result.rekeys = hub.tracer().count(telemetry::TraceKind::kGmRekey);
  result.view_changes = hub.tracer().count(telemetry::TraceKind::kBftNewView);
  result.trace_jsonl = hub.tracer().export_jsonl();
  return result;
}

ScenarioResult scenario_callee_expulsion_mid_nested_call(std::uint64_t seed) {
  // A dissenting element in the CALLEE (account) domain mutates every reply
  // while the replicated tellers wait on their nested deposits. The teller
  // elements' voters mask the dissent (f+1 matching honest replies), each
  // element files its own change_request, and the GM's f+1-matching-reports
  // rule for replicated reporters (§3.6) expels the callee element — all
  // while the client's deposits keep completing with right answers.
  core::SystemOptions options;
  options.seed = seed;
  core::ItdosSystem system(options);

  shard::BankSpec spec;
  spec.shards = 2;
  spec.tellers = 1;
  spec.clients = 1;
  spec.accounts = 8;
  shard::Bank bank = shard::Bank::build(system, spec);

  const ObjectId account = bank.accounts_of_shard(0).front();
  const DomainId teller = bank.topology().front_domains().front();
  const DomainId callee = bank.topology().route(account);
  const DomainId other = bank.topology().shard_domains()[1];

  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};  // misbehavior is sticky; expulsion IS the heal
  ElementFault fault;
  fault.rank = 2;
  fault.kind = ElementFault::Kind::kDissentingReplies;
  plan.element_faults.push_back(fault);

  FaultInjector injector(system.network(), plan);
  injector.arm_links();
  for (const ElementFault& element_fault : injector.plan().element_faults) {
    injector.arm_element(element_fault, system, callee);
  }

  Oracle oracle(system.sim().telemetry());
  for (int i = 0; i < system.gm_n(); ++i) {
    oracle.watch_replica(0, system.gm_element(i).replica());
    oracle.watch_gm(system.gm_element(i));
  }
  for (int rank = 0; rank < system.domain_n(teller); ++rank) {
    oracle.watch_replica(1, system.element(teller, rank).replica());
  }
  for (int rank = 0; rank < system.domain_n(callee); ++rank) {
    if (rank == fault.rank) continue;  // the dissenter is not "correct"
    oracle.watch_replica(2, system.element(callee, rank).replica());
  }
  for (int rank = 0; rank < system.domain_n(other); ++rank) {
    oracle.watch_replica(3, system.element(other, rank).replica());
  }
  oracle.watch_party(bank.client().party());

  std::size_t sent = 0;
  std::size_t completed = 0;
  for (int round = 1; round <= 6; ++round) {
    ++sent;
    const Result<cdr::Value> result = safe_invoke(
        system, bank.client(), bank.teller_ref(), "deposit",
        bank_args({static_cast<std::int64_t>(account.value), 7}), seconds(30));
    if (result.is_ok() &&
        result.value().as_int64() == spec.initial_balance + 7 * round) {
      ++completed;
    }
  }
  system.settle();

  oracle.check_liveness(completed, sent);
  oracle.check_expulsions(system.gm_element(0).state());

  const telemetry::Hub& hub = system.sim().telemetry();
  ScenarioResult result;
  result.name = "callee_expulsion_mid_nested_call";
  result.seed = seed;
  result.violations = oracle.violations();
  result.requests_sent = sent;
  result.requests_completed = completed;
  result.expulsions = system.gm_element(0).state().expulsions();
  result.detection = result.expulsions > 0;
  result.rekeys = hub.tracer().count(telemetry::TraceKind::kGmRekey);
  result.view_changes = hub.tracer().count(telemetry::TraceKind::kBftNewView);
  result.trace_jsonl = hub.tracer().export_jsonl();
  return result;
}

// ---------------------------------------------------------------------------
// Admission-control & feedback-response scenarios (DESIGN.md §6f): an
// adaptive adversary that re-aims at the deepest-queue element from live
// telemetry, with and without the response controller fighting back.
// ---------------------------------------------------------------------------

std::uint64_t sum_shed_gauges(const telemetry::MetricsRegistry& registry) {
  std::uint64_t total = 0;
  for (const auto& [gauge_name, gauge] : registry.gauges()) {
    if (gauge_name.starts_with("admission.") && gauge_name.ends_with(".shed")) {
      total += static_cast<std::uint64_t>(gauge.value());
    }
  }
  return total;
}

ScenarioResult scenario_adaptive_adversary_overload(std::uint64_t seed) {
  // Bounded admission under concurrent overload, hunted by an adaptive
  // adversary that delays whichever element currently has the deepest
  // replicated queue. Every element must shed the SAME requests (the voter
  // needs f+1 matching OVERLOAD exceptions for the client to see one), no
  // safety invariant may bend, and once the burst drains the domain must
  // serve plain requests again — admission control may say "no", but it may
  // not say it forever.
  core::SystemOptions options;
  options.seed = seed;
  options.timing.ack_interval = 2;         // tight GC: drained queues reopen fast
  options.timing.admission_max_depth = 12; // well above the post-drain residual
  core::ItdosSystem system(options);
  const DomainId domain = system.add_domain(
      1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
        // Key 1 is free in a freshly built domain; activation cannot fail.
        (void)adapter.activate_with_key(ObjectId(1),
                                        std::make_shared<SumServant>());
      });

  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{millis(500)};
  AdaptiveFault adaptive;
  adaptive.window.until = plan.heal_time;
  adaptive.interval_ns = millis(20);
  adaptive.delay_probability = 0.4;
  adaptive.delay_min_ns = micros(200);
  adaptive.delay_max_ns = millis(2);
  plan.adaptive_faults.push_back(adaptive);

  FaultInjector injector(system.network(), plan);
  injector.arm_links();
  for (const AdaptiveFault& fault : injector.plan().adaptive_faults) {
    injector.arm_adaptive(fault, system, domain);
  }

  Oracle oracle(system.sim().telemetry());
  for (int i = 0; i < system.gm_n(); ++i) {
    oracle.watch_replica(0, system.gm_element(i).replica());
    oracle.watch_gm(system.gm_element(i));
  }
  for (int rank = 0; rank < system.domain_n(domain); ++rank) {
    // The adversary only touches the network; every element stays correct
    // and stays watched.
    oracle.watch_replica(1, system.element(domain, rank).replica());
  }

  constexpr int kConcurrentClients = 16;
  constexpr int kRounds = 4;
  std::vector<core::ItdosClient*> clients;
  for (int i = 0; i < kConcurrentClients; ++i) {
    clients.push_back(&system.add_client());
    oracle.watch_party(clients.back()->party());
  }
  const orb::ObjectRef ref =
      system.object_ref(domain, ObjectId(1), "IDL:fault/Sum:1.0");

  std::size_t sent = 0;
  auto ok = std::make_shared<std::size_t>(0);
  auto overloaded = std::make_shared<std::size_t>(0);
  for (int round = 0; round < kRounds; ++round) {
    // The whole pool fires at once: depth at the replicated queues spikes
    // past max_depth and admission MUST kick in — deterministically.
    auto round_done = std::make_shared<int>(0);
    for (core::ItdosClient* client : clients) {
      ++sent;
      client->orb().invoke(
          ref, "add",
          cdr::Value::sequence({cdr::Value::int64(round), cdr::Value::int64(7)}),
          [ok, overloaded, round_done](Result<cdr::Value> r) {
            ++*round_done;
            if (r.is_ok()) {
              ++*ok;
            } else if (r.status().code() == Errc::kResourceExhausted) {
              ++*overloaded;
            }
          });
    }
    const SimTime deadline = system.sim().now() + seconds(20);
    while (*round_done < kConcurrentClients && system.sim().now() < deadline) {
      if (!system.sim().step()) break;
    }
  }

  // Past the adversary's window and with the burst drained, a plain serial
  // request must get a real answer — shed-forever IS starvation.
  system.sim().run_until(SimTime{plan.heal_time.ns + millis(50)});
  for (int i = 0; i < 2; ++i) {
    ++sent;
    const Result<cdr::Value> result = safe_invoke(
        system, *clients[0], ref, "add",
        cdr::Value::sequence({cdr::Value::int64(1), cdr::Value::int64(2)}),
        seconds(30));
    if (result.is_ok() && result.value().as_int64() == 3) ++*ok;
  }
  system.settle();

  // An explicit OVERLOAD reply is a deterministic, voted answer: for the
  // liveness rule it counts as completion (the request was not lost, it was
  // refused — and the refusal itself cleared f+1 matching ballots).
  oracle.check_liveness(*ok + *overloaded, sent);
  oracle.check_expulsions(system.gm_element(0).state());

  const telemetry::Hub& hub = system.sim().telemetry();
  ScenarioResult result;
  result.name = "adaptive_adversary_overload";
  result.seed = seed;
  result.violations = oracle.violations();
  result.requests_sent = sent;
  result.requests_completed = *ok + *overloaded;
  result.expulsions = system.gm_element(0).state().expulsions();
  result.detection = result.expulsions > 0;
  result.rekeys = hub.tracer().count(telemetry::TraceKind::kGmRekey);
  result.view_changes = hub.tracer().count(telemetry::TraceKind::kBftNewView);
  result.sheds = sum_shed_gauges(hub.metrics());
  result.overloads = *overloaded;
  result.adaptive_retargets = injector.retargets();
  result.trace_jsonl = hub.tracer().export_jsonl();
  return result;
}

ScenarioResult scenario_adaptive_adversary_vs_controller(std::uint64_t seed) {
  // The full duel: a dissenting element plus an adaptive link adversary on
  // one side; proactive recovery, the GM strike policy and the §6f feedback
  // controller on the other. The controller starts conservative (2 strikes,
  // resting rejuvenation period), turns aggressive when the dissent shows up
  // in the suspicion counters, and stands back down once the domain is calm
  // — every move ordered through the GM and traced.
  core::SystemOptions options;
  options.seed = seed;
  core::ItdosSystem system(options);
  const DomainId domain = system.add_domain(
      1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
        // Key 1 is free in a freshly built domain; activation cannot fail.
        (void)adapter.activate_with_key(ObjectId(1),
                                        std::make_shared<PersistentSum>());
      });

  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};  // expulsion + replacement IS the heal
  ElementFault dissent;
  dissent.rank = 2;
  dissent.kind = ElementFault::Kind::kDissentingReplies;
  dissent.at = SimTime{millis(20)};
  plan.element_faults.push_back(dissent);
  AdaptiveFault adaptive;
  adaptive.window.until = SimTime{millis(800)};
  adaptive.interval_ns = millis(25);
  adaptive.delay_probability = 0.3;
  adaptive.delay_min_ns = micros(100);
  adaptive.delay_max_ns = millis(1);
  plan.adaptive_faults.push_back(adaptive);

  FaultInjector injector(system.network(), plan);
  injector.arm_links();
  for (const ElementFault& fault : injector.plan().element_faults) {
    injector.arm_element(fault, system, domain);
  }
  for (const AdaptiveFault& fault : injector.plan().adaptive_faults) {
    injector.arm_adaptive(fault, system, domain);
  }

  recovery::RecoveryManager manager(system);
  manager.watch();
  recovery::ProactiveScheduler scheduler(manager, seconds(1));
  scheduler.add_domain(domain, system.domain_n(domain));
  scheduler.start();

  control::ResponseControllerOptions copts;
  copts.interval_ns = millis(50);
  copts.law.min_period_ns = millis(300);  // floor the rotation rate: a short
                                          // run must not thrash recovery
  control::ResponseController controller(system, manager, scheduler, copts);
  controller.start();

  Oracle oracle(system.sim().telemetry());
  oracle.watch_recovery(manager);
  for (int i = 0; i < system.gm_n(); ++i) {
    oracle.watch_replica(0, system.gm_element(i).replica());
    oracle.watch_gm(system.gm_element(i));
  }
  for (int rank = 0; rank < system.domain_n(domain); ++rank) {
    if (rank != dissent.rank) {
      oracle.watch_replica(1, system.element(domain, rank).replica());
    }
  }

  core::ItdosClient& client = system.add_client();
  oracle.watch_party(client.party());
  const orb::ObjectRef ref =
      system.object_ref(domain, ObjectId(1), "IDL:fault/PSum:1.0");

  std::size_t sent = 0;
  std::size_t completed = 0;
  // Traffic interleaved with idle windows: the duel needs wall-clock (sim
  // time) for retargets, control ticks and recovery cycles to play out.
  for (int round = 0; round < 8; ++round) {
    ++sent;
    const Result<cdr::Value> result = safe_invoke(
        system, client, ref, "add",
        cdr::Value::sequence({cdr::Value::int64(1)}), seconds(30));
    if (result.is_ok()) ++completed;
    system.sim().run_for(millis(100));
  }
  scheduler.stop();
  controller.stop();
  system.settle();
  ++sent;
  const Result<cdr::Value> last = safe_invoke(
      system, client, ref, "add", cdr::Value::sequence({cdr::Value::int64(1)}),
      seconds(30));
  if (last.is_ok()) ++completed;
  system.settle();

  oracle.check_liveness(completed, sent);
  oracle.check_expulsions(system.gm_element(0).state());
  oracle.check_membership(system.gm_element(0).state(), system.directory());

  const telemetry::Hub& hub = system.sim().telemetry();
  ScenarioResult result;
  result.name = "adaptive_adversary_vs_controller";
  result.seed = seed;
  result.violations = oracle.violations();
  result.requests_sent = sent;
  result.requests_completed = completed;
  result.expulsions = system.gm_element(0).state().expulsions();
  result.detection = result.expulsions > 0;
  result.rekeys = hub.tracer().count(telemetry::TraceKind::kGmRekey);
  result.view_changes = hub.tracer().count(telemetry::TraceKind::kBftNewView);
  result.membership_updates =
      hub.tracer().count(telemetry::TraceKind::kGmMembershipUpdate);
  result.recoveries_started = manager.stats().started;
  result.recoveries_completed = manager.stats().completed;
  result.recoveries_aborted = manager.stats().aborted;
  result.last_mttr_ns = manager.stats().last_mttr_ns;
  result.sheds = sum_shed_gauges(hub.metrics());
  result.adaptive_retargets = injector.retargets();
  result.control_adjustments = controller.adjustments();
  result.trace_jsonl = hub.tracer().export_jsonl();
  return result;
}

struct ScenarioEntry {
  const char* name;
  ScenarioResult (*run)(std::uint64_t seed);
};

constexpr ScenarioEntry kScenarios[] = {
    {"drop_storm", scenario_drop_storm},
    {"delay_spike", scenario_delay_spike},
    {"duplicate_flood", scenario_duplicate_flood},
    {"corrupt_link", scenario_corrupt_link},
    {"partition_minority", scenario_partition_minority},
    {"partition_primary", scenario_partition_primary},
    {"silent_replica", scenario_silent_replica},
    {"corrupt_mac_replica", scenario_corrupt_mac_replica},
    {"equivocating_primary", scenario_equivocating_primary},
    {"batch_equivocating_primary", scenario_batch_equivocating_primary},
    {"viewchange_mid_pipeline", scenario_viewchange_mid_pipeline},
    {"stale_view_replay", scenario_stale_view_replay},
    {"expel_rekey_e2e", scenario_expel_rekey_e2e},
    {"bogus_change_request", scenario_bogus_change_request},
    {"share_starvation", scenario_share_starvation},
    {"gm_withhold_shares", scenario_gm_withhold_shares},
    {"gm_corrupt_shares", scenario_gm_corrupt_shares},
    {"expel_replace_recover", scenario_expel_replace_recover},
    {"recovery_corrupt_state_offer", scenario_recovery_corrupt_state_offer},
    {"recovery_partition_onboarding", scenario_recovery_partition_onboarding},
    {"client_replay_storm", scenario_client_replay_storm},
    {"cross_domain_partition_mid_call", scenario_cross_domain_partition_mid_call},
    {"callee_expulsion_mid_nested_call", scenario_callee_expulsion_mid_nested_call},
    {"proactive_rejuvenation", scenario_proactive_rejuvenation},
    {"adaptive_adversary_overload", scenario_adaptive_adversary_overload},
    {"adaptive_adversary_vs_controller", scenario_adaptive_adversary_vs_controller},
};

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const ScenarioEntry& entry : kScenarios) names.emplace_back(entry.name);
  return names;
}

ScenarioResult run_scenario(const std::string& name, std::uint64_t seed) {
  for (const ScenarioEntry& entry : kScenarios) {
    if (name == entry.name) return entry.run(seed);
  }
  throw std::invalid_argument("unknown fault scenario: " + name);
}

ScenarioResult run_silent_replicas(int silent_count, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.heal_time = SimTime{0};
  for (int i = 0; i < silent_count; ++i) {
    ReplicaFault fault;
    fault.rank = 3 - i;  // mute from the highest rank down
    fault.silent = true;
    plan.replica_faults.push_back(fault);
  }
  return run_cluster("silent_x" + std::to_string(silent_count), seed,
                     std::move(plan), 4, seconds(5));
}

}  // namespace itdos::fault
