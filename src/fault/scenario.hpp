// Canned fault scenarios: one call builds a deployment, arms a FaultPlan,
// drives a client workload through the fault window, and returns what the
// oracles saw. Each (name, seed) pair is fully deterministic, so the
// returned trace JSONL is byte-stable across runs — tests/fault/ sweeps
// these as ctest cases and scripts/soak.sh sweeps random seeds.
//
// DESIGN.md ("Fault model & oracles") maps each scenario to the paper
// section whose claim it stresses.
#pragma once

#include <string>
#include <vector>

#include "fault/oracle.hpp"
#include "fault/plan.hpp"

namespace itdos::fault {

struct ScenarioResult {
  std::string name;
  std::uint64_t seed = 0;

  std::vector<Violation> violations;
  std::size_t requests_sent = 0;
  std::size_t requests_completed = 0;

  bool detection = false;        // a fault was detected (expulsion ordered)
  std::uint64_t expulsions = 0;  // GM expulsions in the final state
  std::uint64_t rekeys = 0;      // gm.rekey trace events
  std::uint64_t view_changes = 0;  // bft.new_view trace events

  // Recovery scenarios (src/recovery/): expel -> replace -> rekey cycles.
  std::uint64_t recoveries_started = 0;
  std::uint64_t recoveries_completed = 0;
  std::uint64_t recoveries_aborted = 0;    // watchdog aborts (retried)
  std::int64_t last_mttr_ns = 0;           // trigger -> restored 3f+1
  std::uint64_t membership_updates = 0;    // gm.membership_update trace events
  // Per-rank entries_discarded of the server domain: a compromised client's
  // duplicates/replays must be discarded IDENTICALLY at every element.
  std::vector<std::uint64_t> element_discards;

  // Admission-control / adaptive-adversary scenarios (§6f).
  std::uint64_t sheds = 0;            // replicated admission sheds (any element)
  std::uint64_t overloads = 0;        // explicit OVERLOAD replies clients saw
  std::uint64_t adaptive_retargets = 0;  // adversary.retarget events
  std::uint64_t control_adjustments = 0; // control.adjust events

  std::string trace_jsonl;  // full causal trace (byte-stable per seed)

  bool clean() const { return violations.empty(); }
};

/// Names of all canned scenarios, in a fixed order.
std::vector<std::string> scenario_names();

/// Runs one canned scenario. Throws std::invalid_argument on unknown names.
ScenarioResult run_scenario(const std::string& name, std::uint64_t seed);

/// The f-boundary harness: a BFT cluster (f = 1) with `silent_count`
/// replicas muted from t = 0. With silent_count <= f every request must
/// complete; at f+1 the quorum is gone and the oracle must report the
/// liveness loss (tests assert the DETECTION, not silence).
ScenarioResult run_silent_replicas(int silent_count, std::uint64_t seed);

}  // namespace itdos::fault
