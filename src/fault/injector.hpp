// Turns a FaultPlan into live network interposition and scheduled Byzantine
// activations. One injector owns the interceptors it installs; destroying it
// restores the network (in-flight scheduled events are cancelled by the
// simulator's normal teardown).
#pragma once

#include <map>
#include <set>

#include "bft/replica.hpp"
#include "fault/plan.hpp"
#include "itdos/system.hpp"
#include "net/network.hpp"

namespace itdos::fault {

class FaultInjector {
 public:
  FaultInjector(net::Network& net, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs outbound interceptors for every LinkFault source and schedules
  /// partition form/heal events. Call once, before driving the simulation.
  void arm_links();

  /// Schedules the Byzantine window of `fault` onto `replica` (hooks on at
  /// window.from, off at window.until if bounded) plus periodic stale-view
  /// replays when configured.
  void arm_replica(const ReplicaFault& fault, bft::Replica& replica);

  /// Applies an ElementFault to a deployed ITDOS element at its start time.
  void arm_element(const ElementFault& fault, core::ItdosSystem& system,
                   DomainId domain);

  /// Applies a GmFault to a Group Manager element at its start time.
  void arm_gm(const GmFault& fault, core::ItdosSystem& system);

  /// Applies a ClientFault to a singleton client party at its start time.
  void arm_client(const ClientFault& fault, core::ItdosClient& client);

  /// Arms an adaptive adversary against `domain`: every interval inside the
  /// fault's window it reads the live queue.<node>.depth gauges and re-aims
  /// the configured link degradation at the deepest-queue element (ties go
  /// to the lowest rank). Interceptors follow the target, including fresh
  /// identities admitted by recovery mid-run.
  void arm_adaptive(const AdaptiveFault& fault, core::ItdosSystem& system,
                    DomainId domain);

  /// Retargets performed by adaptive adversaries so far.
  std::uint64_t retargets() const { return retargets_; }

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t injected() const { return injected_->value(); }

 private:
  struct AdaptiveState {
    AdaptiveFault spec;
    DomainId domain;
    core::ItdosSystem* system = nullptr;
    NodeId target;              // SMIOP identity (value 0: not aimed yet)
    std::set<NodeId> targets;   // every endpoint degraded: SMIOP + BFT node
  };

  std::optional<BufView> intercept(const net::Packet& packet);
  void trace_inject(NodeId node, InjectKind kind, std::uint64_t detail);
  void ensure_intercepted(NodeId node);
  void adaptive_tick(std::size_t index);

  net::Network& net_;
  FaultPlan plan_;
  Rng rng_;
  std::set<NodeId> intercepted_;  // nodes whose interceptor we installed
  bool reinjecting_ = false;      // delayed/duplicated copies pass through
  std::vector<AdaptiveState> adaptive_;
  std::uint64_t retargets_ = 0;

  telemetry::Hub* tel_;
  telemetry::Counter* injected_;    // fault.injected (all effects)
  telemetry::Counter* dropped_;     // fault.dropped
  telemetry::Counter* delayed_;     // fault.delayed
  telemetry::Counter* duplicated_;  // fault.duplicated
  telemetry::Counter* corrupted_;   // fault.corrupted
};

}  // namespace itdos::fault
