#include "fault/oracle.hpp"

namespace itdos::fault {

std::string_view violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kExecutionDivergence:
      return "execution_divergence";
    case Violation::Kind::kVoteUnderSupported:
      return "vote_under_supported";
    case Violation::Kind::kExpelledRejoined:
      return "expelled_rejoined";
    case Violation::Kind::kLiveness:
      return "liveness";
    case Violation::Kind::kRecoveryDeadline:
      return "recovery_deadline";
    case Violation::Kind::kRecoveryOverlap:
      return "recovery_overlap";
    case Violation::Kind::kMembershipEpochRegression:
      return "membership_epoch_regression";
  }
  return "unknown";
}

void Oracle::report(Violation violation) {
  tel_->trace(telemetry::TraceKind::kOracleViolation, violation.node, 0,
              static_cast<std::uint64_t>(violation.kind), violation.a);
  violations_.push_back(std::move(violation));
}

void Oracle::note_execution(int group, NodeId node, SeqNum seq,
                            const bft::Digest& digest) {
  auto& per_seq = executions_[group];
  const auto [it, inserted] = per_seq.emplace(seq.value, digest);
  if (!inserted && it->second != digest) {
    Violation v;
    v.kind = Violation::Kind::kExecutionDivergence;
    v.node = node;
    v.a = seq.value;
    v.detail = "correct replicas executed different requests at seq " +
               std::to_string(seq.value);
    report(std::move(v));
  }
}

void Oracle::note_vote(NodeId node, ConnectionId conn, RequestId rid, int f,
                       const core::VoteDecision& decision) {
  if (decision.support >= f + 1) return;
  Violation v;
  v.kind = Violation::Kind::kVoteUnderSupported;
  v.node = node;
  v.a = static_cast<std::uint64_t>(decision.support);
  v.b = telemetry::trace_id(conn, rid);
  v.detail = "reply delivered with only " + std::to_string(decision.support) +
             " matching ballots (f=" + std::to_string(f) + ")";
  report(std::move(v));
}

void Oracle::watch_replica(int group, bft::Replica& replica) {
  const NodeId node = replica.id();
  replica.set_execution_observer(
      [this, group, node](SeqNum seq, const bft::Digest& digest) {
        note_execution(group, node, seq, digest);
      });
}

void Oracle::watch_party(core::SmiopParty& party) {
  const NodeId node = party.config().smiop_node;
  party.set_vote_audit([this, node](ConnectionId conn, RequestId rid, int f,
                                    const core::VoteDecision& decision) {
    note_vote(node, conn, rid, f, decision);
  });
}

void Oracle::watch_gm(core::GmElement& gm) {
  gm.add_expulsion_observer([this](DomainId domain, NodeId element) {
    expulsions_seen_.emplace_back(domain, element);
  });
}

void Oracle::watch_recovery(recovery::RecoveryManager& manager) {
  // The full time budget of one slot: every attempt may run to its watchdog
  // deadline, with a backoff between attempts.
  const recovery::RecoveryConfig& config = manager.config();
  recovery_budget_ns_ =
      config.deadline_ns * config.max_attempts +
      config.retry_backoff_ns * (config.max_attempts - 1);
  manager.add_listener(
      [this](const recovery::RecoveryEvent& event) { note_recovery(event); });
}

void Oracle::note_recovery(const recovery::RecoveryEvent& event) {
  using Kind = recovery::RecoveryEvent::Kind;
  switch (event.kind) {
    case Kind::kStarted: {
      recovery_domains_.insert(event.domain);
      const int now_recovering = ++recovering_now_[event.domain];
      if (now_recovering > 1) {
        Violation v;
        v.kind = Violation::Kind::kRecoveryOverlap;
        v.node = event.admitted;
        v.a = event.domain.value;
        v.b = static_cast<std::uint64_t>(now_recovering);
        v.detail = std::to_string(now_recovering) + " elements of domain " +
                   event.domain.to_string() + " recovering at once";
        report(std::move(v));
      }
      break;
    }
    case Kind::kCompleted: {
      --recovering_now_[event.domain];
      if (event.mttr_ns > recovery_budget_ns_) {
        Violation v;
        v.kind = Violation::Kind::kRecoveryDeadline;
        v.node = event.admitted;
        v.a = static_cast<std::uint64_t>(event.mttr_ns);
        v.b = static_cast<std::uint64_t>(recovery_budget_ns_);
        v.detail = "recovery of domain " + event.domain.to_string() +
                   " took " + std::to_string(event.mttr_ns) +
                   "ns, budget " + std::to_string(recovery_budget_ns_) + "ns";
        report(std::move(v));
      }
      std::uint64_t& last = last_epoch_seen_[event.domain];
      if (event.member_epoch <= last) {
        Violation v;
        v.kind = Violation::Kind::kMembershipEpochRegression;
        v.node = event.admitted;
        v.a = event.member_epoch;
        v.b = last;
        v.detail = "membership epoch of domain " + event.domain.to_string() +
                   " did not advance (" + std::to_string(event.member_epoch) +
                   " after " + std::to_string(last) + ")";
        report(std::move(v));
      }
      last = event.member_epoch;
      break;
    }
    case Kind::kAborted:
      --recovering_now_[event.domain];
      break;
  }
}

void Oracle::check_liveness(std::size_t completed, std::size_t expected) {
  if (completed >= expected) return;
  Violation v;
  v.kind = Violation::Kind::kLiveness;
  v.a = completed;
  v.b = expected;
  v.detail = std::to_string(expected - completed) +
             " correct-client request(s) never completed after faults healed";
  report(std::move(v));
}

void Oracle::check_expulsions(const core::GmStateMachine& gm) {
  for (const auto& [domain, element] : expulsions_seen_) {
    if (gm.is_expelled(domain, element)) continue;
    Violation v;
    v.kind = Violation::Kind::kExpelledRejoined;
    v.node = element;
    v.a = domain.value;
    v.detail = "expelled element " + element.to_string() +
               " is active again in domain " + domain.to_string();
    report(std::move(v));
  }
}

void Oracle::check_membership(const core::GmStateMachine& gm,
                              const core::SystemDirectory& directory) {
  for (const DomainId domain : recovery_domains_) {
    const core::DomainInfo* info = directory.find_domain(domain);
    if (info == nullptr) continue;
    const std::size_t active = gm.active_elements(*info).size();
    if (active == static_cast<std::size_t>(info->n())) continue;
    Violation v;
    v.kind = Violation::Kind::kRecoveryDeadline;
    v.a = domain.value;
    v.b = active;
    v.detail = "domain " + domain.to_string() + " ended the run with " +
               std::to_string(active) + " of " + std::to_string(info->n()) +
               " active elements";
    report(std::move(v));
  }
}

std::string Oracle::forensic_report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += "{\"violation\":\"";
    out += violation_kind_name(v.kind);
    out += "\",\"node\":";
    out += std::to_string(v.node.value);
    out += ",\"a\":";
    out += std::to_string(v.a);
    out += ",\"b\":";
    out += std::to_string(v.b);
    out += ",\"detail\":\"";
    out += v.detail;
    out += "\"}\n";
  }
  out += tel_->tracer().export_jsonl();
  return out;
}

}  // namespace itdos::fault
