#include "fault/oracle.hpp"

namespace itdos::fault {

std::string_view violation_kind_name(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kExecutionDivergence:
      return "execution_divergence";
    case Violation::Kind::kVoteUnderSupported:
      return "vote_under_supported";
    case Violation::Kind::kExpelledRejoined:
      return "expelled_rejoined";
    case Violation::Kind::kLiveness:
      return "liveness";
  }
  return "unknown";
}

void Oracle::report(Violation violation) {
  tel_->trace(telemetry::TraceKind::kOracleViolation, violation.node, 0,
              static_cast<std::uint64_t>(violation.kind), violation.a);
  violations_.push_back(std::move(violation));
}

void Oracle::note_execution(int group, NodeId node, SeqNum seq,
                            const bft::Digest& digest) {
  auto& per_seq = executions_[group];
  const auto [it, inserted] = per_seq.emplace(seq.value, digest);
  if (!inserted && it->second != digest) {
    Violation v;
    v.kind = Violation::Kind::kExecutionDivergence;
    v.node = node;
    v.a = seq.value;
    v.detail = "correct replicas executed different requests at seq " +
               std::to_string(seq.value);
    report(std::move(v));
  }
}

void Oracle::note_vote(NodeId node, ConnectionId conn, RequestId rid, int f,
                       const core::VoteDecision& decision) {
  if (decision.support >= f + 1) return;
  Violation v;
  v.kind = Violation::Kind::kVoteUnderSupported;
  v.node = node;
  v.a = static_cast<std::uint64_t>(decision.support);
  v.b = telemetry::trace_id(conn, rid);
  v.detail = "reply delivered with only " + std::to_string(decision.support) +
             " matching ballots (f=" + std::to_string(f) + ")";
  report(std::move(v));
}

void Oracle::watch_replica(int group, bft::Replica& replica) {
  const NodeId node = replica.id();
  replica.set_execution_observer(
      [this, group, node](SeqNum seq, const bft::Digest& digest) {
        note_execution(group, node, seq, digest);
      });
}

void Oracle::watch_party(core::SmiopParty& party) {
  const NodeId node = party.config().smiop_node;
  party.set_vote_audit([this, node](ConnectionId conn, RequestId rid, int f,
                                    const core::VoteDecision& decision) {
    note_vote(node, conn, rid, f, decision);
  });
}

void Oracle::watch_gm(core::GmElement& gm) {
  gm.set_expulsion_observer([this](DomainId domain, NodeId element) {
    expulsions_seen_.emplace_back(domain, element);
  });
}

void Oracle::check_liveness(std::size_t completed, std::size_t expected) {
  if (completed >= expected) return;
  Violation v;
  v.kind = Violation::Kind::kLiveness;
  v.a = completed;
  v.b = expected;
  v.detail = std::to_string(expected - completed) +
             " correct-client request(s) never completed after faults healed";
  report(std::move(v));
}

void Oracle::check_expulsions(const core::GmStateMachine& gm) {
  for (const auto& [domain, element] : expulsions_seen_) {
    if (gm.is_expelled(domain, element)) continue;
    Violation v;
    v.kind = Violation::Kind::kExpelledRejoined;
    v.node = element;
    v.a = domain.value;
    v.detail = "expelled element " + element.to_string() +
               " is active again in domain " + domain.to_string();
    report(std::move(v));
  }
}

std::string Oracle::forensic_report() const {
  std::string out;
  for (const Violation& v : violations_) {
    out += "{\"violation\":\"";
    out += violation_kind_name(v.kind);
    out += "\",\"node\":";
    out += std::to_string(v.node.value);
    out += ",\"a\":";
    out += std::to_string(v.a);
    out += ",\"b\":";
    out += std::to_string(v.b);
    out += ",\"detail\":\"";
    out += v.detail;
    out += "\"}\n";
  }
  out += tel_->tracer().export_jsonl();
  return out;
}

}  // namespace itdos::fault
