#include "batch/batch_msg.hpp"

namespace itdos::batch {

namespace {

constexpr cdr::ByteOrder kWire = cdr::ByteOrder::kLittleEndian;

void encode_fields(const BatchMsg& msg, cdr::Encoder& enc) {
  enc.write_uint32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const BufView& entry : msg.entries) enc.write_bytes(entry);
}

}  // namespace

Bytes BatchMsg::encode() const {
  cdr::Encoder enc(kWire);
  encode_fields(*this, enc);
  return enc.take();
}

BufView BatchMsg::encode_into(Arena& arena) const {
  cdr::Encoder enc(kWire, &arena);
  encode_fields(*this, enc);
  return enc.take_view();
}

Result<BatchMsg> BatchMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  BatchMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t count, dec.read_uint32());
  if (count == 0) {
    return error(Errc::kMalformedMessage, "empty BATCH");
  }
  // Wire-count guard: a forged count must not size loops or allocations
  // beyond what the buffer can possibly hold (each entry costs >= 4 bytes
  // of length prefix), nor exceed the protocol-wide batch cap.
  if (count > kMaxBatchEntries || count > dec.remaining() / 4) {
    return error(Errc::kMalformedMessage, "hostile entry count in BATCH");
  }
  msg.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(BufView entry, dec.read_bytes_view());
    msg.entries.push_back(std::move(entry));
  }
  if (!dec.exhausted()) {
    return error(Errc::kMalformedMessage, "trailing bytes in BATCH");
  }
  return msg;
}

}  // namespace itdos::batch
