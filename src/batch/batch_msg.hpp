// Batch wire format: one pre-prepare slot carrying many client requests.
//
// A batch is a counted sequence of encoded bft::RequestMsg frames. The
// primary marshals it ONCE into the arena (each entry's bytes are written
// into the shared chunk); everything downstream — MAC'ing, multicast, the
// replicas' logs, view-change re-proposal and execution — holds views into
// that sealed chunk. decode() hands back zero-copy sub-views per entry.
//
// The batch commits or is re-proposed as a unit: the pre-prepare digest
// covers the whole encoded batch, so no partial entry can survive a view
// change (DESIGN.md §6i's atomic re-proposal rule).
#pragma once

#include <vector>

#include "cdr/codec.hpp"
#include "common/buffer.hpp"
#include "common/result.hpp"

namespace itdos::batch {

/// Upper bound on entries one batch may claim. A hostile entry_count in a
/// decoded batch is rejected before any allocation is sized from it.
inline constexpr std::uint32_t kMaxBatchEntries = 4096;

struct BatchMsg {
  std::vector<BufView> entries;  // each an encoded bft::RequestMsg

  bool operator==(const BatchMsg&) const = default;

  Bytes encode() const;

  /// The hot path: one marshal into a recycled arena chunk.
  BufView encode_into(Arena& arena) const;

  /// Zero-copy: every entry is a sub-view sharing `data`'s chunk. Rejects
  /// hostile counts (entry_count > remaining bytes or > kMaxBatchEntries),
  /// empty batches and trailing bytes.
  static Result<BatchMsg> decode(const BufView& data);
};

}  // namespace itdos::batch
