#include "batch/former.hpp"

namespace itdos::batch {

void Former::enqueue(BufView encoded, bool urgent, std::uint64_t trace, SimTime now) {
  pending_bytes_ += encoded.size();
  if (urgent) ++urgent_pending_;
  pending_.push_back(PendingEntry{std::move(encoded), urgent, trace, now});
}

bool Former::ripe(SimTime now) const {
  if (pending_.empty()) return false;
  if (urgent_pending_ > 0) return true;
  if (pending_.size() >= static_cast<std::size_t>(policy_.max_entries)) return true;
  if (pending_bytes_ >= policy_.max_bytes) return true;
  return now >= pending_.front().enqueued_at + policy_.max_hold_ns;
}

std::optional<SimTime> Former::deadline() const {
  if (pending_.empty()) return std::nullopt;
  return pending_.front().enqueued_at + policy_.max_hold_ns;
}

std::vector<PendingEntry> Former::form() {
  std::vector<PendingEntry> out;
  std::size_t bytes = 0;
  while (!pending_.empty()) {
    const PendingEntry& head = pending_.front();
    if (!out.empty() &&
        (out.size() >= static_cast<std::size_t>(policy_.max_entries) ||
         bytes + head.encoded.size() > policy_.max_bytes)) {
      break;
    }
    bytes += head.encoded.size();
    pending_bytes_ -= head.encoded.size();
    if (head.urgent) --urgent_pending_;
    out.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  return out;
}

void Former::clear() {
  pending_.clear();
  pending_bytes_ = 0;
  urgent_pending_ = 0;
}

}  // namespace itdos::batch
