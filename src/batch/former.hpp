// Request formation (the cortx-motr "formation" idea adapted to BFT
// ordering): the primary parks incoming client requests here and cuts a
// batch when one of the dual caps trips —
//
//   * count cap:   max_entries queued requests,
//   * byte cap:    max_bytes of queued request frames,
//   * hold cap:    the oldest queued request has waited max_hold_ns of
//                  simulated time,
//   * urgency:     an urgent-class request (queue-management acks, sync
//                  points — traffic other protocol machinery is waiting on)
//                  is pending; urgent traffic is never held.
//
// The former is passive and deterministic: it never consults a clock or
// timer itself — the owning replica feeds it the simulation time and arms
// the hold timer from deadline(). Same arrival order + same clock ⇒ same
// batches on every run (the formation-determinism test relies on this).
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "common/buffer.hpp"
#include "common/time.hpp"

namespace itdos::batch {

/// Formation knobs. The default (max_entries = 1) disables formation: the
/// owning replica proposes one request per slot, the classic PBFT path.
struct Policy {
  int max_entries = 1;
  std::size_t max_bytes = 64 * 1024;
  std::int64_t max_hold_ns = micros(200);

  bool enabled() const { return max_entries > 1; }
};

/// One parked request awaiting formation.
struct PendingEntry {
  BufView encoded;          // encoded bft::RequestMsg (shared chunk, no copy)
  bool urgent = false;
  std::uint64_t trace = 0;  // request-scoped trace id (0 = untraced)
  SimTime enqueued_at{};
};

class Former {
 public:
  explicit Former(Policy policy) : policy_(policy) {}

  const Policy& policy() const { return policy_; }

  void enqueue(BufView encoded, bool urgent, std::uint64_t trace, SimTime now);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }
  std::size_t pending_bytes() const { return pending_bytes_; }

  /// True when a batch should be cut now (any cap tripped, or urgency).
  bool ripe(SimTime now) const;

  /// When the hold cap will trip for the oldest parked entry; nullopt when
  /// nothing is parked. The owner arms its flush timer from this.
  std::optional<SimTime> deadline() const;

  /// Pops the next batch: entries in arrival order, greedily up to the
  /// count/byte caps (always at least one entry).
  std::vector<PendingEntry> form();

  /// Drops everything parked (view change: clients will retransmit to the
  /// new primary, whose dedup horizons are reset by the new-view rules).
  void clear();

 private:
  Policy policy_;
  std::deque<PendingEntry> pending_;
  std::size_t pending_bytes_ = 0;
  std::size_t urgent_pending_ = 0;
};

}  // namespace itdos::batch
