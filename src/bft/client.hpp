// Castro-Liskov client: submits requests to the replica group and decides on
// a result from the replies.
//
// Completion policy is pluggable. Stock Castro-Liskov "waits for f+1 replies
// with the same result" — byte equality, which §3.6 shows cannot work across
// heterogeneous replicas. ITDOS swaps in its unmarshalled voter by providing
// a different ReplyCollector.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "bft/config.hpp"
#include "bft/messages.hpp"
#include "net/process.hpp"

namespace itdos::bft {

/// Accumulates authenticated replies for one request and decides when (and
/// with what result) the invocation completes.
class ReplyCollector {
 public:
  virtual ~ReplyCollector() = default;

  /// Feeds one reply; returns the decided result once sufficient.
  virtual std::optional<Bytes> add(NodeId replica, const Bytes& result) = 0;
};

/// Stock Castro-Liskov rule: f+1 byte-identical results.
class MatchingReplyCollector : public ReplyCollector {
 public:
  explicit MatchingReplyCollector(int f) : f_(f) {}
  std::optional<Bytes> add(NodeId replica, const Bytes& result) override;

 private:
  int f_;
  std::map<Bytes, std::set<NodeId>> votes_;
};

class Client : public net::Process {
 public:
  using Completion = std::function<void(Result<Bytes>)>;
  using CollectorFactory = std::function<std::unique_ptr<ReplyCollector>(int f)>;

  Client(net::Network& net, NodeId id, BftConfig config, const SessionKeys& keys);

  /// Overrides the completion policy (default: MatchingReplyCollector).
  void set_collector_factory(CollectorFactory factory) {
    collector_factory_ = std::move(factory);
  }

  /// Submits a request. Requests queue internally; one is outstanding at a
  /// time (the paper's single-threaded model: "only one outstanding request
  /// can exist for a connection at a time"). The payload view is retained
  /// across retransmissions without copying.
  void invoke(BufView payload, Completion done);

  /// Number of requests submitted so far (== last timestamp used).
  std::uint64_t timestamps_used() const { return next_timestamp_ - 1; }

  std::uint64_t retransmissions() const { return retransmissions_; }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  struct PendingRequest {
    BufView payload;
    Completion done;
  };

  void dispatch_next();
  void send_current(bool broadcast);
  void on_retry_timeout();
  void finish(Result<Bytes> result);

  BftConfig config_;
  const SessionKeys& keys_;
  CollectorFactory collector_factory_;

  std::uint64_t next_timestamp_ = 1;
  std::uint64_t retransmissions_ = 0;
  ViewId view_estimate_;  // updated from replies; guides who we call primary

  std::deque<PendingRequest> queue_;
  std::optional<PendingRequest> current_;
  std::uint64_t current_timestamp_ = 0;
  std::unique_ptr<ReplyCollector> collector_;
  std::set<NodeId> replied_;  // replicas already counted for this request
  net::EventHandle retry_timer_{};
  bool retry_timer_armed_ = false;
};

}  // namespace itdos::bft
