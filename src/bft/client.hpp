// Castro-Liskov client: submits requests to the replica group and decides on
// a result from the replies.
//
// Completion policy is pluggable. Stock Castro-Liskov "waits for f+1 replies
// with the same result" — byte equality, which §3.6 shows cannot work across
// heterogeneous replicas. ITDOS swaps in its unmarshalled voter by providing
// a different ReplyCollector.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "bft/config.hpp"
#include "bft/messages.hpp"
#include "net/process.hpp"

namespace itdos::bft {

/// Accumulates authenticated replies for one request and decides when (and
/// with what result) the invocation completes.
class ReplyCollector {
 public:
  virtual ~ReplyCollector() = default;

  /// Feeds one reply; returns the decided result once sufficient.
  virtual std::optional<Bytes> add(NodeId replica, const Bytes& result) = 0;
};

/// Stock Castro-Liskov rule: f+1 byte-identical results.
class MatchingReplyCollector : public ReplyCollector {
 public:
  explicit MatchingReplyCollector(int f) : f_(f) {}
  std::optional<Bytes> add(NodeId replica, const Bytes& result) override;

 private:
  int f_;
  std::map<Bytes, std::set<NodeId>> votes_;
};

class Client : public net::Process {
 public:
  using Completion = std::function<void(Result<Bytes>)>;
  using CollectorFactory = std::function<std::unique_ptr<ReplyCollector>(int f)>;

  Client(net::Network& net, NodeId id, BftConfig config, const SessionKeys& keys);

  /// Overrides the completion policy (default: MatchingReplyCollector).
  void set_collector_factory(CollectorFactory factory) {
    collector_factory_ = std::move(factory);
  }

  /// Submits a request. Requests queue internally; up to the configured
  /// pipeline_depth are outstanding at once (depth 1 is the paper's
  /// single-threaded model: "only one outstanding request can exist for a
  /// connection at a time"). Completions fire as quorums form — with
  /// pipelining that can be out of submission order. The payload view is
  /// retained across retransmissions without copying.
  void invoke(BufView payload, Completion done);

  /// Number of requests submitted so far (== last timestamp used).
  std::uint64_t timestamps_used() const { return next_timestamp_ - 1; }

  std::uint64_t retransmissions() const { return retransmissions_; }

  /// Requests currently awaiting a reply quorum.
  std::size_t inflight() const { return inflight_.size(); }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  struct PendingRequest {
    BufView payload;
    Completion done;
  };

  /// One submitted-but-undecided request.
  struct Inflight {
    BufView payload;
    Completion done;
    std::unique_ptr<ReplyCollector> collector;
    std::set<NodeId> replied;  // replicas already counted
  };

  /// Dispatches queued requests into the pipeline window.
  void pump();
  void send_request(std::uint64_t timestamp, const BufView& payload, bool broadcast);
  void on_retry_timeout();
  void finish(std::uint64_t timestamp, Result<Bytes> result);

  BftConfig config_;
  const SessionKeys& keys_;
  CollectorFactory collector_factory_;

  std::uint64_t next_timestamp_ = 1;
  std::uint64_t retransmissions_ = 0;
  ViewId view_estimate_;  // updated from replies; guides who we call primary

  std::deque<PendingRequest> queue_;
  std::map<std::uint64_t, Inflight> inflight_;  // timestamp -> state
  net::EventHandle retry_timer_{};
  bool retry_timer_armed_ = false;
};

}  // namespace itdos::bft
