// Cluster: one-call wiring of a simulated BFT deployment — simulator,
// network, key material, 3f+1 replicas and any number of clients. Used by
// the test suite, the benchmark harness and the examples; downstream users
// get a working deployment in ~5 lines (see examples/quickstart.cpp).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "bft/client.hpp"
#include "bft/replica.hpp"

namespace itdos::bft {

struct ClusterOptions {
  int f = 1;
  std::uint64_t seed = 1;
  net::NetConfig net_config;
  std::int64_t checkpoint_interval = 16;
  std::int64_t client_retry_ns = millis(40);
  std::int64_t view_change_timeout_ns = millis(60);
  /// Batch formation caps (src/batch); default off (one request per slot).
  batch::Policy batch;
  /// Client-side in-flight window; default 1 (strictly serial clients).
  int pipeline_depth = 1;
};

class Cluster {
 public:
  /// Builds per-rank state machines; heterogeneous deployments return
  /// different implementations per rank (paper §1: "diversity in
  /// implementation").
  using AppFactory = std::function<std::unique_ptr<StateMachine>(int rank)>;

  Cluster(ClusterOptions options, const AppFactory& app_factory);

  net::Simulator& sim() { return sim_; }
  net::Network& network() { return net_; }
  const BftConfig& config() const { return config_; }
  const SessionKeys& keys() const { return keys_; }
  std::shared_ptr<const crypto::Keystore> keystore() const { return keystore_; }

  int n() const { return config_.n(); }
  Replica& replica(int rank) { return *replicas_.at(rank); }
  NodeId replica_id(int rank) const { return config_.replicas.at(rank); }

  /// Detaches a replica from the network (crash fault).
  void crash_replica(int rank);

  /// Reattaches a previously crashed replica (it will state-transfer).
  void restart_replica(int rank);

  /// Creates a client (ids 1000, 1001, ...).
  Client& add_client();

  /// Invokes synchronously: runs the simulation until the request completes
  /// or `timeout_ns` of simulated time elapses (kUnavailable on timeout).
  Result<Bytes> invoke_sync(Client& client, BufView payload,
                            std::int64_t timeout_ns = seconds(5));

  /// Runs the simulation until idle or for `max_events`.
  void settle(std::size_t max_events = 2'000'000) { sim_.run(max_events); }

 private:
  ClusterOptions options_;
  net::Simulator sim_;
  net::Network net_;
  BftConfig config_;
  SessionKeys keys_;
  std::shared_ptr<crypto::Keystore> keystore_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Client>> clients_;
  AppFactory app_factory_;
  std::uint64_t next_client_id_ = 1000;
};

/// Simple deterministic state machines for tests, benches and examples.

/// Appends commands to a log and replies "OK:<count>".
class LogStateMachine : public StateMachine {
 public:
  Bytes execute(const BufView& request, NodeId client, SeqNum seq) override;
  Bytes snapshot() const override;
  Status restore(ByteView snapshot) override;

  const std::vector<Bytes>& entries() const { return entries_; }

 private:
  std::vector<Bytes> entries_;
};

/// A replicated counter: request "add:<n>" adds, "get" reads.
class CounterStateMachine : public StateMachine {
 public:
  Bytes execute(const BufView& request, NodeId client, SeqNum seq) override;
  Bytes snapshot() const override;
  Status restore(ByteView snapshot) override;

  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

}  // namespace itdos::bft
