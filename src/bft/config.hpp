// BFT group configuration and session-key material.
//
// A group of n = 3f+1 replicas tolerates f Byzantine members (paper §2,
// Bracha-Toueg [4], Castro-Liskov [6,7]). Message authentication uses
// pairwise symmetric MACs (the Castro-Liskov authenticator optimization);
// view-change certificates additionally use signatures.
#pragma once

#include <vector>

#include "batch/former.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/time.hpp"
#include "crypto/hmac.hpp"

namespace itdos::bft {

/// Ceiling on client pipelining. The replicas' per-client dedup windows
/// (Replica::TsWindow) hold kMaxPipelineDepth * 2 sparse timestamps, so a
/// live out-of-order gap can never be pruned out from under a client that
/// respects this bound.
inline constexpr int kMaxPipelineDepth = 32;

struct BftConfig {
  int f = 1;
  std::vector<NodeId> replicas;  // size 3f+1, index == replica rank
  McastGroupId group;            // replicas' ordering multicast group

  /// Checkpoint every K executed requests; watermark window is 2K.
  std::int64_t checkpoint_interval = 16;

  /// Client resends its request (to all replicas) after this long.
  std::int64_t client_retry_ns = millis(40);

  /// Backup starts a view change this long after accepting a request whose
  /// execution has not completed.
  std::int64_t view_change_timeout_ns = millis(60);

  /// Request formation at the primary (src/batch): how many queued client
  /// requests may share one pre-prepare slot, the byte cap, and how long a
  /// request may be held waiting for batch-mates. max_entries = 1 keeps the
  /// classic one-request-per-slot path.
  batch::Policy batch;

  /// Client-side pipelining: requests a bft::Client keeps in flight before
  /// queueing. 1 = the paper's strict one-outstanding-request model.
  int pipeline_depth = 1;

  int n() const { return static_cast<int>(replicas.size()); }
  int quorum() const { return 2 * f + 1; }

  Status validate() const;

  bool is_replica(NodeId node) const;

  /// Rank of a replica in [0, n), or -1.
  int rank_of(NodeId node) const;

  /// Round-robin primary: replica (v mod n) leads view v.
  NodeId primary_for(ViewId view) const {
    return replicas[view.value % replicas.size()];
  }

  std::int64_t watermark_window() const { return 2 * checkpoint_interval; }
};

/// Pairwise MAC keys between all parties (replicas and clients). Derived
/// from a deployment master secret; stands in for the session-key exchange
/// a production deployment would run.
class SessionKeys {
 public:
  // itdos-lint: allow(BUF-001) key-material sink, moved into place; not a message-path payload
  explicit SessionKeys(Bytes master_secret) : master_(std::move(master_secret)) {}

  /// Symmetric key shared by nodes `a` and `b` (order-independent).
  Bytes key_for(NodeId a, NodeId b) const;

  /// MAC tag over `data` with the (a, b) pairwise key.
  crypto::MacTag tag(NodeId a, NodeId b, ByteView data) const;

  bool verify(NodeId a, NodeId b, ByteView data, const crypto::MacTag& tag) const;

 private:
  Bytes master_;
};

}  // namespace itdos::bft
