#include "bft/config.hpp"

#include <algorithm>
#include <set>

namespace itdos::bft {

Status BftConfig::validate() const {
  if (f < 1) return error(Errc::kInvalidArgument, "f must be >= 1");
  if (n() != 3 * f + 1) {
    return error(Errc::kInvalidArgument, "replica count must be 3f+1");
  }
  const std::set<NodeId> distinct(replicas.begin(), replicas.end());
  if (distinct.size() != replicas.size()) {
    return error(Errc::kInvalidArgument, "duplicate replica ids");
  }
  if (checkpoint_interval < 1) {
    return error(Errc::kInvalidArgument, "checkpoint interval must be >= 1");
  }
  if (batch.max_entries < 1 || batch.max_bytes < 1) {
    return error(Errc::kInvalidArgument, "batch caps must be >= 1");
  }
  if (pipeline_depth < 1 || pipeline_depth > kMaxPipelineDepth) {
    return error(Errc::kInvalidArgument, "pipeline depth out of range");
  }
  return Status::ok();
}

bool BftConfig::is_replica(NodeId node) const { return rank_of(node) >= 0; }

int BftConfig::rank_of(NodeId node) const {
  const auto it = std::find(replicas.begin(), replicas.end(), node);
  if (it == replicas.end()) return -1;
  return static_cast<int>(it - replicas.begin());
}

Bytes SessionKeys::key_for(NodeId a, NodeId b) const {
  if (b < a) std::swap(a, b);
  Bytes info;
  for (int i = 0; i < 8; ++i) info.push_back(static_cast<std::uint8_t>(a.value >> (i * 8)));
  for (int i = 0; i < 8; ++i) info.push_back(static_cast<std::uint8_t>(b.value >> (i * 8)));
  return crypto::derive_key(master_, "bft.pairwise", info);
}

crypto::MacTag SessionKeys::tag(NodeId a, NodeId b, ByteView data) const {
  return crypto::mac_tag(key_for(a, b), data);
}

bool SessionKeys::verify(NodeId a, NodeId b, ByteView data,
                         const crypto::MacTag& tag) const {
  return crypto::mac_verify(key_for(a, b), data, tag);
}

}  // namespace itdos::bft
