#include "bft/replica.hpp"

#include <algorithm>
#include <cassert>

#include "batch/batch_msg.hpp"
#include "common/counters.hpp"
#include "common/log.hpp"
#include "crypto/sha256.hpp"

namespace itdos::bft {

namespace {

constexpr std::string_view kLog = "bft.replica";

/// Digest binding a snapshot to its sequence number.
Digest checkpoint_digest(std::uint64_t seq, ByteView snapshot) {
  std::uint8_t seq_bytes[8];
  for (int i = 0; i < 8; ++i) seq_bytes[i] = static_cast<std::uint8_t>(seq >> (i * 8));
  return crypto::Sha256().update(ByteView(seq_bytes, 8)).update(snapshot).finish();
}

/// Digest binding a proposal's request bytes AND their framing. PREPARE and
/// COMMIT carry only this digest, so the `is_batch` flag must be folded in:
/// bytes crafted to decode both as a BatchMsg and as a RequestMsg are easy
/// to build (the batch header doubles as the outer client id), and without
/// the domain byte an equivocating primary could hand the same bytes to
/// different backups with the flag flipped — both sets would prepare and
/// commit the identical (view, seq, digest) yet execute divergent request
/// sets. The domain byte makes the two framings distinct agreement values.
Digest proposal_digest(ByteView request, bool is_batch) {
  const std::uint8_t domain = is_batch ? 0x01 : 0x00;
  return crypto::Sha256().update(ByteView(&domain, 1)).update(request).finish();
}

/// Timestamps a correct client could currently be using: clients number
/// requests sequentially and pipeline at most kMaxPipelineDepth, so a live
/// timestamp is never more than one sparse-window width past the client's
/// executed prefix. Requests carried inside a pre-prepare are NOT
/// client-authenticated, so a Byzantine primary can fabricate timestamps
/// for a victim client; tracking them would overflow the victim's bounded
/// TsWindows and prune the floor over live, never-executed timestamps —
/// the victim's real requests would then read as executed duplicates (with
/// no cached reply) forever. Implausible timestamps are ignored instead of
/// tracked: never executed, never marked. The skip is deterministic because
/// the executed window is replicated state — at a given execution point
/// every correct replica holds the same floor.
bool plausible_timestamp(const TsWindow& executed, std::uint64_t ts) {
  return counters::before_eq(ts, executed.floor() + TsWindow::kMaxSparse);
}

}  // namespace

Replica::Replica(net::Network& net, NodeId id, BftConfig config,
                 const SessionKeys& keys, crypto::SigningKey signing_key,
                 std::shared_ptr<const crypto::Keystore> keystore,
                 std::unique_ptr<StateMachine> app)
    : Process(net, id),
      config_(std::move(config)),
      keys_(keys),
      signing_key_(std::move(signing_key)),
      keystore_(std::move(keystore)),
      app_(std::move(app)),
      tel_(&net.sim().telemetry()),
      former_(config_.batch) {
  assert(config_.validate().is_ok());
  assert(config_.is_replica(id));
  const std::string prefix = "bft." + id.to_string() + ".";
  auto& reg = tel_->metrics();
  metrics_.requests_received = &reg.counter(prefix + "requests_received");
  metrics_.pre_prepares_sent = &reg.counter(prefix + "pre_prepares_sent");
  metrics_.prepares_sent = &reg.counter(prefix + "prepares_sent");
  metrics_.commits_sent = &reg.counter(prefix + "commits_sent");
  metrics_.replies_sent = &reg.counter(prefix + "replies_sent");
  metrics_.checkpoints_sent = &reg.counter(prefix + "checkpoints_sent");
  metrics_.view_changes_sent = &reg.counter(prefix + "view_changes_sent");
  metrics_.new_views_sent = &reg.counter(prefix + "new_views_sent");
  metrics_.executed = &reg.counter(prefix + "executed");
  metrics_.state_transfers = &reg.counter(prefix + "state_transfers");
  metrics_.auth_failures = &reg.counter(prefix + "auth_failures");
  metrics_.malformed = &reg.counter(prefix + "malformed");
  metrics_.macs_computed = &reg.counter(prefix + "macs_computed");
  metrics_.inflight = &reg.gauge(prefix + "inflight");
  metrics_.exec_latency_ns = &reg.histogram("bft.exec_latency_ns");
  metrics_.batch_size = &reg.histogram("batch.size");
  metrics_.batch_hold_ns = &reg.histogram("batch.hold_ns");
  join(config_.group);
  // The state at seq 0 is the genesis snapshot; it seeds state transfer for
  // replicas that fall behind before the first checkpoint.
  stable_snapshot_ = make_snapshot();
  stable_digest_ = checkpoint_digest(0, stable_snapshot_);
  // Open the view-0 span: forensics segment a replica's timeline on
  // view.start / view.end pairs (see enter_view).
  tel_->trace(telemetry::TraceKind::kViewStart, id, 0, view_.value);
}

ReplicaStats Replica::stats() const {
  return ReplicaStats{
      .requests_received = metrics_.requests_received->value(),
      .pre_prepares_sent = metrics_.pre_prepares_sent->value(),
      .prepares_sent = metrics_.prepares_sent->value(),
      .commits_sent = metrics_.commits_sent->value(),
      .replies_sent = metrics_.replies_sent->value(),
      .checkpoints_sent = metrics_.checkpoints_sent->value(),
      .view_changes_sent = metrics_.view_changes_sent->value(),
      .new_views_sent = metrics_.new_views_sent->value(),
      .executed = metrics_.executed->value(),
      .state_transfers = metrics_.state_transfers->value(),
      .auth_failures = metrics_.auth_failures->value(),
      .malformed = metrics_.malformed->value(),
  };
}

// ---------------------------------------------------------------------------
// Packet dispatch
// ---------------------------------------------------------------------------

void Replica::on_packet(const net::Packet& packet) {
  if (packet.from == id()) return;  // multicast loopback; own state recorded at send
  Result<Envelope> decoded = Envelope::decode(packet.payload);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const Envelope env = std::move(decoded).take();
  if (const Status s = verify_envelope(env); !s.is_ok()) {
    metrics_.auth_failures->inc();
    ITDOS_DEBUG(kLog) << id().to_string() << " rejects " << msg_type_name(env.type)
                      << " from " << env.sender.to_string() << ": " << s.to_string();
    return;
  }
  switch (env.type) {
    case MsgType::kRequest: handle_request(env); break;
    case MsgType::kPrePrepare: handle_pre_prepare(env); break;
    case MsgType::kPrepare: handle_prepare(env); break;
    case MsgType::kCommit: handle_commit(env); break;
    case MsgType::kCheckpoint: handle_checkpoint(env); break;
    case MsgType::kViewChange: handle_view_change(env); break;
    case MsgType::kNewView: handle_new_view(env); break;
    case MsgType::kStateRequest: handle_state_request(env); break;
    case MsgType::kStateResponse: handle_state_response(env); break;
    case MsgType::kReply: break;  // replicas do not consume replies
  }
}

Status Replica::verify_envelope(const Envelope& env) const {
  if (env.signature) {
    return keystore_->verify(env.sender, env.body, *env.signature);
  }
  const crypto::MacTag* tag = env.tag_for(id());
  if (tag == nullptr) {
    return error(Errc::kAuthFailure, "no authenticator entry for this replica");
  }
  if (!keys_.verify(env.sender, id(), env.body, *tag)) {
    return error(Errc::kAuthFailure, "bad MAC");
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Sending helpers
// ---------------------------------------------------------------------------

void Replica::multicast_authenticated(MsgType type, BufView body) {
  if (byz_.silent) return;
  Envelope env;
  env.type = type;
  env.sender = id();
  env.body = body;  // shares the chunk; encode() assembles the wire frame once
  for (NodeId replica : config_.replicas) {
    if (replica == id()) continue;
    crypto::MacTag tag = keys_.tag(id(), replica, body);
    metrics_.macs_computed->inc();
    if (byz_.corrupt_macs) tag[0] ^= 0xFF;  // forged HMAC: receivers must reject
    env.auth.emplace_back(replica, tag);
  }
  multicast_to(config_.group, env.encode_into(arena()));
}

void Replica::multicast_signed(MsgType type, BufView body) {
  if (byz_.silent) return;
  Envelope env;
  env.type = type;
  env.sender = id();
  env.body = body;
  env.signature = signing_key_.sign(body);
  BufView encoded = env.encode_into(arena());
  if (type == MsgType::kViewChange) last_view_change_envelope_ = encoded;
  multicast_to(config_.group, std::move(encoded));
}

void Replica::send_authenticated(NodeId to, MsgType type, BufView body) {
  if (byz_.silent) return;
  Envelope env;
  env.type = type;
  env.sender = id();
  env.body = body;
  crypto::MacTag tag = keys_.tag(id(), to, body);
  metrics_.macs_computed->inc();
  if (byz_.corrupt_macs) tag[0] ^= 0xFF;
  env.auth.emplace_back(to, tag);
  send_to(to, env.encode_into(arena()));
}

void Replica::replay_stale_view_change() {
  if (last_view_change_envelope_.empty()) return;
  multicast_to(config_.group, last_view_change_envelope_);
}

void Replica::enter_view(ViewId view) {
  if (view.value == active_view_.value) return;
  tel_->trace(telemetry::TraceKind::kViewEnd, id(), 0, active_view_.value);
  tel_->trace(telemetry::TraceKind::kViewStart, id(), 0, view.value);
  active_view_ = view;
}

// ---------------------------------------------------------------------------
// Normal case
// ---------------------------------------------------------------------------

bool Replica::in_window(std::uint64_t seq) const {
  return counters::in_window(seq, stable_seq_,
                             static_cast<std::uint64_t>(config_.watermark_window()));
}

void Replica::handle_request(const Envelope& env) {
  Result<RequestMsg> decoded = RequestMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const RequestMsg request = std::move(decoded).take();
  if (request.client != env.sender) {
    metrics_.auth_failures->inc();  // spoofed client id
    return;
  }
  metrics_.requests_received->inc();
  tel_->trace(telemetry::TraceKind::kBftRequest, id(), app_->trace_of(request.payload));

  ClientRecord& record = clients_[request.client];
  if (record.executed.contains(request.timestamp)) {
    // Duplicate of an executed request: retransmit the cached reply (the
    // cache is windowed; requests older than it get nothing — the client
    // has long moved on).
    const auto cached = record.replies.find(request.timestamp);
    if (cached != record.replies.end()) {
      ReplyMsg reply;
      reply.view = view_;
      reply.timestamp = request.timestamp;
      reply.client = request.client;
      reply.replica = id();
      reply.result = cached->second;
      send_authenticated(request.client, MsgType::kReply, reply.encode());
      metrics_.replies_sent->inc();
    }
    return;
  }
  if (in_view_change_) return;  // client will retransmit

  if (is_primary()) {
    if (record.proposed.contains(request.timestamp)) return;  // already in pipeline
    record.proposed.insert(request.timestamp);
    if (config_.batch.enabled()) {
      former_.enqueue(env.body, app_->urgent(request.payload),
                      app_->trace_of(request.payload), now());
      pump_former();
      arm_request_timer();
    } else {
      assign_and_propose(request, env.body);
    }
  } else {
    // Relay the (still client-authenticated) request to the primary and
    // hold the primary accountable for ordering it.
    if (!record.forwarded.contains(request.timestamp)) {
      record.forwarded.insert(request.timestamp);
      if (!byz_.silent) send_to(config_.primary_for(view_), env.encode_into(arena()));
      arm_request_timer();
    }
  }
}

void Replica::assign_and_propose(const RequestMsg& request, const BufView& encoded) {
  const std::uint64_t seq = std::max(next_seq_, last_executed_) + 1;
  if (!in_window(seq)) {
    proposal_backlog_.push_back(encoded);
    return;
  }
  next_seq_ = seq;
  PrePrepareMsg pp;
  pp.view = view_;
  pp.seq = SeqNum(seq);
  pp.request = encoded;
  pp.req_digest = proposal_digest(ByteView(encoded), /*is_batch=*/false);
  LogEntry& entry = log_[seq];
  entry.pre_prepare = pp;
  entry.trace = app_->trace_of(request.payload);
  entry.first_seen = now();
  if (byz_.equivocate) {
    // Equivocating primary: internally consistent but CONFLICTING proposals
    // for the same (view, seq) — even-rank backups get the real request,
    // odd-rank backups a mutated one (valid digest, altered payload).
    // Neither side can gather a matching quorum; the view-change timeout is
    // the documented recovery path.
    RequestMsg lie_request = request;
    Bytes lie_payload = request.payload.clone_bytes();  // copy-on-write
    lie_payload.push_back(0x5a);
    lie_request.payload = BufView(std::move(lie_payload));
    PrePrepareMsg lie = pp;
    lie.request = lie_request.encode();
    lie.req_digest = proposal_digest(ByteView(lie.request), /*is_batch=*/false);
    for (int rank = 0; rank < config_.n(); ++rank) {
      const NodeId backup = config_.replicas[static_cast<std::size_t>(rank)];
      if (backup == id()) continue;
      const PrePrepareMsg& variant = (rank % 2 == 0) ? pp : lie;
      send_authenticated(backup, MsgType::kPrePrepare, variant.encode());
    }
  } else {
    multicast_authenticated(MsgType::kPrePrepare, pp.encode());
  }
  metrics_.pre_prepares_sent->inc();
  update_inflight_gauge();
  tel_->trace(telemetry::TraceKind::kBftPrePrepare, id(), entry.trace, view_.value, seq);
  arm_request_timer();
}

void Replica::drain_proposal_backlog() {
  if (!is_primary() || in_view_change_) return;
  while (!proposal_backlog_.empty()) {
    const BufView encoded = proposal_backlog_.front();
    const std::uint64_t seq = std::max(next_seq_, last_executed_) + 1;
    if (!in_window(seq)) break;
    proposal_backlog_.pop_front();
    Result<RequestMsg> request = RequestMsg::decode(encoded);
    if (!request.is_ok()) continue;
    assign_and_propose(request.value(), encoded);
  }
  pump_former();
}

void Replica::pump_former() {
  if (is_primary() && !in_view_change_) {
    while (former_.ripe(now())) {
      const std::uint64_t seq = std::max(next_seq_, last_executed_) + 1;
      if (!in_window(seq)) break;  // window full; pumped again on make_stable
      propose_batch(former_.form());
    }
  }
  // (Re)arm the hold timer for the oldest still-parked entry, so a batch
  // that never fills its caps still flushes after max_hold_ns.
  if (hold_timer_armed_) {
    cancel_timer(hold_timer_);
    hold_timer_armed_ = false;
  }
  if (!is_primary() || in_view_change_) return;
  if (const std::optional<SimTime> deadline = former_.deadline()) {
    hold_timer_armed_ = true;
    hold_timer_ = set_timer(std::max<std::int64_t>(*deadline - now(), 1), [this] {
      hold_timer_armed_ = false;
      pump_former();
    });
  }
}

void Replica::propose_batch(std::vector<batch::PendingEntry> entries) {
  if (entries.empty()) return;
  const std::uint64_t seq = std::max(next_seq_, last_executed_) + 1;
  next_seq_ = seq;

  batch::BatchMsg batch;
  batch.entries.reserve(entries.size());
  for (const batch::PendingEntry& e : entries) batch.entries.push_back(e.encoded);

  PrePrepareMsg pp;
  pp.view = view_;
  pp.seq = SeqNum(seq);
  pp.is_batch = true;
  pp.request = batch.encode_into(arena());  // the one marshal of the batch
  pp.req_digest = proposal_digest(ByteView(pp.request), /*is_batch=*/true);

  LogEntry& entry = log_[seq];
  entry.pre_prepare = pp;
  entry.first_seen = now();
  for (const batch::PendingEntry& e : entries) {
    if (entry.trace == 0) entry.trace = e.trace;
    metrics_.batch_hold_ns->record(now() - e.enqueued_at);
  }
  metrics_.batch_size->record(static_cast<std::int64_t>(entries.size()));

  if (byz_.equivocate) {
    // Equivocating primary, batch edition: the lie mutates the FIRST entry's
    // payload (still a decodable batch with a valid digest) so even- and
    // odd-rank backups prepare conflicting batch contents.
    batch::BatchMsg lie_batch = batch;
    if (Result<RequestMsg> first = RequestMsg::decode(batch.entries.front());
        first.is_ok()) {
      RequestMsg lie_request = first.value();
      Bytes lie_payload = lie_request.payload.clone_bytes();  // copy-on-write
      lie_payload.push_back(0x5a);
      lie_request.payload = BufView(std::move(lie_payload));
      lie_batch.entries.front() = BufView(lie_request.encode());
    }
    PrePrepareMsg lie = pp;
    lie.request = lie_batch.encode_into(arena());
    lie.req_digest = proposal_digest(ByteView(lie.request), /*is_batch=*/true);
    for (int rank = 0; rank < config_.n(); ++rank) {
      const NodeId backup = config_.replicas[static_cast<std::size_t>(rank)];
      if (backup == id()) continue;
      const PrePrepareMsg& variant = (rank % 2 == 0) ? pp : lie;
      send_authenticated(backup, MsgType::kPrePrepare, variant.encode());
    }
  } else {
    multicast_authenticated(MsgType::kPrePrepare, pp.encode());
  }
  metrics_.pre_prepares_sent->inc();
  update_inflight_gauge();
  tel_->trace(telemetry::TraceKind::kBftPrePrepare, id(), entry.trace, view_.value, seq);
  arm_request_timer();
}

void Replica::update_inflight_gauge() {
  const std::int64_t inflight =
      std::max<std::int64_t>(0, counters::distance(next_seq_, last_executed_));
  metrics_.inflight->set(inflight);
}

void Replica::handle_pre_prepare(const Envelope& env) {
  if (in_view_change_) return;
  if (env.sender != config_.primary_for(view_)) return;  // only the primary proposes
  Result<PrePrepareMsg> decoded = PrePrepareMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const PrePrepareMsg pp = std::move(decoded).take();
  if (pp.view != view_) return;
  const std::uint64_t seq = pp.seq.value;
  if (!in_window(seq)) {
    observe_seq(seq);  // may reveal that we are far behind
    return;
  }

  // Digest must bind the piggybacked request AND its framing (or be the
  // null digest): proposal_digest covers is_batch, so the same bytes cannot
  // be prepared both as a batch and as a single request.
  std::uint64_t trace = 0;
  if (pp.is_null_request()) {
    if (pp.req_digest != Digest{}) return;
  } else {
    if (proposal_digest(ByteView(pp.request), pp.is_batch) != pp.req_digest) return;
    if (pp.is_batch) {
      // Every entry must be a decodable request — a batch is accepted (and
      // later executed) only as a whole.
      Result<batch::BatchMsg> decoded_batch = batch::BatchMsg::decode(pp.request);
      if (!decoded_batch.is_ok()) {
        metrics_.malformed->inc();
        return;
      }
      const std::vector<BufView>& entries = decoded_batch.value().entries;
      // The batch must respect the cluster's formation policy, not just the
      // protocol-wide ceiling: fairness and per-slot execution cost are
      // sized to the configured caps, and only a misbehaving primary packs
      // past them. Mirror the former's cut rule — a single entry may exceed
      // the byte cap on its own, a multi-entry batch may not.
      std::size_t batch_bytes = 0;
      for (const BufView& entry_bytes : entries) batch_bytes += entry_bytes.size();
      if (entries.size() >
              static_cast<std::size_t>(std::max(config_.batch.max_entries, 1)) ||
          (entries.size() > 1 && batch_bytes > config_.batch.max_bytes)) {
        metrics_.malformed->inc();
        return;
      }
      for (const BufView& entry_bytes : entries) {
        Result<RequestMsg> request = RequestMsg::decode(entry_bytes);
        if (!request.is_ok()) {
          metrics_.malformed->inc();
          return;
        }
        if (trace == 0) trace = app_->trace_of(request.value().payload);
        // Remember each proposal so retransmissions are not re-forwarded —
        // but never track fabricated far-future timestamps (see
        // plausible_timestamp): they would prune the bounded dedup windows
        // over live requests.
        ClientRecord& record = clients_[request.value().client];
        if (plausible_timestamp(record.executed, request.value().timestamp)) {
          record.proposed.insert(request.value().timestamp);
        }
      }
    } else {
      Result<RequestMsg> request = RequestMsg::decode(pp.request);
      if (!request.is_ok()) {
        metrics_.malformed->inc();
        return;
      }
      trace = app_->trace_of(request.value().payload);
      ClientRecord& record = clients_[request.value().client];
      if (plausible_timestamp(record.executed, request.value().timestamp)) {
        record.proposed.insert(request.value().timestamp);
      }
    }
  }

  LogEntry& entry = log_[seq];
  if (entry.pre_prepare && counters::before(entry.pre_prepare->view.value, pp.view.value) &&
      !entry.committed) {
    // The logged proposal is from a DEAD view and never committed. The
    // current view's primary owns this seq now; without superseding the
    // stale entry, its digest would make the fresh proposal look like a
    // duplicate and no backup would ever prepare it — the group would
    // view-change forever (uncommitted entries are exactly the ones a
    // new-view certificate may not carry).
    entry.pre_prepare.reset();
    entry.prepares.clear();
    entry.commits.clear();
  }
  if (entry.pre_prepare && entry.pre_prepare->req_digest != pp.req_digest) {
    // Conflicting proposal for (view, seq): Byzantine primary. Keep the
    // first; the view-change timeout deals with the equivocation.
    return;
  }
  if (entry.pre_prepare) return;  // duplicate
  entry.pre_prepare = pp;
  entry.trace = trace;
  entry.first_seen = now();

  PrepareMsg prepare;
  prepare.view = view_;
  prepare.seq = pp.seq;
  prepare.req_digest = pp.req_digest;
  prepare.replica = id();
  entry.prepares[id()] = pp.req_digest;
  multicast_authenticated(MsgType::kPrepare, prepare.encode());
  metrics_.prepares_sent->inc();
  tel_->trace(telemetry::TraceKind::kBftPrepare, id(), entry.trace, view_.value, seq);
  arm_request_timer();
  maybe_send_commit(seq);
}

void Replica::handle_prepare(const Envelope& env) {
  if (in_view_change_) return;
  if (config_.rank_of(env.sender) < 0) return;
  Result<PrepareMsg> decoded = PrepareMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const PrepareMsg msg = std::move(decoded).take();
  if (msg.view != view_ || msg.replica != env.sender) return;
  if (!in_window(msg.seq.value)) return;
  if (env.sender == config_.primary_for(view_)) return;  // primary never prepares
  log_[msg.seq.value].prepares[msg.replica] = msg.req_digest;
  maybe_send_commit(msg.seq.value);
}

bool Replica::entry_prepared(const LogEntry& entry) const {
  if (!entry.pre_prepare) return false;
  int matching = 0;
  for (const auto& [replica, digest] : entry.prepares) {
    if (digest == entry.pre_prepare->req_digest) ++matching;
  }
  return matching >= 2 * config_.f;
}

void Replica::maybe_send_commit(std::uint64_t seq) {
  LogEntry& entry = log_[seq];
  if (!entry_prepared(entry)) return;
  if (entry.commits.contains(id())) return;  // commit already sent
  CommitMsg commit;
  commit.view = view_;
  commit.seq = SeqNum(seq);
  commit.req_digest = entry.pre_prepare->req_digest;
  commit.replica = id();
  entry.commits[id()] = commit.req_digest;
  multicast_authenticated(MsgType::kCommit, commit.encode());
  metrics_.commits_sent->inc();
  tel_->trace(telemetry::TraceKind::kBftCommit, id(), entry.trace, view_.value, seq);
  if (entry_committed(entry)) {
    entry.committed = true;
    try_execute();
  }
}

void Replica::handle_commit(const Envelope& env) {
  if (in_view_change_) return;
  if (config_.rank_of(env.sender) < 0) return;
  Result<CommitMsg> decoded = CommitMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const CommitMsg msg = std::move(decoded).take();
  if (msg.view != view_ || msg.replica != env.sender) return;
  if (!in_window(msg.seq.value)) {
    observe_seq(msg.seq.value);
    return;
  }
  LogEntry& entry = log_[msg.seq.value];
  entry.commits[msg.replica] = msg.req_digest;
  if (entry_committed(entry)) {
    entry.committed = true;
    try_execute();
  }
  maybe_send_commit(msg.seq.value);
}

bool Replica::entry_committed(const LogEntry& entry) const {
  if (!entry_prepared(entry)) return false;
  int matching = 0;
  for (const auto& [replica, digest] : entry.commits) {
    if (digest == entry.pre_prepare->req_digest) ++matching;
  }
  return matching >= config_.quorum();
}

void Replica::try_execute() {
  while (true) {
    const auto it = log_.find(last_executed_ + 1);
    if (it == log_.end() || !it->second.committed || it->second.executed) break;
    execute_entry(it->first, it->second);
  }
  // Liveness timer: keep it armed while ordered-but-unexecuted work exists.
  bool pending = false;
  for (const auto& [seq, entry] : log_) {
    if (counters::after(seq, last_executed_) && entry.pre_prepare) {
      pending = true;
      break;
    }
  }
  for (const auto& [client, record] : clients_) {
    // Relayed (or, on the primary, parked-for-formation) but not executed.
    if (record.forwarded.floor() != 0 &&
        !record.executed.contains(record.forwarded.floor())) {
      pending = true;
      break;
    }
    for (const std::uint64_t ts : record.forwarded.sparse()) {
      if (!record.executed.contains(ts)) {
        pending = true;
        break;
      }
    }
    if (pending) break;
  }
  if (!pending && is_primary() && !former_.empty()) pending = true;
  if (!pending) disarm_request_timer();
}

void Replica::execute_entry(std::uint64_t seq, LogEntry& entry) {
  entry.executed = true;
  last_executed_ = seq;
  if (entry.first_seen.ns >= 0) {
    metrics_.exec_latency_ns->record(now() - entry.first_seen);
  }
  tel_->trace(telemetry::TraceKind::kBftExecute, id(), entry.trace, seq);
  if (execution_observer_) execution_observer_(SeqNum(seq), entry.pre_prepare->req_digest);
  if (!entry.pre_prepare->is_null_request()) {
    if (entry.pre_prepare->is_batch) {
      // Unpack the batch and execute its entries in formation order; each
      // request gets its own dedup decision and its own REPLY. (The batch
      // was validated entry-by-entry at pre-prepare time; a decode failure
      // here would mean the digest check was bypassed, so just skip.)
      Result<batch::BatchMsg> batch = batch::BatchMsg::decode(entry.pre_prepare->request);
      if (batch.is_ok()) {
        for (const BufView& entry_bytes : batch.value().entries) {
          Result<RequestMsg> decoded = RequestMsg::decode(entry_bytes);
          if (decoded.is_ok()) execute_request(decoded.value(), seq);
        }
      }
    } else {
      Result<RequestMsg> decoded = RequestMsg::decode(entry.pre_prepare->request);
      if (decoded.is_ok()) execute_request(decoded.value(), seq);
    }
  }
  update_inflight_gauge();
  if (seq % static_cast<std::uint64_t>(config_.checkpoint_interval) == 0) {
    take_checkpoint(seq);
  }
}

void Replica::execute_request(const RequestMsg& request, std::uint64_t seq) {
  ClientRecord& record = clients_[request.client];
  if (!record.executed.contains(request.timestamp)) {
    if (!plausible_timestamp(record.executed, request.timestamp)) {
      // A fabricated far-future timestamp (only a Byzantine primary can
      // order one — entries are not client-authenticated). Executing it
      // would let enough of them prune the executed window's floor over the
      // client's live timestamps. Skip it entirely: the executed window is
      // replicated state, so every correct replica skips identically.
      return;
    }
    const Bytes result = app_->execute(request.payload, request.client, SeqNum(seq));
    record.executed.insert(request.timestamp);
    if (counters::after(request.timestamp, record.last_timestamp)) {
      record.last_timestamp = request.timestamp;
    }
    record.replies[request.timestamp] = result;
    while (record.replies.size() > kReplyCacheSize) {
      record.replies.erase(record.replies.begin());
    }
    metrics_.executed->inc();
  }
  // Reply only from cache. A duplicate whose cached reply was evicted gets
  // nothing (like the handle_request retransmit path): correct replicas
  // evict identically, so answering with an empty placeholder would let
  // f+1 of them form a bogus quorum at a client still awaiting the result.
  const auto cached = record.replies.find(request.timestamp);
  if (cached != record.replies.end()) send_reply(request, cached->second);
}

void Replica::send_reply(const RequestMsg& request, const Bytes& result) {
  ReplyMsg reply;
  reply.view = view_;
  reply.timestamp = request.timestamp;
  reply.client = request.client;
  reply.replica = id();
  reply.result = result;
  send_authenticated(request.client, MsgType::kReply, reply.encode());
  metrics_.replies_sent->inc();
}

// ---------------------------------------------------------------------------
// Checkpoints and state transfer
// ---------------------------------------------------------------------------

Bytes Replica::make_snapshot() const {
  // Snapshot = client table + application state. The client table must be
  // part of the checkpointed state or a recovering replica would re-execute
  // retransmitted requests. The executed window (floor + sparse set) and
  // the reply cache are replicated state: every correct replica executes
  // the same requests in the same order, so the encodings agree byte-wise.
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_uint32(static_cast<std::uint32_t>(clients_.size()));
  for (const auto& [client, record] : clients_) {
    enc.write_uint64(client.value);
    enc.write_uint64(record.last_timestamp);
    enc.write_uint64(record.executed.floor());
    enc.write_uint32(static_cast<std::uint32_t>(record.executed.sparse().size()));
    for (const std::uint64_t ts : record.executed.sparse()) enc.write_uint64(ts);
    enc.write_uint32(static_cast<std::uint32_t>(record.replies.size()));
    for (const auto& [ts, reply] : record.replies) {
      enc.write_uint64(ts);
      enc.write_bytes(reply);
    }
  }
  enc.write_bytes(app_->snapshot());
  return enc.take();
}

Status Replica::install_snapshot(std::uint64_t seq, const Digest& digest,
                                 ByteView snapshot) {
  if (checkpoint_digest(seq, snapshot) != digest) {
    return error(Errc::kAuthFailure, "snapshot does not match checkpoint digest");
  }
  cdr::Decoder dec(snapshot, cdr::ByteOrder::kLittleEndian);
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t client_count, dec.read_uint32());
  if (client_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile snapshot client count");
  }
  std::map<NodeId, ClientRecord> clients;
  for (std::uint32_t i = 0; i < client_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t client, dec.read_uint64());
    ClientRecord record;
    ITDOS_ASSIGN_OR_RETURN(record.last_timestamp, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t exec_floor, dec.read_uint64());
    record.executed.reset_to(exec_floor);
    ITDOS_ASSIGN_OR_RETURN(std::uint32_t sparse_count, dec.read_uint32());
    if (sparse_count > dec.remaining()) {
      return error(Errc::kMalformedMessage, "hostile snapshot sparse count");
    }
    for (std::uint32_t j = 0; j < sparse_count; ++j) {
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t ts, dec.read_uint64());
      record.executed.insert(ts);
    }
    ITDOS_ASSIGN_OR_RETURN(std::uint32_t reply_count, dec.read_uint32());
    if (reply_count > dec.remaining()) {
      return error(Errc::kMalformedMessage, "hostile snapshot reply count");
    }
    for (std::uint32_t j = 0; j < reply_count; ++j) {
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t ts, dec.read_uint64());
      ITDOS_ASSIGN_OR_RETURN(record.replies[ts], dec.read_bytes());
    }
    record.proposed = record.executed;
    record.forwarded = record.executed;
    clients[NodeId(client)] = record;
  }
  ITDOS_ASSIGN_OR_RETURN(Bytes app_state, dec.read_bytes());
  ITDOS_RETURN_IF_ERROR(app_->restore(app_state));

  clients_ = std::move(clients);
  last_executed_ = seq;
  stable_seq_ = seq;
  stable_digest_ = digest;
  stable_snapshot_ = Bytes(snapshot.begin(), snapshot.end());
  // Drop everything at or below the installed checkpoint.
  log_.erase(log_.begin(), log_.upper_bound(seq));
  checkpoint_votes_.erase(checkpoint_votes_.begin(), checkpoint_votes_.upper_bound(seq));
  pending_snapshots_.erase(pending_snapshots_.begin(),
                           pending_snapshots_.upper_bound(seq));
  metrics_.state_transfers->inc();
  tel_->trace(telemetry::TraceKind::kBftStateTransfer, id(), 0, seq);
  try_execute();
  return Status::ok();
}

void Replica::take_checkpoint(std::uint64_t seq) {
  const Bytes snapshot = make_snapshot();
  const Digest digest = checkpoint_digest(seq, snapshot);
  pending_snapshots_[seq] = snapshot;
  CheckpointMsg msg;
  msg.seq = SeqNum(seq);
  msg.state_digest = digest;
  msg.replica = id();
  multicast_authenticated(MsgType::kCheckpoint, msg.encode());
  metrics_.checkpoints_sent->inc();
  tel_->trace(telemetry::TraceKind::kBftCheckpoint, id(), 0, seq);
  process_checkpoint_vote(msg);
}

void Replica::handle_checkpoint(const Envelope& env) {
  if (config_.rank_of(env.sender) < 0) return;
  Result<CheckpointMsg> decoded = CheckpointMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const CheckpointMsg msg = std::move(decoded).take();
  if (msg.replica != env.sender) return;
  if (counters::before_eq(msg.seq.value, stable_seq_)) return;
  process_checkpoint_vote(msg);
}

void Replica::process_checkpoint_vote(const CheckpointMsg& msg) {
  auto& votes = checkpoint_votes_[msg.seq.value][msg.state_digest];
  votes.insert(msg.replica);
  if (static_cast<int>(votes.size()) < config_.quorum()) return;
  if (counters::before_eq(msg.seq.value, stable_seq_)) return;

  const auto local = pending_snapshots_.find(msg.seq.value);
  if (local != pending_snapshots_.end() &&
      checkpoint_digest(msg.seq.value, local->second) == msg.state_digest) {
    make_stable(msg.seq.value, msg.state_digest);
  } else {
    // We have not reached (or disagree with) this checkpoint: fetch state
    // from a replica in the certificate.
    request_state_transfer(msg.seq.value, msg.state_digest);
  }
}

void Replica::make_stable(std::uint64_t seq, const Digest& digest) {
  stable_seq_ = seq;
  stable_digest_ = digest;
  stable_snapshot_ = std::move(pending_snapshots_[seq]);
  log_.erase(log_.begin(), log_.upper_bound(seq));
  checkpoint_votes_.erase(checkpoint_votes_.begin(), checkpoint_votes_.upper_bound(seq));
  pending_snapshots_.erase(pending_snapshots_.begin(),
                           pending_snapshots_.upper_bound(seq));
  drain_proposal_backlog();
}

void Replica::request_state_transfer(std::uint64_t seq, const Digest& digest) {
  if (state_transfer_target_ && counters::after_eq(state_transfer_target_->first, seq)) return;
  state_transfer_target_ = {seq, digest};
  // Ask a replica that vouched for this checkpoint.
  const auto votes = checkpoint_votes_.find(seq);
  if (votes == checkpoint_votes_.end()) return;
  const auto digest_votes = votes->second.find(digest);
  if (digest_votes == votes->second.end()) return;
  for (NodeId replica : digest_votes->second) {
    if (replica == id()) continue;
    StateRequestMsg msg;
    msg.seq = SeqNum(seq);
    msg.requester = id();
    send_authenticated(replica, MsgType::kStateRequest, msg.encode());
    break;
  }
}

void Replica::handle_state_request(const Envelope& env) {
  if (config_.rank_of(env.sender) < 0) return;
  Result<StateRequestMsg> decoded = StateRequestMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const StateRequestMsg msg = std::move(decoded).take();
  if (msg.requester != env.sender) return;
  StateResponseMsg response;
  response.replica = id();
  response.view = view_;
  if (counters::after_eq(stable_seq_, msg.seq.value) && !stable_snapshot_.empty()) {
    // Prefer the stable checkpoint: identical across correct replicas, so
    // requesters assemble the f+1 weak certificate immediately.
    response.seq = SeqNum(stable_seq_);
    response.state_digest = stable_digest_;
    response.snapshot = stable_snapshot_;
  } else if (counters::after_eq(last_executed_, msg.seq.value)) {
    // Catch-up beyond the last stable checkpoint: a fresh snapshot of the
    // current execution point (peers at the same point produce identical
    // bytes, so the weak certificate still forms).
    response.seq = SeqNum(last_executed_);
    response.snapshot = make_snapshot();
    response.state_digest = checkpoint_digest(last_executed_, response.snapshot);
  } else {
    return;  // cannot help
  }
  send_authenticated(env.sender, MsgType::kStateResponse, response.encode());
}

void Replica::request_catch_up() {
  StateRequestMsg request;
  request.seq = SeqNum(last_executed_ + 1);
  request.requester = id();
  multicast_authenticated(MsgType::kStateRequest, request.encode());
}

void Replica::observe_seq(std::uint64_t seq) {
  max_observed_seq_ = std::max(max_observed_seq_, seq);
  if (in_window(seq) || counters::before_eq(seq, stable_seq_)) return;
  if (catch_up_cooldown_) return;
  // Authenticated traffic beyond our window: the group has moved on without
  // us. Ask for state (f+1 matching responses certify it) and back off.
  catch_up_cooldown_ = true;
  request_catch_up();
  set_timer(config_.view_change_timeout_ns * 2, [this] {
    catch_up_cooldown_ = false;
    if (max_observed_seq_ > last_executed_ &&
        !in_window(max_observed_seq_)) {
      observe_seq(max_observed_seq_);  // still behind: probe again
    }
  });
}

void Replica::help_laggard(NodeId laggard) {
  // A peer's VIEW-CHANGE revealed it is behind a group that is otherwise
  // live (nobody joins its view change). Send it our current state; f+1
  // matching offers let it rejoin (the Castro-Liskov implementation's
  // status/retransmission mechanism serves this role).
  StateResponseMsg response;
  response.replica = id();
  response.view = view_;
  response.seq = SeqNum(last_executed_);
  response.snapshot = make_snapshot();
  response.state_digest = checkpoint_digest(last_executed_, response.snapshot);
  send_authenticated(laggard, MsgType::kStateResponse, response.encode());
}

void Replica::after_install(ViewId sender_view) {
  state_transfer_target_.reset();
  state_offers_.erase(state_offers_.begin(),
                      state_offers_.upper_bound(last_executed_));
  // If observed traffic shows we are STILL behind (e.g. we installed an old
  // stable checkpoint but commits continued past it), keep probing.
  if (max_observed_seq_ > last_executed_ && !catch_up_cooldown_) {
    catch_up_cooldown_ = true;
    set_timer(config_.view_change_timeout_ns, [this] {
      catch_up_cooldown_ = false;
      if (max_observed_seq_ > last_executed_) request_catch_up();
    });
  }
  // A replica that fell behind may have been spinning in view changes the
  // rest of the group never joined; those view advances were unilateral and
  // the certified snapshot proves the group is live. Abandon the inflated
  // view and rejoin normal operation in the helper's view. (The residual
  // risk — our stale VIEW-CHANGE being used in a later NEW-VIEW — is
  // mitigated by recipients keeping only the LATEST view-change per sender;
  // see DESIGN.md.)
  if (in_view_change_ || counters::after(sender_view.value, view_.value)) {
    view_ = sender_view;
  }
  in_view_change_ = false;
  view_change_attempts_ = 0;
  enter_view(view_);
  disarm_request_timer();
}

void Replica::handle_state_response(const Envelope& env) {
  if (config_.rank_of(env.sender) < 0) return;
  Result<StateResponseMsg> decoded = StateResponseMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const StateResponseMsg msg = std::move(decoded).take();
  if (counters::before(msg.seq.value, last_executed_)) return;  // nothing new
  if (msg.seq.value == last_executed_ && !in_view_change_) return;
  // seq == last_executed_ while in a view change is the "stuck but current"
  // case: our spurious timeout started a view change nobody joined; f+1
  // peers attesting the state we already hold prove the group is live and
  // let us rejoin (handled below at certification time).

  // Strong certification: the response matches a pending target derived
  // from a 2f+1 checkpoint certificate, or such a certificate exists.
  bool certified = false;
  if (state_transfer_target_ && msg.seq.value == state_transfer_target_->first &&
      msg.state_digest == state_transfer_target_->second) {
    certified = true;
  } else {
    const auto votes = checkpoint_votes_.find(msg.seq.value);
    if (votes != checkpoint_votes_.end()) {
      const auto digest_votes = votes->second.find(msg.state_digest);
      certified = digest_votes != votes->second.end() &&
                  static_cast<int>(digest_votes->second.size()) >= config_.quorum();
    }
  }
  if (!certified) {
    // Weak certificate: f+1 distinct replicas offering the same snapshot
    // digest — at least one of them is correct.
    if (!in_window(msg.seq.value) &&
        counters::after(msg.seq.value, stable_seq_ + 2 *
        static_cast<std::uint64_t>(config_.watermark_window()))) {
      return;  // hostile far-future offer; bound memory
    }
    auto& per_seq = state_offers_[msg.seq.value];
    if (per_seq.size() >= 8 && !per_seq.contains(msg.state_digest)) return;
    StateOffer& offer = per_seq[msg.state_digest];
    offer.senders.insert(env.sender);
    offer.snapshot = msg.snapshot;
    certified = static_cast<int>(offer.senders.size()) >= config_.f + 1;
  }
  if (!certified) return;
  if (msg.seq.value == last_executed_) {
    // Rejoin-without-install: verify the attested state matches what we
    // already executed, then simply resume in the peers' view.
    const Bytes own = make_snapshot();
    if (checkpoint_digest(last_executed_, own) == msg.state_digest) {
      after_install(msg.view);
    }
    return;
  }
  if (install_snapshot(msg.seq.value, msg.state_digest, msg.snapshot).is_ok()) {
    after_install(msg.view);
  }
}

// ---------------------------------------------------------------------------
// View change
// ---------------------------------------------------------------------------

void Replica::arm_request_timer() {
  if (request_timer_armed_) return;
  request_timer_armed_ = true;
  request_timer_ = set_timer(config_.view_change_timeout_ns, [this] {
    request_timer_armed_ = false;
    on_request_timeout();
  });
}

void Replica::disarm_request_timer() {
  if (!request_timer_armed_) return;
  cancel_timer(request_timer_);
  request_timer_armed_ = false;
}

void Replica::on_request_timeout() {
  ITDOS_INFO(kLog) << id().to_string() << " timeout in view " << view_.to_string()
                   << (in_view_change_ ? " (view change stalled)" : "");
  start_view_change(ViewId(view_.value + 1));
}

void Replica::start_view_change(ViewId new_view) {
  if (counters::before_eq(new_view.value, view_.value) && in_view_change_) return;
  if (counters::before_eq(new_view.value, highest_view_change_sent_.value)) return;
  highest_view_change_sent_ = new_view;
  view_ = new_view;
  in_view_change_ = true;
  disarm_request_timer();
  // Parked formation entries die with the view: their dedup marks are reset
  // when the new view is adopted, so clients recover them by retransmission.
  former_.clear();
  if (hold_timer_armed_) {
    cancel_timer(hold_timer_);
    hold_timer_armed_ = false;
  }

  ViewChangeMsg msg;
  msg.new_view = new_view;
  msg.stable_seq = SeqNum(stable_seq_);
  msg.stable_digest = stable_digest_;
  msg.replica = id();
  for (const auto& [seq, entry] : log_) {
    if (counters::before_eq(seq, stable_seq_)) continue;
    if (!entry_prepared(entry)) continue;
    PreparedProof proof;
    proof.view = entry.pre_prepare->view;
    proof.seq = SeqNum(seq);
    proof.req_digest = entry.pre_prepare->req_digest;
    proof.is_batch = entry.pre_prepare->is_batch;  // atomic re-proposal
    proof.request = entry.pre_prepare->request;
    msg.prepared.push_back(std::move(proof));
  }
  const BufView body = msg.encode();
  SignedViewChange svc;
  svc.msg = msg;
  svc.signature = signing_key_.sign(body);
  view_change_msgs_[new_view][id()] = svc;
  multicast_signed(MsgType::kViewChange, body);
  metrics_.view_changes_sent->inc();
  tel_->trace(telemetry::TraceKind::kBftViewChange, id(), 0, new_view.value);

  // If the new view stalls too, move on to the next one — with exponential
  // backoff (PBFT: "the timeout for the new view is twice the previous
  // one"), so a replica whose peers are simply absent does not flood the
  // network with view changes.
  view_change_attempts_ = std::min(view_change_attempts_ + 1, 16);
  request_timer_armed_ = true;
  request_timer_ = set_timer(
      config_.view_change_timeout_ns * (std::int64_t{1} << view_change_attempts_),
      [this] {
        request_timer_armed_ = false;
        on_request_timeout();
      });

  if (config_.primary_for(new_view) == id()) {
    process_view_change_quorum(new_view);
  }
}

void Replica::handle_view_change(const Envelope& env) {
  if (config_.rank_of(env.sender) < 0) return;
  if (!env.signature) return;  // view changes must be signed
  Result<ViewChangeMsg> decoded = ViewChangeMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const ViewChangeMsg msg = std::move(decoded).take();
  if (msg.replica != env.sender) return;
  if (counters::before_eq(msg.new_view.value, view_.value) && !in_view_change_) return;

  SignedViewChange svc;
  svc.msg = msg;
  svc.signature = *env.signature;
  view_change_msgs_[msg.new_view][env.sender] = svc;
  // Hygiene: a peer probing ever-higher views must not grow this map without
  // bound; anything at or below our current view is dead, and we only ever
  // act on the lowest joinable future view, so keep a bounded horizon.
  view_change_msgs_.erase(view_change_msgs_.begin(),
                          view_change_msgs_.lower_bound(ViewId(view_.value)));
  while (view_change_msgs_.size() > 8) {
    view_change_msgs_.erase(std::prev(view_change_msgs_.end()));
  }

  // Join rule: f+1 replicas ahead of us means our timer is just slow.
  bool joined = false;
  for (const auto& [target_view, msgs] : view_change_msgs_) {
    if (counters::before_eq(target_view.value, view_.value)) continue;
    if (static_cast<int>(msgs.size()) >= config_.f + 1 &&
        counters::after(target_view.value, highest_view_change_sent_.value)) {
      start_view_change(target_view);
      joined = true;
      break;
    }
  }
  if (config_.primary_for(msg.new_view) == id()) {
    process_view_change_quorum(msg.new_view);
  }
  // Laggard help: the sender is alone in a future view while we are not
  // joining — either it missed messages we will never retransmit through
  // the normal case, or its timeout was spurious and it is stuck. Offer it
  // our state (f+1 such offers certify it / prove the group is live).
  if (!joined && !in_view_change_ && counters::after(msg.new_view.value, view_.value) &&
      counters::after_eq(last_executed_, msg.stable_seq.value)) {
    help_laggard(env.sender);
  }
}

std::vector<PrePrepareMsg> Replica::compute_new_view_pre_prepares(
    ViewId view, const std::vector<SignedViewChange>& vcs, std::uint64_t* min_s_out,
    std::uint64_t* max_s_out) const {
  // min_s: the highest stable point vouched for by f+1 view changes (at
  // least one of which is from a correct replica). Taking the plain maximum
  // would let one Byzantine replica inflate its stable_seq and cause
  // committed requests below it to be silently skipped from re-proposal.
  std::vector<std::uint64_t> stable_claims;
  std::uint64_t max_s = 0;
  for (const SignedViewChange& svc : vcs) {
    stable_claims.push_back(svc.msg.stable_seq.value);
    for (const PreparedProof& proof : svc.msg.prepared) {
      max_s = std::max(max_s, proof.seq.value);
    }
  }
  std::sort(stable_claims.begin(), stable_claims.end(), std::greater<>());
  const std::size_t pick = std::min(stable_claims.size() - 1,
                                    static_cast<std::size_t>(config_.f));
  std::uint64_t min_s = stable_claims[pick];
  max_s = std::max(max_s, min_s);

  std::vector<PrePrepareMsg> out;
  for (std::uint64_t seq = min_s + 1; seq <= max_s; ++seq) {
    // Pick the prepared proof from the highest view for this seq.
    const PreparedProof* best = nullptr;
    for (const SignedViewChange& svc : vcs) {
      for (const PreparedProof& proof : svc.msg.prepared) {
        if (proof.seq.value != seq) continue;
        if (best == nullptr || counters::after(proof.view.value, best->view.value)) best = &proof;
      }
    }
    PrePrepareMsg pp;
    pp.view = view;
    pp.seq = SeqNum(seq);
    if (best != nullptr) {
      pp.req_digest = best->req_digest;
      pp.is_batch = best->is_batch;
      pp.request = best->request;
    }  // else: null request
    out.push_back(std::move(pp));
  }
  *min_s_out = min_s;
  *max_s_out = max_s;
  return out;
}

void Replica::process_view_change_quorum(ViewId new_view) {
  if (config_.primary_for(new_view) != id()) return;
  if (!in_view_change_ || view_ != new_view) return;
  const auto it = view_change_msgs_.find(new_view);
  if (it == view_change_msgs_.end()) return;
  if (static_cast<int>(it->second.size()) < config_.quorum()) return;

  NewViewMsg msg;
  msg.view = new_view;
  msg.primary = id();
  for (const auto& [replica, svc] : it->second) {
    msg.view_changes.push_back(svc);
    if (static_cast<int>(msg.view_changes.size()) == config_.quorum()) break;
  }
  std::uint64_t min_s = 0;
  std::uint64_t max_s = 0;
  msg.pre_prepares =
      compute_new_view_pre_prepares(new_view, msg.view_changes, &min_s, &max_s);

  multicast_signed(MsgType::kNewView, msg.encode());
  metrics_.new_views_sent->inc();
  tel_->trace(telemetry::TraceKind::kBftNewView, id(), 0, new_view.value);
  adopt_new_view(msg);
}

void Replica::handle_new_view(const Envelope& env) {
  if (!env.signature) return;
  Result<NewViewMsg> decoded = NewViewMsg::decode(env.body);
  if (!decoded.is_ok()) {
    metrics_.malformed->inc();
    return;
  }
  const NewViewMsg msg = std::move(decoded).take();
  if (msg.primary != env.sender) return;
  if (config_.primary_for(msg.view) != env.sender) return;
  if (counters::before(msg.view.value, view_.value)) return;
  if (msg.view == view_ && !in_view_change_) return;

  // Validate the view-change certificate.
  if (static_cast<int>(msg.view_changes.size()) < config_.quorum()) return;
  std::set<NodeId> senders;
  for (const SignedViewChange& svc : msg.view_changes) {
    if (svc.msg.new_view != msg.view) return;
    if (config_.rank_of(svc.msg.replica) < 0) return;
    if (!senders.insert(svc.msg.replica).second) return;  // duplicates
    const Bytes body = svc.msg.encode();
    if (!keystore_->verify(svc.msg.replica, body, svc.signature).is_ok()) {
      metrics_.auth_failures->inc();
      return;
    }
  }
  // Recompute O and insist the primary computed it honestly.
  std::uint64_t min_s = 0;
  std::uint64_t max_s = 0;
  const std::vector<PrePrepareMsg> expected =
      compute_new_view_pre_prepares(msg.view, msg.view_changes, &min_s, &max_s);
  if (expected != msg.pre_prepares) {
    ITDOS_WARN(kLog) << id().to_string() << " rejects NEW-VIEW with inconsistent O";
    return;
  }
  adopt_new_view(msg);
}

void Replica::adopt_new_view(const NewViewMsg& msg) {
  std::uint64_t min_s = 0;
  std::uint64_t max_s = 0;
  const std::vector<PrePrepareMsg> pre_prepares =
      compute_new_view_pre_prepares(msg.view, msg.view_changes, &min_s, &max_s);

  view_ = msg.view;
  in_view_change_ = false;
  view_change_attempts_ = 0;
  enter_view(view_);
  next_seq_ = max_s;
  disarm_request_timer();

  // The proposal/forwarding dedup horizons are VIEW-scoped: a request the
  // old primary proposed but that never prepared is not in O, and without
  // this reset its retransmissions would be ignored forever (the old
  // proposed/forwarded marks would blackhole it).
  for (auto& [client, record] : clients_) {
    record.proposed = record.executed;
    record.forwarded = record.executed;
  }

  // If the certificate's stable point is ahead of our execution we must
  // fetch state. A single view-change's digest claim is not a certificate,
  // so ask the whole group and install on an f+1-matching weak certificate
  // (handled in handle_state_response).
  if (min_s > last_executed_) {
    StateRequestMsg request;
    request.seq = SeqNum(min_s);
    request.requester = id();
    multicast_authenticated(MsgType::kStateRequest, request.encode());
  }

  for (const PrePrepareMsg& pp : pre_prepares) {
    const std::uint64_t seq = pp.seq.value;
    if (counters::before_eq(seq, last_executed_)) continue;  // already executed (committed earlier)
    // Requests the new view re-proposes ARE in flight: restore their dedup
    // marks so client retransmissions are not double-assigned. A batch is
    // restored entry-by-entry — but proposed as the original whole.
    std::uint64_t trace = 0;
    if (!pp.is_null_request()) {
      const auto restore_marks = [this, &trace](const BufView& encoded) {
        if (Result<RequestMsg> carried = RequestMsg::decode(encoded); carried.is_ok()) {
          if (trace == 0) trace = app_->trace_of(carried.value().payload);
          ClientRecord& record = clients_[carried.value().client];
          // Re-proposed requests are primary-originated, so apply the same
          // fabricated-timestamp guard as handle_pre_prepare: implausible
          // marks would prune the bounded windows over live timestamps.
          if (!plausible_timestamp(record.executed, carried.value().timestamp)) return;
          record.proposed.insert(carried.value().timestamp);
          record.forwarded.insert(carried.value().timestamp);
        }
      };
      if (pp.is_batch) {
        if (Result<batch::BatchMsg> carried = batch::BatchMsg::decode(pp.request);
            carried.is_ok()) {
          for (const BufView& entry_bytes : carried.value().entries) {
            restore_marks(entry_bytes);
          }
        }
      } else {
        restore_marks(pp.request);
      }
    }
    LogEntry& entry = log_[seq];
    // Old-view prepares/commits must not count toward the new view.
    entry.pre_prepare = pp;
    entry.prepares.clear();
    entry.commits.clear();
    entry.committed = false;
    entry.trace = trace;
    entry.first_seen = now();

    if (config_.primary_for(view_) != id()) {
      PrepareMsg prepare;
      prepare.view = view_;
      prepare.seq = pp.seq;
      prepare.req_digest = pp.req_digest;
      prepare.replica = id();
      entry.prepares[id()] = pp.req_digest;
      multicast_authenticated(MsgType::kPrepare, prepare.encode());
      metrics_.prepares_sent->inc();
    }
    arm_request_timer();
  }

  // Forget view-change state for this and older views.
  for (auto it = view_change_msgs_.begin(); it != view_change_msgs_.end();) {
    if (counters::before_eq(it->first.value, view_.value)) {
      it = view_change_msgs_.erase(it);
    } else {
      ++it;
    }
  }
  drain_proposal_backlog();
  try_execute();
}

}  // namespace itdos::bft
