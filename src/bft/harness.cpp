#include "bft/harness.hpp"

#include <charconv>

#include "common/rng.hpp"

namespace itdos::bft {

Cluster::Cluster(ClusterOptions options, const AppFactory& app_factory)
    : options_(options),
      sim_(options.seed),
      net_(sim_, options.net_config),
      keys_(Rng(options.seed ^ 0x5eed).next_bytes(32)),
      keystore_(std::make_shared<crypto::Keystore>()),
      app_factory_(app_factory) {
  config_.f = options.f;
  config_.group = McastGroupId(1);
  config_.checkpoint_interval = options.checkpoint_interval;
  config_.client_retry_ns = options.client_retry_ns;
  config_.view_change_timeout_ns = options.view_change_timeout_ns;
  config_.batch = options.batch;
  config_.pipeline_depth = options.pipeline_depth;
  for (int i = 0; i < 3 * options.f + 1; ++i) {
    config_.replicas.push_back(NodeId(static_cast<std::uint64_t>(i + 1)));
  }
  Rng key_rng(options.seed ^ 0x6e75eedULL);
  for (int rank = 0; rank < config_.n(); ++rank) {
    const NodeId id = config_.replicas[rank];
    replicas_.push_back(std::make_unique<Replica>(
        net_, id, config_, keys_, keystore_->issue(id, key_rng), keystore_,
        app_factory_(rank)));
  }
}

void Cluster::crash_replica(int rank) {
  // Destroying the Process detaches it; keep the slot for restart.
  replicas_.at(rank).reset();
}

void Cluster::restart_replica(int rank) {
  if (replicas_.at(rank)) return;
  const NodeId id = config_.replicas.at(rank);
  Rng key_rng(options_.seed ^ 0x0e5edULL ^ id.value);
  replicas_.at(rank) = std::make_unique<Replica>(
      net_, id, config_, keys_, keystore_->issue(id, key_rng), keystore_,
      app_factory_(rank));
}

Client& Cluster::add_client() {
  clients_.push_back(
      std::make_unique<Client>(net_, NodeId(next_client_id_++), config_, keys_));
  return *clients_.back();
}

Result<Bytes> Cluster::invoke_sync(Client& client, BufView payload,
                                   std::int64_t timeout_ns) {
  std::optional<Result<Bytes>> outcome;
  client.invoke(std::move(payload),
                [&outcome](Result<Bytes> result) { outcome = std::move(result); });
  const SimTime deadline = sim_.now() + timeout_ns;
  while (!outcome && sim_.now() < deadline) {
    if (!sim_.step()) break;
    if (sim_.now() > deadline) break;
  }
  if (!outcome) {
    return error(Errc::kUnavailable, "invocation did not complete in time");
  }
  return std::move(*outcome);
}

// ---------------------------------------------------------------------------
// Sample state machines
// ---------------------------------------------------------------------------

Bytes LogStateMachine::execute(const BufView& request, NodeId client, SeqNum seq) {
  (void)client;
  (void)seq;
  entries_.push_back(request.clone_bytes());
  return to_bytes("OK:" + std::to_string(entries_.size()));
}

Bytes LogStateMachine::snapshot() const {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_uint32(static_cast<std::uint32_t>(entries_.size()));
  for (const Bytes& e : entries_) enc.write_bytes(e);
  return enc.take();
}

Status LogStateMachine::restore(ByteView snapshot) {
  cdr::Decoder dec(snapshot, cdr::ByteOrder::kLittleEndian);
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t count, dec.read_uint32());
  if (count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile snapshot entry count");
  }
  std::vector<Bytes> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(Bytes e, dec.read_bytes());
    entries.push_back(std::move(e));
  }
  entries_ = std::move(entries);
  return Status::ok();
}

Bytes CounterStateMachine::execute(const BufView& request, NodeId client, SeqNum seq) {
  (void)client;
  (void)seq;
  const std::string cmd = to_string(request);
  if (cmd.rfind("add:", 0) == 0) {
    std::int64_t delta = 0;
    const char* begin = cmd.data() + 4;
    const char* end = cmd.data() + cmd.size();
    if (std::from_chars(begin, end, delta).ec != std::errc{}) {
      return to_bytes("ERR:bad-number");
    }
    value_ += delta;
    return to_bytes("VAL:" + std::to_string(value_));
  }
  if (cmd == "get") {
    return to_bytes("VAL:" + std::to_string(value_));
  }
  return to_bytes("ERR:unknown-command");
}

Bytes CounterStateMachine::snapshot() const {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_int64(value_);
  return enc.take();
}

Status CounterStateMachine::restore(ByteView snapshot) {
  cdr::Decoder dec(snapshot, cdr::ByteOrder::kLittleEndian);
  ITDOS_ASSIGN_OR_RETURN(value_, dec.read_int64());
  return Status::ok();
}

}  // namespace itdos::bft
