// Castro-Liskov protocol messages and their wire codecs.
//
// The BFT layer has its own fixed little-endian wire format (it sits below
// GIOP; heterogeneity concerns live above it). Every message travels inside
// an Envelope carrying either an authenticator vector (pairwise MAC per
// receiver — the Castro-Liskov MAC optimization [8]) or a signature (view
// changes, whose certificates are relayed to third parties).
#pragma once

#include <optional>
#include <vector>

#include "cdr/codec.hpp"
#include "common/ids.hpp"
#include "crypto/signing.hpp"

namespace itdos::bft {

using crypto::Digest;

enum class MsgType : std::uint8_t {
  kRequest = 1,
  kPrePrepare = 2,
  kPrepare = 3,
  kCommit = 4,
  kReply = 5,
  kCheckpoint = 6,
  kViewChange = 7,
  kNewView = 8,
  kStateRequest = 9,
  kStateResponse = 10,
};

std::string_view msg_type_name(MsgType t);

/// Client request. `timestamp` is the client's strictly-increasing request
/// counter; replicas use it to deduplicate retransmissions. The payload is
/// a view: relaying, logging and re-proposing share one sealed chunk.
struct RequestMsg {
  NodeId client;
  std::uint64_t timestamp = 0;
  BufView payload;

  bool operator==(const RequestMsg&) const = default;
  Bytes encode() const;
  static Result<RequestMsg> decode(const BufView& data);
  Digest digest() const;
};

/// Primary's ordering proposal; carries the full request (piggybacked).
/// An empty `request` with the null digest is a null request (view-change
/// filler that executes as a no-op). With `is_batch` set the payload is an
/// encoded batch::BatchMsg — several client requests agreed as one slot;
/// the flag is on the wire (not content-sniffed) and travels with the
/// proposal through view changes, so a batch is re-proposed as a batch.
/// `req_digest` covers the flag via a domain byte (replica.cpp's
/// proposal_digest): PREPARE/COMMIT carry only the digest, so an uncovered
/// flag would let an equivocating primary commit dual-decodable bytes under
/// both framings at the same (view, seq, digest).
struct PrePrepareMsg {
  ViewId view;
  SeqNum seq;
  Digest req_digest{};
  bool is_batch = false;
  BufView request;  // encoded RequestMsg (or BatchMsg); empty for null requests

  bool is_null_request() const { return request.empty(); }
  bool operator==(const PrePrepareMsg&) const = default;
  Bytes encode() const;
  static Result<PrePrepareMsg> decode(const BufView& data);
};

struct PrepareMsg {
  ViewId view;
  SeqNum seq;
  Digest req_digest{};
  NodeId replica;

  bool operator==(const PrepareMsg&) const = default;
  Bytes encode() const;
  static Result<PrepareMsg> decode(ByteView data);
};

struct CommitMsg {
  ViewId view;
  SeqNum seq;
  Digest req_digest{};
  NodeId replica;

  bool operator==(const CommitMsg&) const = default;
  Bytes encode() const;
  static Result<CommitMsg> decode(ByteView data);
};

struct ReplyMsg {
  ViewId view;
  std::uint64_t timestamp = 0;
  NodeId client;
  NodeId replica;
  Bytes result;

  bool operator==(const ReplyMsg&) const = default;
  Bytes encode() const;
  static Result<ReplyMsg> decode(ByteView data);
};

struct CheckpointMsg {
  SeqNum seq;
  Digest state_digest{};
  NodeId replica;

  bool operator==(const CheckpointMsg&) const = default;
  Bytes encode() const;
  static Result<CheckpointMsg> decode(ByteView data);
};

/// Evidence that a request prepared at (view, seq) — an entry of the P set
/// in a VIEW-CHANGE. (Simplified: the digest stands for the pre-prepare plus
/// 2f prepares; the view-change carrying it is signed.)
struct PreparedProof {
  ViewId view;
  SeqNum seq;
  Digest req_digest{};
  bool is_batch = false;  // preserved so re-proposal keeps batch framing
  BufView request;  // piggybacked so the new primary can re-propose it

  bool operator==(const PreparedProof&) const = default;
};

struct ViewChangeMsg {
  ViewId new_view;
  SeqNum stable_seq;        // h: last stable checkpoint
  Digest stable_digest{};   // state digest at h
  std::vector<PreparedProof> prepared;  // P: prepared above h
  NodeId replica;

  bool operator==(const ViewChangeMsg&) const = default;
  Bytes encode() const;
  static Result<ViewChangeMsg> decode(const BufView& data);
};

/// A view change plus its signature, as relayed inside NEW-VIEW.
struct SignedViewChange {
  ViewChangeMsg msg;
  crypto::Signature signature{};

  bool operator==(const SignedViewChange&) const = default;
};

struct NewViewMsg {
  ViewId view;
  std::vector<SignedViewChange> view_changes;  // V: 2f+1 view changes
  std::vector<PrePrepareMsg> pre_prepares;     // O: re-proposals for the new view
  NodeId primary;

  bool operator==(const NewViewMsg&) const = default;
  Bytes encode() const;
  static Result<NewViewMsg> decode(const BufView& data);
};

struct StateRequestMsg {
  SeqNum seq;  // requester wants the checkpoint at (or after) this seq
  NodeId requester;

  bool operator==(const StateRequestMsg&) const = default;
  Bytes encode() const;
  static Result<StateRequestMsg> decode(ByteView data);
};

struct StateResponseMsg {
  SeqNum seq;
  Digest state_digest{};
  Bytes snapshot;
  NodeId replica;
  ViewId view;  // sender's current view: lets a recovering replica rejoin
                // normal operation instead of spinning in view changes

  bool operator==(const StateResponseMsg&) const = default;
  Bytes encode() const;
  static Result<StateResponseMsg> decode(ByteView data);
};

/// Authenticated wrapper. Exactly one of `auth` / `signature` is present:
/// MAC-authenticated messages carry an authenticator vector with one entry
/// per intended receiver; signed messages carry one signature.
struct Envelope {
  MsgType type = MsgType::kRequest;
  NodeId sender;
  BufView body;  // zero-copy sub-view of the decoded wire buffer
  std::vector<std::pair<NodeId, crypto::MacTag>> auth;
  std::optional<crypto::Signature> signature;

  Bytes encode() const;

  /// Hot-path form: marshals into `arena` so the chunk's capacity recycles
  /// when the last downstream view (net queue, BFT log) drops. encode()
  /// allocates fresh storage instead — use it where the caller mutates.
  BufView encode_into(Arena& arena) const;

  static Result<Envelope> decode(const BufView& data);

  /// The receiver's MAC entry, if any.
  const crypto::MacTag* tag_for(NodeId receiver) const;
};

}  // namespace itdos::bft
