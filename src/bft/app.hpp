// The replicated state machine interface (Schneider [37]): the application a
// bft::Replica drives. Implementations must be deterministic — the paper's
// §2 assumption "Correct servers exhibit deterministic behavior" is what
// makes f+1 matching replies meaningful.
#pragma once

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"

namespace itdos::bft {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Executes one totally-ordered request and returns the reply payload.
  /// `seq` is the agreed sequence number (deterministic across replicas).
  /// The request is a refcounted view: implementations that log requests
  /// (e.g. the ITDOS message queue) retain it without copying.
  virtual Bytes execute(const BufView& request, NodeId client, SeqNum seq) = 0;

  /// Serializes the full application state (Castro-Liskov keeps state "in a
  /// contiguous block of memory"; this is our equivalent).
  virtual Bytes snapshot() const = 0;

  /// Replaces the application state with a snapshot from a correct replica.
  virtual Status restore(ByteView snapshot) = 0;

  /// Telemetry hook: the request-scoped trace id carried by an application
  /// payload (0 = untraced). Lets the BFT layer tag its ordering events with
  /// the originating ITDOS request without understanding the payload format.
  virtual std::uint64_t trace_of(ByteView) const { return 0; }

  /// Formation hook: urgent payloads flush the primary's batch former
  /// immediately instead of waiting for batch-mates (src/batch). ITDOS
  /// marks queue-management acks and replacement sync points urgent —
  /// traffic other protocol machinery blocks on must never sit behind a
  /// hold timer. Default: nothing is urgent.
  virtual bool urgent(ByteView) const { return false; }
};

}  // namespace itdos::bft
