// Castro-Liskov PBFT replica [6,7].
//
// Protocol phases implemented:
//   * normal case: REQUEST -> PRE-PREPARE -> PREPARE -> COMMIT -> execute ->
//     REPLY, with quorum 2f+1 out of n = 3f+1;
//   * checkpointing: every K executions a snapshot is hashed and announced;
//     2f+1 matching CHECKPOINTs make it stable and advance the low
//     watermark h (log entries <= h are garbage collected);
//   * view change: backups that see a request stall past the timeout move to
//     view v+1 (VIEW-CHANGE with the prepared set P, signed); the new
//     primary assembles 2f+1 of them into NEW-VIEW with re-proposals O;
//     backups verify O against V before adopting it;
//   * state transfer: a replica that learns of a stable checkpoint beyond
//     its own execution point fetches and verifies a snapshot (digest must
//     match the 2f+1 checkpoint certificate), then resumes.
//
// Authentication: pairwise MACs for normal-case messages (the authenticator
// vector optimization [8]); signatures on VIEW-CHANGE so certificates can be
// relayed in NEW-VIEW.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "batch/former.hpp"
#include "bft/app.hpp"
#include "bft/config.hpp"
#include "bft/messages.hpp"
#include "common/counters.hpp"
#include "net/process.hpp"
#include "telemetry/telemetry.hpp"

namespace itdos::bft {

/// Wrap-safe bounded membership set over client timestamps: "has timestamp
/// t been executed / proposed / forwarded?". A floor (everything at or
/// below it is a member) plus a sparse set above it. Contiguous prefixes
/// collapse into the floor, so the sparse set stays empty under in-order
/// traffic (the classic single-outstanding-request client); with pipelining
/// it holds at most the out-of-order gap, and pruning raises the floor so
/// memory stays bounded even under hostile timestamp patterns. The sparse
/// capacity is 2 * kMaxPipelineDepth: a correct client never has more than
/// pipeline_depth requests outstanding, so a live gap cannot be pruned.
/// Because batch entries are not client-authenticated, the replica refuses
/// to track timestamps beyond floor + kMaxSparse (see plausible_timestamp
/// in replica.cpp) — everything it does track fits the sparse set, so a
/// Byzantine primary fabricating timestamps for a victim client can never
/// force the prune and raise the floor over live requests.
class TsWindow {
 public:
  static constexpr std::size_t kMaxSparse = 64;

  bool contains(std::uint64_t ts) const {
    return counters::before_eq(ts, floor_) || sparse_.contains(ts);
  }

  void insert(std::uint64_t ts) {
    if (contains(ts)) return;
    sparse_.insert(ts);
    collapse();
  }

  /// Forgets everything and restarts from `floor`.
  void reset_to(std::uint64_t floor) {
    floor_ = floor;
    sparse_.clear();
  }

  std::uint64_t floor() const { return floor_; }
  const std::set<std::uint64_t>& sparse() const { return sparse_; }

  bool operator==(const TsWindow&) const = default;

 private:
  void collapse() {
    for (;;) {
      if (!sparse_.empty() && *sparse_.begin() == floor_ + 1) {
        ++floor_;
        sparse_.erase(sparse_.begin());
      } else if (sparse_.size() > kMaxSparse) {
        floor_ = *sparse_.begin();
        sparse_.erase(sparse_.begin());
      } else {
        break;
      }
    }
  }

  std::uint64_t floor_ = 0;
  std::set<std::uint64_t> sparse_;
};

/// Per-replica protocol statistics (benchmarks report these). A by-value
/// view assembled from the telemetry registry's `bft.<node>.*` counters.
struct ReplicaStats {
  std::uint64_t requests_received = 0;
  std::uint64_t pre_prepares_sent = 0;
  std::uint64_t prepares_sent = 0;
  std::uint64_t commits_sent = 0;
  std::uint64_t replies_sent = 0;
  std::uint64_t checkpoints_sent = 0;
  std::uint64_t view_changes_sent = 0;
  std::uint64_t new_views_sent = 0;
  std::uint64_t executed = 0;
  std::uint64_t state_transfers = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t malformed = 0;
};

class Replica : public net::Process {
 public:
  Replica(net::Network& net, NodeId id, BftConfig config, const SessionKeys& keys,
          crypto::SigningKey signing_key,
          std::shared_ptr<const crypto::Keystore> keystore,
          std::unique_ptr<StateMachine> app);

  // Observers (tests and benches).
  ViewId view() const { return view_; }
  bool is_primary() const { return config_.primary_for(view_) == id(); }
  SeqNum last_executed() const { return SeqNum(last_executed_); }
  SeqNum stable_checkpoint_seq() const { return SeqNum(stable_seq_); }
  bool in_view_change() const { return in_view_change_; }

  /// Proactively asks the group for state beyond our execution point (used
  /// by replacement elements joining with no history; f+1 matching replies
  /// certify the snapshot).
  void request_catch_up();

  // --- fault-injection hooks (src/fault/) ---

  /// Byzantine behaviors a compromised replica exhibits while active. All
  /// protocol logic stays honest; only the outbound message layer lies —
  /// which is exactly the attack surface pairwise MACs / signatures defend.
  struct ByzantineHooks {
    bool silent = false;        // drops every outbound protocol message
    bool corrupt_macs = false;  // authenticator tags are garbage (forged HMACs)
    bool equivocate = false;    // primary: conflicting pre-prepares per backup
  };

  /// Installs (or, with a default-constructed value, clears) the Byzantine
  /// behavior set. Activated per replica by fault::FaultInjector.
  void set_byzantine(const ByzantineHooks& hooks) { byz_ = hooks; }
  const ByzantineHooks& byzantine() const { return byz_; }

  /// Re-multicasts this replica's most recent signed VIEW-CHANGE envelope
  /// verbatim (a stale-view replay attack; correct peers must discard it).
  /// No-op if the replica never sent a view change.
  void replay_stale_view_change();

  /// Observer fired on every execution: (seq, request digest). The fault
  /// oracle uses it to assert correct replicas never commit different
  /// requests at the same sequence number.
  using ExecutionObserver = std::function<void(SeqNum, const Digest&)>;
  void set_execution_observer(ExecutionObserver observer) {
    execution_observer_ = std::move(observer);
  }

  ReplicaStats stats() const;
  const StateMachine& app() const { return *app_; }
  StateMachine& app() { return *app_; }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  struct LogEntry {
    std::optional<PrePrepareMsg> pre_prepare;
    std::map<NodeId, Digest> prepares;  // replica -> digest it prepared
    std::map<NodeId, Digest> commits;
    bool committed = false;
    bool executed = false;
    std::uint64_t trace = 0;      // request-scoped trace id (0 = untraced)
    SimTime first_seen{-1};       // when the pre-prepare entered the log
  };

  /// Recent replies a client may still retransmit for. Covers at least one
  /// full pipeline window so every in-flight retransmission can be answered
  /// from cache.
  static constexpr std::size_t kReplyCacheSize = 2 * kMaxPipelineDepth;

  struct ClientRecord {
    TsWindow executed;   // timestamps whose execution completed (dedup)
    TsWindow proposed;   // primary: timestamps already in the pipeline
    TsWindow forwarded;  // backup: timestamps already relayed
    std::uint64_t last_timestamp = 0;        // highest executed timestamp
    std::map<std::uint64_t, Bytes> replies;  // recent ts -> cached reply
  };

  // --- message handlers ---
  void handle_request(const Envelope& env);
  void handle_pre_prepare(const Envelope& env);
  void handle_prepare(const Envelope& env);
  void handle_commit(const Envelope& env);
  void handle_checkpoint(const Envelope& env);
  void handle_view_change(const Envelope& env);
  void handle_new_view(const Envelope& env);
  void handle_state_request(const Envelope& env);
  void handle_state_response(const Envelope& env);

  // --- normal case ---
  void assign_and_propose(const RequestMsg& request, const BufView& encoded);
  void drain_proposal_backlog();
  /// Flushes ripe batches out of the former and (re)arms the hold timer.
  void pump_former();
  /// Assigns one sequence slot to a formed batch and multicasts it.
  void propose_batch(std::vector<batch::PendingEntry> entries);
  void maybe_send_commit(std::uint64_t seq);
  void try_execute();
  void execute_entry(std::uint64_t seq, LogEntry& entry);
  /// Executes one request of a committed slot (dedup, reply cache, REPLY).
  void execute_request(const RequestMsg& request, std::uint64_t seq);
  void update_inflight_gauge();
  void send_reply(const RequestMsg& request, const Bytes& result);
  bool entry_prepared(const LogEntry& entry) const;
  bool entry_committed(const LogEntry& entry) const;
  bool in_window(std::uint64_t seq) const;

  // --- checkpoints & state transfer ---
  void take_checkpoint(std::uint64_t seq);
  void process_checkpoint_vote(const CheckpointMsg& msg);
  void make_stable(std::uint64_t seq, const Digest& digest);
  Bytes make_snapshot() const;
  Status install_snapshot(std::uint64_t seq, const Digest& digest, ByteView snapshot);
  void request_state_transfer(std::uint64_t seq, const Digest& digest);
  void after_install(ViewId sender_view);
  void help_laggard(NodeId laggard);
  /// Records protocol traffic referencing `seq`; if it is beyond our window
  /// we are behind and (rate-limited) ask the group for state.
  void observe_seq(std::uint64_t seq);

  // --- view change ---
  void start_view_change(ViewId new_view);
  void process_view_change_quorum(ViewId new_view);
  void adopt_new_view(const NewViewMsg& msg);
  std::vector<PrePrepareMsg> compute_new_view_pre_prepares(
      ViewId view, const std::vector<SignedViewChange>& vcs,
      std::uint64_t* min_s_out, std::uint64_t* max_s_out) const;

  // --- plumbing ---
  void multicast_authenticated(MsgType type, BufView body);
  void multicast_signed(MsgType type, BufView body);
  void send_authenticated(NodeId to, MsgType type, BufView body);
  Status verify_envelope(const Envelope& env) const;
  /// Closes the active view's trace span and opens `view`'s (no-op if the
  /// active view is unchanged).
  void enter_view(ViewId view);
  void arm_request_timer();
  void disarm_request_timer();
  void on_request_timeout();

  BftConfig config_;
  const SessionKeys& keys_;
  crypto::SigningKey signing_key_;
  std::shared_ptr<const crypto::Keystore> keystore_;
  std::unique_ptr<StateMachine> app_;

  // Registry-backed counters (stable addresses, resolved once at
  // construction) plus the ordering-latency histogram.
  telemetry::Hub* tel_;
  struct {
    telemetry::Counter* requests_received;
    telemetry::Counter* pre_prepares_sent;
    telemetry::Counter* prepares_sent;
    telemetry::Counter* commits_sent;
    telemetry::Counter* replies_sent;
    telemetry::Counter* checkpoints_sent;
    telemetry::Counter* view_changes_sent;
    telemetry::Counter* new_views_sent;
    telemetry::Counter* executed;
    telemetry::Counter* state_transfers;
    telemetry::Counter* auth_failures;
    telemetry::Counter* malformed;
    telemetry::Counter* macs_computed;      // pairwise MAC tags produced
    telemetry::Gauge* inflight;             // agreement instances in flight
    telemetry::Histogram* exec_latency_ns;  // pre-prepare logged -> executed
    telemetry::Histogram* batch_size;       // entries per formed batch
    telemetry::Histogram* batch_hold_ns;    // formation hold per entry
  } metrics_;

  // Protocol state.
  ViewId view_;
  bool in_view_change_ = false;
  std::uint64_t next_seq_ = 0;       // primary: last assigned seq
  std::uint64_t last_executed_ = 0;
  std::uint64_t stable_seq_ = 0;     // h
  Digest stable_digest_{};
  Bytes stable_snapshot_;            // snapshot at h (for state transfer)
  std::map<std::uint64_t, LogEntry> log_;
  std::map<NodeId, ClientRecord> clients_;
  std::map<std::uint64_t, std::map<Digest, std::set<NodeId>>> checkpoint_votes_;
  std::map<std::uint64_t, Bytes> pending_snapshots_;  // taken but not yet stable

  // Requests the primary could not yet assign (window full). Views into the
  // relayed wire buffers — backlogged requests pin their chunks, no copies.
  std::deque<BufView> proposal_backlog_;

  // Batch formation (primary only; unused while config_.batch is off). The
  // former doubles as the backlog when the watermark window is full:
  // make_stable / adopt_new_view pump it again.
  batch::Former former_;
  net::EventHandle hold_timer_{};
  bool hold_timer_armed_ = false;

  // View change bookkeeping.
  std::map<ViewId, std::map<NodeId, SignedViewChange>> view_change_msgs_;
  ViewId highest_view_change_sent_;
  int view_change_attempts_ = 0;  // consecutive failed attempts (backoff)

  // Outstanding state transfer target (seq, digest).
  std::optional<std::pair<std::uint64_t, Digest>> state_transfer_target_;

  // Weak state certificates: unsolicited STATE-RESPONSEs (e.g. peers helping
  // a laggard whose VIEW-CHANGE revealed it is behind). f+1 distinct senders
  // offering the same (seq, digest) certify it (at least one is correct).
  struct StateOffer {
    std::set<NodeId> senders;
    Bytes snapshot;
  };
  std::map<std::uint64_t, std::map<Digest, StateOffer>> state_offers_;

  // Liveness timer (backup: request pending too long -> view change).
  net::EventHandle request_timer_{};
  bool request_timer_armed_ = false;

  // Catch-up probing: highest sequence seen in authenticated traffic, and a
  // cooldown so out-of-window evidence triggers at most one STATE-REQ per
  // period (a Byzantine peer inflating seqs costs bounded requests).
  std::uint64_t max_observed_seq_ = 0;
  bool catch_up_cooldown_ = false;

  // Fault-injection state (src/fault/): active Byzantine behaviors, the last
  // signed VIEW-CHANGE envelope (stale-replay ammunition), the oracle's
  // execution observer, and the view whose span is currently open.
  ByzantineHooks byz_;
  BufView last_view_change_envelope_;
  ExecutionObserver execution_observer_;
  ViewId active_view_;
};

}  // namespace itdos::bft
