#include "bft/messages.hpp"

#include "crypto/sha256.hpp"

namespace itdos::bft {

namespace {

constexpr cdr::ByteOrder kWire = cdr::ByteOrder::kLittleEndian;

void write_digest(cdr::Encoder& enc, const Digest& d) {
  enc.write_raw(crypto::digest_view(d));
}

Result<Digest> read_digest(cdr::Decoder& dec) {
  ITDOS_ASSIGN_OR_RETURN(Bytes raw, dec.read_raw(crypto::kDigestSize));
  Digest d;
  std::copy(raw.begin(), raw.end(), d.begin());
  return d;
}

void write_mac_tag(cdr::Encoder& enc, const crypto::MacTag& t) {
  enc.write_raw(ByteView(t.data(), t.size()));
}

Result<crypto::MacTag> read_mac_tag(cdr::Decoder& dec) {
  ITDOS_ASSIGN_OR_RETURN(Bytes raw, dec.read_raw(crypto::kMacTagSize));
  crypto::MacTag t;
  std::copy(raw.begin(), raw.end(), t.begin());
  return t;
}

void write_signature(cdr::Encoder& enc, const crypto::Signature& s) {
  enc.write_raw(ByteView(s.data(), s.size()));
}

Result<crypto::Signature> read_signature(cdr::Decoder& dec) {
  ITDOS_ASSIGN_OR_RETURN(Bytes raw, dec.read_raw(crypto::kSignatureSize));
  crypto::Signature s;
  std::copy(raw.begin(), raw.end(), s.begin());
  return s;
}

Status check_exhausted(const cdr::Decoder& dec, const char* what) {
  if (!dec.exhausted()) {
    return error(Errc::kMalformedMessage, std::string("trailing bytes in ") + what);
  }
  return Status::ok();
}

/// Guards counted loops against hostile counts that exceed the buffer.
Status check_count(const cdr::Decoder& dec, std::uint32_t count, const char* what) {
  if (count > dec.remaining()) {
    return error(Errc::kMalformedMessage, std::string("hostile count in ") + what);
  }
  return Status::ok();
}

}  // namespace

std::string_view msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kRequest: return "REQUEST";
    case MsgType::kPrePrepare: return "PRE-PREPARE";
    case MsgType::kPrepare: return "PREPARE";
    case MsgType::kCommit: return "COMMIT";
    case MsgType::kReply: return "REPLY";
    case MsgType::kCheckpoint: return "CHECKPOINT";
    case MsgType::kViewChange: return "VIEW-CHANGE";
    case MsgType::kNewView: return "NEW-VIEW";
    case MsgType::kStateRequest: return "STATE-REQ";
    case MsgType::kStateResponse: return "STATE-RESP";
  }
  return "<?>";
}

Bytes RequestMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(client.value);
  enc.write_uint64(timestamp);
  enc.write_bytes(payload);
  return enc.take();
}

Result<RequestMsg> RequestMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  RequestMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t client, dec.read_uint64());
  msg.client = NodeId(client);
  ITDOS_ASSIGN_OR_RETURN(msg.timestamp, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(msg.payload, dec.read_bytes_view());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "REQUEST"));
  return msg;
}

Digest RequestMsg::digest() const { return crypto::sha256(ByteView(encode())); }

Bytes PrePrepareMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(view.value);
  enc.write_uint64(seq.value);
  write_digest(enc, req_digest);
  enc.write_boolean(is_batch);
  enc.write_bytes(request);
  return enc.take();
}

Result<PrePrepareMsg> PrePrepareMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  PrePrepareMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t view, dec.read_uint64());
  msg.view = ViewId(view);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t seq, dec.read_uint64());
  msg.seq = SeqNum(seq);
  ITDOS_ASSIGN_OR_RETURN(msg.req_digest, read_digest(dec));
  ITDOS_ASSIGN_OR_RETURN(msg.is_batch, dec.read_boolean());
  ITDOS_ASSIGN_OR_RETURN(msg.request, dec.read_bytes_view());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "PRE-PREPARE"));
  return msg;
}

namespace {
/// PREPARE and COMMIT share a body shape.
template <typename T>
Bytes encode_phase(const T& msg) {
  cdr::Encoder enc(kWire);
  enc.write_uint64(msg.view.value);
  enc.write_uint64(msg.seq.value);
  write_digest(enc, msg.req_digest);
  enc.write_uint64(msg.replica.value);
  return enc.take();
}

template <typename T>
Result<T> decode_phase(ByteView data, const char* what) {
  cdr::Decoder dec(data, kWire);
  T msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t view, dec.read_uint64());
  msg.view = ViewId(view);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t seq, dec.read_uint64());
  msg.seq = SeqNum(seq);
  ITDOS_ASSIGN_OR_RETURN(msg.req_digest, read_digest(dec));
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t replica, dec.read_uint64());
  msg.replica = NodeId(replica);
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, what));
  return msg;
}
}  // namespace

Bytes PrepareMsg::encode() const { return encode_phase(*this); }
Result<PrepareMsg> PrepareMsg::decode(ByteView data) {
  return decode_phase<PrepareMsg>(data, "PREPARE");
}

Bytes CommitMsg::encode() const { return encode_phase(*this); }
Result<CommitMsg> CommitMsg::decode(ByteView data) {
  return decode_phase<CommitMsg>(data, "COMMIT");
}

Bytes ReplyMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(view.value);
  enc.write_uint64(timestamp);
  enc.write_uint64(client.value);
  enc.write_uint64(replica.value);
  enc.write_bytes(result);
  return enc.take();
}

Result<ReplyMsg> ReplyMsg::decode(ByteView data) {
  cdr::Decoder dec(data, kWire);
  ReplyMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t view, dec.read_uint64());
  msg.view = ViewId(view);
  ITDOS_ASSIGN_OR_RETURN(msg.timestamp, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t client, dec.read_uint64());
  msg.client = NodeId(client);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t replica, dec.read_uint64());
  msg.replica = NodeId(replica);
  ITDOS_ASSIGN_OR_RETURN(msg.result, dec.read_bytes());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "REPLY"));
  return msg;
}

Bytes CheckpointMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(seq.value);
  write_digest(enc, state_digest);
  enc.write_uint64(replica.value);
  return enc.take();
}

Result<CheckpointMsg> CheckpointMsg::decode(ByteView data) {
  cdr::Decoder dec(data, kWire);
  CheckpointMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t seq, dec.read_uint64());
  msg.seq = SeqNum(seq);
  ITDOS_ASSIGN_OR_RETURN(msg.state_digest, read_digest(dec));
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t replica, dec.read_uint64());
  msg.replica = NodeId(replica);
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "CHECKPOINT"));
  return msg;
}

namespace {
void encode_prepared_proof(cdr::Encoder& enc, const PreparedProof& p) {
  enc.write_uint64(p.view.value);
  enc.write_uint64(p.seq.value);
  write_digest(enc, p.req_digest);
  enc.write_boolean(p.is_batch);
  enc.write_bytes(p.request);
}

Result<PreparedProof> decode_prepared_proof(cdr::Decoder& dec) {
  PreparedProof p;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t view, dec.read_uint64());
  p.view = ViewId(view);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t seq, dec.read_uint64());
  p.seq = SeqNum(seq);
  ITDOS_ASSIGN_OR_RETURN(p.req_digest, read_digest(dec));
  ITDOS_ASSIGN_OR_RETURN(p.is_batch, dec.read_boolean());
  ITDOS_ASSIGN_OR_RETURN(p.request, dec.read_bytes_view());
  return p;
}
}  // namespace

Bytes ViewChangeMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(new_view.value);
  enc.write_uint64(stable_seq.value);
  write_digest(enc, stable_digest);
  enc.write_uint32(static_cast<std::uint32_t>(prepared.size()));
  for (const PreparedProof& p : prepared) encode_prepared_proof(enc, p);
  enc.write_uint64(replica.value);
  return enc.take();
}

Result<ViewChangeMsg> ViewChangeMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  ViewChangeMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t view, dec.read_uint64());
  msg.new_view = ViewId(view);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t stable, dec.read_uint64());
  msg.stable_seq = SeqNum(stable);
  ITDOS_ASSIGN_OR_RETURN(msg.stable_digest, read_digest(dec));
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t count, dec.read_uint32());
  ITDOS_RETURN_IF_ERROR(check_count(dec, count, "VIEW-CHANGE"));
  msg.prepared.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(PreparedProof p, decode_prepared_proof(dec));
    msg.prepared.push_back(std::move(p));
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t replica, dec.read_uint64());
  msg.replica = NodeId(replica);
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "VIEW-CHANGE"));
  return msg;
}

Bytes NewViewMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(view.value);
  enc.write_uint32(static_cast<std::uint32_t>(view_changes.size()));
  for (const SignedViewChange& svc : view_changes) {
    enc.write_bytes(svc.msg.encode());
    write_signature(enc, svc.signature);
  }
  enc.write_uint32(static_cast<std::uint32_t>(pre_prepares.size()));
  for (const PrePrepareMsg& pp : pre_prepares) {
    enc.write_bytes(pp.encode());
  }
  enc.write_uint64(primary.value);
  return enc.take();
}

Result<NewViewMsg> NewViewMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  NewViewMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t view, dec.read_uint64());
  msg.view = ViewId(view);
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t vc_count, dec.read_uint32());
  ITDOS_RETURN_IF_ERROR(check_count(dec, vc_count, "NEW-VIEW"));
  msg.view_changes.reserve(vc_count);
  for (std::uint32_t i = 0; i < vc_count; ++i) {
    SignedViewChange svc;
    ITDOS_ASSIGN_OR_RETURN(BufView vc_body, dec.read_bytes_view());
    ITDOS_ASSIGN_OR_RETURN(svc.msg, ViewChangeMsg::decode(vc_body));
    ITDOS_ASSIGN_OR_RETURN(svc.signature, read_signature(dec));
    msg.view_changes.push_back(std::move(svc));
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t pp_count, dec.read_uint32());
  ITDOS_RETURN_IF_ERROR(check_count(dec, pp_count, "NEW-VIEW"));
  msg.pre_prepares.reserve(pp_count);
  for (std::uint32_t i = 0; i < pp_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(BufView pp_body, dec.read_bytes_view());
    ITDOS_ASSIGN_OR_RETURN(PrePrepareMsg pp, PrePrepareMsg::decode(pp_body));
    msg.pre_prepares.push_back(std::move(pp));
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t primary, dec.read_uint64());
  msg.primary = NodeId(primary);
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "NEW-VIEW"));
  return msg;
}

Bytes StateRequestMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(seq.value);
  enc.write_uint64(requester.value);
  return enc.take();
}

Result<StateRequestMsg> StateRequestMsg::decode(ByteView data) {
  cdr::Decoder dec(data, kWire);
  StateRequestMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t seq, dec.read_uint64());
  msg.seq = SeqNum(seq);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t requester, dec.read_uint64());
  msg.requester = NodeId(requester);
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "STATE-REQ"));
  return msg;
}

Bytes StateResponseMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(seq.value);
  write_digest(enc, state_digest);
  enc.write_bytes(snapshot);
  enc.write_uint64(replica.value);
  enc.write_uint64(view.value);
  return enc.take();
}

Result<StateResponseMsg> StateResponseMsg::decode(ByteView data) {
  cdr::Decoder dec(data, kWire);
  StateResponseMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t seq, dec.read_uint64());
  msg.seq = SeqNum(seq);
  ITDOS_ASSIGN_OR_RETURN(msg.state_digest, read_digest(dec));
  ITDOS_ASSIGN_OR_RETURN(msg.snapshot, dec.read_bytes());
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t replica, dec.read_uint64());
  msg.replica = NodeId(replica);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t view, dec.read_uint64());
  msg.view = ViewId(view);
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "STATE-RESP"));
  return msg;
}

namespace {

void encode_envelope_fields(const Envelope& env, cdr::Encoder& enc) {
  enc.write_octet(static_cast<std::uint8_t>(env.type));
  enc.write_uint64(env.sender.value);
  enc.write_bytes(env.body);
  enc.write_uint32(static_cast<std::uint32_t>(env.auth.size()));
  for (const auto& [node, tag] : env.auth) {
    enc.write_uint64(node.value);
    write_mac_tag(enc, tag);
  }
  enc.write_boolean(env.signature.has_value());
  if (env.signature) write_signature(enc, *env.signature);
}

}  // namespace

Bytes Envelope::encode() const {
  cdr::Encoder enc(kWire);
  encode_envelope_fields(*this, enc);
  return enc.take();
}

BufView Envelope::encode_into(Arena& arena) const {
  cdr::Encoder enc(kWire, &arena);
  encode_envelope_fields(*this, enc);
  return enc.take_view();
}

Result<Envelope> Envelope::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  Envelope env;
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t type, dec.read_octet());
  if (type < static_cast<std::uint8_t>(MsgType::kRequest) ||
      type > static_cast<std::uint8_t>(MsgType::kStateResponse)) {
    return error(Errc::kMalformedMessage, "unknown BFT message type");
  }
  env.type = static_cast<MsgType>(type);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t sender, dec.read_uint64());
  env.sender = NodeId(sender);
  ITDOS_ASSIGN_OR_RETURN(env.body, dec.read_bytes_view());
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t auth_count, dec.read_uint32());
  ITDOS_RETURN_IF_ERROR(check_count(dec, auth_count, "envelope"));
  env.auth.reserve(auth_count);
  for (std::uint32_t i = 0; i < auth_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t node, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(crypto::MacTag tag, read_mac_tag(dec));
    env.auth.emplace_back(NodeId(node), tag);
  }
  ITDOS_ASSIGN_OR_RETURN(bool has_sig, dec.read_boolean());
  if (has_sig) {
    ITDOS_ASSIGN_OR_RETURN(env.signature, read_signature(dec));
  }
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "envelope"));
  return env;
}

const crypto::MacTag* Envelope::tag_for(NodeId receiver) const {
  for (const auto& [node, tag] : auth) {
    if (node == receiver) return &tag;
  }
  return nullptr;
}

}  // namespace itdos::bft
