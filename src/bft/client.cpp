#include "bft/client.hpp"

#include "common/counters.hpp"

namespace itdos::bft {

std::optional<Bytes> MatchingReplyCollector::add(NodeId replica, const Bytes& result) {
  auto& voters = votes_[result];
  voters.insert(replica);
  if (static_cast<int>(voters.size()) >= f_ + 1) return result;
  return std::nullopt;
}

Client::Client(net::Network& net, NodeId id, BftConfig config, const SessionKeys& keys)
    : Process(net, id), config_(std::move(config)), keys_(keys) {
  collector_factory_ = [](int f) { return std::make_unique<MatchingReplyCollector>(f); };
}

void Client::invoke(BufView payload, Completion done) {
  queue_.push_back(PendingRequest{std::move(payload), std::move(done)});
  pump();
}

void Client::pump() {
  while (!queue_.empty() &&
         inflight_.size() < static_cast<std::size_t>(config_.pipeline_depth)) {
    PendingRequest next = std::move(queue_.front());
    queue_.pop_front();
    const std::uint64_t timestamp = next_timestamp_++;
    Inflight& fl = inflight_[timestamp];
    fl.payload = std::move(next.payload);
    fl.done = std::move(next.done);
    fl.collector = collector_factory_(config_.f);
    send_request(timestamp, fl.payload, /*broadcast=*/false);
  }
  if (!inflight_.empty() && !retry_timer_armed_) {
    retry_timer_armed_ = true;
    retry_timer_ = set_timer(config_.client_retry_ns, [this] { on_retry_timeout(); });
  }
}

void Client::send_request(std::uint64_t timestamp, const BufView& payload,
                          bool broadcast) {
  RequestMsg request;
  request.client = id();
  request.timestamp = timestamp;
  request.payload = payload;
  const BufView body = request.encode();

  Envelope env;
  env.type = MsgType::kRequest;
  env.sender = id();
  env.body = body;
  // The request is authenticated to every replica so any of them can relay
  // it to the primary without weakening authenticity.
  for (NodeId replica : config_.replicas) {
    env.auth.emplace_back(replica, keys_.tag(id(), replica, body));
  }
  const BufView wire = env.encode_into(arena());
  if (broadcast) {
    // All replicas share the one sealed wire frame.
    for (NodeId replica : config_.replicas) send_to(replica, wire);
  } else {
    send_to(config_.primary_for(view_estimate_), wire);
  }
}

void Client::on_retry_timeout() {
  retry_timer_armed_ = false;
  if (inflight_.empty()) return;
  ++retransmissions_;
  // Suspect the primary; tell everyone about every outstanding request.
  for (const auto& [timestamp, fl] : inflight_) {
    send_request(timestamp, fl.payload, /*broadcast=*/true);
  }
  retry_timer_armed_ = true;
  retry_timer_ = set_timer(config_.client_retry_ns, [this] { on_retry_timeout(); });
}

void Client::on_packet(const net::Packet& packet) {
  Result<Envelope> decoded = Envelope::decode(packet.payload);
  if (!decoded.is_ok()) return;
  const Envelope env = std::move(decoded).take();
  if (env.type != MsgType::kReply) return;
  if (config_.rank_of(env.sender) < 0) return;
  const crypto::MacTag* tag = env.tag_for(id());
  if (tag == nullptr || !keys_.verify(env.sender, id(), env.body, *tag)) return;

  Result<ReplyMsg> reply = ReplyMsg::decode(env.body);
  if (!reply.is_ok()) return;
  const ReplyMsg msg = std::move(reply).take();
  if (msg.replica != env.sender || msg.client != id()) return;

  // Track the view so retransmissions target the right primary.
  if (counters::after(msg.view.value, view_estimate_.value)) view_estimate_ = msg.view;

  const auto it = inflight_.find(msg.timestamp);
  if (it == inflight_.end()) return;  // late/duplicate
  Inflight& fl = it->second;
  if (!fl.replied.insert(msg.replica).second) return;  // one vote per replica

  if (std::optional<Bytes> result = fl.collector->add(msg.replica, msg.result)) {
    finish(msg.timestamp, std::move(*result));
  }
}

void Client::finish(std::uint64_t timestamp, Result<Bytes> result) {
  const auto it = inflight_.find(timestamp);
  if (it == inflight_.end()) return;
  const Completion done = std::move(it->second.done);
  inflight_.erase(it);
  if (inflight_.empty() && retry_timer_armed_) {
    cancel_timer(retry_timer_);
    retry_timer_armed_ = false;
  }
  done(std::move(result));
  pump();
}

}  // namespace itdos::bft
