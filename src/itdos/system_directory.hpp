// Deployment topology shared by every ITDOS process: which domains exist,
// their elements (with per-element native byte order — the heterogeneity the
// system tolerates), the Group Manager's composition, vote policies and
// protocol timing. In a production system this is the configuration the
// paper's "configuration inputs" allude to; it is immutable after startup
// EXCEPT for recovery-driven element replacement: the deployment layer
// (ItdosSystem, holding the sole non-const handle) swaps one element's
// identities via replace_element when a fresh identity is admitted. The
// Group Manager never trusts these live reads for ordered decisions — it
// keeps its own replicated MembershipView (DESIGN.md §6d).
//
// Node-id layout: every element occupies several simulated-network endpoints
// (the moral equivalent of ports on one host):
//   bft_node        — the Castro-Liskov replica (ordering traffic)
//   smiop_node      — direct SMIOP traffic (key shares, direct replies);
//                     also the element's signing identity
//   gm_client_node  — BFT-client endpoint toward the Group Manager group
//   self_client_node— BFT-client endpoint toward the element's own group
//                     (queue-management acks, §3.1 GC)
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "bft/config.hpp"
#include "cdr/codec.hpp"
#include "crypto/dprf.hpp"
#include "itdos/voting.hpp"
#include "shard/shard_map.hpp"

namespace itdos::core {

struct ElementInfo {
  NodeId bft_node;
  NodeId smiop_node;
  NodeId gm_client_node;
  NodeId self_client_node;
  cdr::ByteOrder byte_order = cdr::ByteOrder::kLittleEndian;
};

struct ProtocolTiming {
  std::int64_t checkpoint_interval = 16;
  std::int64_t client_retry_ns = millis(40);
  std::int64_t view_change_timeout_ns = millis(60);
  std::int64_t reply_vote_timeout_ns = millis(500);  // voter gives up (§3.6 GC)
  std::uint64_t ack_interval = 8;  // consumer entries between queue acks

  /// Sealed requests larger than this are fragmented across multiple
  /// ordered entries (§4 large messages) and reassembled deterministically
  /// at the elements.
  std::size_t max_entry_bytes = 16384;

  /// Recovery watchdog: a replacement must be serving again within this long
  /// of being started, else the recovery manager aborts and retries with
  /// another fresh identity (DESIGN.md §6d).
  std::int64_t recovery_deadline_ns = seconds(2);

  /// Backoff between an aborted recovery attempt and its retry.
  std::int64_t recovery_retry_backoff_ns = millis(100);

  /// Admission control: replicated queue depth past which further ordered
  /// requests are shed deterministically with an explicit OVERLOAD reply
  /// (DESIGN.md §6f). 0 disables shedding (unbounded queues, the paper's
  /// baseline behaviour). Static config, identical at every element — the
  /// shed decision is part of the replicated state machine and must not be
  /// retuned at runtime.
  std::uint64_t admission_max_depth = 0;

  /// Batch formation at every domain's ordering primary (src/batch,
  /// DESIGN.md §6i): requests per pre-prepare slot (1 = off), byte cap,
  /// and the max hold a request waits for batch-mates. Applies uniformly
  /// to all domains including the Group Manager's.
  int batch_max_entries = 1;
  std::size_t batch_max_bytes = 64 * 1024;
  std::int64_t batch_max_hold_ns = micros(200);

  /// Pipelined agreement: in-flight window of every BFT client endpoint
  /// (party target clients, element self-clients, GM clients). 1 = the
  /// paper's one-outstanding-request model.
  int pipeline_depth = 1;
};

struct DomainInfo {
  DomainId id;
  int f = 1;
  McastGroupId group;
  std::vector<ElementInfo> elements;  // size 3f+1
  VotePolicy vote_policy = VotePolicy::exact();

  int n() const { return static_cast<int>(elements.size()); }

  /// The BFT group configuration for this domain's ordering group.
  bft::BftConfig make_bft_config(const ProtocolTiming& timing) const;

  /// Rank of an element by its SMIOP node, or -1.
  int rank_of_smiop(NodeId smiop_node) const;

  std::vector<NodeId> smiop_nodes() const;
};

class SystemDirectory {
 public:
  SystemDirectory(DomainInfo gm, ProtocolTiming timing)
      : gm_(std::move(gm)), timing_(timing) {}

  const DomainInfo& gm() const { return gm_; }
  const ProtocolTiming& timing() const { return timing_; }

  void add_domain(DomainInfo info) { domains_.emplace(info.id, std::move(info)); }

  const DomainInfo* find_domain(DomainId id) const {
    const auto it = domains_.find(id);
    return it == domains_.end() ? nullptr : &it->second;
  }

  const std::map<DomainId, DomainInfo>& domains() const { return domains_; }

  /// The shard routing table: hash-partitioned object-key ranges, each
  /// owned by one replication domain. Empty in unsharded deployments.
  const shard::ShardMap& shards() const { return shards_; }

  /// Only the deployment layer (ItdosSystem / ShardTopology) mutates the
  /// table, before traffic starts; parties read it on the invocation path.
  shard::ShardMap& mutable_shards() { return shards_; }

  /// The lookup API for invocation targets: a routed ref (domain 0) maps to
  /// the owner of its key's shard range; a concrete domain is returned
  /// unchanged. Returns kRoutedDomain (0) for a routed key with no shard
  /// table — the caller surfaces that as "unroutable".
  DomainId resolve_target(DomainId domain, ObjectId key) const {
    return shard::is_routed(domain) ? shards_.route(key) : domain;
  }

  /// Recovery-driven identity swap: install fresh identities for one rank of
  /// a domain. Only the deployment layer (ItdosSystem) holds a non-const
  /// handle; ordered GM decisions never read the result directly (they use
  /// the replicated MembershipView).
  Status replace_element(DomainId domain, int rank, const ElementInfo& fresh);

  /// The BFT-client identity entitled to submit membership_update commands
  /// (the recovery manager). 0 (the default) rejects every membership update
  /// — deployments without a recovery subsystem keep the startup membership.
  NodeId recovery_authority() const { return recovery_authority_; }
  void set_recovery_authority(NodeId node) { recovery_authority_ = node; }

  /// DPRF parameters follow the GM's composition (§3.5: f+1 of 3f+1 GM
  /// elements must cooperate to form a key).
  crypto::DprfParams dprf_params() const {
    return crypto::DprfParams{gm_.n(), gm_.f};
  }

 private:
  DomainInfo gm_;
  ProtocolTiming timing_;
  std::map<DomainId, DomainInfo> domains_;
  shard::ShardMap shards_;
  NodeId recovery_authority_;
};

/// Monotonic NodeId allocator for building deployments.
class NodeAllocator {
 public:
  explicit NodeAllocator(std::uint64_t first = 1) : next_(first) {}
  NodeId next() { return NodeId(next_++); }

 private:
  std::uint64_t next_;
};

}  // namespace itdos::core
