#include "itdos/group_manager.hpp"

#include <algorithm>

#include "cdr/giop.hpp"
#include "common/log.hpp"
#include "crypto/cipher.hpp"

namespace itdos::core {

namespace {
constexpr std::string_view kLog = "itdos.gm";
}

Bytes dprf_input(ConnectionId conn, KeyEpoch epoch) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_string("itdos.commkey");
  enc.write_uint64(conn.value);
  enc.write_uint64(epoch.value);
  return enc.take();
}

// ---------------------------------------------------------------------------
// GmStateMachine
// ---------------------------------------------------------------------------

GmStateMachine::GmStateMachine(std::shared_ptr<const SystemDirectory> directory,
                               std::shared_ptr<const crypto::Keystore> keystore,
                               ShareDistributor* distributor,
                               telemetry::Hub* telemetry, NodeId self)
    : directory_(std::move(directory)),
      keystore_(std::move(keystore)),
      distributor_(distributor),
      tel_(telemetry),
      self_(self) {
  if (tel_ != nullptr) {
    telemetry::MetricsRegistry& reg = tel_->metrics();
    const std::string prefix = "gm." + self_.to_string() + ".";
    metrics_.opens = &reg.counter(prefix + "opens");
    metrics_.resends = &reg.counter(prefix + "resends");
    metrics_.change_requests = &reg.counter(prefix + "change_requests");
    metrics_.expulsions = &reg.counter(prefix + "expulsions");
    metrics_.rekeys = &reg.counter(prefix + "rekeys");
    metrics_.membership_updates = &reg.counter(prefix + "membership_updates");
  }
}

void GmStateMachine::trace(telemetry::TraceKind kind, std::uint64_t trace_id,
                           std::uint64_t a, std::uint64_t b) const {
  if (tel_ != nullptr) tel_->trace(kind, self_, trace_id, a, b);
}

bool GmStateMachine::is_expelled(DomainId domain, NodeId element_smiop) const {
  const auto it = expelled_.find(domain);
  return it != expelled_.end() && it->second.contains(element_smiop);
}

std::vector<NodeId> GmStateMachine::active_elements(const DomainInfo& info) const {
  std::vector<NodeId> out;
  if (const auto it = views_.find(info.id); it != views_.end()) {
    for (const MemberIdentity& member : it->second.members) {
      if (!is_expelled(info.id, member.smiop)) out.push_back(member.smiop);
    }
    return out;
  }
  for (const ElementInfo& element : info.elements) {
    if (!is_expelled(info.id, element.smiop_node)) out.push_back(element.smiop_node);
  }
  return out;
}

const MembershipView* GmStateMachine::membership_view(DomainId domain) const {
  const auto it = views_.find(domain);
  return it == views_.end() ? nullptr : &it->second;
}

std::uint64_t GmStateMachine::membership_epoch(DomainId domain) const {
  const auto it = views_.find(domain);
  return it == views_.end() ? 0 : it->second.epoch;
}

int GmStateMachine::member_rank(const DomainInfo& info, NodeId smiop) const {
  const auto it = views_.find(info.id);
  if (it == views_.end()) return info.rank_of_smiop(smiop);
  for (std::size_t i = 0; i < it->second.members.size(); ++i) {
    if (it->second.members[i].smiop == smiop) return static_cast<int>(i);
  }
  return -1;
}

NodeId GmStateMachine::member_gm_client(const DomainInfo& info, int rank) const {
  const auto it = views_.find(info.id);
  if (it == views_.end()) {
    return info.elements[static_cast<std::size_t>(rank)].gm_client_node;
  }
  return it->second.members[static_cast<std::size_t>(rank)].gm_client;
}

void GmStateMachine::ensure_views_seeded() {
  // Seed the replicated view of every domain known at the first ordered
  // command. Every replica executes that command before any recovery-driven
  // directory mutation can occur (recovery only starts after expulsions,
  // which are themselves ordered commands), so all replicas seed identical
  // views; from then on views evolve only through ordered membership_update
  // commands and live directory churn cannot diverge the replicas.
  for (const auto& [id, info] : directory_->domains()) {
    if (views_.contains(id)) continue;
    MembershipView view;
    for (const ElementInfo& element : info.elements) {
      view.members.push_back(
          MemberIdentity{element.smiop_node, element.gm_client_node});
    }
    views_.emplace(id, std::move(view));
  }
}

std::vector<NodeId> GmStateMachine::recipients_for(const ConnRecord& record) const {
  std::vector<NodeId> recipients;
  if (const DomainInfo* target = directory_->find_domain(record.target)) {
    for (NodeId node : active_elements(*target)) recipients.push_back(node);
  }
  if (is_singleton_domain(record.client_domain)) {
    recipients.push_back(record.client_node);
  } else if (const DomainInfo* client = directory_->find_domain(record.client_domain)) {
    for (NodeId node : active_elements(*client)) recipients.push_back(node);
  }
  return recipients;
}

Bytes GmStateMachine::execute(const BufView& request, NodeId client, SeqNum seq) {
  (void)seq;
  ensure_views_seeded();
  const Result<GmCommand> command = decode_gm_command(request);
  GmCommandResult result;
  if (!command.is_ok()) {
    result.accepted = false;
    result.detail = "malformed command";
    return result.encode();
  }
  if (std::holds_alternative<OpenRequestMsg>(command.value())) {
    result = handle_open(std::get<OpenRequestMsg>(command.value()));
  } else if (std::holds_alternative<ResendSharesMsg>(command.value())) {
    result = handle_resend(std::get<ResendSharesMsg>(command.value()));
  } else if (std::holds_alternative<MembershipUpdateMsg>(command.value())) {
    result = handle_membership(std::get<MembershipUpdateMsg>(command.value()), client);
  } else if (std::holds_alternative<SetResponsePolicyMsg>(command.value())) {
    result = handle_policy(std::get<SetResponsePolicyMsg>(command.value()), client);
  } else {
    result = handle_change(std::get<ChangeRequestMsg>(command.value()), client);
  }
  return result.encode();
}

GmCommandResult GmStateMachine::handle_open(const OpenRequestMsg& msg) {
  GmCommandResult result;
  const DomainInfo* target = directory_->find_domain(msg.target);
  if (target == nullptr) {
    result.detail = "unknown target domain";
    return result;
  }
  if (msg.client_node.value == 0) {
    result.detail = "invalid client node";
    return result;
  }
  if (!is_singleton_domain(msg.client_domain) &&
      directory_->find_domain(msg.client_domain) == nullptr) {
    result.detail = "unknown client domain";
    return result;
  }
  if (!is_singleton_domain(msg.client_domain)) {
    // §3.3: all members of a replication domain share ONE connection to the
    // target. The first element's open_request creates it; the others join
    // it (shares are redistributed so a late or lossy element still keys).
    for (const auto& [conn, record] : conns_) {
      if (record.client_domain == msg.client_domain && record.target == msg.target) {
        if (distributor_ != nullptr) {
          distributor_->distribute(record, recipients_for(record));
        }
        if (metrics_.opens != nullptr) metrics_.opens->inc();
        trace(telemetry::TraceKind::kGmOpenRequest, 0, msg.client_domain.value,
              msg.target.value);
        result.accepted = true;
        result.conn = record.conn;
        result.epoch = record.epoch;
        return result;
      }
    }
  }
  ConnRecord record;
  record.conn = ConnectionId(next_conn_++);
  record.client_node = msg.client_node;
  record.client_domain = msg.client_domain;
  record.target = msg.target;
  record.epoch = KeyEpoch(1);
  record.member_epoch = membership_generation_;
  record.epoch_generations[record.epoch.value] = record.member_epoch;
  conns_[record.conn] = record;

  if (distributor_ != nullptr) {
    distributor_->distribute(record, recipients_for(record));
  }
  if (metrics_.opens != nullptr) metrics_.opens->inc();
  trace(telemetry::TraceKind::kGmOpenRequest, 0, msg.client_domain.value,
        msg.target.value);
  result.accepted = true;
  result.conn = record.conn;
  result.epoch = record.epoch;
  return result;
}

GmCommandResult GmStateMachine::handle_resend(const ResendSharesMsg& msg) {
  GmCommandResult result;
  const auto it = conns_.find(msg.conn);
  if (it == conns_.end()) {
    result.detail = "unknown connection";
    return result;
  }
  const std::vector<NodeId> entitled = recipients_for(it->second);
  if (std::find(entitled.begin(), entitled.end(), msg.requester) == entitled.end()) {
    // Expelled elements (and strangers) get nothing — resend must not leak
    // post-rekey key material.
    result.detail = "requester not entitled to this connection's key";
    return result;
  }
  if (distributor_ != nullptr) {
    // Serve every retained epoch, oldest first: a fresh replacement element
    // may still need pre-admission epochs to drain queue entries sealed
    // before its rekey — discarding those would diverge its servant state
    // from peers that held the old keys.
    for (const auto& [epoch, generation] : it->second.epoch_generations) {
      ConnRecord historical = it->second;
      historical.epoch = KeyEpoch(epoch);
      historical.member_epoch = generation;
      distributor_->distribute(historical, {msg.requester});
    }
    if (it->second.epoch_generations.empty()) {
      distributor_->distribute(it->second, {msg.requester});
    }
  }
  if (metrics_.resends != nullptr) metrics_.resends->inc();
  trace(telemetry::TraceKind::kGmResend, 0, it->second.epoch.value);
  result.accepted = true;
  result.conn = it->second.conn;
  result.epoch = it->second.epoch;
  return result;
}

Status GmStateMachine::verify_proof(const ChangeRequestMsg& msg) const {
  const DomainInfo* accused = directory_->find_domain(msg.accused_domain);
  if (accused == nullptr) {
    return error(Errc::kInvalidArgument, "unknown accused domain");
  }
  // Enough signed replies to vote: the voter's receive threshold (§3.6).
  const int needed = 2 * accused->f + 1;
  if (static_cast<int>(msg.proof.size()) < needed) {
    return error(Errc::kPermissionDenied, "proof has too few signed messages");
  }
  std::set<NodeId> sources;
  Vote vote(accused->f, accused->vote_policy);
  bool accused_present = false;
  for (const ProofEntry& entry : msg.proof) {
    if (member_rank(*accused, entry.element) < 0) {
      return error(Errc::kPermissionDenied, "proof entry from non-member element");
    }
    if (!sources.insert(entry.element).second) {
      return error(Errc::kPermissionDenied, "duplicate proof entry");
    }
    // Signature binds the plaintext to the element, with conn + rid serving
    // as the sequence-number replay protection the paper calls for.
    const crypto::Digest plain_digest = crypto::sha256(ByteView(entry.plain_giop));
    const Bytes region = DirectReplyMsg::signed_region(msg.conn, msg.rid, entry.element,
                                                       entry.epoch, plain_digest);
    ITDOS_RETURN_IF_ERROR(keystore_->verify(entry.element, region, entry.signature));

    // The standalone marshalling engine: unmarshal the GIOP reply without an
    // ORB and vote on the data (§3.6).
    Ballot ballot;
    ballot.source = entry.element;
    ballot.raw = entry.plain_giop;
    Result<cdr::GiopMessage> parsed = cdr::parse_giop(entry.plain_giop);
    if (parsed.is_ok() && std::holds_alternative<cdr::ReplyMessage>(parsed.value())) {
      const auto& reply = std::get<cdr::ReplyMessage>(parsed.value());
      if (reply.request_id != msg.rid) {
        return error(Errc::kPermissionDenied, "proof reply for wrong request id");
      }
      ballot.value = cdr::Value::structure(
          {cdr::Field("status", cdr::Value::octet(static_cast<std::uint8_t>(reply.status))),
           cdr::Field("result", reply.result)});
    }
    // Duplicate-source ballots were rejected above; a late ballot after the
    // vote decided is fine — decided() below is the only outcome consulted.
    (void)vote.add(std::move(ballot));
    accused_present |= (entry.element == msg.accused_element);
  }
  if (!accused_present) {
    return error(Errc::kPermissionDenied, "proof does not include the accused's reply");
  }
  if (!vote.decided()) {
    return error(Errc::kPermissionDenied, "proof replies do not reach a decision");
  }
  const std::vector<NodeId> dissenters = vote.dissenters();
  if (std::find(dissenters.begin(), dissenters.end(), msg.accused_element) ==
      dissenters.end()) {
    return error(Errc::kPermissionDenied,
                 "accused element agrees with the decided value");
  }
  return Status::ok();
}

GmCommandResult GmStateMachine::handle_change(const ChangeRequestMsg& msg,
                                              NodeId submitter) {
  GmCommandResult result;
  if (metrics_.change_requests != nullptr) metrics_.change_requests->inc();
  trace(telemetry::TraceKind::kGmChangeRequest,
        telemetry::trace_id(msg.conn, msg.rid), msg.accused_element.value,
        msg.conn.value);
  const DomainInfo* accused = directory_->find_domain(msg.accused_domain);
  if (accused == nullptr) {
    result.detail = "unknown accused domain";
    return result;
  }
  // Expelled-first so accusations of identities already retired by a
  // membership_update (and thus no longer in the view) stay idempotent.
  if (is_expelled(msg.accused_domain, msg.accused_element)) {
    result.accepted = true;  // idempotent: already expelled
    result.detail = "already expelled";
    return result;
  }
  if (member_rank(*accused, msg.accused_element) < 0) {
    result.detail = "accused element not in domain";
    return result;
  }

  if (is_singleton_domain(msg.reporter_domain)) {
    // Singleton reporter: proof required (§3.6 — "a potential vulnerability
    // is that the client is malicious and is attempting to expel correct
    // processes").
    if (const Status proof = verify_proof(msg); !proof.is_ok()) {
      result.detail = "proof rejected: " + proof.to_string();
      ITDOS_INFO(kLog) << "change_request rejected: " << result.detail;
      return result;
    }
  } else {
    // Replication-domain reporter: no proof, but f+1 distinct elements of
    // that domain must independently request the same expulsion.
    const DomainInfo* reporter_domain = directory_->find_domain(msg.reporter_domain);
    if (reporter_domain == nullptr) {
      result.detail = "unknown reporter domain";
      return result;
    }
    const int rank = member_rank(*reporter_domain, msg.reporter);
    if (rank < 0 || member_gm_client(*reporter_domain, rank) != submitter) {
      result.detail = "reporter identity mismatch";
      return result;
    }
    auto& tally =
        tallies_[{msg.accused_element, msg.conn.value, msg.rid.value}];
    tally.insert(msg.reporter);
    if (static_cast<int>(tally.size()) < reporter_domain->f + 1) {
      result.accepted = true;
      result.detail = "recorded; awaiting quorum";
      return result;
    }
    // Quorum complete: one strike. The response policy (§6f) decides how
    // many DISTINCT completed strikes a suspicion-only expulsion needs —
    // conservative mode demands repeated independent evidence. The tally is
    // consumed so the same (conn, rid) incident cannot strike twice.
    tallies_.erase({msg.accused_element, msg.conn.value, msg.rid.value});
    if (++strike_counts_[msg.accused_element] < policy_strikes_) {
      result.accepted = true;
      result.detail = "strike recorded; below expulsion threshold";
      return result;
    }
  }

  expel(msg.accused_domain, msg.accused_element);
  result.accepted = true;
  result.detail = "expelled";
  return result;
}

GmCommandResult GmStateMachine::handle_membership(const MembershipUpdateMsg& msg,
                                                  NodeId submitter) {
  GmCommandResult result;
  if (metrics_.membership_updates != nullptr) metrics_.membership_updates->inc();
  // The authority identity is set once at deployment construction, before
  // any ordered command, so this live read is identical on every replica.
  const NodeId authority = directory_->recovery_authority();
  if (authority.value == 0 || submitter != authority) {
    result.detail = "submitter is not the recovery authority";
    return result;
  }
  if (directory_->find_domain(msg.domain) == nullptr) {
    result.detail = "unknown domain";
    return result;
  }
  const auto view_it = views_.find(msg.domain);
  if (view_it == views_.end()) {
    result.detail = "domain has no membership view";
    return result;
  }
  MembershipView& view = view_it->second;
  if (msg.rank >= view.members.size()) {
    result.detail = "rank out of range";
    return result;
  }
  MemberIdentity& slot = view.members[msg.rank];
  if (msg.expected_epoch != view.epoch) {
    if (view.epoch == msg.expected_epoch + 1 && slot.smiop == msg.admitted_element) {
      result.accepted = true;  // idempotent: this exact update already applied
      result.epoch = KeyEpoch(view.epoch);
      result.detail = "already admitted";
      return result;
    }
    result.detail = "membership epoch mismatch";
    return result;
  }
  if (slot.smiop != msg.retired_element) {
    result.detail = "retired identity does not hold the slot";
    return result;
  }
  if (is_expelled(msg.domain, msg.admitted_element)) {
    result.detail = "admitted identity was previously expelled";
    return result;
  }
  for (const MemberIdentity& member : view.members) {
    if (member.smiop == msg.admitted_element) {
      result.detail = "admitted identity is already a member";
      return result;
    }
  }

  slot = MemberIdentity{msg.admitted_element, msg.admitted_gm_client};
  ++view.epoch;
  ++membership_generation_;
  trace(telemetry::TraceKind::kGmMembershipUpdate,
        telemetry::trace_id(ConnectionId(msg.domain.value), RequestId(msg.rank)),
        msg.admitted_element.value, view.epoch);
  ITDOS_INFO(kLog) << "membership update: domain " << msg.domain.to_string()
                   << " rank " << msg.rank << " retires "
                   << msg.retired_element.to_string() << " admits "
                   << msg.admitted_element.to_string() << " (epoch "
                   << view.epoch << ")";
  // Retire the old identity — §3.5's "keying out", without charging the
  // fault budget (retirement is recovery, not necessarily intrusion) — then
  // rekey so the fresh identity receives generation-refreshed shares and
  // the retired one receives nothing.
  retire(msg.domain, msg.retired_element, /*count_expulsion=*/false);
  rekey_domain(msg.domain);
  result.accepted = true;
  result.epoch = KeyEpoch(view.epoch);
  result.detail = "admitted";
  return result;
}

GmCommandResult GmStateMachine::handle_policy(const SetResponsePolicyMsg& msg,
                                              NodeId submitter) {
  GmCommandResult result;
  // Same authorization as membership updates: only the recovery authority
  // (the feedback controller's actuator) may retune the response policy.
  const NodeId authority = directory_->recovery_authority();
  if (authority.value == 0 || submitter != authority) {
    result.detail = "submitter is not the recovery authority";
    return result;
  }
  if (msg.laggard_strikes == 0) {
    result.detail = "laggard_strikes must be at least 1";
    return result;
  }
  policy_strikes_ = msg.laggard_strikes;
  trace(telemetry::TraceKind::kGmPolicy, 0, policy_strikes_);
  ITDOS_INFO(kLog) << "response policy: suspicion expulsions now need "
                   << policy_strikes_ << " strike(s)";
  result.accepted = true;
  result.detail = "policy set";
  return result;
}

void GmStateMachine::retire(DomainId domain, NodeId element_smiop,
                            bool count_expulsion) {
  expelled_[domain].insert(element_smiop);
  if (count_expulsion) {
    ++expulsions_;
    if (metrics_.expulsions != nullptr) metrics_.expulsions->inc();
  }
  trace(telemetry::TraceKind::kGmExpulsion, 0, element_smiop.value,
        count_expulsion ? 0 : 1);
  for (const ExpulsionObserver& observer : expulsion_observers_) {
    observer(domain, element_smiop);
  }
}

void GmStateMachine::rekey_domain(DomainId domain) {
  // Rekey every connection the domain participates in, excluding retired
  // and expelled identities (§3.5: "re-keying the communication group,
  // excepting the compromised element").
  for (auto& [conn, record] : conns_) {
    if (record.target != domain && record.client_domain != domain) continue;
    record.epoch = KeyEpoch(record.epoch.value + 1);
    record.member_epoch = membership_generation_;
    record.epoch_generations[record.epoch.value] = record.member_epoch;
    while (record.epoch_generations.size() > kMaxRetainedEpochs + 1) {
      record.epoch_generations.erase(record.epoch_generations.begin());
    }
    if (metrics_.rekeys != nullptr) metrics_.rekeys->inc();
    trace(telemetry::TraceKind::kGmRekey, 0, record.conn.value, record.epoch.value);
    if (distributor_ != nullptr) {
      distributor_->distribute(record, recipients_for(record));
    }
  }
}

void GmStateMachine::expel(DomainId domain, NodeId element_smiop) {
  retire(domain, element_smiop, /*count_expulsion=*/true);
  ITDOS_INFO(kLog) << "expelling element " << element_smiop.to_string()
                   << " from domain " << domain.to_string();
  rekey_domain(domain);
}

Bytes GmStateMachine::snapshot() const {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_uint64(next_conn_);
  enc.write_uint64(expulsions_);
  enc.write_uint64(membership_generation_);
  enc.write_uint32(static_cast<std::uint32_t>(conns_.size()));
  for (const auto& [conn, record] : conns_) {
    enc.write_uint64(record.conn.value);
    enc.write_uint64(record.client_node.value);
    enc.write_uint64(record.client_domain.value);
    enc.write_uint64(record.target.value);
    enc.write_uint64(record.epoch.value);
    enc.write_uint64(record.member_epoch);
    enc.write_uint32(static_cast<std::uint32_t>(record.epoch_generations.size()));
    for (const auto& [epoch, generation] : record.epoch_generations) {
      enc.write_uint64(epoch);
      enc.write_uint64(generation);
    }
  }
  enc.write_uint32(static_cast<std::uint32_t>(views_.size()));
  for (const auto& [domain, view] : views_) {
    enc.write_uint64(domain.value);
    enc.write_uint64(view.epoch);
    enc.write_uint32(static_cast<std::uint32_t>(view.members.size()));
    for (const MemberIdentity& member : view.members) {
      enc.write_uint64(member.smiop.value);
      enc.write_uint64(member.gm_client.value);
    }
  }
  enc.write_uint32(static_cast<std::uint32_t>(expelled_.size()));
  for (const auto& [domain, elements] : expelled_) {
    enc.write_uint64(domain.value);
    enc.write_uint32(static_cast<std::uint32_t>(elements.size()));
    for (NodeId element : elements) enc.write_uint64(element.value);
  }
  enc.write_uint32(static_cast<std::uint32_t>(tallies_.size()));
  for (const auto& [key, reporters] : tallies_) {
    enc.write_uint64(std::get<0>(key).value);
    enc.write_uint64(std::get<1>(key));
    enc.write_uint64(std::get<2>(key));
    enc.write_uint32(static_cast<std::uint32_t>(reporters.size()));
    for (NodeId reporter : reporters) enc.write_uint64(reporter.value);
  }
  enc.write_uint64(policy_strikes_);
  enc.write_uint32(static_cast<std::uint32_t>(strike_counts_.size()));
  for (const auto& [element, strikes] : strike_counts_) {
    enc.write_uint64(element.value);
    enc.write_uint64(strikes);
  }
  return enc.take();
}

Status GmStateMachine::restore(ByteView snapshot) {
  cdr::Decoder dec(snapshot, cdr::ByteOrder::kLittleEndian);
  GmStateMachine fresh(directory_, keystore_, distributor_);
  ITDOS_ASSIGN_OR_RETURN(fresh.next_conn_, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(fresh.expulsions_, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(fresh.membership_generation_, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t conn_count, dec.read_uint32());
  if (conn_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile snapshot conn count");
  }
  for (std::uint32_t i = 0; i < conn_count; ++i) {
    ConnRecord record;
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
    record.conn = ConnectionId(conn);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t client_node, dec.read_uint64());
    record.client_node = NodeId(client_node);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t client_domain, dec.read_uint64());
    record.client_domain = DomainId(client_domain);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t target, dec.read_uint64());
    record.target = DomainId(target);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t epoch, dec.read_uint64());
    record.epoch = KeyEpoch(epoch);
    ITDOS_ASSIGN_OR_RETURN(record.member_epoch, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint32_t history_count, dec.read_uint32());
    if (history_count > dec.remaining()) {
      return error(Errc::kMalformedMessage, "hostile epoch history count");
    }
    for (std::uint32_t j = 0; j < history_count; ++j) {
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t hist_epoch, dec.read_uint64());
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t generation, dec.read_uint64());
      record.epoch_generations[hist_epoch] = generation;
    }
    fresh.conns_[record.conn] = record;
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t view_count, dec.read_uint32());
  if (view_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile snapshot view count");
  }
  for (std::uint32_t i = 0; i < view_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t domain, dec.read_uint64());
    MembershipView view;
    ITDOS_ASSIGN_OR_RETURN(view.epoch, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint32_t member_count, dec.read_uint32());
    if (member_count > dec.remaining()) {
      return error(Errc::kMalformedMessage, "hostile membership view count");
    }
    for (std::uint32_t j = 0; j < member_count; ++j) {
      MemberIdentity member;
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t smiop, dec.read_uint64());
      member.smiop = NodeId(smiop);
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t gm_client, dec.read_uint64());
      member.gm_client = NodeId(gm_client);
      view.members.push_back(member);
    }
    fresh.views_.emplace(DomainId(domain), std::move(view));
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t domain_count, dec.read_uint32());
  if (domain_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile snapshot domain count");
  }
  for (std::uint32_t i = 0; i < domain_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t domain, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint32_t element_count, dec.read_uint32());
    if (element_count > dec.remaining()) {
      return error(Errc::kMalformedMessage, "hostile snapshot element count");
    }
    for (std::uint32_t j = 0; j < element_count; ++j) {
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t element, dec.read_uint64());
      fresh.expelled_[DomainId(domain)].insert(NodeId(element));
    }
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t tally_count, dec.read_uint32());
  if (tally_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile snapshot tally count");
  }
  for (std::uint32_t i = 0; i < tally_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t accused, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint32_t reporter_count, dec.read_uint32());
    if (reporter_count > dec.remaining()) {
      return error(Errc::kMalformedMessage, "hostile snapshot reporter count");
    }
    auto& tally = fresh.tallies_[{NodeId(accused), conn, rid}];
    for (std::uint32_t j = 0; j < reporter_count; ++j) {
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t reporter, dec.read_uint64());
      tally.insert(NodeId(reporter));
    }
  }
  ITDOS_ASSIGN_OR_RETURN(fresh.policy_strikes_, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t strike_count, dec.read_uint32());
  if (strike_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile snapshot strike count");
  }
  for (std::uint32_t i = 0; i < strike_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t element, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t strikes, dec.read_uint64());
    fresh.strike_counts_[NodeId(element)] = strikes;
  }
  next_conn_ = fresh.next_conn_;
  expulsions_ = fresh.expulsions_;
  membership_generation_ = fresh.membership_generation_;
  conns_ = std::move(fresh.conns_);
  views_ = std::move(fresh.views_);
  expelled_ = std::move(fresh.expelled_);
  tallies_ = std::move(fresh.tallies_);
  policy_strikes_ = fresh.policy_strikes_;
  strike_counts_ = std::move(fresh.strike_counts_);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// GmElement
// ---------------------------------------------------------------------------

/// Sends this element's DPRF share for (conn, epoch) to each recipient over
/// the pairwise secure channel (footnote 2 of §3.5).
class GmElement::Distributor : public ShareDistributor {
 public:
  Distributor(net::Network& net, std::shared_ptr<const SystemDirectory> directory,
              int index, const bft::SessionKeys& keys,
              crypto::DprfElementKeys dprf_keys)
      : net_(net),
        directory_(std::move(directory)),
        index_(index),
        keys_(keys),
        dprf_keys_(std::move(dprf_keys)) {}

  void distribute(const ConnRecord& record,
                  const std::vector<NodeId>& recipients) override {
    if (withhold_) return;
    const NodeId my_node = directory_->gm().elements[index_].smiop_node;
    const Bytes input = dprf_input(record.conn, record.epoch);
    crypto::DprfShare share = evaluator_for(record.member_epoch).evaluate(input);
    if (corrupt_) {
      for (auto& [id, digest] : share.evaluations) digest[0] ^= 0xff;
    }
    const Bytes share_wire = share.encode();
    for (NodeId recipient : recipients) {
      KeyShareMsg msg;
      msg.conn = record.conn;
      msg.epoch = record.epoch;
      msg.target_domain = record.target;
      msg.client_node = record.client_node;
      msg.client_domain = record.client_domain;
      msg.gm_index = static_cast<std::uint32_t>(index_);
      msg.member_epoch = record.member_epoch;
      const auto channel_key = crypto::SymmetricKey::from_bytes(
          keys_.key_for(my_node, recipient));
      msg.sealed_share = crypto::seal(channel_key,
                                      crypto::make_nonce(my_node.value, nonce_ctr_++),
                                      /*aad=*/msg.framing_aad(), share_wire);
      net_.send(my_node, recipient, msg.encode());
    }
  }

  bool withhold_ = false;
  bool corrupt_ = false;

 private:
  /// Evaluator over the sub-keys proactively refreshed to the given
  /// membership generation (crypto::dprf_refresh; generation 0 = deal-time
  /// keys). Cached — every conn at the same generation reuses it.
  const crypto::DprfElement& evaluator_for(std::uint64_t member_epoch) {
    auto it = evaluators_.find(member_epoch);
    if (it == evaluators_.end()) {
      it = evaluators_
               .emplace(member_epoch,
                        crypto::DprfElement(directory_->dprf_params(),
                                            crypto::dprf_refresh(dprf_keys_,
                                                                 member_epoch)))
               .first;
    }
    return it->second;
  }

  net::Network& net_;
  std::shared_ptr<const SystemDirectory> directory_;
  int index_;
  const bft::SessionKeys& keys_;
  crypto::DprfElementKeys dprf_keys_;
  std::map<std::uint64_t, crypto::DprfElement> evaluators_;
  std::uint64_t nonce_ctr_ = 1;
};

GmElement::GmElement(net::Network& net,
                     std::shared_ptr<const SystemDirectory> directory, int index,
                     const bft::SessionKeys& keys, crypto::SigningKey bft_key,
                     std::shared_ptr<const crypto::Keystore> keystore,
                     crypto::DprfElementKeys dprf_keys)
    : net_(net), directory_(std::move(directory)), index_(index) {
  distributor_ = std::make_unique<Distributor>(net_, directory_, index_, keys,
                                               std::move(dprf_keys));
  auto state = std::make_unique<GmStateMachine>(
      directory_, keystore, distributor_.get(), &net_.sim().telemetry(),
      directory_->gm().elements[index_].smiop_node);
  state_ = state.get();
  const bft::BftConfig config =
      directory_->gm().make_bft_config(directory_->timing());
  replica_ = std::make_unique<bft::Replica>(
      net_, directory_->gm().elements[index_].bft_node, config, keys,
      std::move(bft_key), std::move(keystore), std::move(state));
}

GmElement::~GmElement() = default;

void GmElement::set_withhold_shares(bool withhold) {
  distributor_->withhold_ = withhold;
}

void GmElement::set_corrupt_shares(bool corrupt) {
  distributor_->corrupt_ = corrupt;
}

}  // namespace itdos::core
