#include "itdos/smiop.hpp"

#include <algorithm>

#include "common/counters.hpp"
#include "common/log.hpp"
#include "crypto/sha256.hpp"

namespace itdos::core {

namespace {
constexpr std::string_view kLog = "itdos.smiop";

/// The ballot value for a GIOP reply: status + result + exception detail.
std::optional<cdr::Value> reply_ballot_value(ByteView plain_giop, RequestId rid) {
  Result<cdr::GiopMessage> parsed = cdr::parse_giop(plain_giop);
  if (!parsed.is_ok()) return std::nullopt;
  if (!std::holds_alternative<cdr::ReplyMessage>(parsed.value())) return std::nullopt;
  const auto& reply = std::get<cdr::ReplyMessage>(parsed.value());
  if (reply.request_id != rid) return std::nullopt;
  return cdr::Value::structure(
      {cdr::Field("status", cdr::Value::octet(static_cast<std::uint8_t>(reply.status))),
       cdr::Field("result", reply.result),
       cdr::Field("exception", cdr::Value::string(reply.exception_detail))});
}

}  // namespace

// ---------------------------------------------------------------------------
// ConnTable
// ---------------------------------------------------------------------------

void ConnTable::install(const ConnRecord& record, const crypto::SymmetricKey& key) {
  Entry& entry = entries_[record.conn.value];
  entry.keys[record.epoch.value] = key;
  if (counters::after_eq(record.epoch.value, entry.record.epoch.value)) entry.record = record;
  // Epoch hygiene: discard keys older than the retained window so frames
  // sealed before an expulsion long past cannot be replayed indefinitely.
  while (entry.keys.size() > kMaxRetainedEpochs + 1) {
    entry.keys.erase(entry.keys.begin());
  }
  for (const Listener& listener : listeners_) listener(entry);
}

const ConnTable::Entry* ConnTable::find(ConnectionId conn) const {
  const auto it = entries_.find(conn.value);
  return it == entries_.end() ? nullptr : &it->second;
}

const crypto::SymmetricKey* ConnTable::key_for(ConnectionId conn,
                                               KeyEpoch epoch) const {
  const Entry* entry = find(conn);
  if (entry == nullptr) return nullptr;
  const auto it = entry->keys.find(epoch.value);
  return it == entry->keys.end() ? nullptr : &it->second;
}

Bytes seal_aad(ConnectionId conn, RequestId rid, KeyEpoch epoch, bool is_reply) {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_uint64(conn.value);
  enc.write_uint64(rid.value);
  enc.write_uint64(epoch.value);
  enc.write_boolean(is_reply);
  return enc.take();
}

// ---------------------------------------------------------------------------
// Protocol / Connection adapters
// ---------------------------------------------------------------------------

class SmiopParty::Connection : public orb::ClientConnection {
 public:
  Connection(SmiopParty& party, std::shared_ptr<ConnState> state)
      : party_(party), state_(std::move(state)) {}

  ConnectionId id() const override { return state_->conn; }

  void send_request(cdr::RequestMessage request, Completion done) override {
    party_.send_on(*state_, std::move(request), std::move(done));
  }

 private:
  SmiopParty& party_;
  std::shared_ptr<ConnState> state_;
};

class SmiopParty::Protocol : public orb::PluggableProtocol {
 public:
  explicit Protocol(SmiopParty& party) : party_(party) {}
  std::string_view name() const override { return "smiop"; }
  DomainId resolve(const orb::ObjectRef& ref) const override {
    // Location transparency: routed refs (domain 0) resolve to the owner of
    // their key's shard range. The directory's table is identical at every
    // party, so replicated callers resolve identically (§3.6 voting needs
    // their copies to agree on the target).
    return party_.directory_->resolve_target(ref.domain, ref.key);
  }
  void connect(const orb::ObjectRef& ref, ConnectCompletion done) override {
    party_.connect_to(ref, std::move(done));
  }

 private:
  SmiopParty& party_;
};

// ---------------------------------------------------------------------------
// SmiopParty
// ---------------------------------------------------------------------------

SmiopParty::SmiopParty(net::Network& net,
                       std::shared_ptr<const SystemDirectory> directory,
                       PartyConfig config, const bft::SessionKeys& keys,
                       std::shared_ptr<const crypto::Keystore> keystore,
                       std::shared_ptr<NodeAllocator> allocator)
    : net_(net),
      directory_(std::move(directory)),
      config_(config),
      keys_(keys),
      keystore_(std::move(keystore)),
      allocator_(std::move(allocator)),
      agent_(directory_, keys_, config.smiop_node),
      tel_(&net.sim().telemetry()) {
  const std::string prefix = "smiop." + config_.smiop_node.to_string() + ".";
  auto& reg = tel_->metrics();
  metrics_.opens_sent = &reg.counter(prefix + "opens_sent");
  metrics_.requests_sent = &reg.counter(prefix + "requests_sent");
  metrics_.replies_received = &reg.counter(prefix + "replies_received");
  metrics_.replies_rejected = &reg.counter(prefix + "replies_rejected");
  metrics_.votes_decided = &reg.counter(prefix + "votes_decided");
  metrics_.votes_timed_out = &reg.counter(prefix + "votes_timed_out");
  metrics_.discarded = &reg.counter(prefix + "discarded");
  metrics_.faults_detected = &reg.counter(prefix + "faults_detected");
  metrics_.change_requests_sent = &reg.counter(prefix + "change_requests_sent");
  metrics_.fragmented_requests = &reg.counter(prefix + "fragmented_requests");
  metrics_.overloads_observed = &reg.counter(prefix + "overloads_observed");
  metrics_.request_latency_ns = &reg.histogram("smiop.request_latency_ns");
  metrics_.connect_latency_ns = &reg.histogram("smiop.connect_latency_ns");
  gm_client_ = std::make_unique<bft::Client>(
      net_, config_.gm_client_node,
      directory_->gm().make_bft_config(directory_->timing()), keys_);
  agent_.set_key_ready([this](const ConnRecord& record,
                              const crypto::SymmetricKey& key,
                              const std::vector<int>& misbehaving) {
    if (!misbehaving.empty()) {
      ITDOS_WARN(kLog) << "GM elements sent bad shares for conn "
                       << record.conn.to_string();
    }
    if (const ConnTable::Entry* prev = table_.find(record.conn); prev == nullptr) {
      tel_->trace(telemetry::TraceKind::kSmiopConnectOpen, config_.smiop_node, 0,
                  record.conn.value, record.epoch.value);
    } else if (counters::after(record.epoch.value, prev->record.epoch.value)) {
      tel_->trace(telemetry::TraceKind::kSmiopEpochAdvance, config_.smiop_node, 0,
                  record.conn.value, record.epoch.value);
      // Span event: this party's traffic on `conn` now seals under the new
      // epoch (fault forensics segment per-connection timelines on these).
      tel_->trace(telemetry::TraceKind::kEpochRekey, config_.smiop_node, 0,
                  record.conn.value, record.epoch.value);
    }
    table_.install(record, key);
    // Wake any connect waiting on this key.
    const auto it = pending_connects_.find(record.conn.value);
    if (it != pending_connects_.end()) {
      metrics_.connect_latency_ns->record(net_.sim().now() - it->second.started);
      auto waiting = std::move(it->second.waiting);
      net_.sim().cancel(it->second.timer);
      const DomainId target = it->second.target;
      pending_connects_.erase(it);
      for (auto& done : waiting) {
        done(std::shared_ptr<orb::ClientConnection>(std::make_shared<Connection>(
            *this, conns_.at(record.conn.value))));
      }
      (void)target;
    }
  });
}

SmiopParty::~SmiopParty() { *alive_ = false; }

PartyStats SmiopParty::stats() const {
  return PartyStats{
      .opens_sent = metrics_.opens_sent->value(),
      .requests_sent = metrics_.requests_sent->value(),
      .replies_received = metrics_.replies_received->value(),
      .replies_rejected = metrics_.replies_rejected->value(),
      .votes_decided = metrics_.votes_decided->value(),
      .votes_timed_out = metrics_.votes_timed_out->value(),
      .discarded = metrics_.discarded->value(),
      .faults_detected = metrics_.faults_detected->value(),
      .change_requests_sent = metrics_.change_requests_sent->value(),
      .fragmented_requests = metrics_.fragmented_requests->value(),
      .overloads_observed = metrics_.overloads_observed->value(),
  };
}

std::unique_ptr<orb::PluggableProtocol> SmiopParty::make_protocol() {
  return std::make_unique<Protocol>(*this);
}

void SmiopParty::set_vote_audit(ConnectionVoter::DecisionAudit audit) {
  vote_audit_ = std::move(audit);
  for (auto& [conn, state] : conns_) {
    if (state->voter) state->voter->set_audit(vote_audit_);
  }
}

VotePolicy SmiopParty::policy_for(const DomainInfo& target) const {
  return config_.policy_override.value_or(target.vote_policy);
}

bft::Client& SmiopParty::target_client(DomainId domain) {
  auto it = target_clients_.find(domain);
  if (it == target_clients_.end()) {
    const DomainInfo* info = directory_->find_domain(domain);
    it = target_clients_
             .emplace(domain, std::make_unique<bft::Client>(
                                  net_, allocator_->next(),
                                  info->make_bft_config(directory_->timing()), keys_))
             .first;
  }
  return *it->second;
}

std::vector<NodeId> SmiopParty::transport_nodes() const {
  std::vector<NodeId> nodes = {config_.smiop_node, config_.gm_client_node};
  for (const auto& [domain, client] : target_clients_) {
    nodes.push_back(client->id());
  }
  return nodes;
}

void SmiopParty::connect_to(const orb::ObjectRef& ref,
                            orb::PluggableProtocol::ConnectCompletion done) {
  if (shard::is_routed(ref.domain)) {
    // The Orb resolves routed refs before connecting; reaching here means
    // the key fell outside every registered shard range (or no shard map
    // exists in this deployment).
    done(error(Errc::kNotFound,
               "unroutable object key " + ref.key.to_string() +
                   " (no shard range owns it)"));
    return;
  }
  const DomainInfo* target = directory_->find_domain(ref.domain);
  if (target == nullptr) {
    done(error(Errc::kNotFound, "unknown target domain " + ref.domain.to_string()));
    return;
  }
  OpenRequestMsg open;
  open.client_node = config_.smiop_node;
  open.client_domain = config_.my_domain;
  open.target = ref.domain;
  metrics_.opens_sent->inc();
  tel_->trace(telemetry::TraceKind::kSmiopConnectStart, config_.smiop_node, 0,
              ref.domain.value);
  const DomainId target_id = ref.domain;
  const SimTime connect_start = net_.sim().now();
  gm_client_->invoke(
      encode_gm_command(GmCommand(open)),
      [this, target_id, connect_start, done = std::move(done)](Result<Bytes> r) mutable {
        if (!r.is_ok()) {
          done(r.status());
          return;
        }
        Result<GmCommandResult> result = GmCommandResult::decode(r.value());
        if (!result.is_ok()) {
          done(result.status());
          return;
        }
        if (!result.value().accepted) {
          done(error(Errc::kPermissionDenied,
                     "GM rejected open_request: " + result.value().detail));
          return;
        }
        const ConnectionId conn = result.value().conn;
        // Create the connection state now; the key may already be here (the
        // GM's shares race the command ACK) or may still be in flight.
        const DomainInfo* target = directory_->find_domain(target_id);
        auto state = std::make_shared<ConnState>();
        state->conn = conn;
        state->target = target_id;
        state->target_f = target->f;
        state->voter =
            std::make_unique<ConnectionVoter>(target->f, policy_for(*target));
        state->voter->set_telemetry(tel_, config_.smiop_node, conn);
        if (vote_audit_) state->voter->set_audit(vote_audit_);
        conns_[conn.value] = state;

        if (table_.find(conn) != nullptr) {
          metrics_.connect_latency_ns->record(net_.sim().now() - connect_start);
          done(std::shared_ptr<orb::ClientConnection>(
              std::make_shared<Connection>(*this, state)));
          return;
        }
        PendingConnect& pending = pending_connects_[conn.value];
        if (pending.waiting.empty()) pending.started = connect_start;
        pending.target = target_id;
        pending.waiting.push_back(std::move(done));
        pending.timer = net_.sim().schedule_after(
            directory_->timing().reply_vote_timeout_ns * 4,
            [this, alive = alive_, conn] {
              if (!*alive) return;
              const auto it = pending_connects_.find(conn.value);
              if (it == pending_connects_.end()) return;
              auto waiting = std::move(it->second.waiting);
              pending_connects_.erase(it);
              for (auto& waiter : waiting) {
                waiter(error(Errc::kUnavailable,
                             "timed out waiting for communication key shares"));
              }
            });
      });
}

void SmiopParty::send_on(ConnState& state, cdr::RequestMessage request,
                         orb::ClientConnection::Completion done) {
  const ConnTable::Entry* entry = table_.find(state.conn);
  if (entry == nullptr) {
    done(error(Errc::kFailedPrecondition, "connection has no communication key"));
    return;
  }
  const KeyEpoch epoch = entry->record.epoch;
  const crypto::SymmetricKey& key = entry->keys.at(epoch.value);
  const RequestId rid = request.request_id;

  const Bytes plain = cdr::encode_giop(cdr::GiopMessage(std::move(request)),
                                       config_.byte_order);
  const Bytes aad = seal_aad(state.conn, rid, epoch, /*is_reply=*/false);
  OrderedMsg ordered;
  ordered.conn = state.conn;
  ordered.rid = rid;
  ordered.origin = config_.smiop_node;
  ordered.origin_domain = config_.my_domain;
  ordered.epoch = epoch;
  ordered.sealed_giop =
      crypto::seal(key, crypto::make_nonce(config_.smiop_node.value, rid.value), aad,
                   plain);
  metrics_.requests_sent->inc();
  const std::size_t max_entry = directory_->timing().max_entry_bytes;
  const std::uint32_t fragments =
      ordered.sealed_giop.size() <= max_entry
          ? 1
          : static_cast<std::uint32_t>(
                (ordered.sealed_giop.size() + max_entry - 1) / max_entry);
  tel_->trace(telemetry::TraceKind::kSmiopRequestSent, config_.smiop_node,
              telemetry::trace_id(state.conn, rid), ordered.sealed_giop.size(),
              fragments);

  // One outstanding request per connection (§3.6): the Orb guarantees this;
  // opening the new round garbage-collects the previous one's voter state.
  state.voter->expect(rid);
  RequestRound round;
  round.rid = rid;
  round.done = std::move(done);
  round.sent_at = net_.sim().now();
  round.timer_armed = true;
  round.timer = net_.sim().schedule_after(
      directory_->timing().reply_vote_timeout_ns,
      [this, alive = alive_, conn = state.conn] {
        if (!*alive) return;
        const auto it = conns_.find(conn.value);
        if (it == conns_.end() || !it->second->round) return;
        if (!it->second->round->done) return;
        metrics_.votes_timed_out->inc();
        complete_round(*it->second,
                       error(Errc::kUnavailable,
                             "reply vote did not complete (too few replies)"));
      });
  state.round = std::move(round);

  bft::Client& transport = target_client(state.target);
  if (ordered.sealed_giop.size() <= max_entry) {
    const BufView frame = ordered.encode();
    // Compromised-client hooks: a replayed stale frame carries an already
    // executed rid, a duplicate carries the current one twice — every
    // element's last_rid_ check must discard both identically.
    if (replay_stale_frames_ && !last_sealed_frame_.empty()) {
      target_client(last_frame_target_).invoke(last_sealed_frame_, [](Result<Bytes>) {});
    }
    transport.invoke(frame, [](Result<Bytes>) {
      // The BFT-level reply is the static ordering ACK (§3.1); the real
      // CORBA reply arrives as DirectReply messages and is voted there.
    });
    if (duplicate_submits_) {
      transport.invoke(frame, [](Result<Bytes>) {});
    }
    if (replay_stale_frames_) {
      last_sealed_frame_ = frame;
      last_frame_target_ = state.target;
    }
    return;
  }
  // §4 large messages: split the sealed payload into fragments, each an
  // ordered entry. The seal spans the whole payload, so integrity and
  // confidentiality remain end-to-end; the BFT client serializes its queue,
  // so fragments arrive in order. Each chunk is a slice of the one sealed
  // buffer — fragmentation itself copies nothing.
  const BufView& sealed = ordered.sealed_giop;
  const auto total = static_cast<std::uint32_t>(
      (sealed.size() + max_entry - 1) / max_entry);
  for (std::uint32_t i = 0; i < total; ++i) {
    FragmentMsg fragment;
    fragment.conn = ordered.conn;
    fragment.rid = ordered.rid;
    fragment.origin = ordered.origin;
    fragment.origin_domain = ordered.origin_domain;
    fragment.epoch = ordered.epoch;
    fragment.index = i;
    fragment.total = total;
    const std::size_t begin = i * max_entry;
    const std::size_t end = std::min(sealed.size(), begin + max_entry);
    fragment.chunk = sealed.slice(begin, end - begin);
    transport.invoke(fragment.encode(), [](Result<Bytes>) {});
  }
  metrics_.fragmented_requests->inc();
}

void SmiopParty::handle_smiop_packet(const BufView& payload) {
  const Result<SmiopType> type = smiop_type(payload);
  if (!type.is_ok()) return;
  if (type.value() == SmiopType::kKeyShare) {
    Result<KeyShareMsg> msg = KeyShareMsg::decode(payload);
    if (!msg.is_ok()) return;
    // A rejected share (bad MAC, stale epoch) is an expected hostile event;
    // the agent already counted it and quorum math absorbs the loss.
    (void)agent_.handle_share(msg.value());
    return;
  }
  Result<DirectReplyMsg> msg = DirectReplyMsg::decode(payload);
  if (!msg.is_ok()) return;
  handle_direct_reply(msg.value());
}

void SmiopParty::handle_direct_reply(const DirectReplyMsg& msg) {
  metrics_.replies_received->inc();
  const auto it = conns_.find(msg.conn.value);
  if (it == conns_.end()) {
    metrics_.discarded->inc();
    return;
  }
  ConnState& state = *it->second;
  const crypto::SymmetricKey* key = table_.key_for(msg.conn, msg.epoch);
  if (key == nullptr) {
    metrics_.replies_rejected->inc();
    return;
  }
  // The replying element must be a member of the target domain.
  const DomainInfo* target = directory_->find_domain(state.target);
  if (target == nullptr || target->rank_of_smiop(msg.element) < 0) {
    metrics_.replies_rejected->inc();
    return;
  }
  const Bytes aad = seal_aad(msg.conn, msg.rid, msg.epoch, /*is_reply=*/true);
  Result<Bytes> plain = crypto::open(*key, aad, msg.sealed_giop);
  if (!plain.is_ok()) {
    metrics_.replies_rejected->inc();
    return;
  }
  // Verify the element's signature over the plaintext digest — this is what
  // later makes the reply usable as change_request proof (§3.6).
  const crypto::Digest digest = crypto::sha256(ByteView(plain.value()));
  const Bytes region =
      DirectReplyMsg::signed_region(msg.conn, msg.rid, msg.element, msg.epoch, digest);
  if (!keystore_->verify(msg.element, region, msg.plain_signature).is_ok()) {
    metrics_.replies_rejected->inc();
    return;
  }

  if (state.round && msg.rid == state.round->rid) {
    ProofEntry entry;
    entry.element = msg.element;
    entry.epoch = msg.epoch;
    entry.plain_giop = plain.value();
    entry.signature = msg.plain_signature;
    // One proof entry per element per round.
    const bool seen = std::any_of(
        state.round->proof.begin(), state.round->proof.end(),
        [&](const ProofEntry& p) { return p.element == msg.element; });
    if (!seen) state.round->proof.push_back(std::move(entry));
  }

  Ballot ballot;
  ballot.source = msg.element;
  ballot.raw = plain.value();
  ballot.value = reply_ballot_value(plain.value(), msg.rid);

  const std::optional<VoteDecision> decision =
      state.voter->submit(msg.rid, std::move(ballot));
  if (!state.round) return;
  if (decision) {
    metrics_.votes_decided->inc();
    if (state.round->done) {
      const std::int64_t latency = net_.sim().now() - state.round->sent_at;
      metrics_.request_latency_ns->record(latency);
      tel_->trace(telemetry::TraceKind::kSmiopReplyDecided, config_.smiop_node,
                  telemetry::trace_id(state.conn, msg.rid),
                  static_cast<std::uint64_t>(latency));
    }
    Result<cdr::GiopMessage> parsed = cdr::parse_giop(decision->winner.raw);
    if (parsed.is_ok() &&
        std::holds_alternative<cdr::ReplyMessage>(parsed.value())) {
      complete_round(state,
                     std::get<cdr::ReplyMessage>(std::move(parsed).take()));
    } else {
      complete_round(state, error(Errc::kMalformedMessage,
                                  "voted winner is not a parseable GIOP reply"));
    }
  }
  maybe_report_dissenters(state);
}

void SmiopParty::complete_round(ConnState& state, Result<cdr::ReplyMessage> result) {
  if (!state.round || !state.round->done) return;
  if (result.is_ok() && result.value().status == cdr::ReplyStatus::kSystemException &&
      result.value().exception_detail.starts_with("ITDOS-OVERLOAD")) {
    // Admission control shed the request at every correct element: the f+1
    // matching exception ballots make overload an explicit outcome (§6f).
    metrics_.overloads_observed->inc();
  }
  if (state.round->timer_armed) {
    net_.sim().cancel(state.round->timer);
    state.round->timer_armed = false;
  }
  auto done = std::move(state.round->done);
  state.round->done = nullptr;
  done(std::move(result));
  // The round object itself stays until the next request: the voter keeps
  // collecting the remaining replies for fault detection (§3.6).
}

void SmiopParty::maybe_report_dissenters(ConnState& state) {
  if (!config_.auto_report || !state.round) return;
  const auto& vote = state.voter->outstanding();
  if (!vote || !vote->decided()) return;
  const std::vector<NodeId> dissenters = vote->dissenters();
  if (dissenters.empty()) return;
  // Singleton reporters need a 2f+1-strong proof for the GM's own vote.
  const bool singleton = is_singleton_domain(config_.my_domain);
  if (singleton &&
      static_cast<int>(state.round->proof.size()) < 2 * state.target_f + 1) {
    return;  // keep collecting; a later reply may complete the proof
  }
  for (NodeId dissenter : dissenters) {
    if (state.round->reported.contains(dissenter)) continue;
    state.round->reported.insert(dissenter);
    metrics_.faults_detected->inc();
    tel_->trace(telemetry::TraceKind::kSmiopFault, config_.smiop_node,
                telemetry::trace_id(state.conn, state.round->rid), dissenter.value);
    ChangeRequestMsg change;
    change.reporter = config_.smiop_node;
    change.reporter_domain = config_.my_domain;
    change.accused_domain = state.target;
    change.accused_element = dissenter;
    change.conn = state.conn;
    change.rid = state.round->rid;
    if (singleton) change.proof = state.round->proof;
    send_change_request(std::move(change));
  }
}

void SmiopParty::send_change_request(ChangeRequestMsg msg) {
  metrics_.change_requests_sent->inc();
  ITDOS_INFO(kLog) << config_.smiop_node.to_string() << " files change_request against "
                   << msg.accused_element.to_string();
  gm_client_->invoke(encode_gm_command(GmCommand(std::move(msg))),
                     [](Result<Bytes>) {});
}

void SmiopParty::request_resend(ConnectionId conn,
                                std::function<void(GmCommandResult)> done) {
  ResendSharesMsg resend;
  resend.conn = conn;
  resend.requester = config_.smiop_node;
  gm_client_->invoke(encode_gm_command(GmCommand(resend)),
                     [done = std::move(done)](Result<Bytes> r) {
                       if (!done) return;
                       if (!r.is_ok()) {
                         done(GmCommandResult{false, ConnectionId(0), KeyEpoch(0),
                                              r.status().to_string()});
                         return;
                       }
                       Result<GmCommandResult> result =
                           GmCommandResult::decode(r.value());
                       if (result.is_ok()) {
                         done(result.value());
                       } else {
                         done(GmCommandResult{false, ConnectionId(0), KeyEpoch(0),
                                              result.status().to_string()});
                       }
                     });
}

}  // namespace itdos::core
