#include "itdos/key_agent.hpp"

#include "common/counters.hpp"

namespace itdos::core {

Status KeyAgent::handle_share(const KeyShareMsg& msg) {
  const DomainInfo& gm = directory_->gm();
  if (msg.gm_index >= static_cast<std::uint32_t>(gm.n())) {
    ++shares_rejected_;
    return error(Errc::kMalformedMessage, "gm index out of range");
  }
  const NodeId gm_node = gm.elements[msg.gm_index].smiop_node;
  // The pairwise channel authenticates the sending GM element: only it and
  // this party hold the channel key.
  const auto channel_key =
      crypto::SymmetricKey::from_bytes(keys_.key_for(gm_node, my_node_));
  Result<Bytes> opened =
      crypto::open(channel_key, /*aad=*/msg.framing_aad(), msg.sealed_share);
  if (!opened.is_ok()) {
    ++shares_rejected_;
    return error(Errc::kAuthFailure, "key share failed channel authentication");
  }
  Result<crypto::DprfShare> share = crypto::DprfShare::decode(opened.value());
  if (!share.is_ok()) {
    ++shares_rejected_;
    return share.status();
  }
  if (share.value().element != static_cast<int>(msg.gm_index)) {
    ++shares_rejected_;
    return error(Errc::kMalformedMessage, "share element does not match gm index");
  }

  const auto key = std::make_pair(msg.conn.value, msg.epoch.value);
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    PendingKey pending{
        crypto::DprfCombiner(directory_->dprf_params(),
                             dprf_input(msg.conn, msg.epoch)),
        ConnRecord{msg.conn, msg.client_node, msg.client_domain, msg.target_domain,
                   msg.epoch, msg.member_epoch},
        false};
    it = pending_.emplace(key, std::move(pending)).first;
  }
  PendingKey& pending = it->second;
  if (const Status s = pending.combiner.add_share(share.value()); !s.is_ok()) {
    ++shares_rejected_;
    return s;
  }
  ++shares_accepted_;

  if (!pending.announced && pending.combiner.ready()) {
    Result<crypto::SymmetricKey> combined = pending.combiner.combine();
    if (!combined.is_ok()) return combined.status();
    pending.announced = true;
    if (on_key_ready_) {
      on_key_ready_(pending.record, combined.value(), pending.combiner.misbehaving());
    }
    // Keep the combiner so late shares can still be checked for misbehaviour;
    // prune older epochs of the same connection.
    for (auto prune = pending_.begin(); prune != pending_.end();) {
      if (prune->first.first == msg.conn.value && counters::before(prune->first.second, msg.epoch.value)) {
        prune = pending_.erase(prune);
      } else {
        ++prune;
      }
    }
  }
  return Status::ok();
}

}  // namespace itdos::core
