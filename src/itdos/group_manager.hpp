// The Group Manager (§2, §3.3, §3.5, §3.6).
//
// "The Group Manager handles replication domain membership and virtual
// connection management in ITDOS. The Group Manager consists of a
// replication domain of Group Manager processes" — here, a BFT group whose
// state machine is the membership/connection logic. Each GM element is NOT a
// CORBA server (§2): commands arrive as ordered BFT requests, not GIOP.
//
// Responsibilities implemented:
//   * open_request (Figure 3): validate client and target, allocate a
//     connection id, and have every GM element send its DPRF key share to
//     the target elements (step 2) and the client (step 3) over pairwise
//     secure channels (footnote 2);
//   * change_request (§3.6): expel a faulty element — on a singleton
//     client's signed-message proof (the GM re-votes the disputed replies on
//     unmarshalled data using the standalone marshalling engine), or on f+1
//     matching requests from a replication domain (trustworthy source, no
//     proof needed);
//   * rekey on expulsion (§3.5): bump the epoch of every connection the
//     expelled element's domain participates in and redistribute shares to
//     everyone except the expelled element — "keying them out of all
//     communication groups of which they are part".
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>

#include "bft/harness.hpp"
#include "bft/replica.hpp"
#include "itdos/smiop_msg.hpp"
#include "itdos/system_directory.hpp"
#include "telemetry/telemetry.hpp"

namespace itdos::core {

/// A virtual connection the GM manages.
struct ConnRecord {
  ConnectionId conn;
  NodeId client_node;      // SMIOP node of the client party
  DomainId client_domain;  // 0 for singleton clients
  DomainId target;
  KeyEpoch epoch;
  std::uint64_t member_epoch = 0;  // membership generation whose refreshed
                                   // DPRF keys seal this conn's epoch
  // Generation history over the retained-epoch window (epoch -> membership
  // generation), newest last. A resend re-serves shares for every entry, so
  // a fresh replacement element can still unseal queue entries sealed just
  // before its admission rekey; pruned in lockstep with ConnTable.
  std::map<std::uint64_t, std::uint64_t> epoch_generations;

  bool operator==(const ConnRecord&) const = default;
};

/// One slot of a domain's replicated membership view: the identities that
/// currently hold the rank (fresh identities replace retired ones via
/// ordered membership_update commands — DESIGN.md §6d).
struct MemberIdentity {
  NodeId smiop;
  NodeId gm_client;

  bool operator==(const MemberIdentity&) const = default;
};

/// The GM's replicated view of one replication domain's membership. Seeded
/// from the (startup) system directory at the first ordered command and from
/// then on evolved ONLY by ordered membership_update commands, so every GM
/// replica sees identical membership at identical sequence numbers even
/// while the deployment layer is mutating the live directory.
struct MembershipView {
  std::uint64_t epoch = 0;              // bumped once per admitted replacement
  std::vector<MemberIdentity> members;  // by rank

  bool operator==(const MembershipView&) const = default;
};

/// The common non-repeating DPRF input for a connection epoch (§3.5).
Bytes dprf_input(ConnectionId conn, KeyEpoch epoch);

/// Element-specific side-effect hook: when the ordered GM state machine
/// creates or rekeys a connection, each GM element distributes *its own*
/// key share to the given recipients.
class ShareDistributor {
 public:
  virtual ~ShareDistributor() = default;
  virtual void distribute(const ConnRecord& record,
                          const std::vector<NodeId>& recipients) = 0;
};

/// The deterministic, BFT-ordered core of the Group Manager.
class GmStateMachine : public bft::StateMachine {
 public:
  /// `telemetry`/`self` are optional (unit tests leave them null): when set,
  /// GM decisions are traced and counted under `gm.<self>.*`.
  GmStateMachine(std::shared_ptr<const SystemDirectory> directory,
                 std::shared_ptr<const crypto::Keystore> keystore,
                 ShareDistributor* distributor,
                 telemetry::Hub* telemetry = nullptr, NodeId self = {});

  Bytes execute(const BufView& request, NodeId client, SeqNum seq) override;
  Bytes snapshot() const override;
  Status restore(ByteView snapshot) override;

  // Observers.
  bool is_expelled(DomainId domain, NodeId element_smiop) const;
  const std::map<ConnectionId, ConnRecord>& connections() const { return conns_; }
  std::uint64_t expulsions() const { return expulsions_; }

  /// The replicated membership view of a domain, or null before the first
  /// ordered command referenced it.
  const MembershipView* membership_view(DomainId domain) const;

  /// A domain's membership epoch (0 while still at startup membership).
  std::uint64_t membership_epoch(DomainId domain) const;

  /// Global membership generation: bumped once per applied membership_update;
  /// keys distributed afterwards derive from proactively refreshed DPRF
  /// sub-keys of this generation.
  std::uint64_t membership_generation() const { return membership_generation_; }

  /// Suspicion-expulsion aggressiveness currently in force (DESIGN.md §6f):
  /// completed f+1 quorum tallies required before a no-proof expulsion.
  std::uint64_t laggard_strikes() const { return policy_strikes_; }

  /// Observer fired whenever an identity leaves a communication group — via
  /// expulsion or via membership_update retirement (the fault oracle asserts
  /// retired identities never rejoin; the recovery manager reacts to
  /// expulsions by minting replacements).
  using ExpulsionObserver = std::function<void(DomainId, NodeId)>;
  void add_expulsion_observer(ExpulsionObserver observer) {
    expulsion_observers_.push_back(std::move(observer));
  }

  /// Active (non-expelled) SMIOP nodes of a domain.
  std::vector<NodeId> active_elements(const DomainInfo& info) const;

 private:
  GmCommandResult handle_open(const OpenRequestMsg& msg);
  GmCommandResult handle_resend(const ResendSharesMsg& msg);
  GmCommandResult handle_change(const ChangeRequestMsg& msg, NodeId submitter);
  GmCommandResult handle_membership(const MembershipUpdateMsg& msg, NodeId submitter);
  GmCommandResult handle_policy(const SetResponsePolicyMsg& msg, NodeId submitter);
  Status verify_proof(const ChangeRequestMsg& msg) const;
  void expel(DomainId domain, NodeId element_smiop);
  void retire(DomainId domain, NodeId element_smiop, bool count_expulsion);
  void rekey_domain(DomainId domain);
  void ensure_views_seeded();
  /// Rank an SMIOP identity holds in the domain's current membership (view
  /// when seeded, startup directory otherwise), or -1.
  int member_rank(const DomainInfo& info, NodeId smiop) const;
  /// The GM-client identity of the given rank under current membership.
  NodeId member_gm_client(const DomainInfo& info, int rank) const;
  std::vector<NodeId> recipients_for(const ConnRecord& record) const;
  void trace(telemetry::TraceKind kind, std::uint64_t trace_id, std::uint64_t a = 0,
             std::uint64_t b = 0) const;

  std::shared_ptr<const SystemDirectory> directory_;
  std::shared_ptr<const crypto::Keystore> keystore_;
  ShareDistributor* distributor_;  // may be null (unit tests)
  telemetry::Hub* tel_;            // may be null (unit tests)
  NodeId self_;
  struct {
    telemetry::Counter* opens;
    telemetry::Counter* resends;
    telemetry::Counter* change_requests;
    telemetry::Counter* expulsions;
    telemetry::Counter* rekeys;
    telemetry::Counter* membership_updates;
  } metrics_{};

  // Replicated deterministic state.
  std::uint64_t next_conn_ = 1;
  std::map<ConnectionId, ConnRecord> conns_;
  std::map<DomainId, std::set<NodeId>> expelled_;
  std::map<DomainId, MembershipView> views_;
  std::uint64_t membership_generation_ = 0;
  // Domain-quorum change_request tallies: (accused, conn, rid) -> reporters.
  std::map<std::tuple<NodeId, std::uint64_t, std::uint64_t>, std::set<NodeId>> tallies_;
  std::uint64_t expulsions_ = 0;
  // Intrusion-response policy (§6f): quorum strikes before a suspicion-based
  // expulsion, and completed strikes per accused element. Replicated — the
  // feedback controller only changes it via ordered SetResponsePolicy
  // commands submitted by the recovery authority.
  std::uint64_t policy_strikes_ = 1;
  std::map<NodeId, std::uint64_t> strike_counts_;
  std::vector<ExpulsionObserver> expulsion_observers_;  // not replicated state
};

/// One Group Manager replication domain element: the BFT replica running the
/// GmStateMachine plus the share-distribution side effects.
class GmElement {
 public:
  GmElement(net::Network& net, std::shared_ptr<const SystemDirectory> directory,
            int index, const bft::SessionKeys& keys, crypto::SigningKey bft_key,
            std::shared_ptr<const crypto::Keystore> keystore,
            crypto::DprfElementKeys dprf_keys);
  ~GmElement();

  int index() const { return index_; }
  const GmStateMachine& state() const { return *state_; }
  bft::Replica& replica() { return *replica_; }

  /// Forwards to the owned GmStateMachine (fault oracle + recovery wiring).
  void add_expulsion_observer(GmStateMachine::ExpulsionObserver observer) {
    state_->add_expulsion_observer(std::move(observer));
  }

  /// Test hook: make this element stop distributing shares (a crashed or
  /// withholding GM element; parties must still combine from the rest).
  void set_withhold_shares(bool withhold);

  /// Test hook: make this element distribute corrupted shares (a Byzantine
  /// GM element; combiners must flag it and still derive the right key).
  void set_corrupt_shares(bool corrupt);

 private:
  class Distributor;

  net::Network& net_;
  std::shared_ptr<const SystemDirectory> directory_;
  int index_;
  std::unique_ptr<Distributor> distributor_;
  GmStateMachine* state_ = nullptr;  // owned by replica_
  std::unique_ptr<bft::Replica> replica_;
};

}  // namespace itdos::core
