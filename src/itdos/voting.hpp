// The ITDOS voter (§3.6): middleware voting on *unmarshalled* CORBA data.
//
// "Since the marshalled GIOP format can differ depending on platform, ITDOS
// cannot simply perform byte-by-byte voting on the raw message data. ...
// voting must be accomplished in middleware, after the raw message stream
// has been unmarshalled." The voter is based on the Voting Virtual Machine
// [3] and supports inexact voting [31] for values (floats) that legitimately
// differ across heterogeneous platforms; inexact equivalence is deliberately
// NOT transitive.
//
// Decision rule (paper): "The voter requires a minimum of f+1 identical
// messages or 2f+1 total messages to perform a vote. It does not wait for
// all 3f+1 messages."
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "cdr/value.hpp"
#include "common/ids.hpp"
#include "telemetry/telemetry.hpp"

namespace itdos::core {

/// How two candidate results are compared.
struct VotePolicy {
  enum class Kind {
    kExact,       // structural equality on unmarshalled Values
    kInexact,     // structural, floats within epsilon (non-transitive)
    kByteByByte,  // raw wire bytes (Immune/Rampart-style baseline; breaks
                  // under heterogeneity — kept for the E2 benchmark)
    kAdaptive,    // §4 future work [32]: starts at epsilon and relaxes up to
                  // max_epsilon when a full 2f+1 ballot set cannot decide —
                  // trading precision for fault tolerance
  };

  Kind kind = Kind::kExact;
  double epsilon = 0.0;      // kInexact: fixed; kAdaptive: starting value
  double max_epsilon = 0.0;  // kAdaptive: relaxation ceiling

  static VotePolicy exact() { return {Kind::kExact, 0.0, 0.0}; }
  static VotePolicy inexact(double eps) { return {Kind::kInexact, eps, eps}; }
  static VotePolicy byte_by_byte() { return {Kind::kByteByByte, 0.0, 0.0}; }
  static VotePolicy adaptive(double eps, double max_eps) {
    return {Kind::kAdaptive, eps, max_eps};
  }
};

/// Structural equivalence of two values under a policy (kExact/kInexact).
/// Numeric kinds must match exactly; float/double payloads compare within
/// epsilon for kInexact.
bool values_equivalent(const cdr::Value& a, const cdr::Value& b,
                       const VotePolicy& policy);

/// One candidate: the raw bytes as received plus (unless byte-by-byte) the
/// unmarshalled value.
struct Ballot {
  NodeId source;
  Bytes raw;
  std::optional<cdr::Value> value;  // nullopt for kByteByByte
};

/// Outcome of a completed vote.
struct VoteDecision {
  Ballot winner;
  int support = 0;                  // ballots equivalent to the winner
  std::vector<NodeId> dissenters;   // sources whose ballots disagreed —
                                    // candidates for a change_request (§3.6)
  double epsilon_used = 0.0;        // kAdaptive: the precision that decided
};

/// Collates ballots for ONE request id and decides per the paper's rule.
class Vote {
 public:
  /// `f` is the tolerated fault count of the *sending* replication domain.
  Vote(int f, VotePolicy policy) : f_(f), policy_(policy) {}

  /// Adds a ballot (one per source; duplicates ignored). Returns the
  /// decision once f+1 equivalent ballots exist. Ballots arriving after the
  /// decision update the dissenter list via `late_dissenters`.
  std::optional<VoteDecision> add(Ballot ballot);

  bool decided() const { return decided_.has_value(); }
  const std::optional<VoteDecision>& decision() const { return decided_; }
  int ballots() const { return static_cast<int>(ballots_.size()); }

  /// Sources that disagreed with the decided value, including ballots that
  /// arrived after the decision (the paper keeps collecting the remaining
  /// n-(2f+1) messages for fault detection).
  std::vector<NodeId> dissenters() const;

 private:
  bool equivalent(const Ballot& a, const Ballot& b) const {
    return equivalent_at(a, b, policy_.epsilon);
  }
  bool equivalent_at(const Ballot& a, const Ballot& b, double epsilon) const;
  std::optional<VoteDecision> try_decide(double epsilon);

  int f_;
  VotePolicy policy_;
  std::vector<Ballot> ballots_;
  std::set<NodeId> sources_;
  std::optional<VoteDecision> decided_;
};

/// Per-connection voter: one Vote per outstanding request id, with the
/// paper's discard rule — "Any just-received request identifier should match
/// the identifier of the outstanding request ... If the reply's identifier
/// does not match the expected message value, then the ITDOS receiver
/// discards the message ... The receiver neither uses the message's value
/// nor penalizes the sender."
class ConnectionVoter {
 public:
  ConnectionVoter(int f, VotePolicy policy) : f_(f), policy_(policy) {}

  /// Wires the voter into the telemetry seam (optional; unit tests skip it).
  /// `self` is the voting party's SMIOP node, `conn` the virtual connection
  /// the voter serves — together they scope the vote.open/decide/dissent
  /// events to the request trace.
  void set_telemetry(telemetry::Hub* hub, NodeId self, ConnectionId conn);

  /// Audit hook fired on every completed vote with the deciding f and the
  /// decision. The fault oracle uses it to assert every delivered reply was
  /// backed by at least f+1 matching ballots.
  using DecisionAudit = std::function<void(ConnectionId, RequestId, int f,
                                           const VoteDecision&)>;
  void set_audit(DecisionAudit audit) { audit_ = std::move(audit); }

  /// Opens the vote for the next outstanding request. Any state from prior
  /// requests is garbage collected (the paper's voter GC).
  void expect(RequestId request_id);

  /// Feeds a message for `request_id` from `source`. Messages for other ids
  /// are discarded (counted, not penalized). Returns a decision when the
  /// outstanding vote completes.
  std::optional<VoteDecision> submit(RequestId request_id, Ballot ballot);

  RequestId expected() const { return expected_; }
  bool has_outstanding() const { return vote_.has_value(); }
  const std::optional<Vote>& outstanding() const { return vote_; }
  std::uint64_t discarded() const { return discarded_; }

 private:
  int f_;
  VotePolicy policy_;
  RequestId expected_;
  std::optional<Vote> vote_;
  std::uint64_t discarded_ = 0;
  telemetry::Hub* tel_ = nullptr;
  NodeId self_{};
  ConnectionId conn_{};
  telemetry::Counter* discarded_counter_ = nullptr;  // vote.<self>.discarded
  DecisionAudit audit_;
};

}  // namespace itdos::core
