// SMIOP (Secure Multicast Inter-ORB Protocol) message formats — the ITDOS
// layer's wire vocabulary (Figure 2).
//
// Three message families:
//   * OrderedMsg      — entries submitted into a replication domain's BFT
//                       ordering (client GIOP requests, nested requests,
//                       queue-management acks travel as queue entries);
//   * DirectReplyMsg  — a domain element's reply, sent directly to the
//                       requester and voted there (§3.2: clients are not in
//                       the ordering group, so replies flow outward);
//   * Group Manager traffic — OpenRequest / ChangeRequest commands (ordered
//                       within the GM's own domain) and KeyShare messages
//                       (GM element -> party, over pairwise secure channels).
//
// Confidentiality and proof: the GIOP payload inside OrderedMsg/
// DirectReplyMsg is sealed with the connection's communication key. A
// DirectReplyMsg additionally carries the element's *signature over the
// plaintext digest* so a singleton client can later prove a faulty value to
// the Group Manager without the GM ever holding the communication key
// (§3.6's proof of faulty values, reconciled with §3.5's threshold keying:
// the reporter reveals the disputed plaintexts; signatures bind them to
// their senders).
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "cdr/codec.hpp"
#include "common/ids.hpp"
#include "crypto/signing.hpp"
#include "itdos/voting.hpp"

namespace itdos::core {

/// Old key epochs retained per connection beyond the newest one, by BOTH
/// sides of the key path: ConnTable prunes installed keys to this window
/// (bounding the replay horizon a compromised party can hoard frames
/// across), and the GM keeps per-epoch DPRF generation history over the
/// same window so a resend can re-serve every epoch a correct element might
/// still legitimately need (a fresh replacement element consuming queue
/// entries sealed before its admission rekey).
inline constexpr std::size_t kMaxRetainedEpochs = 4;

enum class SmiopType : std::uint8_t {
  kDirectReply = 1,
  kKeyShare = 2,
  kStateBundle = 3,  // element replacement: peer state at a sync point
};

/// Kinds of entries in a replication domain's ordered queue.
enum class QueueEntryKind : std::uint8_t {
  kRequest = 1,    // a (sealed) GIOP request on some connection
  kAck = 2,        // queue-management ack (virtual-synchrony GC, §3.1)
  kSyncPoint = 3,  // replacement sync point: peers snapshot here (§4)
  kFragment = 4,   // one piece of a large sealed request (§4 large messages)
};

/// A request entry ordered into a server domain's queue.
struct OrderedMsg {
  ConnectionId conn;
  RequestId rid;
  NodeId origin;           // SMIOP node of the sender (client or element)
  DomainId origin_domain;  // 0 for singleton clients
  KeyEpoch epoch;          // communication-key epoch the payload is sealed under
  BufView sealed_giop;

  bool operator==(const OrderedMsg&) const = default;
  Bytes encode() const;  // includes the QueueEntryKind tag
  /// Zero-copy: `sealed_giop` is a sub-view sharing `data`'s chunk.
  static Result<OrderedMsg> decode(const BufView& data);
};

/// One fragment of a large sealed request (§4: "we must find an efficient
/// way of moving larger messages through the system"). The sealed GIOP
/// payload of an OrderedMsg is split into chunks that are ordered
/// individually; elements reassemble deterministically (fragments of one
/// request are totally ordered like everything else) and then process the
/// whole as if it had arrived as one kRequest entry. Authentication and
/// confidentiality are end-to-end: the seal covers the complete payload, so
/// a dropped/forged fragment surfaces as a seal failure on reassembly.
struct FragmentMsg {
  ConnectionId conn;
  RequestId rid;
  NodeId origin;
  DomainId origin_domain;
  KeyEpoch epoch;
  std::uint32_t index = 0;   // 0-based fragment number
  std::uint32_t total = 0;   // fragments in this request
  BufView chunk;             // slice of the sealed payload (shared chunk)

  bool operator==(const FragmentMsg&) const = default;
  Bytes encode() const;  // includes the QueueEntryKind tag
  static Result<FragmentMsg> decode(const BufView& data);
};

/// Upper bound on fragments per request (bounds hostile memory use).
inline constexpr std::uint32_t kMaxFragments = 4096;

/// A queue-management ack: "element has consumed entries up to `index`".
struct QueueAckMsg {
  NodeId element;
  std::uint64_t consumed_index = 0;

  bool operator==(const QueueAckMsg&) const = default;
  Bytes encode() const;  // includes the QueueEntryKind tag
  static Result<QueueAckMsg> decode(ByteView data);
};

/// Reads the kind tag of a queue entry.
Result<QueueEntryKind> queue_entry_kind(ByteView data);

/// A domain element's reply, unicast to the requester.
struct DirectReplyMsg {
  ConnectionId conn;
  RequestId rid;
  NodeId element;          // SMIOP node of the replying element
  KeyEpoch epoch;
  BufView sealed_giop;     // plaintext GIOP reply sealed with the conn key
  crypto::Signature plain_signature{};  // over signed_region(plain_digest)

  /// The byte string plain_signature covers: conn | rid | element | epoch |
  /// sha256(plaintext GIOP). Request id + connection id double as the replay
  /// protection the paper requires of proof messages.
  static Bytes signed_region(ConnectionId conn, RequestId rid, NodeId element,
                             KeyEpoch epoch, const crypto::Digest& plain_digest);

  bool operator==(const DirectReplyMsg&) const = default;
  Bytes encode() const;  // includes the SmiopType tag
  static Result<DirectReplyMsg> decode(const BufView& data);
};

/// One GM element's DPRF key share for (conn, epoch), sealed with the
/// pairwise key between that GM element and the receiving party.
struct KeyShareMsg {
  ConnectionId conn;
  KeyEpoch epoch;
  DomainId target_domain;   // the server domain of the connection
  NodeId client_node;       // SMIOP node of the client party
  DomainId client_domain;   // 0 for singleton clients
  std::uint32_t gm_index = 0;  // which GM element sent this
  std::uint64_t member_epoch = 0;  // membership epoch the DPRF keys were
                                   // refreshed to (0 = deal-time keys)
  BufView sealed_share;     // crypto::seal(pairwise key, DprfShare::encode())

  bool operator==(const KeyShareMsg&) const = default;
  Bytes encode() const;  // includes the SmiopType tag
  /// AAD binding the framing fields into the share's seal: a share sealed
  /// for one (conn, epoch, domain, sender) context cannot be replayed under
  /// spliced framing, because open() then fails authentication.
  Bytes framing_aad() const;
  static Result<KeyShareMsg> decode(const BufView& data);
};

/// A replacement sync point ordered into the queue: every element, upon
/// consuming it, snapshots its servant state and sends a StateBundle to the
/// requesting (replacement) element.
struct SyncPointMsg {
  NodeId requester;  // SMIOP node of the replacement element

  bool operator==(const SyncPointMsg&) const = default;
  Bytes encode() const;  // includes the QueueEntryKind tag
  static Result<SyncPointMsg> decode(ByteView data);
};

/// A peer's servant state at a sync point, sealed over the pairwise channel
/// between the sending element and the replacement element. The replacement
/// installs the state once f+1 distinct peers sent byte-identical bundles
/// for the same consumed index (a weak certificate: one of them is correct).
struct StateBundleMsg {
  DomainId domain;
  NodeId element;                 // sender
  std::uint64_t consumed_index = 0;  // queue cursor the bundle captures
  BufView sealed_bundle;

  bool operator==(const StateBundleMsg&) const = default;
  Bytes encode() const;  // includes the SmiopType tag
  static Result<StateBundleMsg> decode(const BufView& data);
};

/// Reads the SmiopType tag of a direct (non-queue) SMIOP message.
Result<SmiopType> smiop_type(ByteView data);

/// Full structural validation: the bytes parse as a complete SMIOP message
/// of their tagged type (used by the firewall proxy, which must not be
/// fooled by tag collisions with other protocols).
bool parses_as_smiop(ByteView data);

// ---------------------------------------------------------------------------
// Group Manager commands (ordered through the GM domain's own BFT group)
// ---------------------------------------------------------------------------

/// Figure 3 step 1: open a connection to `target`.
struct OpenRequestMsg {
  NodeId client_node;      // SMIOP node the key shares should go to
  DomainId client_domain;  // 0 for singleton
  DomainId target;

  bool operator==(const OpenRequestMsg&) const = default;
};

/// One entry of a change_request proof: a disputed plaintext reply plus the
/// signature that binds it to its sender.
struct ProofEntry {
  NodeId element;
  KeyEpoch epoch;
  Bytes plain_giop;
  crypto::Signature signature{};

  bool operator==(const ProofEntry&) const = default;
};

/// §3.6: ask the GM to expel faulty element(s). Singleton reporters must
/// attach proof; replicated reporters are believed at f+1 matching requests.
struct ChangeRequestMsg {
  NodeId reporter;
  DomainId reporter_domain;  // 0 for singleton (proof required)
  DomainId accused_domain;
  NodeId accused_element;    // SMIOP node of the accused element
  ConnectionId conn;
  RequestId rid;
  std::vector<ProofEntry> proof;

  bool operator==(const ChangeRequestMsg&) const = default;
};

/// Ask the GM elements to resend the key shares for a connection to the
/// requesting party (used when an ordered entry references a connection the
/// consuming element has no key for yet: the BFT-agreed answer — resent
/// shares or a rejection — is authoritative and identical for every element,
/// which keeps the consume/discard decision deterministic).
struct ResendSharesMsg {
  ConnectionId conn;
  NodeId requester;  // SMIOP node to resend to

  bool operator==(const ResendSharesMsg&) const = default;
};

/// Totally-ordered membership update: retire one element identity of a
/// replication domain and admit a fresh identity in its place (proactive
/// recovery / replacement of an *expelled* element — DESIGN.md §6d). Only
/// the system's recovery authority may submit one; the GM validates against
/// its replicated membership view and bumps the domain's membership epoch,
/// so stale identities are rejected deterministically by every element.
struct MembershipUpdateMsg {
  DomainId domain;
  std::uint32_t rank = 0;          // slot being replaced
  NodeId retired_element;          // SMIOP node currently holding the slot
  NodeId admitted_element;         // fresh SMIOP identity taking the slot
  NodeId admitted_gm_client;       // fresh GM-client identity of the element
  NodeId admitted_self_client;     // fresh self-client identity of the element
  std::uint64_t expected_epoch = 0;  // CAS: current membership epoch

  bool operator==(const MembershipUpdateMsg&) const = default;
};

/// Totally-ordered intrusion-response policy update (DESIGN.md §6f): sets how
/// aggressively the GM acts on suspicion-based (no-proof, f+1-tally) change
/// requests. `laggard_strikes` is the number of DISTINCT completed quorum
/// tallies against one element before it is expelled: 1 = expel on the first
/// quorum (the baseline), higher values demand repeated independent evidence
/// (conservative mode the feedback controller uses when suspicion is low).
/// Proof-carrying change requests always expel immediately — cryptographic
/// evidence is not policy-tunable. Only the recovery authority may submit
/// one; replicated like every other GM decision.
struct SetResponsePolicyMsg {
  std::uint64_t laggard_strikes = 1;

  bool operator==(const SetResponsePolicyMsg&) const = default;
};

using GmCommand = std::variant<OpenRequestMsg, ChangeRequestMsg, ResendSharesMsg,
                               MembershipUpdateMsg, SetResponsePolicyMsg>;

Bytes encode_gm_command(const GmCommand& cmd);
Result<GmCommand> decode_gm_command(ByteView data);

/// The deterministic reply a GM command execution produces (every GM element
/// computes the same bytes, so the BFT client's f+1 matching rule applies).
struct GmCommandResult {
  bool accepted = false;
  ConnectionId conn;   // assigned/affected connection (open requests)
  KeyEpoch epoch;      // epoch the shares will carry
  std::string detail;  // human-readable rejection reason

  bool operator==(const GmCommandResult&) const = default;
  Bytes encode() const;
  static Result<GmCommandResult> decode(ByteView data);
};

}  // namespace itdos::core
