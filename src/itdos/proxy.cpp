#include "itdos/proxy.hpp"

#include "bft/messages.hpp"
#include "itdos/smiop_msg.hpp"

namespace itdos::core {

namespace {
bool admit_impl(const FirewallProxy::Options& options, ProxyStats& stats,
                const net::Packet& packet) {
  if (packet.payload.size() > options.max_message_bytes) {
    ++stats.dropped_oversize;
    return false;
  }
  if (options.allow_bft && bft::Envelope::decode(packet.payload).is_ok()) {
    ++stats.admitted;
    return true;
  }
  if (options.allow_smiop && parses_as_smiop(packet.payload)) {
    ++stats.admitted;
    return true;
  }
  ++stats.dropped_malformed;
  return false;
}
}  // namespace

bool FirewallProxy::admit(const net::Packet& packet) {
  return admit_impl(options_, *stats_, packet);
}

void FirewallProxy::protect(net::Network& net, NodeId node) {
  // Capture by value (options) / shared_ptr (stats): the filter stays valid
  // even if this proxy object goes away before the node does.
  net.set_inbound_filter(node,
                         [options = options_, stats = stats_](const net::Packet& p) {
                           return admit_impl(options, *stats, p);
                         });
}

void FirewallProxy::release(net::Network& net, NodeId node) {
  net.set_inbound_filter(node, nullptr);
}

}  // namespace itdos::core
