#include "itdos/domain_element.hpp"

#include "common/counters.hpp"
#include "common/log.hpp"
#include "crypto/sha256.hpp"

namespace itdos::core {

namespace {
constexpr std::string_view kLog = "itdos.element";

/// The ballot value for voting on requests from replicated callers: object
/// key + operation + arguments.
std::optional<cdr::Value> request_ballot_value(const cdr::RequestMessage& request) {
  return cdr::Value::structure(
      {cdr::Field("key", cdr::Value::int64(static_cast<std::int64_t>(request.object_key.value))),
       cdr::Field("op", cdr::Value::string(request.operation)),
       cdr::Field("iface", cdr::Value::string(request.interface_name)),
       cdr::Field("args", request.arguments)});
}
}  // namespace

/// SMIOP endpoint: receives key shares and direct replies for this element.
class DomainElement::Endpoint : public net::Process {
 public:
  Endpoint(net::Network& net, NodeId id, DomainElement& element)
      : Process(net, id), element_(element) {}

 protected:
  void on_packet(const net::Packet& packet) override {
    // State bundles are element-level (replacement protocol); everything
    // else belongs to the client-side party machinery.
    if (const Result<SmiopType> type = smiop_type(packet.payload);
        type.is_ok() && type.value() == SmiopType::kStateBundle) {
      if (const Result<StateBundleMsg> msg = StateBundleMsg::decode(packet.payload);
          msg.is_ok()) {
        element_.handle_state_bundle(msg.value());
      }
      return;
    }
    element_.party_->handle_smiop_packet(packet.payload);
  }

 private:
  DomainElement& element_;
};

/// ServerContext for upcalls: nested invocations go through this element's
/// own Orb (and thus its SMIOP client machinery), as §2 requires: "if one
/// state machine invokes operations on an object remotely ... then all
/// replicated state machines in that group must invoke operations on that
/// object remotely".
class DomainElement::UpcallContext : public orb::ServerContext {
 public:
  explicit UpcallContext(DomainElement& element) : element_(element) {}

  void set_connection(ConnectionId conn) { conn_ = conn; }
  ConnectionId connection() const override { return conn_; }

  void invoke_nested(const orb::ObjectRef& target, const std::string& operation,
                     cdr::Value arguments, InvokeCompletion done) override {
    element_.orb_->invoke(target, operation, std::move(arguments), std::move(done));
  }

 private:
  DomainElement& element_;
  ConnectionId conn_;
};

DomainElement::DomainElement(net::Network& net,
                             std::shared_ptr<const SystemDirectory> directory,
                             DomainId domain, int rank, const bft::SessionKeys& keys,
                             crypto::SigningKey bft_key, crypto::SigningKey smiop_key,
                             std::shared_ptr<const crypto::Keystore> keystore,
                             std::shared_ptr<NodeAllocator> allocator,
                             const ServantInstaller& install)
    : net_(net),
      directory_(std::move(directory)),
      domain_(domain),
      rank_(rank),
      info_(directory_->find_domain(domain)->elements.at(rank)),
      keys_(keys),
      smiop_key_(std::move(smiop_key)),
      keystore_(std::move(keystore)) {
  const DomainInfo& domain_info = *directory_->find_domain(domain_);

  PartyConfig party_config;
  party_config.smiop_node = info_.smiop_node;
  party_config.gm_client_node = info_.gm_client_node;
  party_config.my_domain = domain_;
  party_config.byte_order = info_.byte_order;
  party_ = std::make_unique<SmiopParty>(net_, directory_, party_config, keys_,
                                        keystore_, std::move(allocator));

  orb_ = std::make_unique<orb::Orb>(domain_, party_->make_protocol());
  install(orb_->adapter(), rank_);

  endpoint_ = std::make_unique<Endpoint>(net_, info_.smiop_node, *this);
  context_ = std::make_unique<UpcallContext>(*this);

  QueueOptions queue_options;
  queue_options.n = domain_info.n();
  queue_options.f = domain_info.f;
  queue_options.members = domain_info.smiop_nodes();
  queue_options.max_depth = directory_->timing().admission_max_depth;
  queue_options.telemetry = &net_.sim().telemetry();
  queue_options.self = info_.smiop_node;
  auto queue = std::make_unique<QueueStateMachine>(queue_options);
  queue_ = queue.get();
  queue_->set_delivery_hook([this] { schedule_consume(); });
  queue_->set_shed_hook([this](const BufView& entry) { handle_shed(entry); });
  queue_->set_laggard_hook([this](NodeId laggard) {
    if (laggard == info_.smiop_node) return;
    // Virtual synchrony (§3.1): an element that stops participating in
    // queue management must be expelled; each correct element files its own
    // change_request and the GM's f+1 quorum rule does the rest.
    ChangeRequestMsg change;
    change.reporter = info_.smiop_node;
    change.reporter_domain = domain_;
    change.accused_domain = domain_;
    change.accused_element = laggard;
    change.conn = ConnectionId(0);
    change.rid = RequestId(queue_->base_index());  // agreed discriminator
    party_->send_change_request(std::move(change));
  });

  replica_ = std::make_unique<bft::Replica>(
      net_, info_.bft_node, domain_info.make_bft_config(directory_->timing()), keys_,
      std::move(bft_key), keystore_, std::move(queue));

  self_client_ = std::make_unique<bft::Client>(
      net_, info_.self_client_node,
      domain_info.make_bft_config(directory_->timing()), keys_);

  // React to key installs: a stalled consumer may now proceed.
  party_->conn_table().subscribe([this](const ConnTable::Entry& entry) {
    if (waiting_key_ && entry.record.conn == *waiting_key_) {
      waiting_key_.reset();
      schedule_consume();
    }
  });
}

DomainElement::~DomainElement() { *alive_ = false; }

void DomainElement::schedule_consume() {
  if (consume_scheduled_) return;
  consume_scheduled_ = true;
  // The hand-off from the delivery actor to the ORB actor (the paper's
  // inter-thread queue handoff).
  net_.sim().schedule_after(micros(5), [this, alive = alive_] {
    if (!*alive) return;
    consume_scheduled_ = false;
    consume_step();
  });
}

void DomainElement::consume_step() {
  while (!executing_ && !waiting_key_ && queue_->has_next()) {
    const std::optional<BufView> entry = queue_->peek();
    if (!entry) return;
    if (!process_head(*entry)) return;  // stalled (key wait or executing)
  }
}

bool DomainElement::process_head(const BufView& entry) {
  // Replacement sync points are delivered in-order like requests: every
  // element snapshots at exactly this queue position (§4 future work).
  if (const Result<QueueEntryKind> kind = queue_entry_kind(entry);
      kind.is_ok() && kind.value() == QueueEntryKind::kSyncPoint) {
    queue_->pop();
    ++stats_.entries_consumed;
    ++consumed_since_ack_;
    maybe_send_ack();
    if (const Result<SyncPointMsg> sync = SyncPointMsg::decode(entry); sync.is_ok()) {
      if (sync.value().requester != info_.smiop_node) {
        send_state_bundle(sync.value().requester);
      }
    }
    return true;
  }

  if (const Result<QueueEntryKind> kind = queue_entry_kind(entry);
      kind.is_ok() && kind.value() == QueueEntryKind::kFragment) {
    return process_fragment(entry);
  }

  Result<OrderedMsg> decoded = OrderedMsg::decode(entry);
  if (!decoded.is_ok()) {
    // Deterministic discard: every element sees the same bytes.
    queue_->pop();
    ++stats_.entries_discarded;
    return true;
  }
  const OrderedMsg msg = std::move(decoded).take();
  if (party_->conn_table().key_for(msg.conn, msg.epoch) == nullptr) {
    if (const ConnTable::Entry* known = party_->conn_table().find(msg.conn);
        known != nullptr &&
        counters::after(known->record.epoch.value, msg.epoch.value + kMaxRetainedEpochs)) {
      // Sealed under an epoch beyond the retained window: pruned everywhere
      // and no longer re-servable by the GM, so waiting can never succeed.
      // Every element prunes on the same installs, so the discard is
      // identical across the domain.
      queue_->pop();
      ++stats_.entries_discarded;
      return true;
    }
    // Unknown connection or epoch: the shares may still be in flight (a
    // resend re-serves every retained epoch). Ask the GM authoritatively; a
    // rejection is identical (BFT) for every element, so discarding on
    // rejection stays deterministic.
    begin_key_wait(msg.conn);
    return false;
  }
  queue_->pop();
  ++stats_.entries_consumed;
  ++consumed_since_ack_;
  maybe_send_ack();
  return process_sealed_request(msg);
}

/// Processes a complete (possibly reassembled) sealed request whose queue
/// entry/entries have already been consumed.
bool DomainElement::process_sealed_request(const OrderedMsg& msg) {
  const crypto::SymmetricKey* key = party_->conn_table().key_for(msg.conn, msg.epoch);
  if (key == nullptr) {
    ++stats_.entries_discarded;  // key revoked mid-flight; nothing to do
    return true;
  }
  const auto conn_key = msg.conn.value;
  if (counters::before_eq(msg.rid.value, last_rid_[conn_key])) {
    ++stats_.entries_discarded;  // stale or duplicate request id (§3.6)
    return true;
  }

  const Bytes aad = seal_aad(msg.conn, msg.rid, msg.epoch, /*is_reply=*/false);
  Result<Bytes> plain = crypto::open(*key, aad, msg.sealed_giop);
  if (!plain.is_ok()) {
    ++stats_.entries_discarded;
    return true;
  }
  Result<cdr::GiopMessage> parsed = cdr::parse_giop(plain.value());
  if (!parsed.is_ok() ||
      !std::holds_alternative<cdr::RequestMessage>(parsed.value())) {
    ++stats_.entries_discarded;
    return true;
  }
  cdr::RequestMessage request =
      std::get<cdr::RequestMessage>(std::move(parsed).take());
  if (request.request_id != msg.rid) {
    ++stats_.entries_discarded;
    return true;
  }

  if (!is_singleton_domain(msg.origin_domain)) {
    // Replicated caller: vote on the ordered copies (§2 — "other servers
    // receiving a faulty request" detect faults; §3.6's mechanism).
    const ConnTable::Entry* conn_entry = party_->conn_table().find(msg.conn);
    if (conn_entry == nullptr ||
        conn_entry->record.client_domain != msg.origin_domain) {
      ++stats_.entries_discarded;
      return true;
    }
    const DomainInfo* caller = directory_->find_domain(msg.origin_domain);
    if (caller == nullptr || caller->rank_of_smiop(msg.origin) < 0) {
      ++stats_.entries_discarded;
      return true;
    }
    auto [it, created] = request_votes_.try_emplace(
        std::make_pair(msg.conn.value, msg.rid.value), caller->f,
        caller->vote_policy);
    Ballot ballot;
    ballot.source = msg.origin;
    ballot.raw = plain.value();
    ballot.value = request_ballot_value(request);
    ++stats_.request_vote_copies;
    const std::optional<VoteDecision> decision = it->second.add(std::move(ballot));
    if (!decision) return true;  // keep consuming copies
    request_votes_.erase(it);
    Result<cdr::GiopMessage> winner = cdr::parse_giop(decision->winner.raw);
    if (!winner.is_ok() ||
        !std::holds_alternative<cdr::RequestMessage>(winner.value())) {
      ++stats_.entries_discarded;
      return true;
    }
    request = std::get<cdr::RequestMessage>(std::move(winner).take());
  }

  last_rid_[conn_key] = msg.rid.value;
  execute_request(msg, std::move(request));
  return !executing_;  // continue only if the upcall completed synchronously
}

bool DomainElement::process_fragment(const BufView& entry) {
  Result<FragmentMsg> decoded = FragmentMsg::decode(entry);
  if (!decoded.is_ok()) {
    queue_->pop();
    ++stats_.entries_discarded;
    return true;
  }
  const FragmentMsg fragment = std::move(decoded).take();
  // Like whole requests, fragments stall (deterministically) until the
  // connection key exists — the resend/reject path resolves bogus conns.
  if (party_->conn_table().key_for(fragment.conn, fragment.epoch) == nullptr) {
    begin_key_wait(fragment.conn);
    return false;
  }
  queue_->pop();
  ++stats_.entries_consumed;
  ++consumed_since_ack_;
  maybe_send_ack();

  const auto buffer_key =
      std::make_tuple(fragment.conn.value, fragment.origin.value, fragment.rid.value);
  if (counters::before_eq(fragment.rid.value, last_rid_[fragment.conn.value])) {
    fragment_buffers_.erase(buffer_key);
    ++stats_.entries_discarded;  // stale request id
    return true;
  }
  // Bound buffered reassembly state (hostile senders): deterministic
  // eviction of the lowest-keyed buffer keeps elements in lockstep.
  if (!fragment_buffers_.contains(buffer_key) &&
      fragment_buffers_.size() >= kMaxFragmentBuffers) {
    fragment_buffers_.erase(fragment_buffers_.begin());
  }
  FragmentBuffer& buffer = fragment_buffers_[buffer_key];
  if (buffer.total != 0 && buffer.total != fragment.total) {
    // Inconsistent totals: hostile; drop the whole buffer.
    fragment_buffers_.erase(buffer_key);
    ++stats_.entries_discarded;
    return true;
  }
  buffer.total = fragment.total;
  if (!buffer.chunks.emplace(fragment.index, fragment.chunk).second) {
    ++stats_.entries_discarded;  // duplicate index
    return true;
  }
  if (buffer.chunks.size() < buffer.total) return true;  // keep collecting

  // Reassemble and process as one sealed request.
  OrderedMsg whole;
  whole.conn = fragment.conn;
  whole.rid = fragment.rid;
  whole.origin = fragment.origin;
  whole.origin_domain = fragment.origin_domain;
  whole.epoch = fragment.epoch;
  if (buffer.total == 1) {
    whole.sealed_giop = buffer.chunks.begin()->second;  // already whole
  } else {
    // The one unavoidable copy of the fragment path: gathering the chunks
    // into a contiguous buffer for the seal check.
    std::size_t total_len = 0;
    for (const auto& [index, chunk] : buffer.chunks) total_len += chunk.size();
    BufBuilder gather(nullptr, total_len);
    for (const auto& [index, chunk] : buffer.chunks) gather.append(chunk);
    BufStats::note_copy(total_len);
    whole.sealed_giop = gather.seal();
  }
  fragment_buffers_.erase(buffer_key);
  ++stats_.requests_reassembled;
  return process_sealed_request(whole);
}

void DomainElement::begin_key_wait(ConnectionId conn) {
  if (waiting_key_) return;
  waiting_key_ = conn;
  ++stats_.key_waits;
  party_->request_resend(conn, [this, conn](GmCommandResult result) {
    if (!waiting_key_ || *waiting_key_ != conn) return;
    if (!result.accepted) {
      // Authoritative rejection: the connection does not exist (or we are
      // not entitled). Discard the entry deterministically and move on.
      waiting_key_.reset();
      queue_->pop();
      ++stats_.entries_discarded;
      schedule_consume();
    }
    // Accepted: shares are on their way; the table subscription resumes us.
  });
}

void DomainElement::execute_request(const OrderedMsg& meta,
                                    cdr::RequestMessage request) {
  executing_ = true;
  context_->set_connection(meta.conn);
  orb_->adapter().dispatch(
      request, *context_, [this, meta](cdr::ReplyMessage reply) {
        finish_request(meta, std::move(reply));
        executing_ = false;
        schedule_consume();  // resume the queue (paper's nested-call resume)
      });
}

void DomainElement::finish_request(OrderedMsg meta, cdr::ReplyMessage reply) {
  ++stats_.requests_executed;
  if (reply_mutator_) reply = reply_mutator_(std::move(reply));
  seal_and_send_reply(meta.conn, meta.rid, meta.epoch, std::move(reply));
}

void DomainElement::seal_and_send_reply(ConnectionId conn, RequestId rid,
                                        KeyEpoch epoch, cdr::ReplyMessage reply) {
  const crypto::SymmetricKey* key = party_->conn_table().key_for(conn, epoch);
  if (key == nullptr) return;  // rekeyed away mid-execution; drop

  // Heterogeneity: this element marshals in its OWN byte order (§3.6 — this
  // is exactly why the client cannot vote byte-by-byte).
  const Bytes plain =
      cdr::encode_giop(cdr::GiopMessage(std::move(reply)), info_.byte_order);
  const crypto::Digest digest = crypto::sha256(ByteView(plain));
  DirectReplyMsg direct;
  direct.conn = conn;
  direct.rid = rid;
  direct.element = info_.smiop_node;
  direct.epoch = epoch;
  direct.plain_signature = smiop_key_.sign(DirectReplyMsg::signed_region(
      conn, rid, info_.smiop_node, epoch, digest));
  const Bytes aad = seal_aad(conn, rid, epoch, /*is_reply=*/true);
  direct.sealed_giop = crypto::seal(
      *key, crypto::make_nonce(info_.smiop_node.value, reply_nonce_++), aad, plain);
  // One wire frame, shared by every recipient (the fan-out below bumps the
  // refcount, it does not copy).
  const BufView wire = direct.encode();

  // Send to the requesting party: the singleton client, or every element of
  // the calling domain (each votes independently).
  const ConnTable::Entry* entry = party_->conn_table().find(conn);
  if (entry == nullptr) return;
  if (is_singleton_domain(entry->record.client_domain)) {
    net_.send(info_.smiop_node, entry->record.client_node, wire);
    ++stats_.replies_sent;
  } else if (const DomainInfo* caller =
                 directory_->find_domain(entry->record.client_domain)) {
    for (NodeId recipient : caller->smiop_nodes()) {
      net_.send(info_.smiop_node, recipient, wire);
      ++stats_.replies_sent;
    }
  }
  ITDOS_DEBUG(kLog) << "element " << info_.smiop_node.to_string() << " replied on conn "
                    << conn.to_string() << " rid " << rid.to_string();
}

void DomainElement::handle_shed(const BufView& entry) {
  // Every correct element sheds the same entries (the decision is part of
  // the replicated queue state machine), so the OVERLOAD replies built here
  // are value-identical across the domain and the requester's voter reaches
  // its f+1 matching exception ballots — overload is an explicit, observable
  // outcome, not a timeout.
  ConnectionId conn;
  RequestId rid;
  KeyEpoch epoch;
  const Result<QueueEntryKind> kind = queue_entry_kind(entry);
  if (!kind.is_ok()) return;
  if (kind.value() == QueueEntryKind::kRequest) {
    const Result<OrderedMsg> msg = OrderedMsg::decode(entry);
    if (!msg.is_ok()) return;
    conn = msg.value().conn;
    rid = msg.value().rid;
    epoch = msg.value().epoch;
  } else if (kind.value() == QueueEntryKind::kFragment) {
    const Result<FragmentMsg> msg = FragmentMsg::decode(entry);
    if (!msg.is_ok()) return;
    if (msg.value().index != 0) return;  // one OVERLOAD per shed message
    conn = msg.value().conn;
    rid = msg.value().rid;
    epoch = msg.value().epoch;
  } else {
    return;
  }
  ++stats_.requests_shed;
  cdr::ReplyMessage reply;
  reply.request_id = rid;
  reply.status = cdr::ReplyStatus::kSystemException;
  reply.exception_detail = "ITDOS-OVERLOAD: admission control shed the request";
  seal_and_send_reply(conn, rid, epoch, std::move(reply));
}

void DomainElement::maybe_send_ack() {
  if (consumed_since_ack_ < directory_->timing().ack_interval) return;
  consumed_since_ack_ = 0;
  ++stats_.acks_sent;
  self_client_->invoke(queue_->make_ack(info_.smiop_node).encode(),
                       [](Result<Bytes>) {});
}

// ---------------------------------------------------------------------------
// Element replacement (§4 future work: "the ability to create new replicas
// on-the-fly to replace faulty replicas")
// ---------------------------------------------------------------------------

void DomainElement::begin_replacement() {
  queue_->begin_bootstrap();
  // Catch the BFT-level queue up first (f+1-certified snapshot from peers),
  // then have the group order our sync point.
  replica_->request_catch_up();
  submit_sync_point();
}

void DomainElement::submit_sync_point() {
  SyncPointMsg sync;
  sync.requester = info_.smiop_node;
  self_client_->invoke(sync.encode(), [](Result<Bytes>) {});
}

Result<Bytes> DomainElement::make_bundle_plain() const {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_uint64(queue_->consumed_index());
  enc.write_uint32(static_cast<std::uint32_t>(last_rid_.size()));
  for (const auto& [conn, rid] : last_rid_) {
    enc.write_uint64(conn);
    enc.write_uint64(rid);
  }
  const auto& servants = orb_->adapter().servants();
  enc.write_uint32(static_cast<std::uint32_t>(servants.size()));
  for (const auto& [key, servant] : servants) {
    enc.write_uint64(key.value);
    ITDOS_ASSIGN_OR_RETURN(Bytes state, servant->save_state());
    enc.write_bytes(state);
  }
  return enc.take();
}

Status DomainElement::install_bundle_plain(ByteView plain,
                                           std::uint64_t consumed_index) {
  cdr::Decoder dec(plain, cdr::ByteOrder::kLittleEndian);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t recorded_index, dec.read_uint64());
  if (recorded_index != consumed_index) {
    return error(Errc::kMalformedMessage, "bundle index mismatch");
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t rid_count, dec.read_uint32());
  if (rid_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile bundle rid count");
  }
  std::map<std::uint64_t, std::uint64_t> rids;
  for (std::uint32_t i = 0; i < rid_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, dec.read_uint64());
    rids[conn] = rid;
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t servant_count, dec.read_uint32());
  if (servant_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile bundle servant count");
  }
  std::map<ObjectId, Bytes> states;
  for (std::uint32_t i = 0; i < servant_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t key, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(Bytes state, dec.read_bytes());
    states[ObjectId(key)] = std::move(state);
  }
  // Apply: every bundled object must exist locally and accept the state.
  for (const auto& [key, state] : states) {
    ITDOS_ASSIGN_OR_RETURN(std::shared_ptr<orb::Servant> servant,
                           orb_->adapter().find(key));
    ITDOS_RETURN_IF_ERROR(servant->load_state(state));
  }
  last_rid_ = std::move(rids);
  return Status::ok();
}

void DomainElement::handle_state_bundle(const StateBundleMsg& msg) {
  if (!queue_->bootstrapping()) return;  // not replacing; ignore
  if (msg.domain != domain_) return;
  const DomainInfo* info = directory_->find_domain(domain_);
  if (info == nullptr || info->rank_of_smiop(msg.element) < 0) return;
  if (msg.element == info_.smiop_node) return;
  const auto channel = crypto::SymmetricKey::from_bytes(
      keys_.key_for(msg.element, info_.smiop_node));
  Result<Bytes> plain = crypto::open(channel, /*aad=*/{}, msg.sealed_bundle);
  if (!plain.is_ok()) return;
  ++stats_.bundles_received;

  const crypto::Digest digest = crypto::sha256(ByteView(plain.value()));
  BundleOffer& offer = bundle_offers_[{msg.consumed_index, digest}];
  offer.senders.insert(msg.element);
  offer.plain = std::move(plain).take();
  if (static_cast<int>(offer.senders.size()) < info->f + 1) return;

  pending_install_ = {msg.consumed_index, offer.plain};
  try_finish_replacement();
}

void DomainElement::try_finish_replacement() {
  if (!pending_install_ || !queue_->bootstrapping()) return;
  const auto& [consumed_index, plain] = *pending_install_;
  const Status queue_status = queue_->complete_bootstrap(consumed_index);
  if (queue_status.code() == Errc::kUnavailable) {
    // Our BFT queue has not reached the sync point yet; retry shortly.
    net_.sim().schedule_after(millis(5), [this, alive = alive_] {
      if (!*alive) return;
      try_finish_replacement();
    });
    return;
  }
  if (!queue_status.is_ok()) {
    // GC passed the sync point: the bundles are stale. Re-run the sync.
    ITDOS_WARN(kLog) << "replacement sync point collected; re-syncing";
    bundle_offers_.clear();
    pending_install_.reset();
    submit_sync_point();
    return;
  }
  const Status install = install_bundle_plain(plain, consumed_index);
  pending_install_.reset();
  bundle_offers_.clear();
  if (!install.is_ok()) {
    ITDOS_ERROR(kLog) << "replacement bundle install failed: " << install.to_string();
    return;
  }
  ITDOS_INFO(kLog) << "element " << info_.smiop_node.to_string()
                   << " completed replacement at index " << consumed_index;
  schedule_consume();
}

void DomainElement::send_state_bundle(NodeId requester) {
  const Result<Bytes> plain = make_bundle_plain();
  if (!plain.is_ok()) {
    // Servants without persistence make the domain non-replaceable; the
    // requester simply never assembles f+1 bundles.
    ITDOS_WARN(kLog) << "cannot produce replacement bundle: "
                     << plain.status().to_string();
    return;
  }
  Bytes plain_bytes = plain.value();
  if (bundle_corruptor_) plain_bytes = bundle_corruptor_(std::move(plain_bytes));
  StateBundleMsg msg;
  msg.domain = domain_;
  msg.element = info_.smiop_node;
  msg.consumed_index = queue_->consumed_index();
  const auto channel = crypto::SymmetricKey::from_bytes(
      keys_.key_for(info_.smiop_node, requester));
  msg.sealed_bundle =
      crypto::seal(channel, crypto::make_nonce(info_.smiop_node.value, bundle_nonce_++),
                   /*aad=*/{}, plain_bytes);
  net_.send(info_.smiop_node, requester, msg.encode());
  ++stats_.bundles_sent;
}

}  // namespace itdos::core
