#include "itdos/queue.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace itdos::core {

namespace {
const Bytes kAckReply = to_bytes("ITDOS-ACK");  // the paper's "static reply"
// The deterministic admission-shed reply: like kAckReply it is identical at
// every correct element, so the submitting BFT client still gets its f+1
// matching replies and does not retry a shed entry.
const Bytes kShedReply = to_bytes("ITDOS-SHED");

/// Composite fragment-stream key for the shed set.
std::uint64_t stream_key(ConnectionId conn, RequestId rid) {
  return (conn.value << 32) | (rid.value & 0xFFFFFFFFULL);
}
}  // namespace

QueueStateMachine::QueueStateMachine(QueueOptions options) : options_(std::move(options)) {
  if (options_.telemetry != nullptr) {
    const std::string prefix = "queue." + options_.self.to_string() + ".";
    depth_gauge_ = &options_.telemetry->metrics().gauge(prefix + "depth");
    collected_counter_ = &options_.telemetry->metrics().counter(prefix + "entries_collected");
    shed_gauge_ =
        &options_.telemetry->metrics().gauge("admission." + options_.self.to_string() + ".shed");
  }
}

void QueueStateMachine::trace(telemetry::TraceKind kind, std::uint64_t trace_id, std::uint64_t a,
                              std::uint64_t b) const {
  if (options_.telemetry != nullptr) options_.telemetry->trace(kind, options_.self, trace_id, a, b);
}

void QueueStateMachine::update_depth() const {
  if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<std::int64_t>(size()));
}

std::uint64_t QueueStateMachine::trace_of(ByteView request) const {
  const Result<QueueEntryKind> kind = queue_entry_kind(request);
  if (!kind.is_ok()) return 0;
  const BufView scoped = BufView::borrow(request);  // ids only; nothing retained
  if (kind.value() == QueueEntryKind::kRequest) {
    const Result<OrderedMsg> msg = OrderedMsg::decode(scoped);
    if (msg.is_ok()) return telemetry::trace_id(msg.value().conn, msg.value().rid);
  } else if (kind.value() == QueueEntryKind::kFragment) {
    const Result<FragmentMsg> msg = FragmentMsg::decode(scoped);
    if (msg.is_ok()) return telemetry::trace_id(msg.value().conn, msg.value().rid);
  }
  return 0;
}

bool QueueStateMachine::urgent(ByteView request) const {
  const Result<QueueEntryKind> kind = queue_entry_kind(request);
  if (!kind.is_ok()) return false;
  return kind.value() == QueueEntryKind::kAck ||
         kind.value() == QueueEntryKind::kSyncPoint;
}

Bytes QueueStateMachine::execute(const BufView& request, NodeId client, SeqNum seq) {
  (void)client;
  (void)seq;
  const Result<QueueEntryKind> kind = queue_entry_kind(request);
  if (!kind.is_ok()) return to_bytes("ITDOS-REJECT");  // deterministic rejection

  if (kind.value() == QueueEntryKind::kAck) {
    const Result<QueueAckMsg> ack = QueueAckMsg::decode(request);
    if (!ack.is_ok()) return to_bytes("ITDOS-REJECT");
    if (!options_.is_member(ack.value().element)) {
      return to_bytes("ITDOS-REJECT");  // rogue acks must not drive GC
    }
    auto& recorded = acks_[ack.value().element];
    recorded = std::max(recorded, ack.value().consumed_index);
    advance_base();
    return kAckReply;
  }

  // Admission control (DESIGN.md §6f): data entries arriving while the
  // replicated depth is at the bound are shed deterministically — the
  // decision reads only replicated state + static config, so every correct
  // element sheds the same entries and checkpoint digests keep agreeing.
  // Sync points are never shed (recovery must make progress under overload).
  if ((kind.value() == QueueEntryKind::kRequest ||
       kind.value() == QueueEntryKind::kFragment) &&
      should_shed(request, kind.value())) {
    ++sheds_;
    if (shed_gauge_ != nullptr) shed_gauge_->set(static_cast<std::int64_t>(sheds_));
    trace(telemetry::TraceKind::kAdmissionShed, trace_of(request), size(), options_.max_depth);
    if (on_shed_) on_shed_(request);
    return kShedReply;
  }

  // kRequest and kSyncPoint entries are both delivered to the consumer (the
  // sync point marks the exact queue position peers snapshot at). The entry
  // is a view into the BFT wire buffer — retained, not copied.
  entries_[next_index_++] = request;
  trace(telemetry::TraceKind::kQueueAppend, trace_of(request), next_index_ - 1);
  update_depth();
  if (on_delivery_) on_delivery_();
  return kAckReply;
}

bool QueueStateMachine::should_shed(const BufView& request, QueueEntryKind kind) {
  const bool over = options_.max_depth > 0 && size() >= options_.max_depth;
  if (kind == QueueEntryKind::kRequest) return over;

  // Fragments: admission is per message, decided at the first fragment. A
  // shed stream's continuations shed too (otherwise reassembly would stall
  // forever on a hole); an admitted stream's continuations are always
  // admitted so the already-queued fragments can complete.
  const Result<FragmentMsg> msg = FragmentMsg::decode(request);
  if (!msg.is_ok()) return false;  // malformed; let the consumer discard it
  const std::uint64_t key = stream_key(msg.value().conn, msg.value().rid);
  const bool last = msg.value().index + 1 >= msg.value().total;
  if (shed_streams_.contains(key)) {
    if (last) shed_streams_.erase(key);
    return true;
  }
  if (msg.value().index != 0 || !over) return false;
  if (!last) shed_streams_.insert(key);
  return true;
}

void QueueStateMachine::advance_base() {
  // The agreed GC floor is the (n-f)-th highest ack: n-f elements have
  // consumed at least that far, so at most f (faulty or lagging) have not.
  if (static_cast<int>(acks_.size()) < options_.n - options_.f) return;
  std::vector<std::uint64_t> indices;
  indices.reserve(acks_.size());
  for (const auto& [element, index] : acks_) indices.push_back(index);
  std::sort(indices.begin(), indices.end(), std::greater<>());
  std::uint64_t floor = indices[static_cast<std::size_t>(options_.n - options_.f - 1)];

  // Clamp: GC never passes the ack of a LIVE member — a correct element a
  // packet burst delayed must not have its unconsumed entries collected
  // (that would break it permanently; virtual synchrony is for members that
  // STOP participating). A member is declared dead once it trails the
  // quorum floor by more than 2x the lag window; dead members stop
  // constraining GC, get flagged by the laggard hook, and are expelled.
  if (!options_.members.empty()) {
    std::uint64_t min_live = std::numeric_limits<std::uint64_t>::max();
    for (NodeId member : options_.members) {
      const auto it = acks_.find(member);
      const std::uint64_t ack = it == acks_.end() ? 0 : it->second;
      if (ack + 2 * options_.lag_window >= floor) {
        min_live = std::min(min_live, ack);
      }
    }
    if (min_live != std::numeric_limits<std::uint64_t>::max()) {
      floor = std::min(floor, min_live);
    }
  }
  if (floor <= base_) return;
  const std::uint64_t collected = floor - base_;
  entries_.erase(entries_.begin(), entries_.lower_bound(floor));
  base_ = floor;
  trace(telemetry::TraceKind::kQueueGc, 0, base_, collected);
  if (collected_counter_ != nullptr) collected_counter_->inc(collected);
  update_depth();
  if (consumed_ < base_) {
    if (bootstrap_) {
      consumed_ = base_;  // placeholder cursor; real one comes from the bundle
    } else {
      // Our own unconsumed entries were collected: we broke the queue
      // management protocol and can no longer maintain equivalent state.
      broken_ = true;
      trace(telemetry::TraceKind::kQueueBroken, 0, base_);
    }
  }
  if (on_laggard_) {
    const auto flag_if_lagging = [&](NodeId element) {
      const auto it = acks_.find(element);
      const std::uint64_t index = it == acks_.end() ? 0 : it->second;
      if (base_ - std::min(index, base_) > options_.lag_window) {
        trace(telemetry::TraceKind::kQueueLaggard, 0, element.value);
        on_laggard_(element);
      }
    };
    // Check the member list, not just the ack map: a member that has NEVER
    // acked (stalled before its first ack) must still be flagged once GC
    // leaves it behind. Unit harnesses with no member list keep the
    // ack-map behavior.
    if (!options_.members.empty()) {
      for (NodeId member : options_.members) flag_if_lagging(member);
    } else {
      for (const auto& [element, index] : acks_) flag_if_lagging(element);
    }
  }
}

std::optional<BufView> QueueStateMachine::next() {
  std::optional<BufView> entry = peek();
  if (entry) pop();
  return entry;
}

std::optional<BufView> QueueStateMachine::peek() const {
  if (!has_next()) return std::nullopt;
  const auto it = entries_.find(consumed_);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void QueueStateMachine::pop() {
  if (!has_next()) return;
  if (!entries_.contains(consumed_)) {
    // Entry below base (collected) — cannot happen while !broken_, but keep
    // the invariant check defensive.
    broken_ = true;
    return;
  }
  ++consumed_;
}

Bytes QueueStateMachine::snapshot() const {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_uint64(base_);
  enc.write_uint64(next_index_);
  enc.write_uint32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [index, data] : entries_) {
    enc.write_uint64(index);
    enc.write_bytes(data);
  }
  enc.write_uint32(static_cast<std::uint32_t>(acks_.size()));
  for (const auto& [element, index] : acks_) {
    enc.write_uint64(element.value);
    enc.write_uint64(index);
  }
  enc.write_uint32(static_cast<std::uint32_t>(shed_streams_.size()));
  for (const std::uint64_t key : shed_streams_) enc.write_uint64(key);
  return enc.take();
}

Status QueueStateMachine::restore(ByteView snapshot) {
  cdr::Decoder dec(snapshot, cdr::ByteOrder::kLittleEndian);
  std::uint64_t base = 0;
  std::uint64_t next = 0;
  ITDOS_ASSIGN_OR_RETURN(base, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(next, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t entry_count, dec.read_uint32());
  if (entry_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile queue entry count");
  }
  std::map<std::uint64_t, BufView> entries;
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t index, dec.read_uint64());
    // Snapshots arrive as borrowed ByteViews; entries must own their bytes.
    ITDOS_ASSIGN_OR_RETURN(Bytes data, dec.read_bytes());
    entries[index] = BufView(std::move(data));
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t ack_count, dec.read_uint32());
  if (ack_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile queue ack count");
  }
  std::map<NodeId, std::uint64_t> acks;
  for (std::uint32_t i = 0; i < ack_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t element, dec.read_uint64());
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t index, dec.read_uint64());
    acks[NodeId(element)] = index;
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint32_t shed_count, dec.read_uint32());
  if (shed_count > dec.remaining()) {
    return error(Errc::kMalformedMessage, "hostile queue shed count");
  }
  std::set<std::uint64_t> shed_streams;
  for (std::uint32_t i = 0; i < shed_count; ++i) {
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t key, dec.read_uint64());
    shed_streams.insert(key);
  }

  // Virtual synchrony: we can only adopt the queue if our consumption point
  // is still inside the retained window — otherwise the entries we would
  // need to replay are gone and our servant state can never converge. A
  // bootstrapping replacement element is exempt: it has no history and will
  // receive certified servant state at a sync point instead.
  if (consumed_ < base && !bootstrap_) {
    broken_ = true;
    trace(telemetry::TraceKind::kQueueBroken, 0, base);
    return error(Errc::kFailedPrecondition,
                 "queue GC passed this element's consumption point; element "
                 "must be expelled (virtual synchrony)");
  }
  entries_ = std::move(entries);
  base_ = base;
  next_index_ = next;
  acks_ = std::move(acks);
  shed_streams_ = std::move(shed_streams);
  update_depth();
  if (bootstrap_ && consumed_ < base_) consumed_ = base_;  // placeholder cursor
  if (on_delivery_ && has_next()) on_delivery_();
  return Status::ok();
}

Status QueueStateMachine::complete_bootstrap(std::uint64_t consumed_index) {
  if (!bootstrap_) {
    return error(Errc::kFailedPrecondition, "queue is not bootstrapping");
  }
  if (consumed_index < base_) {
    return error(Errc::kFailedPrecondition,
                 "GC passed the sync point; a fresh sync is required");
  }
  if (consumed_index > next_index_) {
    // The bundle is ahead of our (BFT-level) queue: we have not caught up to
    // the sync point yet. Keep bootstrapping; the caller retries when the
    // queue advances.
    return error(Errc::kUnavailable, "queue has not reached the sync point yet");
  }
  consumed_ = consumed_index;
  bootstrap_ = false;
  if (on_delivery_ && has_next()) on_delivery_();
  return Status::ok();
}

}  // namespace itdos::core
