// One replication domain element: a complete ITDOS server process (Figure 2,
// right-hand stack): the Castro-Liskov replica running the message-queue
// state machine, the ORB actor consuming that queue, the object adapter with
// the hosted servants, the SMIOP endpoint for key shares and direct replies,
// and the client-side party used for nested invocations.
//
// The paper's two-thread model (§3.1: one thread for Castro-Liskov message
// delivery, one for ORB execution) maps to two actors on the simulator: the
// BFT replica appends to the queue (delivery), and the consume loop runs as
// separately scheduled events (ORB execution), pausing while a nested
// invocation is outstanding.
#pragma once

#include "bft/replica.hpp"
#include "itdos/queue.hpp"
#include "itdos/smiop.hpp"
#include "orb/orb.hpp"

namespace itdos::core {

struct ElementStats {
  std::uint64_t entries_consumed = 0;
  std::uint64_t entries_discarded = 0;   // malformed / unsealable / stale rid
  std::uint64_t requests_executed = 0;
  std::uint64_t request_vote_copies = 0; // ordered copies fed to request votes
  std::uint64_t replies_sent = 0;
  std::uint64_t key_waits = 0;           // stalls on a not-yet-keyed connection
  std::uint64_t acks_sent = 0;
  std::uint64_t bundles_sent = 0;        // replacement sync bundles produced
  std::uint64_t bundles_received = 0;
  std::uint64_t requests_reassembled = 0;  // large requests rebuilt (§4)
  std::uint64_t requests_shed = 0;       // admission control sheds (§6f)
};

class DomainElement {
 public:
  /// Installs this element's servants. `rank` lets heterogeneous deployments
  /// install *different implementations* of the same service per element
  /// (§1: "greater diversity in implementation and greater survivability").
  using ServantInstaller = std::function<void(orb::ObjectAdapter& adapter, int rank)>;

  DomainElement(net::Network& net, std::shared_ptr<const SystemDirectory> directory,
                DomainId domain, int rank, const bft::SessionKeys& keys,
                crypto::SigningKey bft_key, crypto::SigningKey smiop_key,
                std::shared_ptr<const crypto::Keystore> keystore,
                std::shared_ptr<NodeAllocator> allocator,
                const ServantInstaller& install);
  ~DomainElement();

  DomainId domain() const { return domain_; }
  int rank() const { return rank_; }
  NodeId smiop_node() const { return info_.smiop_node; }

  orb::Orb& orb() { return *orb_; }
  orb::ObjectAdapter& adapter() { return orb_->adapter(); }
  bft::Replica& replica() { return *replica_; }
  const QueueStateMachine& queue() const { return *queue_; }
  SmiopParty& party() { return *party_; }
  const ElementStats& stats() const { return stats_; }

  /// Test hook: a Byzantine element that alters every reply it produces
  /// (value corruption that survives MACs — the voter must catch it).
  void set_reply_mutator(std::function<cdr::ReplyMessage(cdr::ReplyMessage)> mutator) {
    reply_mutator_ = std::move(mutator);
  }

  /// Test hook: a Byzantine peer that corrupts the state bundles it serves
  /// to a joining replacement (MAC-valid wrong content over the pairwise
  /// channel — only the f+1 byte-identical-offers rule can mask it).
  void set_bundle_corruptor(std::function<Bytes(Bytes)> corruptor) {
    bundle_corruptor_ = std::move(corruptor);
  }

  /// Starts this element as a REPLACEMENT for a crashed/wiped predecessor
  /// (the paper's §4 future-work item). The element catches up its BFT-level
  /// queue, orders a sync point, and installs servant state certified by
  /// f+1 byte-identical peer bundles before consuming anything.
  void begin_replacement();

  /// True once a replacement element has installed peer state and resumed.
  bool replacement_complete() const {
    return !queue_->bootstrapping();
  }

 private:
  class Endpoint;
  class UpcallContext;
  friend class UpcallContext;

  void schedule_consume();
  void consume_step();
  /// Handles the entry at the queue cursor. Returns true if the cursor
  /// advanced (continue consuming), false if consumption must stall.
  bool process_head(const BufView& entry);
  bool process_sealed_request(const OrderedMsg& msg);
  bool process_fragment(const BufView& entry);
  void execute_request(const OrderedMsg& meta, cdr::RequestMessage request);
  void finish_request(OrderedMsg meta, cdr::ReplyMessage reply);
  /// Seals `reply`, signs its digest and sends the DirectReplyMsg back to the
  /// requester (singleton client or every element of the calling domain).
  void seal_and_send_reply(ConnectionId conn, RequestId rid, KeyEpoch epoch,
                           cdr::ReplyMessage reply);
  /// Admission-shed hook: sends the requester an explicit OVERLOAD system
  /// exception so open-loop overload degrades gracefully (DESIGN.md §6f).
  void handle_shed(const BufView& entry);
  void begin_key_wait(ConnectionId conn);
  void maybe_send_ack();

  // --- element replacement ---
  void send_state_bundle(NodeId requester);
  void handle_state_bundle(const StateBundleMsg& msg);
  Result<Bytes> make_bundle_plain() const;
  Status install_bundle_plain(ByteView plain, std::uint64_t consumed_index);
  void submit_sync_point();
  void try_finish_replacement();

  net::Network& net_;
  std::shared_ptr<const SystemDirectory> directory_;
  DomainId domain_;
  int rank_;
  ElementInfo info_;
  const bft::SessionKeys& keys_;
  crypto::SigningKey smiop_key_;
  std::shared_ptr<const crypto::Keystore> keystore_;

  std::unique_ptr<SmiopParty> party_;   // client role (nested invocations)
  std::unique_ptr<orb::Orb> orb_;
  std::unique_ptr<Endpoint> endpoint_;
  QueueStateMachine* queue_ = nullptr;  // owned by replica_
  std::unique_ptr<bft::Replica> replica_;
  std::unique_ptr<bft::Client> self_client_;  // queue-management acks
  std::unique_ptr<UpcallContext> context_;

  ElementStats stats_;
  std::function<cdr::ReplyMessage(cdr::ReplyMessage)> reply_mutator_;
  std::function<Bytes(Bytes)> bundle_corruptor_;

  // Recovery can destroy an element (watchdog abort) while self-scheduled
  // events are still pending in the simulator; those lambdas hold a copy of
  // this flag and become no-ops once the element is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  bool consume_scheduled_ = false;
  bool executing_ = false;              // upcall in progress (maybe nested)
  std::optional<ConnectionId> waiting_key_;  // stalled on this connection
  std::map<std::uint64_t, std::uint64_t> last_rid_;  // conn -> last executed rid
  std::map<std::pair<std::uint64_t, std::uint64_t>, Vote> request_votes_;
  std::uint64_t reply_nonce_ = 1;
  std::uint64_t consumed_since_ack_ = 0;

  // Replacement bootstrap: bundle tallies keyed by (consumed index, bundle
  // digest); installed at f+1 matching senders (weak certificate).
  struct BundleOffer {
    std::set<NodeId> senders;
    Bytes plain;
  };
  std::map<std::pair<std::uint64_t, crypto::Digest>, BundleOffer> bundle_offers_;
  std::optional<std::pair<std::uint64_t, Bytes>> pending_install_;  // awaiting queue
  std::uint64_t bundle_nonce_ = 1;

  // Large-message reassembly (§4): buffers keyed (conn, origin, rid). Each
  // buffered chunk is a view retaining its queue entry's chunk — buffering
  // copies nothing; only the final gather materializes the payload.
  struct FragmentBuffer {
    std::uint32_t total = 0;
    std::map<std::uint32_t, BufView> chunks;
  };
  static constexpr std::size_t kMaxFragmentBuffers = 64;
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>, FragmentBuffer>
      fragment_buffers_;
};

}  // namespace itdos::core
