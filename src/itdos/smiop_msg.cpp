#include "itdos/smiop_msg.hpp"

#include "crypto/sha256.hpp"

namespace itdos::core {

namespace {

constexpr cdr::ByteOrder kWire = cdr::ByteOrder::kLittleEndian;

void write_signature(cdr::Encoder& enc, const crypto::Signature& s) {
  enc.write_raw(ByteView(s.data(), s.size()));
}

Result<crypto::Signature> read_signature(cdr::Decoder& dec) {
  ITDOS_ASSIGN_OR_RETURN(Bytes raw, dec.read_raw(crypto::kSignatureSize));
  crypto::Signature s;
  std::copy(raw.begin(), raw.end(), s.begin());
  return s;
}

Status check_exhausted(const cdr::Decoder& dec, const char* what) {
  if (!dec.exhausted()) {
    return error(Errc::kMalformedMessage, std::string("trailing bytes in ") + what);
  }
  return Status::ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Queue entries
// ---------------------------------------------------------------------------

Result<QueueEntryKind> queue_entry_kind(ByteView data) {
  if (data.empty()) return error(Errc::kMalformedMessage, "empty queue entry");
  if (data[0] < static_cast<std::uint8_t>(QueueEntryKind::kRequest) ||
      data[0] > static_cast<std::uint8_t>(QueueEntryKind::kFragment)) {
    return error(Errc::kMalformedMessage, "unknown queue entry kind");
  }
  return static_cast<QueueEntryKind>(data[0]);
}

Bytes FragmentMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_octet(static_cast<std::uint8_t>(QueueEntryKind::kFragment));
  enc.write_uint64(conn.value);
  enc.write_uint64(rid.value);
  enc.write_uint64(origin.value);
  enc.write_uint64(origin_domain.value);
  enc.write_uint64(epoch.value);
  enc.write_uint32(index);
  enc.write_uint32(total);
  enc.write_bytes(chunk);
  return enc.take();
}

Result<FragmentMsg> FragmentMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t kind, dec.read_octet());
  if (kind != static_cast<std::uint8_t>(QueueEntryKind::kFragment)) {
    return error(Errc::kMalformedMessage, "not a fragment entry");
  }
  FragmentMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
  msg.conn = ConnectionId(conn);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, dec.read_uint64());
  msg.rid = RequestId(rid);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t origin, dec.read_uint64());
  msg.origin = NodeId(origin);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t origin_domain, dec.read_uint64());
  msg.origin_domain = DomainId(origin_domain);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t epoch, dec.read_uint64());
  msg.epoch = KeyEpoch(epoch);
  ITDOS_ASSIGN_OR_RETURN(msg.index, dec.read_uint32());
  ITDOS_ASSIGN_OR_RETURN(msg.total, dec.read_uint32());
  if (msg.total == 0 || msg.total > kMaxFragments || msg.index >= msg.total) {
    return error(Errc::kMalformedMessage, "fragment indices out of range");
  }
  ITDOS_ASSIGN_OR_RETURN(msg.chunk, dec.read_bytes_view());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "FragmentMsg"));
  return msg;
}

Bytes SyncPointMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_octet(static_cast<std::uint8_t>(QueueEntryKind::kSyncPoint));
  enc.write_uint64(requester.value);
  return enc.take();
}

Result<SyncPointMsg> SyncPointMsg::decode(ByteView data) {
  cdr::Decoder dec(data, kWire);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t kind, dec.read_octet());
  if (kind != static_cast<std::uint8_t>(QueueEntryKind::kSyncPoint)) {
    return error(Errc::kMalformedMessage, "not a sync point entry");
  }
  SyncPointMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t requester, dec.read_uint64());
  msg.requester = NodeId(requester);
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "SyncPointMsg"));
  return msg;
}

Bytes OrderedMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_octet(static_cast<std::uint8_t>(QueueEntryKind::kRequest));
  enc.write_uint64(conn.value);
  enc.write_uint64(rid.value);
  enc.write_uint64(origin.value);
  enc.write_uint64(origin_domain.value);
  enc.write_uint64(epoch.value);
  enc.write_bytes(sealed_giop);
  return enc.take();
}

Result<OrderedMsg> OrderedMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t kind, dec.read_octet());
  if (kind != static_cast<std::uint8_t>(QueueEntryKind::kRequest)) {
    return error(Errc::kMalformedMessage, "not a request queue entry");
  }
  OrderedMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
  msg.conn = ConnectionId(conn);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, dec.read_uint64());
  msg.rid = RequestId(rid);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t origin, dec.read_uint64());
  msg.origin = NodeId(origin);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t origin_domain, dec.read_uint64());
  msg.origin_domain = DomainId(origin_domain);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t epoch, dec.read_uint64());
  msg.epoch = KeyEpoch(epoch);
  ITDOS_ASSIGN_OR_RETURN(msg.sealed_giop, dec.read_bytes_view());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "OrderedMsg"));
  return msg;
}

Bytes QueueAckMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_octet(static_cast<std::uint8_t>(QueueEntryKind::kAck));
  enc.write_uint64(element.value);
  enc.write_uint64(consumed_index);
  return enc.take();
}

Result<QueueAckMsg> QueueAckMsg::decode(ByteView data) {
  cdr::Decoder dec(data, kWire);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t kind, dec.read_octet());
  if (kind != static_cast<std::uint8_t>(QueueEntryKind::kAck)) {
    return error(Errc::kMalformedMessage, "not an ack queue entry");
  }
  QueueAckMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t element, dec.read_uint64());
  msg.element = NodeId(element);
  ITDOS_ASSIGN_OR_RETURN(msg.consumed_index, dec.read_uint64());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "QueueAckMsg"));
  return msg;
}

// ---------------------------------------------------------------------------
// Direct SMIOP messages
// ---------------------------------------------------------------------------

Result<SmiopType> smiop_type(ByteView data) {
  if (data.empty()) return error(Errc::kMalformedMessage, "empty SMIOP message");
  if (data[0] != static_cast<std::uint8_t>(SmiopType::kDirectReply) &&
      data[0] != static_cast<std::uint8_t>(SmiopType::kKeyShare) &&
      data[0] != static_cast<std::uint8_t>(SmiopType::kStateBundle)) {
    return error(Errc::kMalformedMessage, "unknown SMIOP message type");
  }
  return static_cast<SmiopType>(data[0]);
}

bool parses_as_smiop(ByteView data) {
  const Result<SmiopType> type = smiop_type(data);
  if (!type.is_ok()) return false;
  // Validation only: the decoded views never outlive this scope, so a
  // non-owning borrow avoids copying the payload.
  const BufView scoped = BufView::borrow(data);
  switch (type.value()) {
    case SmiopType::kDirectReply: return DirectReplyMsg::decode(scoped).is_ok();
    case SmiopType::kKeyShare: return KeyShareMsg::decode(scoped).is_ok();
    case SmiopType::kStateBundle: return StateBundleMsg::decode(scoped).is_ok();
  }
  return false;
}

Bytes StateBundleMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_octet(static_cast<std::uint8_t>(SmiopType::kStateBundle));
  enc.write_uint64(domain.value);
  enc.write_uint64(element.value);
  enc.write_uint64(consumed_index);
  enc.write_bytes(sealed_bundle);
  return enc.take();
}

Result<StateBundleMsg> StateBundleMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t type, dec.read_octet());
  if (type != static_cast<std::uint8_t>(SmiopType::kStateBundle)) {
    return error(Errc::kMalformedMessage, "not a StateBundle");
  }
  StateBundleMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t domain, dec.read_uint64());
  msg.domain = DomainId(domain);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t element, dec.read_uint64());
  msg.element = NodeId(element);
  ITDOS_ASSIGN_OR_RETURN(msg.consumed_index, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(msg.sealed_bundle, dec.read_bytes_view());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "StateBundleMsg"));
  return msg;
}

Bytes DirectReplyMsg::signed_region(ConnectionId conn, RequestId rid, NodeId element,
                                    KeyEpoch epoch, const crypto::Digest& plain_digest) {
  cdr::Encoder enc(kWire);
  enc.write_uint64(conn.value);
  enc.write_uint64(rid.value);
  enc.write_uint64(element.value);
  enc.write_uint64(epoch.value);
  enc.write_raw(crypto::digest_view(plain_digest));
  return enc.take();
}

Bytes DirectReplyMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_octet(static_cast<std::uint8_t>(SmiopType::kDirectReply));
  enc.write_uint64(conn.value);
  enc.write_uint64(rid.value);
  enc.write_uint64(element.value);
  enc.write_uint64(epoch.value);
  enc.write_bytes(sealed_giop);
  write_signature(enc, plain_signature);
  return enc.take();
}

Result<DirectReplyMsg> DirectReplyMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t type, dec.read_octet());
  if (type != static_cast<std::uint8_t>(SmiopType::kDirectReply)) {
    return error(Errc::kMalformedMessage, "not a DirectReply");
  }
  DirectReplyMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
  msg.conn = ConnectionId(conn);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, dec.read_uint64());
  msg.rid = RequestId(rid);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t element, dec.read_uint64());
  msg.element = NodeId(element);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t epoch, dec.read_uint64());
  msg.epoch = KeyEpoch(epoch);
  ITDOS_ASSIGN_OR_RETURN(msg.sealed_giop, dec.read_bytes_view());
  ITDOS_ASSIGN_OR_RETURN(msg.plain_signature, read_signature(dec));
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "DirectReplyMsg"));
  return msg;
}

Bytes KeyShareMsg::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_octet(static_cast<std::uint8_t>(SmiopType::kKeyShare));
  enc.write_uint64(conn.value);
  enc.write_uint64(epoch.value);
  enc.write_uint64(target_domain.value);
  enc.write_uint64(client_node.value);
  enc.write_uint64(client_domain.value);
  enc.write_uint32(gm_index);
  enc.write_uint64(member_epoch);
  enc.write_bytes(sealed_share);
  return enc.take();
}

Bytes KeyShareMsg::framing_aad() const {
  cdr::Encoder enc(kWire);
  enc.write_uint64(conn.value);
  enc.write_uint64(epoch.value);
  enc.write_uint64(target_domain.value);
  enc.write_uint64(client_node.value);
  enc.write_uint64(client_domain.value);
  enc.write_uint32(gm_index);
  enc.write_uint64(member_epoch);
  return enc.take();
}

Result<KeyShareMsg> KeyShareMsg::decode(const BufView& data) {
  cdr::Decoder dec(data, kWire);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t type, dec.read_octet());
  if (type != static_cast<std::uint8_t>(SmiopType::kKeyShare)) {
    return error(Errc::kMalformedMessage, "not a KeyShare");
  }
  KeyShareMsg msg;
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
  msg.conn = ConnectionId(conn);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t epoch, dec.read_uint64());
  msg.epoch = KeyEpoch(epoch);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t target, dec.read_uint64());
  msg.target_domain = DomainId(target);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t client_node, dec.read_uint64());
  msg.client_node = NodeId(client_node);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t client_domain, dec.read_uint64());
  msg.client_domain = DomainId(client_domain);
  ITDOS_ASSIGN_OR_RETURN(msg.gm_index, dec.read_uint32());
  ITDOS_ASSIGN_OR_RETURN(msg.member_epoch, dec.read_uint64());
  ITDOS_ASSIGN_OR_RETURN(msg.sealed_share, dec.read_bytes_view());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "KeyShareMsg"));
  return msg;
}

// ---------------------------------------------------------------------------
// Group Manager commands
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint8_t kCmdOpen = 1;
constexpr std::uint8_t kCmdChange = 2;
constexpr std::uint8_t kCmdResend = 3;
constexpr std::uint8_t kCmdMembership = 4;
constexpr std::uint8_t kCmdSetPolicy = 5;
}  // namespace

Bytes encode_gm_command(const GmCommand& cmd) {
  cdr::Encoder enc(kWire);
  if (std::holds_alternative<OpenRequestMsg>(cmd)) {
    const auto& open = std::get<OpenRequestMsg>(cmd);
    enc.write_octet(kCmdOpen);
    enc.write_uint64(open.client_node.value);
    enc.write_uint64(open.client_domain.value);
    enc.write_uint64(open.target.value);
  } else if (std::holds_alternative<ResendSharesMsg>(cmd)) {
    const auto& resend = std::get<ResendSharesMsg>(cmd);
    enc.write_octet(kCmdResend);
    enc.write_uint64(resend.conn.value);
    enc.write_uint64(resend.requester.value);
  } else if (std::holds_alternative<MembershipUpdateMsg>(cmd)) {
    const auto& update = std::get<MembershipUpdateMsg>(cmd);
    enc.write_octet(kCmdMembership);
    enc.write_uint64(update.domain.value);
    enc.write_uint32(update.rank);
    enc.write_uint64(update.retired_element.value);
    enc.write_uint64(update.admitted_element.value);
    enc.write_uint64(update.admitted_gm_client.value);
    enc.write_uint64(update.admitted_self_client.value);
    enc.write_uint64(update.expected_epoch);
  } else if (std::holds_alternative<SetResponsePolicyMsg>(cmd)) {
    const auto& policy = std::get<SetResponsePolicyMsg>(cmd);
    enc.write_octet(kCmdSetPolicy);
    enc.write_uint64(policy.laggard_strikes);
  } else {
    const auto& change = std::get<ChangeRequestMsg>(cmd);
    enc.write_octet(kCmdChange);
    enc.write_uint64(change.reporter.value);
    enc.write_uint64(change.reporter_domain.value);
    enc.write_uint64(change.accused_domain.value);
    enc.write_uint64(change.accused_element.value);
    enc.write_uint64(change.conn.value);
    enc.write_uint64(change.rid.value);
    enc.write_uint32(static_cast<std::uint32_t>(change.proof.size()));
    for (const ProofEntry& entry : change.proof) {
      enc.write_uint64(entry.element.value);
      enc.write_uint64(entry.epoch.value);
      enc.write_bytes(entry.plain_giop);
      write_signature(enc, entry.signature);
    }
  }
  return enc.take();
}

Result<GmCommand> decode_gm_command(ByteView data) {
  cdr::Decoder dec(data, kWire);
  ITDOS_ASSIGN_OR_RETURN(std::uint8_t tag, dec.read_octet());
  if (tag == kCmdOpen) {
    OpenRequestMsg open;
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t client_node, dec.read_uint64());
    open.client_node = NodeId(client_node);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t client_domain, dec.read_uint64());
    open.client_domain = DomainId(client_domain);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t target, dec.read_uint64());
    open.target = DomainId(target);
    ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "OpenRequestMsg"));
    return GmCommand(open);
  }
  if (tag == kCmdChange) {
    ChangeRequestMsg change;
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t reporter, dec.read_uint64());
    change.reporter = NodeId(reporter);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t reporter_domain, dec.read_uint64());
    change.reporter_domain = DomainId(reporter_domain);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t accused_domain, dec.read_uint64());
    change.accused_domain = DomainId(accused_domain);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t accused_element, dec.read_uint64());
    change.accused_element = NodeId(accused_element);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
    change.conn = ConnectionId(conn);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t rid, dec.read_uint64());
    change.rid = RequestId(rid);
    ITDOS_ASSIGN_OR_RETURN(std::uint32_t count, dec.read_uint32());
    if (count > dec.remaining()) {
      return error(Errc::kMalformedMessage, "hostile proof count");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      ProofEntry entry;
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t element, dec.read_uint64());
      entry.element = NodeId(element);
      ITDOS_ASSIGN_OR_RETURN(std::uint64_t epoch, dec.read_uint64());
      entry.epoch = KeyEpoch(epoch);
      ITDOS_ASSIGN_OR_RETURN(entry.plain_giop, dec.read_bytes());
      ITDOS_ASSIGN_OR_RETURN(entry.signature, read_signature(dec));
      change.proof.push_back(std::move(entry));
    }
    ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "ChangeRequestMsg"));
    return GmCommand(std::move(change));
  }
  if (tag == kCmdResend) {
    ResendSharesMsg resend;
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
    resend.conn = ConnectionId(conn);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t requester, dec.read_uint64());
    resend.requester = NodeId(requester);
    ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "ResendSharesMsg"));
    return GmCommand(resend);
  }
  if (tag == kCmdMembership) {
    MembershipUpdateMsg update;
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t domain, dec.read_uint64());
    update.domain = DomainId(domain);
    ITDOS_ASSIGN_OR_RETURN(update.rank, dec.read_uint32());
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t retired, dec.read_uint64());
    update.retired_element = NodeId(retired);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t admitted, dec.read_uint64());
    update.admitted_element = NodeId(admitted);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t gm_client, dec.read_uint64());
    update.admitted_gm_client = NodeId(gm_client);
    ITDOS_ASSIGN_OR_RETURN(std::uint64_t self_client, dec.read_uint64());
    update.admitted_self_client = NodeId(self_client);
    ITDOS_ASSIGN_OR_RETURN(update.expected_epoch, dec.read_uint64());
    ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "MembershipUpdateMsg"));
    return GmCommand(update);
  }
  if (tag == kCmdSetPolicy) {
    SetResponsePolicyMsg policy;
    ITDOS_ASSIGN_OR_RETURN(policy.laggard_strikes, dec.read_uint64());
    ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "SetResponsePolicyMsg"));
    return GmCommand(policy);
  }
  return error(Errc::kMalformedMessage, "unknown GM command tag");
}

Bytes GmCommandResult::encode() const {
  cdr::Encoder enc(kWire);
  enc.write_boolean(accepted);
  enc.write_uint64(conn.value);
  enc.write_uint64(epoch.value);
  enc.write_string(detail);
  return enc.take();
}

Result<GmCommandResult> GmCommandResult::decode(ByteView data) {
  cdr::Decoder dec(data, kWire);
  GmCommandResult result;
  ITDOS_ASSIGN_OR_RETURN(result.accepted, dec.read_boolean());
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t conn, dec.read_uint64());
  result.conn = ConnectionId(conn);
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t epoch, dec.read_uint64());
  result.epoch = KeyEpoch(epoch);
  ITDOS_ASSIGN_OR_RETURN(result.detail, dec.read_string());
  ITDOS_RETURN_IF_ERROR(check_exhausted(dec, "GmCommandResult"));
  return result;
}

}  // namespace itdos::core
