#include "itdos/system.hpp"

namespace itdos::core {

// ---------------------------------------------------------------------------
// ItdosClient
// ---------------------------------------------------------------------------

class ItdosClient::Endpoint : public net::Process {
 public:
  Endpoint(net::Network& net, NodeId id, SmiopParty& party)
      : Process(net, id), party_(party) {}

 protected:
  void on_packet(const net::Packet& packet) override {
    party_.handle_smiop_packet(packet.payload);
  }

 private:
  SmiopParty& party_;
};

ItdosClient::ItdosClient(net::Network& net,
                         std::shared_ptr<const SystemDirectory> directory,
                         const bft::SessionKeys& keys,
                         std::shared_ptr<const crypto::Keystore> keystore,
                         std::shared_ptr<NodeAllocator> allocator,
                         ClientOptions options) {
  PartyConfig config;
  config.smiop_node = allocator->next();
  config.gm_client_node = allocator->next();
  config.my_domain = kSingletonDomain;
  config.byte_order = options.byte_order;
  config.auto_report = options.auto_report;
  config.policy_override = options.policy_override;
  smiop_node_ = config.smiop_node;

  party_ = std::make_unique<SmiopParty>(net, std::move(directory), config, keys,
                                        std::move(keystore), std::move(allocator));
  orb_ = std::make_unique<orb::Orb>(kSingletonDomain, party_->make_protocol());
  endpoint_ = std::make_unique<Endpoint>(net, smiop_node_, *party_);
}

ItdosClient::~ItdosClient() = default;

// ---------------------------------------------------------------------------
// ItdosSystem
// ---------------------------------------------------------------------------

ItdosSystem::ItdosSystem(SystemOptions options)
    : options_(options),
      sim_(options.seed),
      net_(sim_, options.net_config),
      allocator_(std::make_shared<NodeAllocator>(1)),
      keys_(Rng(options.seed ^ 0x17d05ULL).next_bytes(32)),
      keystore_(std::make_shared<crypto::Keystore>()),
      key_rng_(options.seed ^ 0x51671ULL) {
  // Build the Group Manager domain.
  DomainInfo gm;
  gm.id = DomainId(1);
  gm.f = options.gm_f;
  gm.group = McastGroupId(1);
  gm.vote_policy = VotePolicy::exact();
  for (int i = 0; i < 3 * options.gm_f + 1; ++i) {
    gm.elements.push_back(allocate_element(cdr::ByteOrder::kLittleEndian));
  }
  directory_ = std::make_shared<SystemDirectory>(gm, options.timing);
  // The recovery authority (src/recovery/): the one identity whose
  // membership_update commands the GM accepts. Fixed here, before any
  // ordered command executes, so every GM replica validates against the
  // same value deterministically.
  directory_->set_recovery_authority(allocator_->next());

  Rng dprf_rng(options.seed ^ 0xd96fULL);
  auto dprf_keys = crypto::dprf_deal(directory_->dprf_params(), dprf_rng);
  for (int i = 0; i < 3 * options.gm_f + 1; ++i) {
    const ElementInfo& info = directory_->gm().elements[i];
    gm_elements_.push_back(std::make_unique<GmElement>(
        net_, directory_, i, keys_, keystore_->issue(info.bft_node, key_rng_),
        keystore_, std::move(dprf_keys[i])));
  }
}

ItdosSystem::~ItdosSystem() = default;

ElementInfo ItdosSystem::allocate_element(cdr::ByteOrder order) {
  ElementInfo info;
  info.bft_node = allocator_->next();
  info.smiop_node = allocator_->next();
  info.gm_client_node = allocator_->next();
  info.self_client_node = allocator_->next();
  info.byte_order = order;
  return info;
}

DomainId ItdosSystem::add_domain(int f, VotePolicy policy,
                                 const DomainElement::ServantInstaller& install) {
  DomainInfo info;
  info.id = DomainId(next_domain_++);
  info.f = f;
  info.group = McastGroupId(info.id.value);
  info.vote_policy = policy;
  for (int rank = 0; rank < 3 * f + 1; ++rank) {
    const cdr::ByteOrder order =
        (options_.heterogeneous && rank % 2 == 1) ? cdr::ByteOrder::kBigEndian
                                                  : cdr::ByteOrder::kLittleEndian;
    info.elements.push_back(allocate_element(order));
  }
  directory_->add_domain(info);
  installers_[info.id] = install;

  auto& slots = elements_[info.id];
  for (int rank = 0; rank < 3 * f + 1; ++rank) {
    const ElementInfo& element = info.elements[rank];
    slots.push_back(std::make_unique<DomainElement>(
        net_, directory_, info.id, rank, keys_,
        keystore_->issue(element.bft_node, key_rng_),
        keystore_->issue(element.smiop_node, key_rng_), keystore_, allocator_,
        install));
  }
  return info.id;
}

ItdosClient& ItdosSystem::add_client(ClientOptions options) {
  clients_.push_back(std::make_unique<ItdosClient>(net_, directory_, keys_,
                                                   keystore_, allocator_, options));
  return *clients_.back();
}

FirewallProxy& ItdosSystem::protect_with_firewall(DomainId domain) {
  proxies_.push_back(std::make_unique<FirewallProxy>());
  FirewallProxy& proxy = *proxies_.back();
  const DomainInfo* info = directory_->find_domain(domain);
  if (info != nullptr) {
    for (const ElementInfo& element : info->elements) {
      proxy.protect(net_, element.bft_node);
      proxy.protect(net_, element.smiop_node);
    }
  }
  return proxy;
}

DomainElement& ItdosSystem::element(DomainId domain, int rank) {
  return *elements_.at(domain).at(rank);
}

int ItdosSystem::domain_n(DomainId domain) const {
  return static_cast<int>(elements_.at(domain).size());
}

orb::ObjectRef ItdosSystem::object_ref(DomainId domain, ObjectId key,
                                       std::string interface_name) const {
  orb::ObjectRef ref;
  ref.domain = domain;
  ref.key = key;
  ref.interface_name = std::move(interface_name);
  return ref;
}

orb::ObjectRef ItdosSystem::routed_ref(ObjectId key,
                                       std::string interface_name) const {
  return shard::ShardRouter::routed_ref(key, std::move(interface_name));
}

void ItdosSystem::crash_element(DomainId domain, int rank) {
  elements_.at(domain).at(rank).reset();
}

DomainElement& ItdosSystem::replace_element(DomainId domain, int rank) {
  auto& slot = elements_.at(domain).at(rank);
  slot.reset();  // ensure the predecessor is gone
  const DomainInfo* info = directory_->find_domain(domain);
  const ElementInfo& element = info->elements.at(rank);
  slot = std::make_unique<DomainElement>(
      net_, directory_, domain, rank, keys_,
      keystore_->issue(element.bft_node, key_rng_),
      keystore_->issue(element.smiop_node, key_rng_), keystore_, allocator_,
      installers_.at(domain));
  slot->begin_replacement();
  return *slot;
}

ItdosSystem::ReplacementTicket ItdosSystem::admit_replacement(DomainId domain,
                                                              int rank) {
  auto& slot = elements_.at(domain).at(rank);
  slot.reset();  // ensure the predecessor is gone
  const DomainInfo* info = directory_->find_domain(domain);
  const ElementInfo retired = info->elements.at(rank);

  ElementInfo fresh;
  fresh.bft_node = retired.bft_node;  // BFT slot address survives the swap
  fresh.smiop_node = allocator_->next();
  fresh.gm_client_node = allocator_->next();
  fresh.self_client_node = allocator_->next();
  fresh.byte_order = retired.byte_order;
  // elements_.at() above already validated domain and rank; the swap cannot
  // fail on the same pair.
  (void)directory_->replace_element(domain, rank, fresh);

  slot = std::make_unique<DomainElement>(
      net_, directory_, domain, rank, keys_,
      keystore_->issue(fresh.bft_node, key_rng_),
      keystore_->issue(fresh.smiop_node, key_rng_), keystore_, allocator_,
      installers_.at(domain));
  slot->begin_replacement();
  return ReplacementTicket{retired, fresh};
}

void ItdosSystem::crash_gm_element(int index) { gm_elements_.at(index).reset(); }

Result<cdr::Value> ItdosSystem::invoke_sync(ItdosClient& client,
                                            const orb::ObjectRef& ref,
                                            const std::string& operation,
                                            cdr::Value arguments,
                                            std::int64_t timeout_ns) {
  std::optional<Result<cdr::Value>> outcome;
  client.orb().invoke(ref, operation, std::move(arguments),
                      [&outcome](Result<cdr::Value> r) { outcome = std::move(r); });
  const SimTime deadline = sim_.now() + timeout_ns;
  while (!outcome && sim_.now() < deadline) {
    if (!sim_.step()) break;
  }
  if (!outcome) {
    return error(Errc::kUnavailable, "ITDOS invocation did not complete in time");
  }
  return std::move(*outcome);
}

}  // namespace itdos::core
