// KeyAgent: the party-side half of §3.5's threshold keying. Receives sealed
// KeyShare messages from Group Manager elements, opens them over the
// pairwise channel, verifies and combines them with the DPRF combiner, and
// announces the communication key once f_gm+1 consistent shares exist.
// "The clients and server replication domain elements each decrypt the
// messages from the Group Manager replication domain, verify the correctness
// of the key shares they receive, and combine the shares to form the
// communication key."
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "bft/config.hpp"
#include "crypto/dprf.hpp"
#include "itdos/group_manager.hpp"

namespace itdos::core {

class KeyAgent {
 public:
  /// `misbehaving_gm` lists GM element indices whose shares contradicted the
  /// combined key ("verify which Group Manager replication domain elements
  /// acted correctly").
  using KeyReady = std::function<void(const ConnRecord& record,
                                      const crypto::SymmetricKey& key,
                                      const std::vector<int>& misbehaving_gm)>;

  KeyAgent(std::shared_ptr<const SystemDirectory> directory,
           const bft::SessionKeys& keys, NodeId my_smiop_node)
      : directory_(std::move(directory)), keys_(keys), my_node_(my_smiop_node) {}

  void set_key_ready(KeyReady hook) { on_key_ready_ = std::move(hook); }

  /// Feeds one KeyShare message received at this party's SMIOP node.
  /// Authenticity comes from the pairwise seal, not the network source.
  Status handle_share(const KeyShareMsg& msg);

  std::uint64_t shares_accepted() const { return shares_accepted_; }
  std::uint64_t shares_rejected() const { return shares_rejected_; }

 private:
  struct PendingKey {
    crypto::DprfCombiner combiner;
    ConnRecord record;
    bool announced = false;
  };

  std::shared_ptr<const SystemDirectory> directory_;
  const bft::SessionKeys& keys_;
  NodeId my_node_;
  KeyReady on_key_ready_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, PendingKey> pending_;
  std::uint64_t shares_accepted_ = 0;
  std::uint64_t shares_rejected_ = 0;
};

}  // namespace itdos::core
