// ItdosSystem: the deployment builder — the library's front door.
//
// One call per moving part of Figure 1: construct the system (which brings
// up the Group Manager replication domain), add_domain() for each replicated
// server (3f+1 elements, heterogeneous byte orders, per-rank servant
// implementations), add_client() for singleton clients, and optionally
// protect_with_firewall(). See examples/quickstart.cpp for the 20-line
// version.
#pragma once

#include "itdos/domain_element.hpp"
#include "itdos/group_manager.hpp"
#include "itdos/proxy.hpp"
#include "itdos/smiop.hpp"

namespace itdos::core {

struct SystemOptions {
  std::uint64_t seed = 1;
  net::NetConfig net_config{micros(20), micros(80), 0.0, 0.0};
  ProtocolTiming timing;
  int gm_f = 1;  // Group Manager domain tolerates gm_f faulty elements

  /// Alternate element byte orders within each domain (the heterogeneity of
  /// the paper's title). When false, all elements marshal little-endian.
  bool heterogeneous = true;
};

struct ClientOptions {
  cdr::ByteOrder byte_order = cdr::native_byte_order();
  bool auto_report = true;
  std::optional<VotePolicy> policy_override;
};

/// A singleton ITDOS client: an Orb over the SMIOP protocol plus the
/// endpoint that receives key shares and (voted) replies.
class ItdosClient {
 public:
  ItdosClient(net::Network& net, std::shared_ptr<const SystemDirectory> directory,
              const bft::SessionKeys& keys,
              std::shared_ptr<const crypto::Keystore> keystore,
              std::shared_ptr<NodeAllocator> allocator, ClientOptions options);
  ~ItdosClient();

  orb::Orb& orb() { return *orb_; }
  SmiopParty& party() { return *party_; }
  NodeId smiop_node() const { return smiop_node_; }

 private:
  class Endpoint;

  NodeId smiop_node_;
  std::unique_ptr<SmiopParty> party_;
  std::unique_ptr<orb::Orb> orb_;
  std::unique_ptr<Endpoint> endpoint_;
};

class ItdosSystem {
 public:
  explicit ItdosSystem(SystemOptions options = {});
  ~ItdosSystem();

  // --- deployment ---

  /// Creates a replication domain of 3f+1 elements hosting the servants the
  /// installer activates (per rank, so implementations can differ).
  DomainId add_domain(int f, VotePolicy policy,
                      const DomainElement::ServantInstaller& install);

  ItdosClient& add_client(ClientOptions options = {});

  /// Puts every element of `domain` behind a firewall proxy (Figure 1's
  /// server-side firewalls). Returns the proxy for stats inspection.
  FirewallProxy& protect_with_firewall(DomainId domain);

  // --- access ---

  net::Simulator& sim() { return sim_; }
  net::Network& network() { return net_; }
  const SystemDirectory& directory() const { return *directory_; }
  const bft::SessionKeys& keys() const { return keys_; }
  std::shared_ptr<const crypto::Keystore> keystore() const { return keystore_; }

  GmElement& gm_element(int index) { return *gm_elements_.at(index); }
  int gm_n() const { return static_cast<int>(gm_elements_.size()); }
  DomainElement& element(DomainId domain, int rank);
  int domain_n(DomainId domain) const;

  /// Builds an object reference for an object key in a domain.
  orb::ObjectRef object_ref(DomainId domain, ObjectId key,
                            std::string interface_name) const;

  /// Builds a ROUTED reference: the hosting domain is resolved per-invoke
  /// from the shard map (location transparency across sharded domains).
  orb::ObjectRef routed_ref(ObjectId key, std::string interface_name) const;

  /// The shard routing table (mutable: deployment-time registration only;
  /// ShardTopology::build populates it).
  shard::ShardMap& shards() { return directory_->mutable_shards(); }

  // --- fault injection ---

  /// Crash-stops an element (both its replica and SMIOP endpoint vanish).
  void crash_element(DomainId domain, int rank);

  /// Brings up a REPLACEMENT element in a previously crashed slot (§4
  /// future work). The new element bootstraps from its peers: BFT queue via
  /// certified state transfer, servant state via f+1-matching sync bundles.
  /// Requires the domain's servants to implement save_state/load_state.
  DomainElement& replace_element(DomainId domain, int rank);

  // --- recovery (src/recovery/) ---

  /// The identities swapped by admit_replacement: `retired` is the old
  /// (expelled/crashed) element, `admitted` the fresh one now in the
  /// directory. The recovery manager feeds both into the ordered
  /// membership_update it submits to the GM.
  struct ReplacementTicket {
    ElementInfo retired;
    ElementInfo admitted;
  };

  /// Spawns a FRESH-IDENTITY replacement in `slot`: new SMIOP / GM-client /
  /// self-client endpoints and fresh signing keys (the BFT slot address is
  /// reused so the replica catches up exactly like a crash replacement).
  /// The directory is swapped before return so key shares can be addressed
  /// to the fresh endpoint; the caller must then submit the ordered
  /// membership_update that admits the identity GM-side and rekeys.
  ReplacementTicket admit_replacement(DomainId domain, int rank);

  /// Crash-stops a Group Manager element.
  void crash_gm_element(int index);

  // --- driving ---

  /// Runs the simulation until the invocation completes or times out.
  Result<cdr::Value> invoke_sync(ItdosClient& client, const orb::ObjectRef& ref,
                                 const std::string& operation, cdr::Value arguments,
                                 std::int64_t timeout_ns = seconds(5));

  void settle(std::size_t max_events = 5'000'000) { sim_.run(max_events); }

 private:
  ElementInfo allocate_element(cdr::ByteOrder order);

  SystemOptions options_;
  net::Simulator sim_;
  net::Network net_;
  std::shared_ptr<NodeAllocator> allocator_;
  bft::SessionKeys keys_;
  std::shared_ptr<crypto::Keystore> keystore_;
  std::shared_ptr<SystemDirectory> directory_;
  Rng key_rng_;

  std::vector<std::unique_ptr<GmElement>> gm_elements_;
  std::map<DomainId, std::vector<std::unique_ptr<DomainElement>>> elements_;
  std::map<DomainId, DomainElement::ServantInstaller> installers_;
  std::vector<std::unique_ptr<ItdosClient>> clients_;
  std::vector<std::unique_ptr<FirewallProxy>> proxies_;
  std::uint64_t next_domain_ = 10;
};

}  // namespace itdos::core
