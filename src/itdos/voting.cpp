#include "itdos/voting.hpp"

#include <cmath>

namespace itdos::core {

namespace {

bool within_epsilon(double a, double b, double eps) {
  if (std::isnan(a) || std::isnan(b)) return false;
  if (a == b) return true;  // covers equal infinities
  return std::fabs(a - b) <= eps;
}

}  // namespace

bool values_equivalent(const cdr::Value& a, const cdr::Value& b,
                       const VotePolicy& policy) {
  if (policy.kind == VotePolicy::Kind::kExact) return a == b;
  // kInexact and kAdaptive both compare within policy.epsilon; adaptive
  // voting varies the epsilon it passes in.
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case cdr::TypeKind::kFloat:
      return within_epsilon(a.as_float32(), b.as_float32(), policy.epsilon);
    case cdr::TypeKind::kDouble:
      return within_epsilon(a.as_float64(), b.as_float64(), policy.epsilon);
    case cdr::TypeKind::kSequence: {
      const auto& ea = a.elements();
      const auto& eb = b.elements();
      if (ea.size() != eb.size()) return false;
      for (std::size_t i = 0; i < ea.size(); ++i) {
        if (!values_equivalent(ea[i], eb[i], policy)) return false;
      }
      return true;
    }
    case cdr::TypeKind::kStruct: {
      const auto& fa = a.fields();
      const auto& fb = b.fields();
      if (fa.size() != fb.size()) return false;
      for (std::size_t i = 0; i < fa.size(); ++i) {
        if (fa[i].name != fb[i].name) return false;
        if (!values_equivalent(fa[i].get(), fb[i].get(), policy)) return false;
      }
      return true;
    }
    case cdr::TypeKind::kVoid:
    case cdr::TypeKind::kBoolean:
    case cdr::TypeKind::kOctet:
    case cdr::TypeKind::kInt32:
    case cdr::TypeKind::kInt64:
    case cdr::TypeKind::kString:
      return a == b;  // discrete kinds: exact comparison
  }
  return a == b;  // unreachable; kinds are exhaustive above
}

bool Vote::equivalent_at(const Ballot& a, const Ballot& b, double epsilon) const {
  if (policy_.kind == VotePolicy::Kind::kByteByByte) return a.raw == b.raw;
  if (!a.value || !b.value) return false;  // unparseable never matches
  VotePolicy effective = policy_;
  effective.epsilon = epsilon;
  return values_equivalent(*a.value, *b.value, effective);
}

std::optional<VoteDecision> Vote::try_decide(double epsilon) {
  // Approval counting: support of a ballot = ballots equivalent to it.
  // Inexact equivalence is non-transitive, so support is counted per ballot
  // (Parhami's approval voting [31]), not per equivalence class.
  for (const Ballot& candidate : ballots_) {
    int support = 0;
    for (const Ballot& other : ballots_) {
      if (equivalent_at(candidate, other, epsilon)) ++support;
    }
    if (support >= f_ + 1) {
      VoteDecision decision;
      decision.winner = candidate;
      decision.support = support;
      decision.epsilon_used = epsilon;
      decided_ = std::move(decision);
      decided_->dissenters = dissenters();
      return decided_;
    }
  }
  return std::nullopt;
}

std::optional<VoteDecision> Vote::add(Ballot ballot) {
  if (!sources_.insert(ballot.source).second) return std::nullopt;  // one per source
  ballots_.push_back(std::move(ballot));
  if (decided_) return std::nullopt;  // late arrival; dissenters() sees it

  if (auto decision = try_decide(policy_.epsilon)) return decision;

  // Adaptive voting (§4, [32]): once the voter has enough ballots that a
  // decision *should* exist (2f+1, so at most f faulty among them), relax
  // the precision stepwise up to the ceiling rather than starve. Precision
  // is traded away only when replies are genuinely dispersed.
  if (policy_.kind == VotePolicy::Kind::kAdaptive &&
      static_cast<int>(ballots_.size()) >= 2 * f_ + 1 &&
      policy_.max_epsilon > policy_.epsilon) {
    double epsilon = policy_.epsilon;
    for (int step = 0; step < 16; ++step) {
      epsilon = epsilon == 0.0 ? policy_.max_epsilon / 65536.0 : epsilon * 4.0;
      if (epsilon > policy_.max_epsilon) epsilon = policy_.max_epsilon;
      if (auto decision = try_decide(epsilon)) return decision;
      if (epsilon >= policy_.max_epsilon) break;
    }
  }
  return std::nullopt;
}

std::vector<NodeId> Vote::dissenters() const {
  std::vector<NodeId> out;
  if (!decided_) return out;
  for (const Ballot& ballot : ballots_) {
    // Compare at the epsilon that decided: a correct-but-jittery reply that
    // an adaptive vote accepted must not be flagged as faulty.
    if (!equivalent_at(decided_->winner, ballot, decided_->epsilon_used)) {
      out.push_back(ballot.source);
    }
  }
  return out;
}

void ConnectionVoter::set_telemetry(telemetry::Hub* hub, NodeId self, ConnectionId conn) {
  tel_ = hub;
  self_ = self;
  conn_ = conn;
  if (tel_ != nullptr) {
    discarded_counter_ =
        &tel_->metrics().counter("vote." + self.to_string() + ".discarded");
  }
}

void ConnectionVoter::expect(RequestId request_id) {
  expected_ = request_id;
  vote_.emplace(f_, policy_);  // prior vote state garbage collected here
  if (tel_ != nullptr) {
    tel_->trace(telemetry::TraceKind::kVoteOpen, self_,
                telemetry::trace_id(conn_, request_id));
  }
}

std::optional<VoteDecision> ConnectionVoter::submit(RequestId request_id,
                                                    Ballot ballot) {
  if (!vote_ || request_id != expected_) {
    // "A discarded message could be from a Byzantine process, or it could be
    // a late-coming reply from an earlier request" — indistinguishable, so
    // neither used nor penalized.
    ++discarded_;
    if (discarded_counter_ != nullptr) discarded_counter_->inc();
    return std::nullopt;
  }
  std::optional<VoteDecision> decision = vote_->add(std::move(ballot));
  if (decision && tel_ != nullptr) {
    const std::uint64_t trace = telemetry::trace_id(conn_, request_id);
    tel_->trace(telemetry::TraceKind::kVoteDecide, self_, trace,
                static_cast<std::uint64_t>(decision->support),
                static_cast<std::uint64_t>(vote_->ballots()));
    for (NodeId dissenter : decision->dissenters) {
      tel_->trace(telemetry::TraceKind::kVoteDissent, self_, trace, dissenter.value);
    }
  }
  if (decision && audit_) audit_(conn_, request_id, f_, *decision);
  return decision;
}

}  // namespace itdos::core
