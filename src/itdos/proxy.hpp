// The IT-CORBA firewall proxy (Figure 1).
//
// The paper introduces proxies at each enclave boundary that "monitor BFTM
// messages" (and declines to elaborate "for reasons of brevity"). We
// implement the stated role: a guard on a protected node's enclave link that
// admits only well-formed ITDOS traffic — BFT envelopes, SMIOP messages —
// within a configurable size budget, and drops (and counts) everything else.
// Malformed floods from outside the enclave never reach the protocol stack.
#pragma once

#include <memory>

#include "net/network.hpp"

namespace itdos::core {

struct ProxyStats {
  std::uint64_t admitted = 0;
  std::uint64_t dropped_malformed = 0;
  std::uint64_t dropped_oversize = 0;
};

class FirewallProxy {
 public:
  struct Options {
    std::size_t max_message_bytes = 1 << 20;
    bool allow_bft = true;    // Castro-Liskov envelopes
    bool allow_smiop = true;  // key shares / direct replies
  };

  FirewallProxy() = default;
  explicit FirewallProxy(Options options) : options_(options) {}

  /// Guards `node`: installs this proxy as its enclave-boundary filter.
  void protect(net::Network& net, NodeId node);

  /// Removes the guard from `node`.
  void release(net::Network& net, NodeId node);

  /// The admission decision (exposed for tests).
  bool admit(const net::Packet& packet);

  const ProxyStats& stats() const { return *stats_; }

 private:
  Options options_{};
  // Shared so the std::function copies installed per node update one ledger.
  std::shared_ptr<ProxyStats> stats_ = std::make_shared<ProxyStats>();
};

}  // namespace itdos::core
