// The message-queue state machine (§3.1).
//
// "An ITDOS server implements a message queue that is the state machine.
// Whenever Castro-Liskov synchronizes the replica state, the message queue
// is synchronized. Each replication domain element maintains equivalent
// object state since each processes messages in the same order as delivered
// by the Castro-Liskov transport."
//
// The BFT-ordered side (execute/snapshot/restore) is strictly deterministic:
// checkpoint digests must agree across elements, so nothing element-local
// (like how far the local ORB actor has consumed) is part of the state.
// Garbage collection is itself agreed through ordered QueueAck entries: when
// n-f elements have acked index X, the base advances to X deterministically.
// An element whose un-consumed entries get collected can no longer proceed —
// the virtual synchrony the paper says this step re-introduces ("replicas
// that do not participate according to the queue management protocol must be
// expelled"); `broken()` reports that condition and on_laggard flags peers
// that fall behind the lag window.
//
// The paper's scalability claim (E3) lives here: snapshots carry the queue
// window, never the servant state, so synchronization cost is independent of
// how large the hosted objects are.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "bft/app.hpp"
#include "itdos/smiop_msg.hpp"
#include "telemetry/telemetry.hpp"

namespace itdos::core {

struct QueueOptions {
  int n = 4;                      // domain size (3f+1)
  int f = 1;
  std::uint64_t lag_window = 64;  // acks this far behind base flag a laggard

  /// Admission control (DESIGN.md §6f): when > 0, data entries arriving
  /// while the replicated depth (next_index - base) is at or past this bound
  /// are shed deterministically — every correct element makes the identical
  /// decision because it is a function of replicated state and static
  /// config only. 0 = unbounded (the paper's baseline).
  std::uint64_t max_depth = 0;

  /// The domain's element identities (SMIOP nodes). Acks from anyone else
  /// are ignored — otherwise a rogue could fabricate n-f acks and force GC
  /// past every correct element's cursor. Empty means "accept any" (only
  /// unit tests use that).
  std::vector<NodeId> members;

  /// Telemetry seam (optional; unit tests leave it null). `self` is the
  /// owning element's SMIOP node, used as the event emitter.
  telemetry::Hub* telemetry = nullptr;
  NodeId self{};

  bool is_member(NodeId node) const {
    return members.empty() ||
           std::find(members.begin(), members.end(), node) != members.end();
  }
};

class QueueStateMachine : public bft::StateMachine {
 public:
  explicit QueueStateMachine(QueueOptions options);

  /// Fires (element-locally) whenever a new data entry becomes consumable.
  void set_delivery_hook(std::function<void()> hook) { on_delivery_ = std::move(hook); }

  /// Fires when an element's ack lags more than lag_window behind the most
  /// recent agreed index (a virtual-synchrony expulsion candidate).
  void set_laggard_hook(std::function<void(NodeId)> hook) {
    on_laggard_ = std::move(hook);
  }

  /// Fires (element-locally) when admission control sheds a data entry; the
  /// element uses it to send the requester an explicit OVERLOAD reply. The
  /// view is the shed entry (still tagged with its QueueEntryKind).
  void set_shed_hook(std::function<void(const BufView&)> hook) {
    on_shed_ = std::move(hook);
  }

  std::uint64_t sheds() const { return sheds_; }

  // --- bft::StateMachine (deterministic, identical on every element) ---
  Bytes execute(const BufView& request, NodeId client, SeqNum seq) override;
  Bytes snapshot() const override;
  Status restore(ByteView snapshot) override;
  /// Derives the request-scoped trace id from an ordered queue entry (the
  /// BFT layer tags its pre-prepare/prepare/commit events with it).
  std::uint64_t trace_of(ByteView request) const override;
  /// Urgent class for batch formation (src/batch): queue-management acks
  /// (virtual-synchrony GC the whole domain waits on) and replacement sync
  /// points flush the primary's former immediately.
  bool urgent(ByteView request) const override;

  // --- element-local consumption (the ORB actor side) ---
  bool has_next() const { return !broken_ && !bootstrap_ && consumed_ < next_index_; }
  /// Returns the entry at the consumption cursor and advances it. The view
  /// shares the retained entry's chunk (no copy).
  std::optional<BufView> next();
  /// Returns the entry at the cursor without advancing (the consumer may
  /// need to stall on it, e.g. while its communication key is in flight).
  std::optional<BufView> peek() const;
  /// Advances past the current entry (after a successful peek).
  void pop();
  std::uint64_t consumed_index() const { return consumed_; }

  std::uint64_t base_index() const { return base_; }
  std::uint64_t next_index() const { return next_index_; }
  std::uint64_t size() const { return next_index_ - base_; }

  /// True if GC collected entries this element had not consumed yet — the
  /// element violated the queue-management protocol and must be expelled.
  bool broken() const { return broken_; }

  /// The ack this element should submit (ordered) to advance GC.
  QueueAckMsg make_ack(NodeId element) const { return {element, consumed_}; }

  // --- element replacement (§4 future work) ---

  /// Puts the queue in bootstrap mode: restore() accepts any snapshot (the
  /// fresh element has no history to be consistent with) and consumption is
  /// held until complete_bootstrap() installs the peer-certified state.
  void begin_bootstrap() { bootstrap_ = true; }
  bool bootstrapping() const { return bootstrap_; }

  /// Finishes bootstrap: the replacement element's servant state captures
  /// everything up to `consumed_index`, so consumption resumes there.
  /// kFailedPrecondition if GC already passed that point (the sync must be
  /// re-run — peers will snapshot at a fresh sync point).
  Status complete_bootstrap(std::uint64_t consumed_index);

 private:
  void advance_base();
  void trace(telemetry::TraceKind kind, std::uint64_t trace_id, std::uint64_t a = 0,
             std::uint64_t b = 0) const;
  void update_depth() const;
  /// Replicated shed decision for a data entry (kRequest / kFragment).
  /// Mutates shed_streams_ so every fragment of a shed message sheds.
  bool should_shed(const BufView& request, QueueEntryKind kind);

  QueueOptions options_;
  telemetry::Gauge* depth_gauge_ = nullptr;        // queue.<self>.depth
  telemetry::Gauge* shed_gauge_ = nullptr;         // admission.<self>.shed (cumulative)
  telemetry::Counter* collected_counter_ = nullptr;  // queue.<self>.entries_collected
  std::function<void()> on_delivery_;
  std::function<void(NodeId)> on_laggard_;
  std::function<void(const BufView&)> on_shed_;
  std::uint64_t sheds_ = 0;  // element-local mirror of the shed gauge

  // Ordered (replicated) state:
  std::map<std::uint64_t, BufView> entries_;  // index -> data entry (retained view)
  std::uint64_t next_index_ = 0;            // next index to assign
  std::uint64_t base_ = 0;                  // lowest retained index (GC floor)
  std::map<NodeId, std::uint64_t> acks_;    // element -> consumed index
  // Fragment streams whose first fragment was shed: continuations shed too
  // (key = conn << 32 | rid). Part of replicated state (snapshot/restore).
  std::set<std::uint64_t> shed_streams_;

  // Element-local state:
  std::uint64_t consumed_ = 0;
  bool broken_ = false;
  bool bootstrap_ = false;
};

}  // namespace itdos::core
