#include "itdos/system_directory.hpp"

namespace itdos::core {

bft::BftConfig DomainInfo::make_bft_config(const ProtocolTiming& timing) const {
  bft::BftConfig config;
  config.f = f;
  config.group = group;
  config.checkpoint_interval = timing.checkpoint_interval;
  config.client_retry_ns = timing.client_retry_ns;
  config.view_change_timeout_ns = timing.view_change_timeout_ns;
  config.batch.max_entries = timing.batch_max_entries;
  config.batch.max_bytes = timing.batch_max_bytes;
  config.batch.max_hold_ns = timing.batch_max_hold_ns;
  config.pipeline_depth = timing.pipeline_depth;
  for (const ElementInfo& element : elements) {
    config.replicas.push_back(element.bft_node);
  }
  return config;
}

int DomainInfo::rank_of_smiop(NodeId smiop_node) const {
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (elements[i].smiop_node == smiop_node) return static_cast<int>(i);
  }
  return -1;
}

std::vector<NodeId> DomainInfo::smiop_nodes() const {
  std::vector<NodeId> out;
  out.reserve(elements.size());
  for (const ElementInfo& element : elements) out.push_back(element.smiop_node);
  return out;
}

Status SystemDirectory::replace_element(DomainId domain, int rank,
                                        const ElementInfo& fresh) {
  const auto it = domains_.find(domain);
  if (it == domains_.end()) {
    return error(Errc::kInvalidArgument, "replace_element: unknown domain");
  }
  if (rank < 0 || rank >= it->second.n()) {
    return error(Errc::kInvalidArgument, "replace_element: rank out of range");
  }
  it->second.elements[static_cast<std::size_t>(rank)] = fresh;
  return Status::ok();
}

}  // namespace itdos::core
