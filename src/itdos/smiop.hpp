// SMIOP client-side machinery (§3.3, Figure 3): virtual connections over the
// BFT transport, communication-key handling, per-connection reply voting and
// fault reporting. Used by singleton clients AND by replication domain
// elements acting as clients (nested invocations) — the same code path, as
// the paper's architecture implies.
#pragma once

#include <memory>

#include "bft/client.hpp"
#include "itdos/key_agent.hpp"
#include "orb/transport.hpp"

namespace itdos::core {

/// Communication keys this party holds, all epochs (§3.5 rekey keeps old
/// epochs decryptable so in-flight traffic is not lost; new traffic uses the
/// newest epoch, which expelled elements never receive).
class ConnTable {
 public:
  struct Entry {
    ConnRecord record;                                   // newest epoch
    std::map<std::uint64_t, crypto::SymmetricKey> keys;  // epoch -> key
  };
  using Listener = std::function<void(const Entry&)>;

  void install(const ConnRecord& record, const crypto::SymmetricKey& key);
  const Entry* find(ConnectionId conn) const;
  const crypto::SymmetricKey* key_for(ConnectionId conn, KeyEpoch epoch) const;
  void subscribe(Listener listener) { listeners_.push_back(std::move(listener)); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<std::uint64_t, Entry> entries_;
  std::vector<Listener> listeners_;
};

/// Additional authenticated data binding sealed GIOP payloads to their
/// connection, request and direction (prevents cross-connection splicing and
/// request/reply reflection).
Bytes seal_aad(ConnectionId conn, RequestId rid, KeyEpoch epoch, bool is_reply);

struct PartyConfig {
  NodeId smiop_node;            // where shares and replies arrive
  NodeId gm_client_node;        // BFT-client endpoint toward the GM group
  DomainId my_domain;           // 0 for singleton clients
  cdr::ByteOrder byte_order = cdr::native_byte_order();
  bool auto_report = true;      // file change_requests for detected faults
  std::optional<VotePolicy> policy_override;  // else the target domain's policy
};

/// Per-party statistics (benchmarks report these). A by-value view assembled
/// from the telemetry registry's `smiop.<node>.*` counters.
struct PartyStats {
  std::uint64_t opens_sent = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t replies_rejected = 0;    // bad seal/signature/shape
  std::uint64_t votes_decided = 0;
  std::uint64_t votes_timed_out = 0;
  std::uint64_t discarded = 0;           // wrong-request-id messages (§3.6)
  std::uint64_t faults_detected = 0;     // dissenting elements observed
  std::uint64_t change_requests_sent = 0;
  std::uint64_t fragmented_requests = 0; // large requests split (§4)
  std::uint64_t overloads_observed = 0;  // voted OVERLOAD replies (§6f sheds)
};

/// The client half of an ITDOS party. Owns the GM/ordering BFT clients, the
/// connection table and the voters. The owner feeds it raw SMIOP packets
/// from its endpoint process.
class SmiopParty {
 public:
  SmiopParty(net::Network& net, std::shared_ptr<const SystemDirectory> directory,
             PartyConfig config, const bft::SessionKeys& keys,
             std::shared_ptr<const crypto::Keystore> keystore,
             std::shared_ptr<NodeAllocator> allocator);
  ~SmiopParty();

  /// A PluggableProtocol for an Orb; the party must outlive the Orb.
  std::unique_ptr<orb::PluggableProtocol> make_protocol();

  /// Feeds one SMIOP datagram (key share or direct reply) from the endpoint.
  /// The decoded payload fields share the datagram's chunk (no copy).
  void handle_smiop_packet(const BufView& payload);

  /// Shared with the server role of a domain element.
  ConnTable& conn_table() { return table_; }

  /// Asks the GM to resend the shares of `conn` to this party.
  void request_resend(ConnectionId conn,
                      std::function<void(GmCommandResult)> done = nullptr);

  /// Files a change_request (used internally on detected faults; public so
  /// the server role can report queue-management laggards, §3.1).
  void send_change_request(ChangeRequestMsg msg);

  PartyStats stats() const;
  const PartyConfig& config() const { return config_; }
  bft::Client& gm_client() { return *gm_client_; }

  /// Every transport endpoint this party currently owns: its SMIOP node,
  /// its GM client node, and the lazily created per-target ordering client
  /// nodes. Fault plans that partition "everything this party says" need
  /// the dynamic ones too — an inter-domain cut that misses the ordering
  /// client node lets sealed requests tunnel through the partition.
  std::vector<NodeId> transport_nodes() const;

  /// Installs a vote audit (fault::Oracle) on every current and future
  /// connection voter of this party.
  void set_vote_audit(ConnectionVoter::DecisionAudit audit);

  /// Test hook: a compromised client party. `duplicate` submits every
  /// ordered request twice; `replay` resubmits the previously sealed frame
  /// alongside each new request. Both must be discarded identically at every
  /// element (stale rid, §3.6) — the fault scenarios assert exactly that.
  void set_misbehavior(bool duplicate, bool replay) {
    // Sticky and cumulative: arming one behavior never disarms another, so a
    // fault plan can schedule both kinds independently.
    duplicate_submits_ |= duplicate;
    replay_stale_frames_ |= replay;
  }

 private:
  class Protocol;
  class Connection;
  friend class Protocol;
  friend class Connection;

  struct RequestRound {
    RequestId rid;
    orb::ClientConnection::Completion done;  // null once completed/timed out
    net::EventHandle timer{};
    bool timer_armed = false;
    SimTime sent_at{};               // request send time (latency histogram)
    std::vector<ProofEntry> proof;   // signed plaintexts collected this round
    std::set<NodeId> reported;       // dissenters already reported
  };

  struct ConnState {
    ConnectionId conn;
    DomainId target;
    int target_f = 1;
    std::unique_ptr<ConnectionVoter> voter;
    std::optional<RequestRound> round;
  };

  void connect_to(const orb::ObjectRef& ref,
                  orb::PluggableProtocol::ConnectCompletion done);
  void send_on(ConnState& state, cdr::RequestMessage request,
               orb::ClientConnection::Completion done);
  void handle_direct_reply(const DirectReplyMsg& msg);
  void complete_round(ConnState& state, Result<cdr::ReplyMessage> result);
  void maybe_report_dissenters(ConnState& state);
  bft::Client& target_client(DomainId domain);
  VotePolicy policy_for(const DomainInfo& target) const;

  net::Network& net_;
  std::shared_ptr<const SystemDirectory> directory_;
  PartyConfig config_;
  const bft::SessionKeys& keys_;
  std::shared_ptr<const crypto::Keystore> keystore_;
  std::shared_ptr<NodeAllocator> allocator_;

  KeyAgent agent_;
  ConnTable table_;
  std::unique_ptr<bft::Client> gm_client_;
  std::map<DomainId, std::unique_ptr<bft::Client>> target_clients_;
  std::map<std::uint64_t, std::shared_ptr<ConnState>> conns_;
  ConnectionVoter::DecisionAudit vote_audit_;  // applied to every voter

  // Compromised-client test hooks (see set_misbehavior).
  bool duplicate_submits_ = false;
  bool replay_stale_frames_ = false;
  BufView last_sealed_frame_;     // previously submitted ordered entry
  DomainId last_frame_target_{};  // domain it was submitted to

  // Recovery can destroy a party (watchdog abort) while self-scheduled sim
  // timers are still pending; those lambdas hold a copy of this flag and
  // become no-ops once the party is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Connects waiting for their key shares: conn -> completions + timer.
  struct PendingConnect {
    DomainId target;
    std::vector<orb::PluggableProtocol::ConnectCompletion> waiting;
    net::EventHandle timer{};
    SimTime started{};               // connect start (latency histogram)
  };
  std::map<std::uint64_t, PendingConnect> pending_connects_;

  // Registry-backed counters (stable addresses, resolved once) plus the
  // request/connect latency histograms.
  telemetry::Hub* tel_ = nullptr;
  struct {
    telemetry::Counter* opens_sent;
    telemetry::Counter* requests_sent;
    telemetry::Counter* replies_received;
    telemetry::Counter* replies_rejected;
    telemetry::Counter* votes_decided;
    telemetry::Counter* votes_timed_out;
    telemetry::Counter* discarded;
    telemetry::Counter* faults_detected;
    telemetry::Counter* change_requests_sent;
    telemetry::Counter* fragmented_requests;
    telemetry::Counter* overloads_observed;
    telemetry::Histogram* request_latency_ns;  // send_on -> voted reply
    telemetry::Histogram* connect_latency_ns;  // connect_to -> key installed
  } metrics_{};
};

}  // namespace itdos::core
