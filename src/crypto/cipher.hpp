// Symmetric confidentiality for ITDOS connections (§3.5).
//
// Substitution note (see DESIGN.md §4): the paper cites DES [12]; we provide
// a CTR-mode stream cipher whose keystream blocks are SHA-256 compressions of
// (key || nonce || counter), plus encrypt-then-MAC sealing. The interface
// mirrors a real AEAD so a production cipher could be swapped in.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/hmac.hpp"

namespace itdos::crypto {

inline constexpr std::size_t kSymmetricKeySize = 32;
inline constexpr std::size_t kNonceSize = 12;

/// A symmetric communication key (the paper's "communication key").
struct SymmetricKey {
  std::array<std::uint8_t, kSymmetricKeySize> bytes{};

  bool operator==(const SymmetricKey&) const = default;

  static SymmetricKey from_bytes(ByteView b);
  ByteView view() const { return ByteView(bytes.data(), bytes.size()); }

  /// First 8 hex chars — safe to log, identifies (not reveals) the key.
  std::string fingerprint() const;
};

using Nonce = std::array<std::uint8_t, kNonceSize>;

/// Deterministic per-message nonce from (sender, request counter). Nonces
/// must never repeat under one key; ITDOS keys are per-connection-epoch and
/// counters strictly increase, which guarantees uniqueness.
Nonce make_nonce(std::uint64_t sender, std::uint64_t counter);

/// Raw CTR keystream XOR (encrypt == decrypt). Exposed for tests/benches.
Bytes ctr_crypt(const SymmetricKey& key, const Nonce& nonce, ByteView data);

/// CTR keystream XOR applied in place — the zero-copy seal path transforms
/// the marshal buffer directly instead of producing a second buffer.
void ctr_crypt_inplace(const SymmetricKey& key, const Nonce& nonce,
                       std::span<std::uint8_t> data);

/// Sealed message: nonce || ciphertext || tag, where
/// tag = HMAC(mac_subkey, nonce || aad || ciphertext) truncated.
Bytes seal(const SymmetricKey& key, const Nonce& nonce, ByteView aad, ByteView plaintext);

/// Opens a sealed message; kAuthFailure if the tag does not verify.
Result<Bytes> open(const SymmetricKey& key, ByteView aad, ByteView sealed);

/// Minimum size of a sealed buffer (nonce + tag, empty plaintext).
inline constexpr std::size_t kSealOverhead = kNonceSize + kMacTagSize;

}  // namespace itdos::crypto
