#include "crypto/dprf.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace itdos::crypto {

Status DprfParams::validate() const {
  if (f < 1) return error(Errc::kInvalidArgument, "f must be >= 1");
  if (n != 3 * f + 1) return error(Errc::kInvalidArgument, "n must equal 3f+1");
  if (n > 32) return error(Errc::kInvalidArgument, "n must be <= 32");
  return Status::ok();
}

std::vector<std::uint32_t> DprfParams::subsets() const {
  std::vector<std::uint32_t> out;
  const std::uint32_t limit = (n == 32) ? 0xffffffffu : ((1u << n) - 1);
  for (std::uint32_t mask = 0; mask <= limit; ++mask) {
    if (std::popcount(mask) == subset_size()) out.push_back(mask);
    if (mask == limit) break;  // avoid overflow wrap when limit == UINT32_MAX
  }
  return out;
}

std::vector<DprfElementKeys> dprf_deal(const DprfParams& params, Rng& rng) {
  assert(params.validate().is_ok());
  const auto subsets = params.subsets();
  std::vector<DprfElementKeys> out(params.n);
  for (int i = 0; i < params.n; ++i) out[i].index = i;
  for (std::size_t id = 0; id < subsets.size(); ++id) {
    const Bytes subkey = rng.next_bytes(32);
    for (int i = 0; i < params.n; ++i) {
      if (subsets[id] & (1u << i)) out[i].subkeys[static_cast<int>(id)] = subkey;
    }
  }
  return out;
}

DprfElementKeys dprf_refresh(const DprfElementKeys& keys, std::uint64_t epoch) {
  if (epoch == 0) return keys;
  DprfElementKeys out;
  out.index = keys.index;
  Bytes label;
  const char* tag = "itdos.dprf.refresh";
  label.insert(label.end(), tag, tag + 18);
  for (int i = 0; i < 8; ++i) {
    label.push_back(static_cast<std::uint8_t>(epoch >> (i * 8)));
  }
  for (const auto& [subset_id, subkey] : keys.subkeys) {
    out.subkeys[subset_id] =
        digest_bytes(hmac_sha256(subkey, ByteView(label.data(), label.size())));
  }
  return out;
}

DprfShare DprfElement::evaluate(ByteView input) const {
  DprfShare share;
  share.element = keys_.index;
  for (const auto& [subset_id, subkey] : keys_.subkeys) {
    share.evaluations[subset_id] = hmac_sha256(subkey, input);
  }
  return share;
}

Bytes DprfShare::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(element));
  const auto count = static_cast<std::uint32_t>(evaluations.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(count >> (i * 8)));
  for (const auto& [id, digest] : evaluations) {
    const auto uid = static_cast<std::uint32_t>(id);
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(uid >> (i * 8)));
    append(out, digest_view(digest));
  }
  return out;
}

Result<DprfShare> DprfShare::decode(ByteView data) {
  if (data.size() < 5) return error(Errc::kMalformedMessage, "dprf share too short");
  DprfShare share;
  share.element = data[0];
  std::uint32_t count = 0;
  for (int i = 0; i < 4; ++i) count |= std::uint32_t(data[1 + i]) << (i * 8);
  std::size_t offset = 5;
  const std::size_t entry_size = 4 + kDigestSize;
  if (data.size() != offset + count * entry_size) {
    return error(Errc::kMalformedMessage, "dprf share size mismatch");
  }
  for (std::uint32_t e = 0; e < count; ++e) {
    std::uint32_t id = 0;
    for (int i = 0; i < 4; ++i) id |= std::uint32_t(data[offset + i]) << (i * 8);
    Digest d;
    std::copy_n(data.data() + offset + 4, kDigestSize, d.begin());
    share.evaluations[static_cast<int>(id)] = d;
    offset += entry_size;
  }
  return share;
}

DprfCombiner::DprfCombiner(DprfParams params, ByteView input)
    : params_(params),
      input_(input.begin(), input.end()),
      subsets_(params.subsets()),
      accepted_(subsets_.size()),
      votes_(subsets_.size()) {}

Status DprfCombiner::add_share(const DprfShare& share) {
  if (share.element < 0 || share.element >= params_.n) {
    return error(Errc::kMalformedMessage, "dprf share from out-of-range element");
  }
  if (shares_.contains(share.element)) {
    return Status::ok();  // duplicate; first one wins
  }
  // An element may only evaluate subsets it belongs to, and must evaluate
  // all of them (a partial share is withheld information, not an error we
  // reject — but unknown ids are malformed).
  for (const auto& [subset_id, digest] : share.evaluations) {
    if (subset_id < 0 || static_cast<std::size_t>(subset_id) >= subsets_.size()) {
      return error(Errc::kMalformedMessage, "dprf share references unknown subset");
    }
    if (!(subsets_[subset_id] & (1u << share.element))) {
      return error(Errc::kMalformedMessage,
                   "dprf share evaluates subset the element is not in");
    }
  }
  shares_[share.element] = share;
  for (const auto& [subset_id, digest] : share.evaluations) {
    auto& tally = votes_[subset_id][digest];
    tally.push_back(share.element);
    if (!accepted_[subset_id] &&
        static_cast<int>(tally.size()) >= params_.threshold()) {
      accepted_[subset_id] = digest;
    }
  }
  return Status::ok();
}

bool DprfCombiner::ready() const {
  return std::all_of(accepted_.begin(), accepted_.end(),
                     [](const auto& a) { return a.has_value(); });
}

Result<SymmetricKey> DprfCombiner::combine() const {
  if (!ready()) {
    return error(Errc::kUnavailable, "dprf: not all subsets resolved");
  }
  Bytes acc(kDigestSize, 0);
  for (const auto& a : accepted_) {
    xor_into(acc, digest_view(*a));
  }
  // Domain-separate the final key from the raw XOR accumulator.
  const Digest key = hmac_sha256(acc, input_);
  return SymmetricKey::from_bytes(digest_view(key));
}

std::vector<int> DprfCombiner::misbehaving() const {
  std::vector<int> out;
  for (std::size_t subset_id = 0; subset_id < subsets_.size(); ++subset_id) {
    if (!accepted_[subset_id]) continue;
    for (const auto& [value, voters] : votes_[subset_id]) {
      if (value == *accepted_[subset_id]) continue;
      for (int v : voters) out.push_back(v);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

SymmetricKey dprf_eval_master(const DprfParams& params,
                              const std::vector<DprfElementKeys>& all_keys,
                              ByteView input) {
  DprfCombiner combiner(params, input);
  for (const auto& keys : all_keys) {
    DprfElement element(params, keys);
    const Status s = combiner.add_share(element.evaluate(input));
    assert(s.is_ok());
    (void)s;
    if (combiner.ready()) break;
  }
  auto result = combiner.combine();
  assert(result.is_ok());
  return std::move(result).take();
}

Status CommitRevealCoin::commit(int element, const Digest& commitment) {
  if (element < 0 || element >= static_cast<int>(commitments_.size())) {
    return error(Errc::kInvalidArgument, "coin commit from out-of-range element");
  }
  if (commitments_[element]) {
    return error(Errc::kAlreadyExists, "coin commit already registered");
  }
  commitments_[element] = commitment;
  return Status::ok();
}

Status CommitRevealCoin::reveal(int element, ByteView value) {
  if (element < 0 || element >= static_cast<int>(reveals_.size())) {
    return error(Errc::kInvalidArgument, "coin reveal from out-of-range element");
  }
  if (!commitments_[element]) {
    return error(Errc::kFailedPrecondition, "coin reveal without commitment");
  }
  if (sha256(value) != *commitments_[element]) {
    return error(Errc::kAuthFailure, "coin reveal does not match commitment");
  }
  reveals_[element] = Bytes(value.begin(), value.end());
  return Status::ok();
}

int CommitRevealCoin::reveals_accepted() const {
  int count = 0;
  for (const auto& r : reveals_) count += r.has_value() ? 1 : 0;
  return count;
}

Result<Bytes> CommitRevealCoin::output(int min_contributions) const {
  if (reveals_accepted() < min_contributions) {
    return error(Errc::kUnavailable, "coin: not enough reveals");
  }
  Sha256 hash;
  for (std::size_t i = 0; i < reveals_.size(); ++i) {
    if (!reveals_[i]) continue;
    const std::uint8_t index = static_cast<std::uint8_t>(i);
    hash.update(ByteView(&index, 1));
    hash.update(ByteView(reveals_[i]->data(), reveals_[i]->size()));
  }
  return digest_bytes(hash.finish());
}

}  // namespace itdos::crypto
