#include "crypto/hmac.hpp"

#include <cstring>

namespace itdos::crypto {

namespace {
constexpr std::size_t kBlockSize = 64;

struct PaddedKeys {
  std::array<std::uint8_t, kBlockSize> ipad;
  std::array<std::uint8_t, kBlockSize> opad;
};

PaddedKeys pad_key(ByteView key) {
  std::array<std::uint8_t, kBlockSize> k{};
  if (key.size() > kBlockSize) {
    const Digest d = sha256(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  PaddedKeys out;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    out.ipad[i] = k[i] ^ 0x36;
    out.opad[i] = k[i] ^ 0x5c;
  }
  return out;
}
}  // namespace

Digest hmac_sha256(ByteView key, ByteView data) {
  return hmac_sha256(key, {data});
}

Digest hmac_sha256(ByteView key, std::initializer_list<ByteView> segments) {
  const PaddedKeys keys = pad_key(key);
  Sha256 inner;
  inner.update(ByteView(keys.ipad.data(), keys.ipad.size()));
  for (ByteView seg : segments) inner.update(seg);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(ByteView(keys.opad.data(), keys.opad.size()));
  outer.update(digest_view(inner_digest));
  return outer.finish();
}

MacTag mac_tag(ByteView key, ByteView data) {
  const Digest d = hmac_sha256(key, data);
  MacTag tag;
  std::memcpy(tag.data(), d.data(), tag.size());
  return tag;
}

bool mac_verify(ByteView key, ByteView data, const MacTag& tag) {
  const MacTag expected = mac_tag(key, data);
  return constant_time_equal(ByteView(expected.data(), expected.size()),
                             ByteView(tag.data(), tag.size()));
}

Bytes derive_key(ByteView key, std::string_view label, ByteView info) {
  const Digest d = hmac_sha256(
      key, {ByteView(reinterpret_cast<const std::uint8_t*>(label.data()), label.size()),
            info});
  return digest_bytes(d);
}

}  // namespace itdos::crypto
