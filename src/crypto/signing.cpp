#include "crypto/signing.hpp"

#include "common/rng.hpp"

namespace itdos::crypto {

Signature SigningKey::sign(ByteView message) const {
  const Digest d = hmac_sha256(secret_, message);
  Signature sig;
  std::copy(d.begin(), d.end(), sig.begin());
  return sig;
}

SigningKey Keystore::issue(NodeId owner, Rng& rng) {
  SigningKey key(owner, rng.next_bytes(32));
  register_key(key);
  return key;
}

void Keystore::register_key(const SigningKey& key) {
  verify_keys_[key.owner_] = key.secret_;
}

Status Keystore::verify(NodeId signer, ByteView message, const Signature& sig) const {
  const auto it = verify_keys_.find(signer);
  if (it == verify_keys_.end()) {
    return error(Errc::kNotFound, "unknown signer node " + signer.to_string());
  }
  const Digest d = hmac_sha256(it->second, message);
  if (!constant_time_equal(ByteView(d.data(), d.size()),
                           ByteView(sig.data(), sig.size()))) {
    return error(Errc::kAuthFailure, "signature mismatch for node " + signer.to_string());
  }
  return Status::ok();
}

SignedMessage sign_message(const SigningKey& key, BufView payload) {
  SignedMessage msg;
  msg.signer = key.owner();
  msg.signature = key.sign(payload);
  msg.payload = std::move(payload);
  return msg;
}

Status verify_message(const Keystore& keystore, const SignedMessage& msg) {
  return keystore.verify(msg.signer, msg.payload, msg.signature);
}

}  // namespace itdos::crypto
