// HMAC-SHA256 (RFC 2104). Used for message authenticators between replicas
// (the Castro-Liskov MAC optimization), share derivation in the distributed
// PRF, and the simulated signature scheme.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace itdos::crypto {

/// HMAC-SHA256 over `data` with `key` (any key length).
Digest hmac_sha256(ByteView key, ByteView data);

/// HMAC with multiple data segments (avoids concatenation copies).
Digest hmac_sha256(ByteView key, std::initializer_list<ByteView> segments);

/// Truncated MAC tag as carried on the wire (16 bytes is ample here).
inline constexpr std::size_t kMacTagSize = 16;
using MacTag = std::array<std::uint8_t, kMacTagSize>;

MacTag mac_tag(ByteView key, ByteView data);
bool mac_verify(ByteView key, ByteView data, const MacTag& tag);

/// HKDF-style key derivation: out = HMAC(key, label || info).
Bytes derive_key(ByteView key, std::string_view label, ByteView info);

}  // namespace itdos::crypto
