// Message signatures, used where the paper requires non-repudiable proof:
// the signed messages a singleton client submits to the Group Manager as
// proof of a faulty value (§3.6), and BFT view-change certificates.
//
// Substitution note (DESIGN.md §4): the paper cites RSA/MD5 [33,34]. We
// provide an HMAC-based scheme behind a PKI-shaped interface: each principal
// holds a private SigningKey; verifiers consult a Keystore that models the
// deployed public-key infrastructure (the paper assumes "authentication
// tokens ... adequately protected"). Only the holder of the SigningKey can
// produce a valid signature; any party with the Keystore can verify. The
// unforgeability property that the proof-of-faulty-value protocol depends on
// is preserved; the asymmetric-math internals are not.
#pragma once

#include <array>
#include <map>
#include <memory>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/hmac.hpp"

namespace itdos::crypto {

inline constexpr std::size_t kSignatureSize = 32;
using Signature = std::array<std::uint8_t, kSignatureSize>;

/// A principal's private signing key. Move-only to discourage copies of
/// secret material.
class SigningKey {
 public:
  // itdos-lint: allow(BUF-001) key-material sink, moved into place; not a message-path payload
  SigningKey(NodeId owner, Bytes secret) : owner_(owner), secret_(std::move(secret)) {}
  SigningKey(SigningKey&&) = default;
  SigningKey& operator=(SigningKey&&) = default;
  SigningKey(const SigningKey&) = delete;
  SigningKey& operator=(const SigningKey&) = delete;

  NodeId owner() const { return owner_; }

  Signature sign(ByteView message) const;

 private:
  friend class Keystore;
  NodeId owner_;
  Bytes secret_;
};

/// Trusted verification authority — the PKI stand-in. One Keystore instance
/// is shared (by shared_ptr) across a simulated deployment; it issues keys
/// and verifies signatures against the registered principals.
class Keystore {
 public:
  /// Issues (and registers) a fresh signing key for `owner`. Re-issuing for
  /// the same owner revokes the previous key.
  SigningKey issue(NodeId owner, Rng& rng);

  /// Registers an externally-created key's verification material.
  void register_key(const SigningKey& key);

  /// kAuthFailure if the signature is not `signer`'s over `message`;
  /// kNotFound if the signer is unknown.
  Status verify(NodeId signer, ByteView message, const Signature& sig) const;

  bool knows(NodeId signer) const { return verify_keys_.contains(signer); }

 private:
  // Ordered map (DET-002): key material must never be iterated in hash
  // order anywhere near signing or share-distribution code.
  std::map<NodeId, Bytes> verify_keys_;
};

/// A message plus its signature and signer identity — the unit the paper's
/// fault proofs are made of. The payload is a retained view: proofs share
/// the signed frame's chunk instead of copying it.
struct SignedMessage {
  NodeId signer;
  BufView payload;
  Signature signature{};
};

/// Signs `payload` producing a SignedMessage (the view is retained, not
/// copied — pass an encode() rvalue or an owning view).
SignedMessage sign_message(const SigningKey& key, BufView payload);

/// Verifies a SignedMessage against the keystore.
Status verify_message(const Keystore& keystore, const SignedMessage& msg);

}  // namespace itdos::crypto
