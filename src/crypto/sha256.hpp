// SHA-256 (FIPS 180-4), implemented from scratch. This is the single hash
// primitive underlying MACs, the stream cipher, digests in BFT messages,
// checkpoint hashes, and share verification.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace itdos::crypto {

inline constexpr std::size_t kDigestSize = 32;

using Digest = std::array<std::uint8_t, kDigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256();

  Sha256& update(ByteView data);
  Sha256& update(std::string_view s) {
    return update(ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience.
Digest sha256(ByteView data);
Digest sha256(std::string_view s);

/// Digest as an owning buffer (for APIs that traffic in Bytes).
Bytes digest_bytes(const Digest& d);

/// Digest view.
inline ByteView digest_view(const Digest& d) { return ByteView(d.data(), d.size()); }

}  // namespace itdos::crypto
