// Distributed (non-interactive) pseudo-random function for communication-key
// generation (§3.5; refs Naor-Pinkas-Reingold [26], Cachin-Kursawe-Shoup [5]).
//
// Construction: replicated-subset DPRF with threshold t = f+1 over n = 3f+1
// Group Manager elements. A trusted dealer (the paper's "configuration
// inputs") draws one sub-key k_A for every subset A of [n] with |A| = n - f
// and hands k_A to each element in A. For a common non-repeating input x:
//
//     F(x) = SHA256( XOR over all A of HMAC(k_A, x) )
//
// Properties (both exercised by tests/benches):
//   * Secrecy: any f elements jointly miss at least one sub-key (the one for
//     A = complement of the corrupt set), so their pooled knowledge leaves
//     F(x) masked by an unknown PRF output — they "cannot tamper with or
//     obtain the communication key even when they combine their key shares".
//   * Robust combination: every A has |A| = 2f+1 holders, so each sub-value
//     HMAC(k_A, x) is vouched for by >= f+1 correct elements. The combiner
//     accepts a sub-value once f+1 received copies agree (at least one is
//     then from a correct element), and flags elements whose evaluations
//     disagree with accepted values — the paper's "verify which Group
//     Manager replication domain elements acted correctly".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "crypto/cipher.hpp"
#include "crypto/sha256.hpp"

namespace itdos::crypto {

/// DPRF system parameters. n must be 3f+1 with f >= 1 (and n <= 32 so
/// subsets fit a bitmask; f <= 5 keeps the sub-key count, C(n, f), modest).
struct DprfParams {
  int n = 4;
  int f = 1;

  int threshold() const { return f + 1; }       // elements needed to evaluate
  int subset_size() const { return n - f; }     // holders per sub-key
  Status validate() const;

  /// All subsets of {0..n-1} with |A| = n - f, as bitmasks, in increasing
  /// numeric order. Subset ids index into this list.
  std::vector<std::uint32_t> subsets() const;
};

/// The sub-keys one element holds (its slice of the dealt key material).
struct DprfElementKeys {
  int index = 0;                             // element index in [0, n)
  std::map<int, Bytes> subkeys;              // subset id -> k_A (A contains index)
};

/// One element's evaluation of the DPRF on an input: its sub-values for
/// every subset it belongs to. This is the "key share + verification
/// information" message of §3.5.
struct DprfShare {
  int element = 0;
  std::map<int, Digest> evaluations;         // subset id -> HMAC(k_A, x)

  /// Wire encoding (shares travel inside sealed GM messages).
  Bytes encode() const;
  static Result<DprfShare> decode(ByteView data);
};

/// Trusted dealer: generates and distributes sub-keys. Runs once at system
/// configuration time (the paper: "ITDOS relies upon configuration inputs
/// for its pseudo-random functions").
std::vector<DprfElementKeys> dprf_deal(const DprfParams& params, Rng& rng);

/// Epoch-scoped proactive refresh of one element's sub-keys: every sub-key
/// is replaced by k_A^(e) = HMAC(k_A, "itdos.dprf.refresh" | e). Because the
/// derivation is deterministic per sub-key, all holders of k_A derive the
/// same k_A^(e) independently — no interaction needed — while material from
/// epoch e is useless for epoch e' != e (the window-of-vulnerability bound:
/// key shares leaked before a recovery do not survive it). Epoch 0 is the
/// identity so deal-time key material keeps working unchanged.
DprfElementKeys dprf_refresh(const DprfElementKeys& keys, std::uint64_t epoch);

/// A Group Manager element's evaluator.
class DprfElement {
 public:
  DprfElement(DprfParams params, DprfElementKeys keys)
      : params_(params), keys_(std::move(keys)) {}

  int index() const { return keys_.index; }

  DprfShare evaluate(ByteView input) const;

 private:
  DprfParams params_;
  DprfElementKeys keys_;
};

/// Collects shares for one input and combines them into the communication
/// key once every subset's sub-value is confirmed by f+1 agreeing copies.
class DprfCombiner {
 public:
  /// `input` is copied once into the combiner (it outlives the caller's
  /// buffer); it is the only copy this class makes.
  DprfCombiner(DprfParams params, ByteView input);

  /// Adds one element's share; duplicate elements are ignored, malformed
  /// shares (unknown subset ids / subsets not containing the element) are
  /// rejected with kMalformedMessage.
  Status add_share(const DprfShare& share);

  /// True once every subset has an accepted sub-value.
  bool ready() const;

  /// The combined key; kUnavailable until ready().
  Result<SymmetricKey> combine() const;

  /// Elements whose evaluations contradicted an accepted sub-value. Only
  /// meaningful for subsets already resolved.
  std::vector<int> misbehaving() const;

  int shares_received() const { return static_cast<int>(shares_.size()); }

 private:
  DprfParams params_;
  Bytes input_;
  std::vector<std::uint32_t> subsets_;
  std::map<int, DprfShare> shares_;                  // element -> share
  std::vector<std::optional<Digest>> accepted_;      // per subset id
  std::vector<std::map<Digest, std::vector<int>>> votes_;  // subset -> value -> voters
};

/// Convenience: evaluate the DPRF centrally from the full dealt key set
/// (tests and the "traditional Group Manager" baseline use this).
SymmetricKey dprf_eval_master(const DprfParams& params,
                              const std::vector<DprfElementKeys>& all_keys,
                              ByteView input);

/// Commit-reveal distributed coin used to (re-)initialize each GM element's
/// pseudo-random generator (§3.5: "distributed random number generation
/// process to initialize (and periodically re-initialize) the PNGs").
/// Elements first register commitments H(r_i), then reveals; the coin is
/// SHA256 over the reveals (in element order) that match their commitment.
/// With >= f+1 honest contributions the output is unpredictable to any
/// f-element coalition.
class CommitRevealCoin {
 public:
  explicit CommitRevealCoin(int n) : commitments_(n), reveals_(n) {}

  Status commit(int element, const Digest& commitment);
  Status reveal(int element, ByteView value);

  int reveals_accepted() const;

  /// kUnavailable until at least `min_contributions` valid reveals exist.
  Result<Bytes> output(int min_contributions) const;

 private:
  std::vector<std::optional<Digest>> commitments_;
  std::vector<std::optional<Bytes>> reveals_;
};

}  // namespace itdos::crypto
