#include "crypto/cipher.hpp"

#include <cassert>
#include <cstring>

namespace itdos::crypto {

SymmetricKey SymmetricKey::from_bytes(ByteView b) {
  assert(b.size() >= kSymmetricKeySize);
  SymmetricKey k;
  std::memcpy(k.bytes.data(), b.data(), kSymmetricKeySize);
  return k;
}

std::string SymmetricKey::fingerprint() const {
  const Digest d = sha256(view());
  return hex_encode(ByteView(d.data(), 4));
}

Nonce make_nonce(std::uint64_t sender, std::uint64_t counter) {
  Nonce n{};
  for (int i = 0; i < 4; ++i) n[i] = static_cast<std::uint8_t>(sender >> (i * 8));
  for (int i = 0; i < 8; ++i) n[4 + i] = static_cast<std::uint8_t>(counter >> (i * 8));
  return n;
}

namespace {

/// Derives independent encryption and MAC subkeys so the CTR keystream and
/// the authentication tag never share key material.
Bytes enc_subkey(const SymmetricKey& key) {
  return derive_key(key.view(), "itdos.enc", {});
}
Bytes mac_subkey(const SymmetricKey& key) {
  return derive_key(key.view(), "itdos.mac", {});
}

}  // namespace

void ctr_crypt_inplace(const SymmetricKey& key, const Nonce& nonce,
                       std::span<std::uint8_t> data) {
  const Bytes ek = enc_subkey(key);
  std::uint64_t block_index = 0;
  std::size_t offset = 0;
  while (offset < data.size()) {
    std::uint8_t counter_bytes[8];
    for (int i = 0; i < 8; ++i) {
      counter_bytes[i] = static_cast<std::uint8_t>(block_index >> (i * 8));
    }
    const Digest keystream =
        hmac_sha256(ek, {ByteView(nonce.data(), nonce.size()), ByteView(counter_bytes, 8)});
    const std::size_t take = std::min(data.size() - offset, keystream.size());
    for (std::size_t i = 0; i < take; ++i) data[offset + i] ^= keystream[i];
    offset += take;
    ++block_index;
  }
}

Bytes ctr_crypt(const SymmetricKey& key, const Nonce& nonce, ByteView data) {
  Bytes out(data.begin(), data.end());
  ctr_crypt_inplace(key, nonce, out);
  return out;
}

Bytes seal(const SymmetricKey& key, const Nonce& nonce, ByteView aad, ByteView plaintext) {
  // Single-buffer seal: nonce and plaintext are written once, the ciphertext
  // transform and the MAC both run over that buffer in place. `reserve`
  // covers the tag, so no append below reallocates.
  Bytes out;
  out.reserve(kSealOverhead + plaintext.size());
  append(out, ByteView(nonce.data(), nonce.size()));
  append(out, plaintext);
  ctr_crypt_inplace(key, nonce, std::span<std::uint8_t>(out).subspan(kNonceSize));
  const ByteView ciphertext(out.data() + kNonceSize, plaintext.size());

  const Bytes mk = mac_subkey(key);
  const Digest d = hmac_sha256(mk, {ByteView(nonce.data(), nonce.size()), aad, ciphertext});
  append(out, ByteView(d.data(), kMacTagSize));
  return out;
}

Result<Bytes> open(const SymmetricKey& key, ByteView aad, ByteView sealed) {
  if (sealed.size() < kSealOverhead) {
    return error(Errc::kMalformedMessage, "sealed buffer shorter than overhead");
  }
  Nonce nonce;
  std::memcpy(nonce.data(), sealed.data(), kNonceSize);
  const ByteView ciphertext = sealed.subspan(kNonceSize, sealed.size() - kSealOverhead);
  const ByteView tag = sealed.subspan(sealed.size() - kMacTagSize);

  const Bytes mk = mac_subkey(key);
  const Digest d = hmac_sha256(mk, {ByteView(nonce.data(), nonce.size()), aad, ciphertext});
  if (!constant_time_equal(ByteView(d.data(), kMacTagSize), tag)) {
    return error(Errc::kAuthFailure, "seal tag mismatch");
  }
  return ctr_crypt(key, nonce, ciphertext);
}

}  // namespace itdos::crypto
