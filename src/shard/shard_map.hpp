// Shard routing: the deterministic object-key -> replication-domain map that
// gives ITDOS location transparency across many domains (the paper's bank:
// tellers call accounts without knowing which replication domain holds each
// account). The hash space [0, 2^64) is partitioned into contiguous ranges,
// each owned by one replication domain; a ref whose domain is kRoutedDomain
// is resolved by hashing its object key into the table.
//
// The map is part of the SystemDirectory (deployment configuration): it is
// built once by the topology layer, identical at every party, and consulted
// read-only on the invocation path. Routing must be deterministic and
// byte-order independent — every replicated caller element of a domain must
// resolve the same key to the same target domain, or their nested-invocation
// copies would diverge and never vote out (§3.6).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "orb/object.hpp"

namespace itdos::shard {

/// DomainId 0 in an ObjectRef marks a ROUTED reference: the target domain is
/// resolved from the object key through the shard map. (As a *party* domain,
/// 0 still means "singleton client" — see core::kSingletonDomain.)
inline constexpr DomainId kRoutedDomain{0};

inline constexpr bool is_routed(DomainId domain) {
  return domain == kRoutedDomain;
}

/// Deterministic 64-bit key mixer (splitmix64 finalizer). Pure arithmetic on
/// the key value: no pointers, no platform byte order, no global state.
constexpr std::uint64_t shard_hash(ObjectId key) {
  std::uint64_t x = key.value;
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash-partitioned key ranges, each owned by one replication domain.
class ShardMap {
 public:
  /// `shard_count` equal slices of the hash space; returns which slice a key
  /// falls in. Static so deployment code can assign objects to shard INDICES
  /// before the owning domains (and their ids) exist — partition_evenly()
  /// over the eventual domain list produces exactly this assignment.
  static std::size_t even_slice(ObjectId key, std::size_t shard_count);

  bool empty() const { return ranges_.empty(); }
  std::size_t range_count() const { return ranges_.size(); }

  /// Bumped on every mutation; lets cached routing decisions detect staleness.
  std::uint64_t generation() const { return generation_; }

  /// Replaces the table with one equal hash-space slice per owner, in order.
  void partition_evenly(const std::vector<DomainId>& owners);

  /// Registers one range starting at `begin` (extends to the next range's
  /// begin, or wraps to the lowest range). Overwrites an existing boundary.
  void add_range(std::uint64_t begin, DomainId owner);

  /// Rebalance primitive: hands every range owned by `from` to `to`.
  /// Returns how many ranges moved.
  std::size_t reassign(DomainId from, DomainId to);

  /// Routes a key to its owning domain; kRoutedDomain (0) when the table is
  /// empty, i.e. "unroutable".
  DomainId route(ObjectId key) const;

  /// The owner of a raw hash value (route() is owner_of_hash(shard_hash(k))).
  DomainId owner_of_hash(std::uint64_t hash) const;

  /// Range table, begin-of-range -> owner (ascending).
  const std::map<std::uint64_t, DomainId>& ranges() const { return ranges_; }

  /// Distinct owners, ascending (for enumeration and rebalance planning).
  std::vector<DomainId> owners() const;

  /// Byte-stable FNV-1a digest over the range table — two parties with equal
  /// digests route every key identically (determinism tests compare these).
  std::uint64_t table_digest() const;

 private:
  std::map<std::uint64_t, DomainId> ranges_;  // begin of range -> owner
  std::uint64_t generation_ = 0;
};

/// The client-proxy-side view: resolves a ref's target domain, consulting
/// the shard map only for routed refs. Both singleton clients and domain
/// elements making nested invocations resolve through this (the SMIOP
/// pluggable protocol holds one), so cross-domain calls stay location
/// transparent on every tier.
class ShardRouter {
 public:
  explicit ShardRouter(const ShardMap& map) : map_(&map) {}

  DomainId resolve(const orb::ObjectRef& ref) const {
    return is_routed(ref.domain) ? map_->route(ref.key) : ref.domain;
  }

  /// Builds a routed reference (the form handed to clients out of band).
  static orb::ObjectRef routed_ref(ObjectId key, std::string interface_name) {
    orb::ObjectRef ref;
    ref.domain = kRoutedDomain;
    ref.key = key;
    ref.interface_name = std::move(interface_name);
    return ref;
  }

 private:
  const ShardMap* map_;
};

}  // namespace itdos::shard
