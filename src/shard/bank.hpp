// The paper's motivating application (§2): a bank whose teller objects live
// in one replication domain and whose accounts are sharded across others.
// Tellers are replicated elements acting as clients — a "transfer" upcall
// issues nested invocations into the account domains through the full
// proxy/SMIOP/BFT path. Every teller element of the 3f+1 group makes the
// same nested call; the callee's request vote (domain_element.cpp) executes
// the f+1-matching copies exactly once, which is what keeps a replicated
// caller from depositing 3f+1 times.
#pragma once

#include "shard/topology.hpp"

namespace itdos::shard {

inline constexpr std::string_view kAccountInterface = "IDL:bank/Account:1.0";
inline constexpr std::string_view kTellerInterface = "IDL:bank/Teller:1.0";

/// The object key tellers are activated under (within their own domain; the
/// account key space is disjoint because accounts live in shard domains).
inline constexpr ObjectId kTellerKey{1};

/// One account: a replicated balance with persistence (element replacement
/// moves balances through the f+1 byte-identical bundle certification).
/// Ops: "deposit" [amount] -> new balance; "withdraw" [amount] -> new
/// balance or a user exception on insufficient funds; "balance" -> balance.
class AccountServant : public orb::Servant {
 public:
  explicit AccountServant(std::int64_t initial) : balance_(initial) {}

  std::string interface_name() const override {
    return std::string(kAccountInterface);
  }
  void dispatch(const std::string& operation, const cdr::Value& arguments,
                orb::ServerContext& context, orb::ReplySinkPtr sink) override;

  Result<Bytes> save_state() const override;
  Status load_state(ByteView state) override;

  std::int64_t balance() const { return balance_; }

 private:
  std::int64_t balance_ = 0;
};

/// The replicated front tier. Ops (account keys travel in the arguments;
/// the teller resolves them to routed refs, so it never learns — or cares —
/// which domain holds an account):
///   "deposit"  [account, amount]      -> new balance (one nested call)
///   "balance"  [account]              -> balance (one nested call)
///   "transfer" [from, to, amount]     -> remaining balance of `from`
///     (withdraw at `from`, then deposit at `to`: two sequential nested
///     calls, typically into two DIFFERENT shard domains)
class TellerServant : public orb::Servant {
 public:
  std::string interface_name() const override {
    return std::string(kTellerInterface);
  }
  void dispatch(const std::string& operation, const cdr::Value& arguments,
                orb::ServerContext& context, orb::ReplySinkPtr sink) override;

  // Tellers are stateless; persistence is trivially empty.
  Result<Bytes> save_state() const override { return Bytes{}; }
  Status load_state(ByteView) override { return Status::ok(); }
};

/// Declarative bank deployment on a sharded topology.
struct BankSpec {
  int shards = 2;       // account domains
  int tellers = 1;      // teller (front) domains; 0 = clients call accounts
  int f = 1;
  int clients = 1;
  int accounts = 16;    // account object ids 1..accounts, sharded by key hash
  std::int64_t initial_balance = 1000;
  core::VotePolicy policy = core::VotePolicy::exact();
};

class Bank {
 public:
  static Bank build(core::ItdosSystem& system, const BankSpec& spec);

  ShardTopology& topology() { return topo_; }
  const ShardTopology& topology() const { return topo_; }
  core::ItdosClient& client(std::size_t i = 0) { return topo_.client(i); }

  /// Routed reference to an account — valid from any party in the system.
  orb::ObjectRef account_ref(ObjectId account) const {
    return ShardRouter::routed_ref(account, std::string(kAccountInterface));
  }

  /// Concrete reference to teller domain `index`.
  orb::ObjectRef teller_ref(int index = 0) const;

  /// All account ids (1..spec.accounts).
  const std::vector<ObjectId>& account_ids() const { return accounts_; }

  /// Account ids owned by shard `index` (the even_slice assignment).
  std::vector<ObjectId> accounts_of_shard(int index) const;

 private:
  core::ItdosSystem* system_ = nullptr;
  ShardTopology topo_;
  BankSpec spec_;
  std::vector<ObjectId> accounts_;
};

}  // namespace itdos::shard
