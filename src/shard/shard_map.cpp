#include "shard/shard_map.hpp"

#include <algorithm>

namespace itdos::shard {

namespace {

/// Width of one of `count` equal slices of the 64-bit hash space. Computed
/// without 128-bit arithmetic: 2^64 / count, rounding so count slices cover
/// the space (the last slice absorbs the remainder).
constexpr std::uint64_t slice_width(std::size_t count) {
  return count <= 1 ? 0 : (~0ULL / count) + 1;
}

}  // namespace

std::size_t ShardMap::even_slice(ObjectId key, std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  const std::size_t slice = shard_hash(key) / slice_width(shard_count);
  // The division can land on shard_count when the last slice absorbed the
  // rounding remainder; clamp into range.
  return slice < shard_count ? slice : shard_count - 1;
}

void ShardMap::partition_evenly(const std::vector<DomainId>& owners) {
  ranges_.clear();
  const std::uint64_t width = slice_width(owners.size());
  for (std::size_t i = 0; i < owners.size(); ++i) {
    ranges_[i * width] = owners[i];
  }
  ++generation_;
}

void ShardMap::add_range(std::uint64_t begin, DomainId owner) {
  ranges_[begin] = owner;
  ++generation_;
}

std::size_t ShardMap::reassign(DomainId from, DomainId to) {
  std::size_t moved = 0;
  for (auto& [begin, owner] : ranges_) {
    if (owner == from) {
      owner = to;
      ++moved;
    }
  }
  if (moved != 0) ++generation_;
  return moved;
}

DomainId ShardMap::route(ObjectId key) const {
  return owner_of_hash(shard_hash(key));
}

DomainId ShardMap::owner_of_hash(std::uint64_t hash) const {
  if (ranges_.empty()) return kRoutedDomain;
  // Last range with begin <= hash; hashes below the first boundary wrap to
  // the highest range (the table is a ring over the hash space).
  auto it = ranges_.upper_bound(hash);
  if (it == ranges_.begin()) return ranges_.rbegin()->second;
  return std::prev(it)->second;
}

std::vector<DomainId> ShardMap::owners() const {
  std::vector<DomainId> result;
  for (const auto& [begin, owner] : ranges_) {
    bool seen = false;
    for (const DomainId known : result) seen = seen || known == owner;
    if (!seen) result.push_back(owner);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::uint64_t ShardMap::table_digest() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const auto& [begin, owner] : ranges_) {
    mix(begin);
    mix(owner.value);
  }
  return h;
}

}  // namespace itdos::shard
