#include "shard/sharded_load.hpp"

namespace itdos::shard {

namespace {

load::LoadOp deposit_op(const Bank& bank, ObjectId account, std::int64_t amount) {
  load::LoadOp op;
  op.operation = "deposit";
  op.argument = cdr::Value::sequence({cdr::Value::int64(amount)});
  op.weight = 1.0;
  op.target = bank.account_ref(account);
  return op;
}

}  // namespace

std::vector<load::LoadOp> bank_deposit_mix(const Bank& bank,
                                           std::int64_t amount) {
  std::vector<load::LoadOp> mix;
  mix.reserve(bank.account_ids().size());
  for (const ObjectId account : bank.account_ids()) {
    mix.push_back(deposit_op(bank, account, amount));
  }
  return mix;
}

std::vector<load::LoadOp> shard_deposit_mix(const Bank& bank, int index,
                                            std::int64_t amount) {
  std::vector<load::LoadOp> mix;
  for (const ObjectId account : bank.accounts_of_shard(index)) {
    mix.push_back(deposit_op(bank, account, amount));
  }
  return mix;
}

load::LoadOptions sharded_load_options(std::vector<load::LoadOp> mix,
                                       double rate_per_s,
                                       std::int64_t horizon_ns, int clients,
                                       std::uint64_t seed) {
  load::LoadOptions options;
  options.arrival.kind = load::ArrivalKind::kFixedRate;
  options.arrival.rate_per_s = rate_per_s;
  options.arrival.horizon_ns = horizon_ns;
  options.seed = seed;
  options.clients = clients;
  options.max_client_backlog = clients;
  options.mix = std::move(mix);
  return options;
}

}  // namespace itdos::shard
