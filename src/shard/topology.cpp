#include "shard/topology.hpp"

#include "common/log.hpp"

namespace itdos::shard {

namespace {
constexpr std::string_view kLog = "itdos.shard";
}  // namespace

ShardTopology ShardTopology::build(core::ItdosSystem& system,
                                   const ShardSpec& spec) {
  ShardTopology topo;
  topo.system_ = &system;

  for (int i = 0; i < spec.shards; ++i) {
    topo.shard_domains_.push_back(
        system.add_domain(spec.f, spec.policy, spec.shard_servants(i)));
  }
  // Register the key ranges BEFORE any front-tier servant can run: slice i
  // of the hash space belongs to shard i, matching even_slice().
  system.shards().partition_evenly(topo.shard_domains_);

  for (int i = 0; i < spec.front_domains; ++i) {
    topo.front_domains_.push_back(
        system.add_domain(spec.f, spec.policy, spec.front_servants(i)));
  }
  for (int i = 0; i < spec.client_enclaves; ++i) {
    topo.clients_.push_back(&system.add_client());
  }

  ITDOS_INFO(kLog) << "sharded topology up: " << spec.shards << " shard + "
                   << spec.front_domains << " front domains, "
                   << spec.client_enclaves << " client enclaves, digest "
                   << system.directory().shards().table_digest();
  return topo;
}

int ShardTopology::shard_index_of(DomainId domain) const {
  for (std::size_t i = 0; i < shard_domains_.size(); ++i) {
    if (shard_domains_[i] == domain) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace itdos::shard
