// Bridges src/load's open-loop arrival streams onto a sharded deployment:
// mixes whose ops carry routed per-account refs, so one seed-deterministic
// arrival schedule spreads across every shard domain by key hash. The
// generator itself is unchanged — sharding is entirely in the mix.
#pragma once

#include "load/generator.hpp"
#include "shard/bank.hpp"

namespace itdos::shard {

/// One equally-weighted "deposit [amount]" op per bank account, each with a
/// routed ref. Sampling the mix per-arrival reproduces the key distribution
/// (uniform over accounts), and the routed refs fan the stream out across
/// shard domains.
std::vector<load::LoadOp> bank_deposit_mix(const Bank& bank,
                                           std::int64_t amount = 1);

/// The same mix restricted to the accounts owned by shard `index` (per-shard
/// saturation probes).
std::vector<load::LoadOp> shard_deposit_mix(const Bank& bank, int index,
                                            std::int64_t amount = 1);

/// Load options pre-filled for a sharded run: the given mix, arrival rate
/// and horizon; client pool sized `clients`.
load::LoadOptions sharded_load_options(std::vector<load::LoadOp> mix,
                                       double rate_per_s,
                                       std::int64_t horizon_ns, int clients,
                                       std::uint64_t seed);

}  // namespace itdos::shard
