#include "shard/bank.hpp"

namespace itdos::shard {

namespace {

/// True when `v` is a sequence of exactly `n` int64s — the argument shape
/// every bank op takes. Byzantine clients send arbitrary Values; a malformed
/// request must produce a deterministic exception reply, never UB.
bool int_seq(const cdr::Value& v, std::size_t n) {
  if (v.kind() != cdr::TypeKind::kSequence) return false;
  const std::vector<cdr::Value>& elems = v.elements();
  if (elems.size() != n) return false;
  for (const cdr::Value& e : elems) {
    if (e.kind() != cdr::TypeKind::kInt64) return false;
  }
  return true;
}

cdr::Value amount_args(std::int64_t amount) {
  return cdr::Value::sequence({cdr::Value::int64(amount)});
}

}  // namespace

// ---------------------------------------------------------------------------
// AccountServant
// ---------------------------------------------------------------------------

void AccountServant::dispatch(const std::string& operation,
                              const cdr::Value& arguments, orb::ServerContext&,
                              orb::ReplySinkPtr sink) {
  if (operation == "balance") {
    sink->reply(cdr::Value::int64(balance_));
    return;
  }
  if (operation == "deposit" || operation == "withdraw") {
    if (!int_seq(arguments, 1)) {
      sink->reply(error(Errc::kInvalidArgument, "expected [amount]"));
      return;
    }
    const std::int64_t amount = arguments.elements().front().as_int64();
    if (amount < 0) {
      sink->reply(error(Errc::kInvalidArgument, "negative amount"));
      return;
    }
    if (operation == "withdraw" && amount > balance_) {
      sink->reply(error(Errc::kInvalidArgument, "insufficient funds"));
      return;
    }
    balance_ += operation == "deposit" ? amount : -amount;
    sink->reply(cdr::Value::int64(balance_));
    return;
  }
  sink->reply(error(Errc::kInvalidArgument, "unknown op " + operation));
}

Result<Bytes> AccountServant::save_state() const {
  cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
  enc.write_int64(balance_);
  return enc.take();
}

Status AccountServant::load_state(ByteView state) {
  cdr::Decoder dec(state, cdr::ByteOrder::kLittleEndian);
  ITDOS_ASSIGN_OR_RETURN(balance_, dec.read_int64());
  return Status::ok();
}

// ---------------------------------------------------------------------------
// TellerServant
// ---------------------------------------------------------------------------

void TellerServant::dispatch(const std::string& operation,
                             const cdr::Value& arguments,
                             orb::ServerContext& context,
                             orb::ReplySinkPtr sink) {
  const auto account_of = [](const cdr::Value& v) {
    return ObjectId(static_cast<std::uint64_t>(v.as_int64()));
  };
  const auto routed = [](ObjectId account) {
    return ShardRouter::routed_ref(account, std::string(kAccountInterface));
  };

  if (operation == "deposit") {
    if (!int_seq(arguments, 2)) {
      sink->reply(error(Errc::kInvalidArgument, "expected [account, amount]"));
      return;
    }
    const ObjectId account = account_of(arguments.elements()[0]);
    const std::int64_t amount = arguments.elements()[1].as_int64();
    context.invoke_nested(routed(account), "deposit", amount_args(amount),
                          [sink](Result<cdr::Value> r) { sink->reply(std::move(r)); });
    return;
  }

  if (operation == "balance") {
    if (!int_seq(arguments, 1)) {
      sink->reply(error(Errc::kInvalidArgument, "expected [account]"));
      return;
    }
    context.invoke_nested(routed(account_of(arguments.elements()[0])), "balance",
                          cdr::Value::sequence({}),
                          [sink](Result<cdr::Value> r) { sink->reply(std::move(r)); });
    return;
  }

  if (operation == "transfer") {
    if (!int_seq(arguments, 3)) {
      sink->reply(error(Errc::kInvalidArgument, "expected [from, to, amount]"));
      return;
    }
    const ObjectId from = account_of(arguments.elements()[0]);
    const ObjectId to = account_of(arguments.elements()[1]);
    const std::int64_t amount = arguments.elements()[2].as_int64();
    // Withdraw at `from`, then deposit at `to` — two nested calls, usually
    // into two different shard domains. `context` is the element's long-
    // lived upcall context; the sink keeps the pending reply alive.
    context.invoke_nested(
        routed(from), "withdraw", amount_args(amount),
        [&context, sink, routed, to, amount](Result<cdr::Value> withdrew) {
          if (!withdrew.is_ok()) {
            sink->reply(std::move(withdrew));
            return;
          }
          const cdr::Value remaining = std::move(withdrew).take();
          context.invoke_nested(
              routed(to), "deposit", amount_args(amount),
              [sink, remaining](Result<cdr::Value> deposited) {
                if (!deposited.is_ok()) {
                  sink->reply(std::move(deposited));
                  return;
                }
                sink->reply(remaining);
              });
        });
    return;
  }

  sink->reply(error(Errc::kInvalidArgument, "unknown op " + operation));
}

// ---------------------------------------------------------------------------
// Bank
// ---------------------------------------------------------------------------

Bank Bank::build(core::ItdosSystem& system, const BankSpec& spec) {
  Bank bank;
  bank.system_ = &system;
  bank.spec_ = spec;
  for (int id = 1; id <= spec.accounts; ++id) {
    bank.accounts_.push_back(ObjectId(static_cast<std::uint64_t>(id)));
  }

  // Ownership by shard INDEX, computable before the domains (and their ids)
  // exist; partition_evenly() later registers exactly this assignment.
  std::vector<std::vector<ObjectId>> owned(
      static_cast<std::size_t>(spec.shards));
  for (const ObjectId id : bank.accounts_) {
    owned[ShardMap::even_slice(id, static_cast<std::size_t>(spec.shards))]
        .push_back(id);
  }

  ShardSpec topo;
  topo.shards = spec.shards;
  topo.f = spec.f;
  topo.policy = spec.policy;
  topo.front_domains = spec.tellers;
  topo.client_enclaves = spec.clients;
  topo.shard_servants = [owned, initial = spec.initial_balance](int index) {
    const std::vector<ObjectId> accounts = owned.at(static_cast<std::size_t>(index));
    return [accounts, initial](orb::ObjectAdapter& adapter, int) {
      for (const ObjectId id : accounts) {
        // Freshly built domain: the keys cannot collide.
        (void)adapter.activate_with_key(id, std::make_shared<AccountServant>(initial));
      }
    };
  };
  topo.front_servants = [](int) {
    return [](orb::ObjectAdapter& adapter, int) {
      // Freshly built domain: kTellerKey cannot collide.
      (void)adapter.activate_with_key(kTellerKey, std::make_shared<TellerServant>());
    };
  };
  bank.topo_ = ShardTopology::build(system, topo);
  return bank;
}

orb::ObjectRef Bank::teller_ref(int index) const {
  return system_->object_ref(topo_.front_domains().at(static_cast<std::size_t>(index)),
                             kTellerKey, std::string(kTellerInterface));
}

std::vector<ObjectId> Bank::accounts_of_shard(int index) const {
  std::vector<ObjectId> result;
  for (const ObjectId id : accounts_) {
    if (ShardMap::even_slice(id, static_cast<std::size_t>(spec_.shards)) ==
        static_cast<std::size_t>(index)) {
      result.push_back(id);
    }
  }
  return result;
}

}  // namespace itdos::shard
