// Declarative sharded deployments: a ShardSpec names how many key-owning
// domains to stand up (shards × group size × vote policy), how many
// front-tier domains sit before them, and how many singleton client
// enclaves drive the system; ShardTopology::build instantiates all of it on
// an ItdosSystem and registers the key ranges in the SystemDirectory. The
// Group Manager needs no special casing — each (party domain, target
// domain) pair becomes one virtual connection, so an S-shard, T-teller
// deployment exercises O(S·T + clients·S) connections through the ordinary
// open_request path.
#pragma once

#include <functional>
#include <vector>

#include "itdos/system.hpp"
#include "shard/shard_map.hpp"

namespace itdos::shard {

struct ShardSpec {
  int shards = 2;  // key-owning replication domains (the partitioned tier)
  int f = 1;       // per-domain intrusion budget (3f+1 elements each)
  core::VotePolicy policy = core::VotePolicy::exact();

  int front_domains = 0;    // front-tier domains (tellers): call into shards
  int client_enclaves = 1;  // singleton clients attached at build time

  /// Servant installer for shard `index` (0-based). Required. The installer
  /// sees the shard INDEX, not the DomainId — use ShardMap::even_slice to
  /// decide which objects the shard owns before its DomainId exists.
  std::function<core::DomainElement::ServantInstaller(int index)> shard_servants;

  /// Servant installer for front-tier domain `index`; required when
  /// front_domains > 0.
  std::function<core::DomainElement::ServantInstaller(int index)> front_servants;
};

/// The instantiated deployment: domain ids per tier, the attached clients,
/// and routing helpers bound to the system's shard map.
class ShardTopology {
 public:
  /// Adds the domains and clients to `system` and registers one equal hash
  /// slice per shard in the directory's shard map (slice i -> shard i, the
  /// same assignment ShardMap::even_slice computes from an index alone).
  static ShardTopology build(core::ItdosSystem& system, const ShardSpec& spec);

  const std::vector<DomainId>& shard_domains() const { return shard_domains_; }
  const std::vector<DomainId>& front_domains() const { return front_domains_; }
  const std::vector<core::ItdosClient*>& clients() const { return clients_; }
  core::ItdosClient& client(std::size_t i = 0) { return *clients_.at(i); }

  DomainId route(ObjectId key) const { return system_->directory().shards().route(key); }
  orb::ObjectRef routed_ref(ObjectId key, std::string interface_name) const {
    return ShardRouter::routed_ref(key, std::move(interface_name));
  }

  /// Index of a shard domain in shard_domains(), or -1.
  int shard_index_of(DomainId domain) const;

 private:
  core::ItdosSystem* system_ = nullptr;
  std::vector<DomainId> shard_domains_;
  std::vector<DomainId> front_domains_;
  std::vector<core::ItdosClient*> clients_;
};

}  // namespace itdos::shard
