#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace itdos::telemetry {

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  // bit_width >= 5 here; the top 4 bits below the leading bit select the
  // sub-bucket, giving 16 linear buckets per power-of-2 magnitude.
  const int magnitude = std::bit_width(v);
  const int shift = magnitude - 5;
  return kSubBuckets + static_cast<std::size_t>(shift) * kSubBuckets +
         static_cast<std::size_t>((v >> shift) - kSubBuckets);
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t block = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  const std::uint64_t lower = static_cast<std::uint64_t>(kSubBuckets + sub) << block;
  return lower + ((std::uint64_t{1} << block) - 1);
}

void Histogram::record(std::int64_t sample) {
  const std::uint64_t v = sample < 0 ? 0 : static_cast<std::uint64_t>(sample);
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  ++buckets_[bucket_index(v)];
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++count_;
  sum_ += v;
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  auto rank = static_cast<std::uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kBucketCount, 0);
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  if (!buckets_.empty()) std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0;
}

void Gauge::sample(std::int64_t v) {
  const std::int64_t t = (*clock_)();
  // Coalesce same-instant updates: a burst of set() calls within one event
  // is one level change as far as the timeline is concerned.
  if (!series_.empty() && series_.back().t_ns == t) {
    series_.back().v = v;
    return;
  }
  if (ticks_++ % stride_ != 0) return;
  append_sample({t, v});
}

void Gauge::append_sample(Sample s) {
  series_.push_back(s);
  if (series_.size() >= kMaxSeriesSamples) decimate();
}

void Gauge::decimate() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < series_.size(); r += 2) series_[w++] = series_[r];
  series_.resize(w);
  stride_ *= 2;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
    it->second.clock_ = clock_;
  }
  return it->second;
}

void MetricsRegistry::set_clock(std::function<std::int64_t()> clock) {
  clock_ = std::make_shared<const std::function<std::int64_t()>>(std::move(clock));
  for (auto& [name, g] : gauges_) g.clock_ = clock_;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string(name), Histogram{}).first;
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).inc(c.value());
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauge(name);
    mine.add(g.value());
    // A merged run's high-water mark survives even when its gauge drained
    // back to zero before the harvest (peaks max, they don't add).
    mine.peak_ = std::max(mine.peak_, g.peak_);
    // Carry the source's history across (bench aggregation: each simulated
    // system restarts at t=0, so the merged series is a concatenation of
    // runs, re-decimated to stay within the sample cap).
    for (const Gauge::Sample& s : g.series_) mine.append_sample(s);
  }
  for (const auto& [name, h] : other.histograms_) histogram(name).merge_from(h);
}

}  // namespace itdos::telemetry
