// The one seam every layer instruments through. A Hub bundles the metrics
// registry with the tracer and stamps events with the simulator's clock; the
// Simulator owns one Hub, and every Process reaches it via sim().telemetry().
#pragma once

#include <functional>
#include <utility>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace itdos::telemetry {

class Hub {
 public:
  using Clock = std::function<SimTime()>;

  explicit Hub(Clock clock) : clock_(std::move(clock)) {
    // Gauges sample their time series against the same simulation clock that
    // stamps trace events, so both timelines line up in exported reports.
    metrics_.set_clock([c = clock_] { return c().ns; });
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Records a trace event stamped with the current simulation time.
  void trace(TraceKind kind, NodeId node, std::uint64_t trace, std::uint64_t a = 0,
             std::uint64_t b = 0) {
    tracer_.record(clock_(), kind, node, trace, a, b);
  }

 private:
  Clock clock_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace itdos::telemetry
