// The metrics half of the telemetry seam: a registry of named counters,
// gauges, and log-linear latency histograms. Cheap enough to stay on in every
// test — instruments are resolved to stable addresses once at component
// construction, so the hot path is a single add on a cached pointer.
//
// Histograms are HdrHistogram-style log-linear: 16 sub-buckets per power-of-2
// magnitude, so any recorded value is bucketed with relative error <= 1/16.
// Percentiles (p50/p95/p99/max) come from a bucket walk; the representative
// value is the bucket's upper edge clamped to the observed maximum, so
// percentile() never exceeds max().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace itdos::telemetry {

/// A monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time level (queue depth, open connections). Tracks the peak
/// since the last reset alongside the current value, and — when the owning
/// registry has a clock (MetricsRegistry::set_clock, wired by the telemetry
/// Hub) — a bounded (time, value) series of the level over the run.
///
/// The series is sampled on change, never on a timer: scheduling sampling
/// events would perturb the discrete-event simulator and break same-seed
/// trace stability. Capacity is bounded by decimation — when the buffer
/// fills, every other sample is dropped and the recording stride doubles, so
/// a long run keeps ~uniform coverage at a fixed memory cost and the kept
/// samples depend only on the sequence of set() calls (deterministic under
/// the same seed).
class Gauge {
 public:
  struct Sample {
    std::int64_t t_ns = 0;  // simulation time of the change
    std::int64_t v = 0;     // gauge value after the change
  };
  static constexpr std::size_t kMaxSeriesSamples = 256;

  void set(std::int64_t v) {
    value_ = v;
    if (v > peak_) peak_ = v;
    if (clock_) sample(v);
  }
  void add(std::int64_t delta) { set(value_ + delta); }
  std::int64_t value() const { return value_; }
  std::int64_t peak() const { return peak_; }

  /// Decimated (time, value) history; empty when the registry has no clock.
  const std::vector<Sample>& series() const { return series_; }

  void reset() {
    value_ = 0;
    peak_ = 0;
    series_.clear();
    stride_ = 1;
    ticks_ = 0;
  }

 private:
  friend class MetricsRegistry;

  void sample(std::int64_t v);
  void append_sample(Sample s);
  void decimate();

  std::int64_t value_ = 0;
  std::int64_t peak_ = 0;
  std::shared_ptr<const std::function<std::int64_t()>> clock_;
  std::vector<Sample> series_;
  std::uint64_t stride_ = 1;  // record every stride-th change
  std::uint64_t ticks_ = 0;
};

/// Log-linear histogram over non-negative integer samples (nanoseconds,
/// bytes, ...). Negative samples clamp to zero.
class Histogram {
 public:
  static constexpr int kSubBuckets = 16;  // per power-of-2 magnitude

  void record(std::int64_t sample);

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  double mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  /// Value at percentile `p` in [0, 100]. Returns 0 when empty.
  std::uint64_t percentile(double p) const;

  void merge_from(const Histogram& other);
  void reset();

 private:
  static std::size_t bucket_index(std::uint64_t v);
  static std::uint64_t bucket_upper(std::size_t index);

  // Values clamp to int64 max => bit_width <= 63 => max index 959.
  static constexpr std::size_t kBucketCount = 960;

  std::vector<std::uint64_t> buckets_;  // allocated lazily on first record
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t sum_ = 0;
};

/// Owns every instrument, keyed by dotted name ("bft.3.commits_sent").
/// Instruments are created on first lookup and have stable addresses for the
/// registry's lifetime (std::map nodes never move), so callers cache the
/// returned references.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Installs the time source gauges stamp their series samples with
  /// (simulation nanoseconds; the Hub wires this to the simulator clock).
  /// Applies to existing gauges and to gauges created later. Without a
  /// clock, gauges track value/peak only and record no series.
  void set_clock(std::function<std::int64_t()> clock);

  /// Value of a counter, or 0 when it has never been touched. Lets views
  /// read metrics without creating them.
  std::uint64_t counter_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Zeroes every instrument, keeping registrations (and addresses) intact.
  void reset();

  /// Folds another registry into this one (bench aggregation across
  /// independently simulated systems).
  void merge_from(const MetricsRegistry& other);

  // Sorted iteration for exporters; std::map keeps the order deterministic.
  const std::map<std::string, Counter, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, Gauge, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const { return histograms_; }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::shared_ptr<const std::function<std::int64_t()>> clock_;
};

}  // namespace itdos::telemetry
