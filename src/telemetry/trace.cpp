#include "telemetry/trace.hpp"

#include <algorithm>

namespace itdos::telemetry {

std::string_view trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kBftRequest:
      return "bft.request";
    case TraceKind::kBftPrePrepare:
      return "bft.pre_prepare";
    case TraceKind::kBftPrepare:
      return "bft.prepare";
    case TraceKind::kBftCommit:
      return "bft.commit";
    case TraceKind::kBftExecute:
      return "bft.execute";
    case TraceKind::kBftCheckpoint:
      return "bft.checkpoint";
    case TraceKind::kBftViewChange:
      return "bft.view_change";
    case TraceKind::kBftNewView:
      return "bft.new_view";
    case TraceKind::kBftStateTransfer:
      return "bft.state_transfer";
    case TraceKind::kSmiopConnectStart:
      return "smiop.connect_start";
    case TraceKind::kSmiopConnectOpen:
      return "smiop.connect_open";
    case TraceKind::kSmiopRequestSent:
      return "smiop.request_sent";
    case TraceKind::kSmiopReplyDecided:
      return "smiop.reply_decided";
    case TraceKind::kSmiopEpochAdvance:
      return "smiop.epoch_advance";
    case TraceKind::kSmiopFault:
      return "smiop.fault";
    case TraceKind::kVoteOpen:
      return "vote.open";
    case TraceKind::kVoteDecide:
      return "vote.decide";
    case TraceKind::kVoteDissent:
      return "vote.dissent";
    case TraceKind::kGmOpenRequest:
      return "gm.open_request";
    case TraceKind::kGmResend:
      return "gm.resend";
    case TraceKind::kGmChangeRequest:
      return "gm.change_request";
    case TraceKind::kGmExpulsion:
      return "gm.expulsion";
    case TraceKind::kGmRekey:
      return "gm.rekey";
    case TraceKind::kGmMembershipUpdate:
      return "gm.membership_update";
    case TraceKind::kQueueAppend:
      return "queue.append";
    case TraceKind::kQueueGc:
      return "queue.gc";
    case TraceKind::kQueueLaggard:
      return "queue.laggard";
    case TraceKind::kQueueBroken:
      return "queue.broken";
    case TraceKind::kNetDrop:
      return "net.drop";
    case TraceKind::kViewStart:
      return "view.start";
    case TraceKind::kViewEnd:
      return "view.end";
    case TraceKind::kEpochRekey:
      return "epoch.rekey";
    case TraceKind::kFaultInject:
      return "fault.inject";
    case TraceKind::kOracleViolation:
      return "oracle.violation";
    case TraceKind::kRecoveryStart:
      return "recovery.start";
    case TraceKind::kRecoveryComplete:
      return "recovery.complete";
    case TraceKind::kRecoveryAbort:
      return "recovery.abort";
    case TraceKind::kRecoveryProactive:
      return "recovery.proactive";
    case TraceKind::kAdmissionShed:
      return "admission.shed";
    case TraceKind::kControlAdjust:
      return "control.adjust";
    case TraceKind::kAdversaryRetarget:
      return "adversary.retarget";
    case TraceKind::kGmPolicy:
      return "gm.policy";
  }
  return "unknown";
}

void Tracer::record(SimTime t, TraceKind kind, NodeId node, std::uint64_t trace, std::uint64_t a,
                    std::uint64_t b) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{t, kind, node, trace, a, b});
}

std::size_t Tracer::count(TraceKind kind) const {
  return static_cast<std::size_t>(std::count_if(
      events_.begin(), events_.end(), [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::vector<TraceEvent> Tracer::for_trace(std::uint64_t trace) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.trace == trace) out.push_back(e);
  }
  return out;
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
}

std::string Tracer::export_jsonl() const {
  std::string out;
  out.reserve(events_.size() * 64);
  for (const auto& e : events_) {
    out += "{\"t\":";
    out += std::to_string(e.t.ns);
    out += ",\"ev\":\"";
    out += trace_kind_name(e.kind);
    out += "\",\"node\":";
    out += std::to_string(e.node.value);
    out += ",\"trace\":";
    out += std::to_string(e.trace);
    out += ",\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += "}\n";
  }
  return out;
}

}  // namespace itdos::telemetry
