// The causal-tracing half of the telemetry seam. Every protocol layer emits
// TraceEvents through one Tracer; events carry a request-scoped trace id so a
// single client invocation can be followed from the GIOP request through BFT
// total ordering to the voted reply.
//
// Determinism is load-bearing (src/net/sim.hpp): events are recorded in
// simulation order with integer-only payloads, so the exported JSON-lines
// stream is byte-identical across runs with the same seed — which makes the
// trace stream itself a regression oracle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace itdos::telemetry {

enum class TraceKind : std::uint8_t {
  // Castro-Liskov BFT ordering (src/bft/replica.cpp).
  kBftRequest,        // a=seq of assignment (0 until ordered)
  kBftPrePrepare,     // a=view, b=seq
  kBftPrepare,        // a=view, b=seq
  kBftCommit,         // a=view, b=seq
  kBftExecute,        // a=seq
  kBftCheckpoint,     // a=seq
  kBftViewChange,     // a=new view
  kBftNewView,        // a=view
  kBftStateTransfer,  // a=snapshot seq
  // SMIOP virtual connections and epochs (src/itdos/smiop.cpp).
  kSmiopConnectStart,  // a=target domain
  kSmiopConnectOpen,   // a=connection, b=key epoch
  kSmiopRequestSent,   // a=sealed bytes, b=fragments
  kSmiopReplyDecided,  // a=round latency ns
  kSmiopEpochAdvance,  // a=connection, b=new key epoch
  kSmiopFault,         // a=suspected element node
  // Middleware voting (src/itdos/voting.cpp).
  kVoteOpen,     // vote opened for a request round
  kVoteDecide,   // a=supporting ballots, b=total ballots
  kVoteDissent,  // a=dissenting replica node
  // Group Manager (src/itdos/group_manager.cpp).
  kGmOpenRequest,    // a=client domain, b=server domain
  kGmResend,         // a=connection epoch
  kGmChangeRequest,  // a=accused node, b=connection
  kGmExpulsion,      // a=expelled node, b=1 when a recovery retirement
  kGmRekey,          // a=connection, b=new epoch
  kGmMembershipUpdate,  // a=admitted node, b=new membership epoch
  // Queue state machine (src/itdos/queue.cpp).
  kQueueAppend,   // a=queue index
  kQueueGc,       // a=new base index, b=entries collected
  kQueueLaggard,  // a=laggard node
  kQueueBroken,   // virtual synchrony lost
  // Simulated network (src/net/network.cpp).
  kNetDrop,  // a=destination node
  // Span events segmenting a node's timeline (fault forensics cut on these).
  kViewStart,   // a=view now active on this replica
  kViewEnd,     // a=view that just ended on this replica
  kEpochRekey,  // a=connection, b=key epoch now newest at this party
  // Fault-injection subsystem (src/fault/).
  kFaultInject,      // a=fault::InjectKind, b=kind-specific detail
  kOracleViolation,  // a=fault::Violation::Kind, b=kind-specific detail
  // Proactive recovery & replacement (src/recovery/).
  kRecoveryStart,      // a=retired node, b=attempt number
  kRecoveryComplete,   // a=admitted node, b=MTTR ns
  kRecoveryAbort,      // a=failed fresh node, b=attempt number
  kRecoveryProactive,  // a=domain, b=rank scheduled for rejuvenation
  // Admission control & feedback response (src/itdos/queue.cpp, src/control/).
  kAdmissionShed,      // a=queue depth at shed, b=configured max depth
  kControlAdjust,      // a=new rejuvenation period ns, b=new laggard strikes
  kAdversaryRetarget,  // a=new target node, b=observed queue depth there
  kGmPolicy,           // a=laggard strikes now in force
};

std::string_view trace_kind_name(TraceKind kind);

/// One protocol event. Integer-only so export is trivially byte-stable.
struct TraceEvent {
  SimTime t{};
  TraceKind kind{};
  NodeId node{};           // the node that emitted the event
  std::uint64_t trace = 0;  // request-scoped id; 0 = not request-bound
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  bool operator==(const TraceEvent&) const = default;
};

/// The request-scoped id threaded from client request to voted reply:
/// derived from (virtual connection, per-connection request id).
constexpr std::uint64_t trace_id(ConnectionId conn, RequestId rid) {
  return (conn.value << 24) | (rid.value & ((std::uint64_t{1} << 24) - 1));
}

/// Bounded in-memory event log with a query API. When the buffer fills,
/// further events are counted (dropped()) but not stored, so long soaks
/// cannot exhaust memory.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 18;

  explicit Tracer(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  void record(SimTime t, TraceKind kind, NodeId node, std::uint64_t trace, std::uint64_t a = 0,
              std::uint64_t b = 0);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t count(TraceKind kind) const;
  std::vector<TraceEvent> for_trace(std::uint64_t trace) const;
  std::uint64_t dropped() const { return dropped_; }

  void clear();

  /// One JSON object per line, fields in fixed order, integers only:
  /// {"t":3000,"ev":"bft.commit","node":4,"trace":16777217,"a":0,"b":1}
  std::string export_jsonl() const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace itdos::telemetry
