// The pluggable-protocol seam (TAO Pluggable Protocols [27]). This is the
// exact integration point the paper uses: "The TAO Pluggable Protocol
// provides an interface to the ORB for ITDOS to layer traditional socket
// semantics on the Castro-Liskov BFT protocol" (§3.3).
//
// Two implementations exist in this repository:
//   * orb::IiopProtocol  — plain GIOP over simulated unicast (the
//     unreplicated baseline, bench E7);
//   * itdos::SmiopProtocol — the paper's Secure Multicast Inter-ORB
//     Protocol: virtual connections over BFT multicast with voting and
//     per-connection communication keys.
#pragma once

#include <functional>
#include <memory>

#include "cdr/giop.hpp"
#include "orb/object.hpp"

namespace itdos::orb {

/// One virtual connection from this client to a target (possibly
/// replicated) server. Connections carry at most one outstanding request at
/// a time (§3.6); the Orb serializes per connection.
class ClientConnection {
 public:
  using Completion = std::function<void(Result<cdr::ReplyMessage>)>;

  virtual ~ClientConnection() = default;

  virtual ConnectionId id() const = 0;

  /// Sends one request; `done` fires with the (voted/validated) reply.
  virtual void send_request(cdr::RequestMessage request, Completion done) = 0;
};

class PluggableProtocol {
 public:
  using ConnectCompletion =
      std::function<void(Result<std::shared_ptr<ClientConnection>>)>;

  virtual ~PluggableProtocol() = default;

  virtual std::string_view name() const = 0;

  /// Resolves the replication domain that hosts `ref`. The Orb calls this
  /// before choosing a connection, so protocols can make references
  /// LOCATION TRANSPARENT: SMIOP resolves routed refs (domain 0) through
  /// the system directory's shard map; the default is the identity (the ref
  /// already names its domain). Must be deterministic — replicated caller
  /// elements resolve independently and their nested-invocation copies must
  /// all land on the same target.
  virtual DomainId resolve(const ObjectRef& ref) const { return ref.domain; }

  /// Establishes (or fails to establish) a connection to the domain that
  /// hosts `ref`. Asynchronous: ITDOS connection establishment runs the
  /// Figure-3 exchange with the Group Manager.
  virtual void connect(const ObjectRef& ref, ConnectCompletion done) = 0;
};

}  // namespace itdos::orb
