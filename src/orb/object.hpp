// Object references. In ITDOS "the object reference contains the address of
// the replication domain in which that service is located" (§3.3) — a ref
// names a domain, an object key within it, and the interface (carried in
// requests for the Group Manager's ORB-less voting, §3.6).
#pragma once

#include <string>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace itdos::orb {

struct ObjectRef {
  DomainId domain;
  ObjectId key;
  std::string interface_name;

  bool operator==(const ObjectRef&) const = default;

  /// Stringified reference ("corbaloc:itdos:<domain>/<key>#<interface>") —
  /// the IOR-equivalent a client can be handed out of band.
  std::string to_string() const {
    return "corbaloc:itdos:" + domain.to_string() + "/" + key.to_string() + "#" +
           interface_name;
  }

  /// Parses the stringified form; kMalformedMessage on anything else.
  static Result<ObjectRef> from_string(std::string_view text);
};

}  // namespace itdos::orb
