// IIOP-style transport: plain GIOP over simulated unicast, no replication,
// no voting, no encryption. This is the "traditional CORBA" baseline the
// intrusion-tolerance overhead benchmarks (E7) compare against, and a second
// PluggableProtocol implementation proving the seam is real.
#pragma once

#include <map>

#include "net/process.hpp"
#include "orb/orb.hpp"

namespace itdos::orb {

/// Name service: which node serves a domain over IIOP.
using IiopDirectory = std::map<DomainId, NodeId>;

/// Server endpoint: receives GIOP requests, upcalls into the Orb's adapter,
/// returns GIOP replies. Nested invocations go back out through the same
/// Orb's client machinery.
class IiopServer : public net::Process {
 public:
  IiopServer(net::Network& net, NodeId id, Orb& orb);
  ~IiopServer() override;

  std::uint64_t requests_served() const { return requests_served_; }

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  class Context;
  Orb& orb_;
  std::unique_ptr<Context> context_;
  std::uint64_t requests_served_ = 0;
};

/// Client-side protocol: one shared endpoint demultiplexing replies to
/// per-domain connections.
class IiopProtocol : public PluggableProtocol, public net::Process {
 public:
  IiopProtocol(net::Network& net, NodeId client_node, IiopDirectory directory,
               std::int64_t request_timeout_ns = seconds(5));

  std::string_view name() const override { return "iiop"; }
  void connect(const ObjectRef& ref, ConnectCompletion done) override;

 protected:
  void on_packet(const net::Packet& packet) override;

 private:
  class Connection;
  friend class Connection;

  struct PendingReply {
    ClientConnection::Completion done;
    net::EventHandle timeout;
  };

  void send_request_to(NodeId server, cdr::RequestMessage request,
                       ClientConnection::Completion done);

  IiopDirectory directory_;
  std::int64_t request_timeout_ns_;
  std::uint64_t next_connection_id_ = 1;
  std::map<std::pair<NodeId, std::uint64_t>, PendingReply> pending_;
};

}  // namespace itdos::orb
