#include "orb/adapter.hpp"

namespace itdos::orb {

ObjectRef ObjectAdapter::activate(std::shared_ptr<Servant> servant) {
  while (servants_.contains(next_key_)) next_key_ = ObjectId(next_key_.value + 1);
  auto ref = activate_with_key(next_key_, std::move(servant));
  return std::move(ref).take();  // fresh key cannot collide
}

Result<ObjectRef> ObjectAdapter::activate_with_key(ObjectId key,
                                                   std::shared_ptr<Servant> servant) {
  if (servants_.contains(key)) {
    return error(Errc::kAlreadyExists, "object key already active");
  }
  ObjectRef ref;
  ref.domain = domain_;
  ref.key = key;
  ref.interface_name = servant->interface_name();
  servants_[key] = std::move(servant);
  return ref;
}

Result<std::shared_ptr<Servant>> ObjectAdapter::find(ObjectId key) const {
  const auto it = servants_.find(key);
  if (it == servants_.end()) {
    return error(Errc::kNotFound, "no active object with key " + key.to_string());
  }
  return it->second;
}

namespace {

/// Adapts the one-shot completion callback to the ReplySink the servant sees.
class CallbackReplySink : public ReplySink {
 public:
  CallbackReplySink(RequestId request_id, std::function<void(cdr::ReplyMessage)> done)
      : request_id_(request_id), done_(std::move(done)) {}

  void reply(Result<cdr::Value> result) override {
    if (!done_) return;  // defensive: ignore double replies
    cdr::ReplyMessage msg;
    msg.request_id = request_id_;
    if (result.is_ok()) {
      msg.status = cdr::ReplyStatus::kNoException;
      msg.result = std::move(result).take();
    } else {
      msg.status = result.status().code() == Errc::kPermissionDenied ||
                           result.status().code() == Errc::kInvalidArgument
                       ? cdr::ReplyStatus::kUserException
                       : cdr::ReplyStatus::kSystemException;
      msg.exception_detail = result.status().to_string();
      msg.result = cdr::Value::void_();
    }
    auto done = std::move(done_);
    done_ = nullptr;
    done(std::move(msg));
  }

 private:
  RequestId request_id_;
  std::function<void(cdr::ReplyMessage)> done_;
};

}  // namespace

void ObjectAdapter::dispatch(const cdr::RequestMessage& request, ServerContext& context,
                             std::function<void(cdr::ReplyMessage)> done) {
  auto sink = std::make_shared<CallbackReplySink>(request.request_id, std::move(done));
  const Result<std::shared_ptr<Servant>> servant = find(request.object_key);
  if (!servant.is_ok()) {
    sink->reply(error(Errc::kNotFound, "OBJECT_NOT_EXIST: key " +
                                           request.object_key.to_string()));
    return;
  }
  if (servant.value()->interface_name() != request.interface_name) {
    sink->reply(error(Errc::kFailedPrecondition,
                      "INTF_REPOS mismatch: expected " +
                          servant.value()->interface_name() + " got " +
                          request.interface_name));
    return;
  }
  servant.value()->dispatch(request.operation, request.arguments, context,
                            std::move(sink));
}

}  // namespace itdos::orb
