#include "orb/orb.hpp"

#include "common/log.hpp"

namespace itdos::orb {

namespace {
constexpr std::string_view kLog = "orb";
}

Orb::Orb(DomainId local_domain, std::unique_ptr<PluggableProtocol> protocol)
    : local_domain_(local_domain),
      adapter_(local_domain),
      protocol_(std::move(protocol)) {}

void Orb::invoke(const ObjectRef& ref, const std::string& operation,
                 cdr::Value arguments, InvokeCompletion done) {
  // Resolve the hosting domain before touching the connection cache: a
  // routed ref (shard routing) and a concrete ref to the same domain must
  // share one channel, and the whole cache is keyed by resolved domain.
  ObjectRef target = ref;
  target.domain = protocol_->resolve(ref);
  const DomainId domain = target.domain;
  DomainChannel& channel = channels_[domain];
  channel.queue.push_back(
      PendingInvoke{std::move(target), operation, std::move(arguments), std::move(done)});
  if (channel.connection == nullptr && !channel.connecting) {
    start_connect(domain);
  } else {
    pump(domain);
  }
}

void Orb::invalidate_connection(DomainId domain) {
  const auto it = channels_.find(domain);
  if (it == channels_.end()) return;
  it->second.connection.reset();
  it->second.busy = false;
  // Queued invocations stay queued; the next invoke (or pump) reconnects.
  if (!it->second.queue.empty() && !it->second.connecting) start_connect(domain);
}

void Orb::start_connect(DomainId domain) {
  DomainChannel& channel = channels_[domain];
  channel.connecting = true;
  // Any ref to the domain identifies it for connection purposes.
  const ObjectRef& ref = channel.queue.front().ref;
  protocol_->connect(ref, [this, domain](Result<std::shared_ptr<ClientConnection>> r) {
    DomainChannel& ch = channels_[domain];
    ch.connecting = false;
    if (!r.is_ok()) {
      ++stats_.connect_failures;
      ITDOS_WARN(kLog) << "connect to domain " << domain.to_string()
                       << " failed: " << r.status().to_string();
      // Fail everything queued; callers may retry.
      auto queue = std::move(ch.queue);
      ch.queue.clear();
      for (PendingInvoke& p : queue) p.done(r.status());
      return;
    }
    ++stats_.connections_established;
    ch.connection = std::move(r).take();
    pump(domain);
  });
}

void Orb::pump(DomainId domain) {
  DomainChannel& channel = channels_[domain];
  if (channel.connection == nullptr || channel.busy || channel.queue.empty()) return;
  channel.busy = true;
  PendingInvoke invoke = std::move(channel.queue.front());
  channel.queue.pop_front();

  cdr::RequestMessage request;
  request.request_id = RequestId(channel.next_request_id++);
  request.response_expected = true;
  request.object_key = invoke.ref.key;
  request.operation = invoke.operation;
  request.interface_name = invoke.ref.interface_name;
  request.arguments = std::move(invoke.arguments);
  ++stats_.requests_sent;

  InvokeCompletion done = std::move(invoke.done);
  channel.connection->send_request(
      std::move(request),
      [this, domain, done = std::move(done)](Result<cdr::ReplyMessage> r) {
        DomainChannel& ch = channels_[domain];
        ch.busy = false;
        if (!r.is_ok()) {
          ++stats_.transport_errors;
          done(r.status());
        } else {
          cdr::ReplyMessage reply = std::move(r).take();
          switch (reply.status) {
            case cdr::ReplyStatus::kNoException:
              ++stats_.replies_ok;
              done(std::move(reply.result));
              break;
            case cdr::ReplyStatus::kUserException:
              ++stats_.replies_exception;
              done(error(Errc::kPermissionDenied,
                         "user exception: " + reply.exception_detail));
              break;
            case cdr::ReplyStatus::kSystemException:
              ++stats_.replies_exception;
              // Admission-control sheds surface as a dedicated error code so
              // open-loop callers can tell backpressure from server faults.
              if (reply.exception_detail.starts_with("ITDOS-OVERLOAD")) {
                done(error(Errc::kResourceExhausted,
                           "overload: " + reply.exception_detail));
              } else {
                done(error(Errc::kInternal,
                           "system exception: " + reply.exception_detail));
              }
              break;
          }
        }
        pump(domain);
      });
}

}  // namespace itdos::orb
