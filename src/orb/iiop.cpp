#include "orb/iiop.hpp"

namespace itdos::orb {

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Nested invocations from IIOP upcalls flow back through the server's Orb.
class IiopServer::Context : public ServerContext {
 public:
  explicit Context(Orb& orb) : orb_(orb) {}

  ConnectionId connection() const override { return current_connection_; }
  void set_connection(ConnectionId id) { current_connection_ = id; }

  void invoke_nested(const ObjectRef& target, const std::string& operation,
                     cdr::Value arguments, InvokeCompletion done) override {
    orb_.invoke(target, operation, std::move(arguments), std::move(done));
  }

 private:
  Orb& orb_;
  ConnectionId current_connection_;
};

IiopServer::IiopServer(net::Network& net, NodeId id, Orb& orb)
    : Process(net, id), orb_(orb), context_(std::make_unique<Context>(orb)) {}

IiopServer::~IiopServer() = default;

void IiopServer::on_packet(const net::Packet& packet) {
  Result<cdr::GiopMessage> parsed = cdr::parse_giop(packet.payload);
  if (!parsed.is_ok()) return;  // hostile bytes; drop
  if (!std::holds_alternative<cdr::RequestMessage>(parsed.value())) return;
  const auto request = std::get<cdr::RequestMessage>(std::move(parsed).take());
  ++requests_served_;
  // IIOP has one implicit connection per peer; identify it by the peer node.
  context_->set_connection(ConnectionId(packet.from.value));
  const NodeId reply_to = packet.from;
  orb_.adapter().dispatch(request, *context_, [this, reply_to](cdr::ReplyMessage reply) {
    send_to(reply_to, cdr::encode_giop(cdr::GiopMessage(std::move(reply))));
  });
}

// ---------------------------------------------------------------------------
// Client protocol
// ---------------------------------------------------------------------------

class IiopProtocol::Connection : public ClientConnection {
 public:
  Connection(IiopProtocol& protocol, ConnectionId id, NodeId server)
      : protocol_(protocol), id_(id), server_(server) {}

  ConnectionId id() const override { return id_; }

  void send_request(cdr::RequestMessage request, Completion done) override {
    protocol_.send_request_to(server_, std::move(request), std::move(done));
  }

 private:
  IiopProtocol& protocol_;
  ConnectionId id_;
  NodeId server_;
};

IiopProtocol::IiopProtocol(net::Network& net, NodeId client_node,
                           IiopDirectory directory, std::int64_t request_timeout_ns)
    : Process(net, client_node),
      directory_(std::move(directory)),
      request_timeout_ns_(request_timeout_ns) {}

void IiopProtocol::connect(const ObjectRef& ref, ConnectCompletion done) {
  const auto it = directory_.find(ref.domain);
  if (it == directory_.end()) {
    done(error(Errc::kNotFound, "no IIOP endpoint for domain " + ref.domain.to_string()));
    return;
  }
  done(std::shared_ptr<ClientConnection>(
      std::make_shared<Connection>(*this, ConnectionId(next_connection_id_++),
                                   it->second)));
}

void IiopProtocol::send_request_to(NodeId server, cdr::RequestMessage request,
                                   ClientConnection::Completion done) {
  const std::uint64_t request_id = request.request_id.value;
  const auto key = std::make_pair(server, request_id);
  PendingReply pending;
  pending.done = std::move(done);
  pending.timeout = set_timer(request_timeout_ns_, [this, key] {
    const auto it = pending_.find(key);
    if (it == pending_.end()) return;
    auto completion = std::move(it->second.done);
    pending_.erase(it);
    completion(error(Errc::kUnavailable, "IIOP request timed out"));
  });
  pending_.emplace(key, std::move(pending));
  send_to(server, cdr::encode_giop(cdr::GiopMessage(std::move(request))));
}

void IiopProtocol::on_packet(const net::Packet& packet) {
  Result<cdr::GiopMessage> parsed = cdr::parse_giop(packet.payload);
  if (!parsed.is_ok()) return;
  if (!std::holds_alternative<cdr::ReplyMessage>(parsed.value())) return;
  auto reply = std::get<cdr::ReplyMessage>(std::move(parsed).take());
  const auto key = std::make_pair(packet.from, reply.request_id.value);
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;  // late or unsolicited
  cancel_timer(it->second.timeout);
  auto completion = std::move(it->second.done);
  pending_.erase(it);
  completion(std::move(reply));
}

}  // namespace itdos::orb
