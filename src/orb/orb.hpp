// The ORB core: client-side invocation machinery over a pluggable protocol.
//
// Responsibilities (mirroring the slice of TAO the paper builds on):
//   * connection cache, one per target domain — "All client interactions
//     with separate objects hosted by a particular server can use the same
//     connection. Since connection-establishment is a fairly heavyweight
//     process, connection reuse enhances performance" (§3.4);
//   * strictly-increasing request ids per connection and one outstanding
//     request at a time (§3.6) — further requests queue;
//   * mapping GIOP reply status back to Result<Value>.
#pragma once

#include <deque>
#include <map>

#include "orb/adapter.hpp"
#include "orb/transport.hpp"

namespace itdos::orb {

struct OrbStats {
  std::uint64_t connections_established = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_exception = 0;
  std::uint64_t transport_errors = 0;
};

class Orb {
 public:
  using InvokeCompletion = std::function<void(Result<cdr::Value>)>;

  Orb(DomainId local_domain, std::unique_ptr<PluggableProtocol> protocol);

  ObjectAdapter& adapter() { return adapter_; }
  const ObjectAdapter& adapter() const { return adapter_; }
  PluggableProtocol& protocol() { return *protocol_; }
  const OrbStats& stats() const { return stats_; }

  /// Invokes `operation` on the object `ref` with `arguments`. The hosting
  /// domain is resolved through the protocol (routed refs become concrete
  /// here); the cached connection to it is reused or established. Exceptions carried
  /// in the reply surface as error Status (kPermissionDenied for user
  /// exceptions, kInternal for system exceptions).
  void invoke(const ObjectRef& ref, const std::string& operation, cdr::Value arguments,
              InvokeCompletion done);

  /// Drops the cached connection to a domain (used when rekeying evicts us,
  /// or on transport failure; the next invoke reconnects).
  void invalidate_connection(DomainId domain);

 private:
  struct PendingInvoke {
    ObjectRef ref;
    std::string operation;
    cdr::Value arguments;
    InvokeCompletion done;
  };

  struct DomainChannel {
    std::shared_ptr<ClientConnection> connection;  // null while connecting
    bool connecting = false;
    bool busy = false;  // one outstanding request per connection (§3.6)
    std::uint64_t next_request_id = 1;
    std::deque<PendingInvoke> queue;
  };

  void start_connect(DomainId domain);
  void pump(DomainId domain);

  DomainId local_domain_;
  ObjectAdapter adapter_;
  std::unique_ptr<PluggableProtocol> protocol_;
  std::map<DomainId, DomainChannel> channels_;
  OrbStats stats_;
};

}  // namespace itdos::orb
