#include "orb/object.hpp"

#include <charconv>

namespace itdos::orb {

namespace {
constexpr std::string_view kScheme = "corbaloc:itdos:";

Result<std::uint64_t> parse_number(std::string_view text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return error(Errc::kMalformedMessage, "bad number in object reference");
  }
  return value;
}
}  // namespace

Result<ObjectRef> ObjectRef::from_string(std::string_view text) {
  if (text.substr(0, kScheme.size()) != kScheme) {
    return error(Errc::kMalformedMessage, "object reference must start with corbaloc:itdos:");
  }
  text.remove_prefix(kScheme.size());
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return error(Errc::kMalformedMessage, "object reference missing '/'");
  }
  const std::size_t hash = text.find('#', slash + 1);
  if (hash == std::string_view::npos) {
    return error(Errc::kMalformedMessage, "object reference missing '#'");
  }
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t domain, parse_number(text.substr(0, slash)));
  ITDOS_ASSIGN_OR_RETURN(std::uint64_t key,
                         parse_number(text.substr(slash + 1, hash - slash - 1)));
  const std::string_view interface_name = text.substr(hash + 1);
  if (interface_name.empty()) {
    return error(Errc::kMalformedMessage, "object reference has empty interface name");
  }
  ObjectRef ref;
  ref.domain = DomainId(domain);
  ref.key = ObjectId(key);
  ref.interface_name = std::string(interface_name);
  return ref;
}

}  // namespace itdos::orb
