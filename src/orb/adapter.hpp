// Object adapter: activation table mapping object keys to servants and the
// upcall path from a parsed GIOP request to a servant dispatch (the POA role
// in TAO).
//
// Replication granularity is the whole server process (§3.4): the adapter is
// the unit that gets replicated, complete with every object it hosts.
#pragma once

#include <map>
#include <memory>

#include "cdr/giop.hpp"
#include "orb/servant.hpp"

namespace itdos::orb {

class ObjectAdapter {
 public:
  explicit ObjectAdapter(DomainId domain) : domain_(domain) {}

  DomainId domain() const { return domain_; }

  /// Activates a servant under a fresh object key and returns its reference.
  ObjectRef activate(std::shared_ptr<Servant> servant);

  /// Activates under an explicit key (deterministic across replicas —
  /// heterogeneous implementations of the same service must agree on keys).
  Result<ObjectRef> activate_with_key(ObjectId key, std::shared_ptr<Servant> servant);

  Result<std::shared_ptr<Servant>> find(ObjectId key) const;

  std::size_t object_count() const { return servants_.size(); }

  /// All active servants (used by element replacement to bundle state).
  const std::map<ObjectId, std::shared_ptr<Servant>>& servants() const {
    return servants_;
  }

  /// Performs the upcall for a parsed request. Produces the ReplyMessage via
  /// `done` (possibly after nested invocations). Unknown objects, interface
  /// mismatches and servant exceptions become exception replies, never
  /// transport errors — a Byzantine client must not crash the server.
  void dispatch(const cdr::RequestMessage& request, ServerContext& context,
                std::function<void(cdr::ReplyMessage)> done);

 private:
  DomainId domain_;
  ObjectId next_key_{1};
  std::map<ObjectId, std::shared_ptr<Servant>> servants_;
};

}  // namespace itdos::orb
