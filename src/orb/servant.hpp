// Servants: application objects hosted by a server. The dispatch interface
// is deliberately dynamic (operation name + unmarshalled Value arguments):
// it is what a TAO skeleton compiles down to, and it keeps the voter fully
// type-agnostic.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cdr/value.hpp"
#include "orb/object.hpp"

namespace itdos::orb {

/// Context passed to a servant during an upcall. Carries the facility to
/// make nested invocations ("servers can, in turn, be clients", §2). The
/// continuation style reflects the paper's two-thread model: a nested call's
/// reply arrives over the ordered transport while the original upcall is
/// logically suspended.
class ServerContext {
 public:
  using InvokeCompletion = std::function<void(Result<cdr::Value>)>;

  virtual ~ServerContext() = default;

  /// Identity of the (possibly replicated) caller's connection.
  virtual ConnectionId connection() const = 0;

  /// Issues a nested invocation on another object. The completion runs when
  /// the (voted) reply arrives; the original upcall's reply must not be
  /// produced until then (see Servant::dispatch).
  virtual void invoke_nested(const ObjectRef& target, const std::string& operation,
                             cdr::Value arguments, InvokeCompletion done) = 0;
};

/// The result of an upcall: either an immediate reply or a promise that the
/// servant will complete it later (after nested invocations). Passed as a
/// shared_ptr so a servant awaiting a nested reply can keep it alive in the
/// continuation.
class ReplySink {
 public:
  virtual ~ReplySink() = default;
  virtual void reply(Result<cdr::Value> result) = 0;
};

using ReplySinkPtr = std::shared_ptr<ReplySink>;

class Servant {
 public:
  virtual ~Servant() = default;

  /// The full interface repository id, e.g. "IDL:bank/Account:1.0".
  virtual std::string interface_name() const = 0;

  /// Handles one operation. Implementations must be deterministic (§2) and
  /// must call `sink->reply(...)` exactly once — synchronously, or after any
  /// nested invocations complete.
  virtual void dispatch(const std::string& operation, const cdr::Value& arguments,
                        ServerContext& context, ReplySinkPtr sink) = 0;

  /// Optional persistence hooks used by element replacement (the paper's §4
  /// future-work item): a replacement element installs peer state bundles
  /// via these. Servants that do not override them make their domain
  /// non-replaceable (kFailedPrecondition), which is safe but less
  /// available.
  virtual Result<Bytes> save_state() const {
    return error(Errc::kFailedPrecondition, "servant does not support persistence");
  }
  virtual Status load_state(ByteView state) {
    (void)state;
    return error(Errc::kFailedPrecondition, "servant does not support persistence");
  }
};

}  // namespace itdos::orb
