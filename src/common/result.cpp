#include "common/result.hpp"

namespace itdos {

std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::kOk: return "OK";
    case Errc::kInvalidArgument: return "kInvalidArgument";
    case Errc::kMalformedMessage: return "kMalformedMessage";
    case Errc::kAuthFailure: return "kAuthFailure";
    case Errc::kNotFound: return "kNotFound";
    case Errc::kAlreadyExists: return "kAlreadyExists";
    case Errc::kUnavailable: return "kUnavailable";
    case Errc::kPermissionDenied: return "kPermissionDenied";
    case Errc::kResourceExhausted: return "kResourceExhausted";
    case Errc::kFailedPrecondition: return "kFailedPrecondition";
    case Errc::kInternal: return "kInternal";
  }
  return "<?>";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(errc_name(code_));
  if (!detail_.empty()) {
    out += ": ";
    out += detail_;
  }
  return out;
}

}  // namespace itdos
