#include "common/bytes.hpp"

#include <cassert>

namespace itdos {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

std::string hex_encode(ByteView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool constant_time_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void xor_into(Bytes& dst, ByteView src) {
  assert(dst.size() == src.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

}  // namespace itdos
