#include "common/rng.hpp"

#include <cassert>

namespace itdos {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi].
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace itdos
