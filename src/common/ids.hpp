// Strongly-typed identifiers. A NodeId is never accidentally compared with a
// DomainId; each id is a distinct type with value semantics and hashing.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace itdos {

namespace detail {
/// CRTP-free strong integer id. Tag makes each instantiation a unique type.
template <typename Tag>
struct StrongId {
  std::uint64_t value = 0;

  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value(v) {}

  constexpr auto operator<=>(const StrongId&) const = default;

  std::string to_string() const { return std::to_string(value); }
};
}  // namespace detail

/// A process endpoint on the simulated network (one per replica / client /
/// group-manager element / proxy).
using NodeId = detail::StrongId<struct NodeIdTag>;

/// A replication domain (a set of replicas acting as one logical server),
/// including the Group Manager's own domain.
using DomainId = detail::StrongId<struct DomainIdTag>;

/// A virtual connection between two (possibly replicated) parties (§3.3).
using ConnectionId = detail::StrongId<struct ConnectionIdTag>;

/// Per-connection, strictly increasing request identifier (§3.6).
using RequestId = detail::StrongId<struct RequestIdTag>;

/// A CORBA object within a replication domain.
using ObjectId = detail::StrongId<struct ObjectIdTag>;

/// DomainId 0 is reserved. As a PARTY domain it marks a singleton
/// (unreplicated) client — no replication domain backs it, so the GM keys
/// its connections to a single endpoint and replies need no vote quorum
/// from it. As an ObjectRef TARGET it marks a routed reference resolved
/// through the shard map (shard::kRoutedDomain). Use these helpers instead
/// of comparing against a literal 0.
inline constexpr DomainId kSingletonDomain{0};

inline constexpr bool is_singleton_domain(DomainId domain) {
  return domain == kSingletonDomain;
}

/// BFT view number (Castro-Liskov).
using ViewId = detail::StrongId<struct ViewIdTag>;

/// BFT sequence number assigned by the primary.
using SeqNum = detail::StrongId<struct SeqNumTag>;

/// Epoch of a communication key; bumped on every rekey (§3.5).
using KeyEpoch = detail::StrongId<struct KeyEpochTag>;

/// A simulated IP-multicast group address.
using McastGroupId = detail::StrongId<struct McastGroupIdTag>;

}  // namespace itdos

namespace std {
template <typename Tag>
struct hash<itdos::detail::StrongId<Tag>> {
  size_t operator()(const itdos::detail::StrongId<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
}  // namespace std
