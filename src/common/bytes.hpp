// Byte-buffer vocabulary types shared by every ITDOS module.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace itdos {

/// Owning byte buffer. All wire formats in ITDOS serialize to/from Bytes.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using ByteView = std::span<const std::uint8_t>;

/// Builds a Bytes from a string literal / std::string payload.
Bytes to_bytes(std::string_view s);

/// Interprets a byte view as text (for diagnostics; not NUL-safe display).
std::string to_string(ByteView b);

/// Lower-case hex encoding ("deadbeef").
std::string hex_encode(ByteView b);

/// Decodes lower/upper-case hex; returns empty on malformed input of odd
/// length or non-hex characters.
Bytes hex_decode(std::string_view hex);

/// Constant-time equality for secrets (avoids early-exit timing leaks).
bool constant_time_equal(ByteView a, ByteView b);

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// XORs `src` into `dst` (dst[i] ^= src[i]); buffers must be equal length.
void xor_into(Bytes& dst, ByteView src);

}  // namespace itdos
