// Minimal leveled logger. Sinks to stderr; level is a process-wide knob so
// tests stay quiet and examples can turn on kInfo for narrative output.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace itdos {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view msg);

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { log_emit(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

#define ITDOS_LOG(level, component)                 \
  if (::itdos::log_level() <= (level))              \
  ::itdos::detail::LogLine((level), (component))

#define ITDOS_TRACE(component) ITDOS_LOG(::itdos::LogLevel::kTrace, component)
#define ITDOS_DEBUG(component) ITDOS_LOG(::itdos::LogLevel::kDebug, component)
#define ITDOS_INFO(component) ITDOS_LOG(::itdos::LogLevel::kInfo, component)
#define ITDOS_WARN(component) ITDOS_LOG(::itdos::LogLevel::kWarn, component)
#define ITDOS_ERROR(component) ITDOS_LOG(::itdos::LogLevel::kError, component)

}  // namespace itdos
