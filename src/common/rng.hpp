// Deterministic PRNG. Every stochastic element of the simulation (network
// delays, drop decisions, Byzantine mutations, workload generators) draws
// from a seeded Rng so runs are exactly reproducible.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace itdos {

/// xoshiro256** seeded via SplitMix64. Not cryptographic — simulation only.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound) — bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// True with probability p.
  bool chance(double p);

  /// n uniformly random bytes.
  Bytes next_bytes(std::size_t n);

  /// Derives an independent child stream (for per-node generators).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace itdos
