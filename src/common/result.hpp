// Result/Status error handling used across module boundaries.
//
// ITDOS modules do not throw across public interfaces (a Byzantine peer's
// garbage input is an expected event, not an exceptional one); operations
// that can fail return Status or Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace itdos {

/// Coarse error taxonomy. `detail()` on Status carries specifics.
enum class Errc {
  kOk = 0,
  kInvalidArgument,   // caller bug or malformed local input
  kMalformedMessage,  // un-parseable bytes from the network (possibly hostile)
  kAuthFailure,       // MAC/signature/share verification failed
  kNotFound,          // unknown id (connection, object, domain, ...)
  kAlreadyExists,
  kUnavailable,       // not enough correct replicas / no quorum / timeout
  kPermissionDenied,  // request valid but not authorized (e.g. bad proof)
  kResourceExhausted, // queue/watermark/window full
  kFailedPrecondition,// protocol state does not admit this event
  kInternal,          // invariant violation that was contained
};

/// Human-readable name for an error code.
std::string_view errc_name(Errc e);

/// Status: success or (code, detail message).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(Errc code, std::string detail) : code_(code), detail_(std::move(detail)) {
    assert(code != Errc::kOk && "use Status() for success");
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == Errc::kOk; }
  explicit operator bool() const { return is_ok(); }
  Errc code() const { return code_; }
  const std::string& detail() const { return detail_; }

  /// "OK" or "kAuthFailure: bad MAC on pre-prepare".
  std::string to_string() const;

 private:
  Errc code_ = Errc::kOk;
  std::string detail_;
};

inline Status error(Errc code, std::string detail) {
  return Status(code, std::move(detail));
}

/// Result<T>: T on success, Status on failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}            // NOLINT implicit
  Result(Status status) : state_(std::move(status)) {      // NOLINT implicit
    assert(!std::get<Status>(state_).is_ok() && "Result from OK status");
  }

  bool is_ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return std::get<T>(state_);
  }
  T& value() & {
    assert(is_ok());
    return std::get<T>(state_);
  }
  T&& take() && {
    assert(is_ok());
    return std::get<T>(std::move(state_));
  }

  const Status& status() const {
    static const Status kOk;
    return is_ok() ? kOk : std::get<Status>(state_);
  }

  /// value() if ok else `fallback`.
  T value_or(T fallback) const& { return is_ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> state_;
};

/// Early-return helpers (statement-expression free, portable).
#define ITDOS_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::itdos::Status itdos_status_ = (expr);          \
    if (!itdos_status_.is_ok()) return itdos_status_; \
  } while (false)

#define ITDOS_CONCAT_INNER(a, b) a##b
#define ITDOS_CONCAT(a, b) ITDOS_CONCAT_INNER(a, b)

#define ITDOS_ASSIGN_OR_RETURN(lhs, rexpr) \
  ITDOS_ASSIGN_OR_RETURN_IMPL(ITDOS_CONCAT(itdos_result_, __LINE__), lhs, rexpr)

#define ITDOS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.is_ok()) return tmp.status();             \
  lhs = std::move(tmp).take()

}  // namespace itdos
