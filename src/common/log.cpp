#include "common/log.hpp"

#include <atomic>
#include <cstdio>

#include "common/time.hpp"

namespace itdos {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view msg) {
  if (level < log_level()) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

std::string format_duration_ns(std::int64_t ns) {
  char buf[64];
  if (ns < 1'000) {
    std::snprintf(buf, sizeof(buf), "%ldns", static_cast<long>(ns));
  } else if (ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace itdos
