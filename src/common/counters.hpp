#pragma once

// Wraparound-safe ordering for wrapping protocol counters (sequence
// numbers, views, key epochs, request ids, client timestamps).
//
// Raw `<` / `>` on a uint64 counter silently inverts once the counter wraps:
// after seq 2^64-1 comes 0, and `0 < 2^64-1` says the new message is
// ancient, wedging windows and replay filters forever. RFC 1982 serial
// arithmetic sidesteps this: compare the *signed distance*, which is exact
// whenever the two values are within 2^63 of each other — astronomically
// true for any real window. EPOCH-001 (tools/itdos_analyze) flags raw
// relational operators on counter-named values and points here.

#include <cstdint>

namespace itdos::counters {

// a is strictly older than b (a happened before b, modulo wrap).
constexpr bool before(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::int64_t>(a - b) < 0;
}

// a is strictly newer than b.
constexpr bool after(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::int64_t>(a - b) > 0;
}

constexpr bool before_eq(std::uint64_t a, std::uint64_t b) noexcept {
  return !after(a, b);
}

constexpr bool after_eq(std::uint64_t a, std::uint64_t b) noexcept {
  return !before(a, b);
}

// Signed distance from b to a; positive when a is newer.
constexpr std::int64_t distance(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::int64_t>(a - b);
}

// a in the half-open window (low, low + span]: the PBFT watermark check.
constexpr bool in_window(std::uint64_t a, std::uint64_t low,
                         std::uint64_t span) noexcept {
  return after(a, low) && before_eq(a, low + span);
}

}  // namespace itdos::counters
