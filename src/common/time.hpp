// Simulated-time vocabulary. The whole system runs on a discrete-event
// scheduler; SimTime is nanoseconds since simulation start.
#pragma once

#include <cstdint>
#include <string>

namespace itdos {

/// Nanoseconds since simulation start.
struct SimTime {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(std::int64_t delta_ns) const { return {ns + delta_ns}; }
  constexpr std::int64_t operator-(const SimTime& other) const { return ns - other.ns; }

  double micros() const { return static_cast<double>(ns) / 1e3; }
  double millis() const { return static_cast<double>(ns) / 1e6; }
  double seconds() const { return static_cast<double>(ns) / 1e9; }
};

/// Duration helpers (all return nanosecond counts).
constexpr std::int64_t nanos(std::int64_t n) { return n; }
constexpr std::int64_t micros(std::int64_t n) { return n * 1'000; }
constexpr std::int64_t millis(std::int64_t n) { return n * 1'000'000; }
constexpr std::int64_t seconds(std::int64_t n) { return n * 1'000'000'000; }

/// "12.345ms"-style rendering for logs and bench output.
std::string format_duration_ns(std::int64_t ns);

}  // namespace itdos
