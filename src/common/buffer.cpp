#include "common/buffer.hpp"

#include <algorithm>
#include <utility>

namespace itdos {

std::uint64_t BufStats::copies = 0;
std::uint64_t BufStats::bytes_copied = 0;

// The refcounted unit of ownership: one sealed chunk. If `home` is set, the
// destructor hands the chunk's capacity back to that arena's pool instead of
// freeing it — this is what makes steady-state traffic allocation-free.
struct BufView::Slab {
  Bytes storage;
  std::shared_ptr<Arena::State> home;

  Slab(Bytes s, std::shared_ptr<Arena::State> h)
      : storage(std::move(s)), home(std::move(h)) {}

  ~Slab() {
    if (!home || home->pool.size() >= home->max_pooled) return;
    storage.clear();  // keeps capacity
    home->pool.push_back(std::move(storage));
  }
};

Arena::Arena(std::size_t chunk_reserve, std::size_t max_pooled)
    : state_(std::make_shared<State>()) {
  state_->chunk_reserve = chunk_reserve;
  state_->max_pooled = max_pooled;
}

Bytes Arena::acquire(std::size_t reserve_hint) {
  const std::size_t want = std::max(reserve_hint, state_->chunk_reserve);
  // LIFO scan from the top for a chunk big enough; most traffic is
  // similarly sized, so the top usually fits.
  for (auto it = state_->pool.rbegin(); it != state_->pool.rend(); ++it) {
    if (it->capacity() >= want) {
      Bytes chunk = std::move(*it);
      state_->pool.erase(std::next(it).base());
      ++state_->reuses;
      return chunk;
    }
  }
  Bytes chunk;
  chunk.reserve(want);
  return chunk;
}

BufView Arena::seal(Bytes&& storage) {
  auto slab = std::make_shared<const BufView::Slab>(std::move(storage), state_);
  const std::uint8_t* data = slab->storage.data();
  const std::size_t len = slab->storage.size();
  return BufView(std::move(slab), data, len);
}

BufView::BufView(Bytes&& owned) {
  auto slab = std::make_shared<const Slab>(std::move(owned), nullptr);
  data_ = slab->storage.data();
  len_ = slab->storage.size();
  slab_ = std::move(slab);
}

BufView BufView::copy_of(ByteView b) {
  BufStats::note_copy(b.size());
  return BufView(Bytes(b.begin(), b.end()));
}

BufView BufView::borrow(ByteView b) {
  BufView v;
  v.data_ = b.data();
  v.len_ = b.size();
  return v;
}

BufView BufView::slice(std::size_t offset, std::size_t length) const {
  const std::size_t begin = std::min(offset, len_);
  const std::size_t count = std::min(length, len_ - begin);
  return BufView(slab_, data_ + begin, count);
}

Bytes BufView::clone_bytes() const {
  BufStats::note_copy(len_);
  return Bytes(data_, data_ + len_);
}

bool BufView::operator==(const BufView& other) const {
  return len_ == other.len_ && std::equal(data_, data_ + len_, other.data_);
}

BufBuilder::BufBuilder(Arena* arena, std::size_t reserve_hint) : arena_(arena) {
  if (arena_) {
    storage_ = arena_->acquire(reserve_hint);
  } else if (reserve_hint > 0) {
    storage_.reserve(reserve_hint);
  }
}

BufView BufBuilder::seal() {
  BufView view = arena_ ? arena_->seal(std::move(storage_)) : BufView(std::move(storage_));
  storage_ = Bytes{};  // moved-from; reset so the builder is reusable
  return view;
}

}  // namespace itdos
