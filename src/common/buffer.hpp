// Zero-copy buffer vocabulary for the message path (CDR → SMIOP → BFT → net).
//
// Every layer of the stack used to own its payload as a `Bytes`
// (std::vector<uint8_t>) and re-copy it at each hop; large-message benches
// measured memcpy more than protocol. This header is the replacement
// contract:
//
//   * Arena       — deterministic, refcounted pool of reusable byte chunks.
//                   Chunk storage returns to the pool when the LAST view
//                   over it drops, so steady-state traffic allocates ~zero.
//   * BufBuilder  — the single mutable marshal step. A message is written
//                   exactly once (CDR encode, seal, MAC — all into the same
//                   chunk), then sealed into an immutable view.
//   * BufView     — immutable refcounted (pointer, len) into a sealed chunk.
//                   Copying a BufView bumps a refcount; slicing shares the
//                   chunk. This is what the network delivers, what BFT logs
//                   and re-broadcasts, and what fragmentation splits.
//
// Ownership model (DESIGN.md §6e has the long form):
//   - The SENDER allocates (via Arena/BufBuilder) and seals.
//   - Everything downstream holds views; nobody mutates sealed bytes.
//   - A mutation (fault-injection corruption, Byzantine equivocation) must
//     go through clone_bytes() — copy-on-write, counted in BufStats.
//   - Explicit copies are the ONLY copies: BufView is not constructible
//     from an lvalue Bytes; use copy_of() (counted) or adopt an rvalue.
//
// Determinism: nothing here consults addresses, clocks or hash order; the
// arena's pool is LIFO and all accounting is plain integers, so same-seed
// runs remain byte-stable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "common/bytes.hpp"

namespace itdos {

/// Global copy accounting for the message path. The simulator is
/// single-threaded, so plain integers suffice; benches mirror these into the
/// telemetry registry as `buf.copies` / `buf.bytes_copied`.
struct BufStats {
  static std::uint64_t copies;
  static std::uint64_t bytes_copied;

  static void note_copy(std::size_t n) {
    ++copies;
    bytes_copied += n;
  }
  static void reset() { copies = 0, bytes_copied = 0; }
};

class BufView;

/// Deterministic chunk pool. Not a bump allocator: each sealed message owns
/// one chunk (a recycled `Bytes`), and the chunk's CAPACITY returns to the
/// pool when the last BufView over it is destroyed — even if that happens
/// after the Arena itself is gone (the pool state is refcounted).
class Arena {
 public:
  /// `chunk_reserve` is the capacity fresh chunks start with; `max_pooled`
  /// bounds how many idle chunks the pool retains.
  explicit Arena(std::size_t chunk_reserve = 4096, std::size_t max_pooled = 64);

  /// A chunk with at least `reserve_hint` capacity (recycled if available).
  Bytes acquire(std::size_t reserve_hint = 0);

  /// Seals `storage` into an immutable refcounted view spanning all of it.
  /// When the last view drops, the storage's capacity returns to this pool.
  BufView seal(Bytes&& storage);

  std::size_t pooled() const { return state_->pool.size(); }
  std::uint64_t reuses() const { return state_->reuses; }

 private:
  friend class BufView;
  struct State {
    std::size_t chunk_reserve;
    std::size_t max_pooled;
    std::vector<Bytes> pool;  // idle chunk storage, LIFO
    std::uint64_t reuses = 0;
  };
  std::shared_ptr<State> state_;
};

/// Immutable, refcounted view over sealed bytes. Copying/slicing never
/// copies payload. Default-constructed views are empty and valid.
class BufView {
 public:
  BufView() = default;

  /// Adopts owned storage without copying (the moved-from vector's heap
  /// block becomes the sealed chunk). Implicit on purpose: `encode()`
  /// rvalues flow straight into view-taking APIs at zero cost.
  BufView(Bytes&& owned);  // NOLINT(google-explicit-constructor)

  /// Lvalue Bytes would silently copy — forbidden; use copy_of().
  BufView(const Bytes&) = delete;

  /// Explicit counted copy (BufStats) of arbitrary bytes.
  static BufView copy_of(ByteView b);

  /// Non-owning view over storage the CALLER keeps alive for the view's
  /// whole lifetime (scoped decodes of borrowed buffers, e.g. tests and
  /// validation probes). Never store a borrowed view in long-lived state.
  static BufView borrow(ByteView b);

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  ByteView bytes() const { return ByteView(data_, len_); }
  operator ByteView() const { return bytes(); }  // NOLINT

  const std::uint8_t& operator[](std::size_t i) const { return data_[i]; }

  /// Sub-view sharing the same chunk (zero-copy). Clamped to bounds.
  BufView slice(std::size_t offset, std::size_t length) const;

  /// Explicit counted copy out (the copy-on-write seam: mutate the clone,
  /// then adopt it into a fresh view).
  Bytes clone_bytes() const;

  /// Whether this view (transitively) owns its storage. False only for
  /// borrow()ed views and the empty default.
  bool owning() const { return slab_ != nullptr; }

  /// Views (incl. slices) sharing this view's chunk; 0 for non-owning.
  long use_count() const { return slab_ ? slab_.use_count() : 0; }

  /// Byte-wise equality (the container, not the identity, compares).
  bool operator==(const BufView& other) const;
  bool operator==(ByteView other) const {
    return bytes().size() == other.size() &&
           std::equal(other.begin(), other.end(), data());
  }
  bool operator==(const Bytes& other) const { return *this == ByteView(other); }

 private:
  struct Slab;
  BufView(std::shared_ptr<const Slab> slab, const std::uint8_t* data, std::size_t len)
      : slab_(std::move(slab)), data_(data), len_(len) {}
  friend class Arena;
  friend class BufBuilder;

  std::shared_ptr<const Slab> slab_;  // null for borrowed/empty views
  const std::uint8_t* data_ = nullptr;
  std::size_t len_ = 0;
};

/// The single mutable marshal step: acquire (from an arena, if given), write
/// once, seal. After seal() the builder is empty and reusable.
class BufBuilder {
 public:
  explicit BufBuilder(Arena* arena = nullptr, std::size_t reserve_hint = 0);

  /// The mutable storage encoders append into.
  Bytes& storage() { return storage_; }

  void append(ByteView b) { itdos::append(storage_, b); }
  std::size_t size() const { return storage_.size(); }

  /// Freezes everything written so far into an immutable view (zero-copy:
  /// the storage moves into the sealed chunk).
  BufView seal();

 private:
  Arena* arena_;  // may be null: sealed chunks are then simply freed
  Bytes storage_;
};

}  // namespace itdos
