#include "load/arrival.hpp"

#include <cmath>

namespace itdos::load {

namespace {

/// Exponential variate with the given mean, in ns. Uses -mean*ln(1-u) with
/// u in [0,1): the argument to log is in (0,1], never zero.
std::int64_t exp_ns(Rng& rng, double mean_ns) {
  const double u = rng.next_double();
  const double v = -mean_ns * std::log(1.0 - u);
  // Quantize to whole nanoseconds; at least 1ns so time always advances.
  const double clamped = v < 1.0 ? 1.0 : v;
  return static_cast<std::int64_t>(clamped);
}

std::vector<std::int64_t> fixed_rate(const ArrivalConfig& config, Rng& rng) {
  std::vector<std::int64_t> schedule;
  const double mean_gap_ns = 1e9 / config.rate_per_s;
  std::int64_t t = exp_ns(rng, mean_gap_ns);
  while (t < config.horizon_ns) {
    schedule.push_back(t);
    t += exp_ns(rng, mean_gap_ns);
  }
  return schedule;
}

std::vector<std::int64_t> bursty(const ArrivalConfig& config, Rng& rng) {
  std::vector<std::int64_t> schedule;
  const double base_rate =
      config.rate_per_s > 0.0 ? config.rate_per_s : 1.0;
  const double burst_rate =
      config.peak_rate_per_s > 0.0 ? config.peak_rate_per_s : base_rate;
  bool in_burst = false;
  std::int64_t t = 0;
  std::int64_t phase_end =
      exp_ns(rng, static_cast<double>(config.idle_mean_ns));
  while (t < config.horizon_ns) {
    const double rate = in_burst ? burst_rate : base_rate;
    const std::int64_t next = t + exp_ns(rng, 1e9 / rate);
    if (next >= phase_end) {
      // Phase flip. Restart the inter-arrival clock at the boundary: the
      // memoryless property makes discarding the partial gap exact.
      t = phase_end;
      in_burst = !in_burst;
      phase_end =
          t + exp_ns(rng, static_cast<double>(in_burst ? config.burst_mean_ns
                                                       : config.idle_mean_ns));
      continue;
    }
    t = next;
    if (t < config.horizon_ns) schedule.push_back(t);
  }
  return schedule;
}

std::vector<std::int64_t> ramp(const ArrivalConfig& config, Rng& rng) {
  std::vector<std::int64_t> schedule;
  const double start_rate = config.rate_per_s;
  const double end_rate =
      config.peak_rate_per_s > 0.0 ? config.peak_rate_per_s : start_rate;
  const double max_rate = start_rate > end_rate ? start_rate : end_rate;
  // Lewis-Shedler thinning against the envelope rate: candidate arrivals at
  // max_rate, each accepted with probability rate(t)/max_rate.
  std::int64_t t = 0;
  const double horizon = static_cast<double>(config.horizon_ns);
  while (true) {
    t += exp_ns(rng, 1e9 / max_rate);
    if (t >= config.horizon_ns) break;
    const double frac = static_cast<double>(t) / horizon;
    const double rate = start_rate + (end_rate - start_rate) * frac;
    if (rng.next_double() * max_rate < rate) schedule.push_back(t);
  }
  return schedule;
}

}  // namespace

std::vector<std::int64_t> arrival_schedule(const ArrivalConfig& config,
                                           std::uint64_t seed) {
  Rng rng(seed);
  if (config.rate_per_s <= 0.0 || config.horizon_ns <= 0) return {};
  switch (config.kind) {
    case ArrivalKind::kFixedRate:
      return fixed_rate(config, rng);
    case ArrivalKind::kBursty:
      return bursty(config, rng);
    case ArrivalKind::kRamp:
      return ramp(config, rng);
  }
  return {};
}

std::vector<std::uint8_t> schedule_bytes(
    const std::vector<std::int64_t>& schedule) {
  std::vector<std::uint8_t> out;
  out.reserve(schedule.size() * 8);
  for (const std::int64_t t : schedule) {
    const auto u = static_cast<std::uint64_t>(t);
    for (int shift = 0; shift < 64; shift += 8) {
      out.push_back(static_cast<std::uint8_t>((u >> shift) & 0xFF));
    }
  }
  return out;
}

}  // namespace itdos::load
