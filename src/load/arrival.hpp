// Seed-deterministic arrival processes for the open-loop load harness
// (DESIGN.md §6f). Every existing bench is closed-loop — the next request
// waits for the previous reply — so the system is never driven past
// saturation. An OPEN-loop generator fires requests on a schedule that does
// not care whether the system keeps up, which is how a very large client
// population looks to a server: offered load is an input, not a consequence.
//
// Three processes, all pure functions of (config, seed) through the shared
// Rng (DET-001: the only allowed randomness):
//   * fixed-rate — Poisson arrivals at a constant rate (a large population
//     of independent clients aggregates to this);
//   * bursty     — a two-phase Markov-modulated Poisson process (MMPP):
//     exponentially distributed sojourns alternate between a base-rate phase
//     and a burst-rate phase;
//   * ramp       — Poisson arrivals whose instantaneous rate climbs linearly
//     from `rate_per_s` to `peak_rate_per_s` across the horizon (generated
//     by thinning against the peak rate).
//
// Schedules are materialized up front: the generator schedules every arrival
// on the simulator before the run starts, so the arrival pattern cannot be
// perturbed by what the system under test does with it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace itdos::load {

enum class ArrivalKind : std::uint8_t {
  kFixedRate = 1,
  kBursty = 2,
  kRamp = 3,
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kFixedRate;
  double rate_per_s = 1000.0;       // fixed rate / MMPP base rate / ramp start
  double peak_rate_per_s = 0.0;     // MMPP burst rate / ramp end (0 = rate_per_s)
  std::int64_t horizon_ns = millis(500);  // arrivals generated inside [0, horizon)
  // MMPP phase sojourns (means of the exponential phase durations).
  std::int64_t burst_mean_ns = millis(20);
  std::int64_t idle_mean_ns = millis(20);
};

/// Materializes the arrival schedule: offsets in nanoseconds from the start
/// of the window, strictly non-decreasing, all inside [0, horizon_ns). Same
/// (config, seed) — same bytes, on every process kind.
std::vector<std::int64_t> arrival_schedule(const ArrivalConfig& config,
                                           std::uint64_t seed);

/// Canonical little-endian serialization of a schedule — what the
/// byte-stability tests compare across repeated generations.
std::vector<std::uint8_t> schedule_bytes(const std::vector<std::int64_t>& schedule);

}  // namespace itdos::load
