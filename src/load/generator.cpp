#include "load/generator.hpp"

#include "common/log.hpp"

namespace itdos::load {

namespace {
constexpr std::string_view kLog = "itdos.load";
}  // namespace

LoadGenerator::LoadGenerator(core::ItdosSystem& system, orb::ObjectRef target,
                             LoadOptions options)
    : system_(system),
      target_(std::move(target)),
      options_(std::move(options)),
      rng_(options_.seed ^ 0x6f70656e6c6f6f64ULL) {  // decorrelate from net seed
  if (options_.clients < 1) options_.clients = 1;
  if (options_.max_client_backlog < 1) options_.max_client_backlog = 1;
  if (options_.mix.empty()) options_.mix.push_back(LoadOp{});
  pool_.reserve(static_cast<std::size_t>(options_.clients));
  for (int i = 0; i < options_.clients; ++i) {
    pool_.push_back(&system_.add_client(core::ClientOptions{}));
  }
  backlog_.assign(pool_.size(), 0);
}

void LoadGenerator::start() {
  if (started_) return;
  started_ = true;
  start_time_ = system_.sim().now();
  const std::vector<std::int64_t> schedule =
      arrival_schedule(options_.arrival, options_.seed);
  counts_.offered = schedule.size();
  for (const std::int64_t t : schedule) {
    system_.sim().schedule_after(t, [this, alive = alive_, t] {
      if (!*alive) return;
      dispatch(t);
    });
  }
  ITDOS_INFO(kLog) << "open-loop run: " << schedule.size() << " arrivals over "
                   << options_.arrival.horizon_ns << "ns across "
                   << pool_.size() << " clients";
}

const LoadOp& LoadGenerator::pick_op() {
  if (options_.mix.size() == 1) return options_.mix.front();
  double total = 0.0;
  for (const LoadOp& op : options_.mix) total += op.weight;
  double roll = rng_.next_double() * total;
  for (const LoadOp& op : options_.mix) {
    roll -= op.weight;
    if (roll < 0.0) return op;
  }
  return options_.mix.back();
}

void LoadGenerator::dispatch(std::int64_t arrival_ns) {
  // Round-robin from a moving cursor; first client under its backlog cap
  // wins. All caps hit => the arrival is starved (the "population" walked
  // away), which keeps client-side queues bounded without closing the loop.
  std::size_t slot = pool_.size();
  for (std::size_t probe = 0; probe < pool_.size(); ++probe) {
    const std::size_t i = (cursor_ + probe) % pool_.size();
    if (backlog_[i] < options_.max_client_backlog) {
      slot = i;
      break;
    }
  }
  cursor_ = (cursor_ + 1) % pool_.size();
  if (slot == pool_.size()) {
    ++counts_.starved;
    return;
  }
  ++counts_.dispatched;
  ++backlog_[slot];
  const LoadOp& op = pick_op();
  const SimTime arrived_at = start_time_ + arrival_ns;
  pool_[slot]->orb().invoke(
      op.target ? *op.target : target_, op.operation, op.argument,
      [this, alive = alive_, slot, arrived_at](Result<cdr::Value> result) {
        if (!*alive) return;
        --backlog_[slot];
        latency_.record(system_.sim().now() - arrived_at);
        if (result.is_ok()) {
          ++counts_.ok;
        } else if (result.status().code() == Errc::kResourceExhausted) {
          ++counts_.overloaded;
        } else {
          ++counts_.failed;
        }
      });
}

bool LoadGenerator::done() const {
  if (!started_) return false;
  return counts_.ok + counts_.overloaded + counts_.failed + counts_.starved >=
         counts_.offered;
}

void LoadGenerator::run_to_completion(std::int64_t max_extra_ns) {
  const SimTime deadline = start_time_ + options_.arrival.horizon_ns + max_extra_ns;
  while (!done() && system_.sim().now() < deadline && !system_.sim().idle()) {
    system_.sim().step();
  }
}

LoadReport LoadGenerator::report() const {
  LoadReport out = counts_;
  out.p50_latency_ns = static_cast<std::int64_t>(latency_.percentile(50.0));
  out.p99_latency_ns = static_cast<std::int64_t>(latency_.percentile(99.0));
  const double window_s =
      static_cast<double>(options_.arrival.horizon_ns) / 1e9;
  out.goodput_per_s = window_s > 0.0 ? static_cast<double>(out.ok) / window_s : 0.0;
  return out;
}

}  // namespace itdos::load
