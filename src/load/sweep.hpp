// Offered-load sweep orchestration (DESIGN.md §6f). Runs the open-loop
// generator at each rate of a ladder and collects the latency-vs-offered-load
// curve: p50/p99 latency, goodput, explicit-overload and failure rates,
// starvation. Each rate point runs against a FRESH deployment built by the
// caller's factory — points are independent experiments, not phases of one
// run, so a rate that melts the system cannot poison the next point.
#pragma once

#include "load/generator.hpp"

namespace itdos::load {

/// One point of the latency-vs-offered-load curve.
struct SweepPoint {
  double rate_per_s = 0.0;        // configured offered rate
  LoadReport report;              // outcome counts, percentiles, goodput
  std::uint64_t sheds = 0;        // replicated admission sheds, summed over
                                  // every admission.*.shed gauge in the run
};

struct SweepOptions {
  std::vector<double> rates;      // the ladder, in offered requests/s
  ArrivalConfig arrival;          // template; rate_per_s overridden per point
  std::uint64_t seed = 1;         // same seed for every point (comparability)
  int clients = 32;
  int max_client_backlog = 64;
  std::vector<LoadOp> mix;
  std::int64_t drain_ns = seconds(5);  // post-window completion budget
};

class OfferedLoadSweep {
 public:
  /// The factory builds a fresh deployment for one rate point and hands
  /// (system, target, generator) to `body` — which runs it. The indirection
  /// keeps deployment shape (domains, servants, attacks, controllers) the
  /// caller's business while the sweep owns pacing and bookkeeping.
  using Body = std::function<void(core::ItdosSystem& system, LoadGenerator& gen)>;
  using Factory = std::function<void(double rate_per_s, const LoadOptions& load,
                                     const Body& body)>;

  explicit OfferedLoadSweep(SweepOptions options) : options_(std::move(options)) {}

  /// Runs every rate of the ladder through `factory`. The factory must call
  /// the provided Body exactly once with a generator built from the given
  /// LoadOptions; the sweep starts it, runs to completion, and records the
  /// point. Returns the curve in ladder order.
  const std::vector<SweepPoint>& run(const Factory& factory);

  const std::vector<SweepPoint>& points() const { return points_; }

 private:
  SweepOptions options_;
  std::vector<SweepPoint> points_;
};

}  // namespace itdos::load
