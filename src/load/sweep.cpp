#include "load/sweep.hpp"

#include "common/log.hpp"

namespace itdos::load {

namespace {
constexpr std::string_view kLog = "itdos.load";

std::uint64_t sum_sheds(const telemetry::MetricsRegistry& registry) {
  std::uint64_t total = 0;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (name.starts_with("admission.") && name.ends_with(".shed")) {
      total += static_cast<std::uint64_t>(gauge.value());
    }
  }
  return total;
}

}  // namespace

const std::vector<SweepPoint>& OfferedLoadSweep::run(const Factory& factory) {
  points_.clear();
  for (const double rate : options_.rates) {
    LoadOptions load;
    load.arrival = options_.arrival;
    load.arrival.rate_per_s = rate;
    load.seed = options_.seed;
    load.clients = options_.clients;
    load.max_client_backlog = options_.max_client_backlog;
    load.mix = options_.mix;

    bool ran = false;
    factory(rate, load, [&](core::ItdosSystem& system, LoadGenerator& gen) {
      ran = true;
      gen.start();
      gen.run_to_completion(options_.drain_ns);
      SweepPoint point;
      point.rate_per_s = rate;
      point.report = gen.report();
      point.sheds = sum_sheds(system.sim().telemetry().metrics());
      points_.push_back(point);
      ITDOS_INFO(kLog) << "sweep point " << rate << "req/s: ok="
                       << point.report.ok << " overloaded="
                       << point.report.overloaded << " failed="
                       << point.report.failed << " starved="
                       << point.report.starved << " p99="
                       << point.report.p99_latency_ns << "ns sheds="
                       << point.sheds;
    });
    if (!ran) {
      ITDOS_WARN(kLog) << "sweep factory skipped the body at " << rate
                       << "req/s; recording an empty point";
      SweepPoint point;
      point.rate_per_s = rate;
      points_.push_back(point);
    }
  }
  return points_;
}

}  // namespace itdos::load
