// Open-loop load generator (DESIGN.md §6f). Drives an ItdosSystem with a
// pre-materialized arrival schedule (arrival.hpp) through a pool of K real
// ItdosClients — the full proxy/enclave path: SMIOP sealing, BFT ordering,
// replicated execution, reply voting. K bounds CONCURRENCY (each Orb
// serializes per connection, queueing further invokes client-side), not
// offered load: arrivals keep coming whether or not the system keeps up,
// and latency is measured from the SCHEDULED arrival time, so client-side
// queueing delay — the open-loop signature of saturation — is part of every
// sample. Offered load beyond what K concurrent sessions can even enqueue
// is counted as `starved` rather than silently dropped.
//
// Outcome classification:
//   * ok        — a voted reply with a value;
//   * overloaded — the explicit ITDOS-OVERLOAD admission-control reply
//     (Errc::kResourceExhausted at the Orb): the system said no, fast;
//   * failed    — everything else (vote timeouts, transport errors).
// Goodput = ok completions per second of the arrival window.
#pragma once

#include <functional>
#include <optional>

#include "itdos/system.hpp"
#include "load/arrival.hpp"
#include "telemetry/metrics.hpp"

namespace itdos::load {

/// One entry of the request mix: an operation plus its ready-made argument
/// and a selection weight. Mixes are sampled per-arrival from the
/// generator's own Rng stream, so the op sequence is seed-deterministic.
/// An op may override the generator's target ref — a sharded key mix is a
/// set of ops whose routed refs hash to different replication domains, so
/// one arrival stream spreads across shards by key.
struct LoadOp {
  std::string operation = "work";
  cdr::Value argument;
  double weight = 1.0;
  std::optional<orb::ObjectRef> target;  // else the generator's target
};

struct LoadOptions {
  ArrivalConfig arrival;
  std::uint64_t seed = 1;
  int clients = 32;                    // concurrent sessions (Orb pool size)
  int max_client_backlog = 64;         // queued invokes tolerated per client
  std::vector<LoadOp> mix;             // empty: "work" with empty args
};

struct LoadReport {
  std::uint64_t offered = 0;      // arrivals in the schedule
  std::uint64_t dispatched = 0;   // arrivals handed to an Orb
  std::uint64_t starved = 0;      // arrivals dropped: every client at backlog cap
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;   // explicit admission-control replies
  std::uint64_t failed = 0;       // vote timeouts / transport errors
  double goodput_per_s = 0.0;     // ok / arrival window
  std::int64_t p50_latency_ns = 0;  // arrival -> completion, all outcomes
  std::int64_t p99_latency_ns = 0;
};

class LoadGenerator {
 public:
  /// Creates the client pool immediately (clients join `system` and live as
  /// long as it does); nothing is scheduled until start().
  LoadGenerator(core::ItdosSystem& system, orb::ObjectRef target,
                LoadOptions options);
  ~LoadGenerator() { *alive_ = false; }

  /// Schedules every arrival of the configured window on the sim clock,
  /// starting at sim().now(). Call at most once.
  void start();

  /// True once every dispatched arrival has completed (or was starved).
  bool done() const;

  /// Runs the simulator until done() or `max_extra_ns` past the arrival
  /// window, whichever first — the drain phase after an overload run.
  void run_to_completion(std::int64_t max_extra_ns = seconds(10));

  /// Final numbers. Percentiles are computed here, so call after the run.
  LoadReport report() const;

  const telemetry::Histogram& latency() const { return latency_; }

 private:
  void dispatch(std::int64_t arrival_ns);
  const LoadOp& pick_op();

  core::ItdosSystem& system_;
  orb::ObjectRef target_;
  LoadOptions options_;
  Rng rng_;
  std::vector<core::ItdosClient*> pool_;
  std::vector<int> backlog_;           // outstanding invokes per pool slot
  std::size_t cursor_ = 0;             // round-robin start for dispatch
  SimTime start_time_{};
  bool started_ = false;

  LoadReport counts_;                  // running totals (percentiles filled late)
  telemetry::Histogram latency_;       // arrival -> completion, ns

  // Completions can land after the generator is destroyed if a run is cut
  // short; same guard discipline as every timer-holding class here.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace itdos::load
