#include "net/network.hpp"

#include <algorithm>

namespace itdos::net {

namespace {
// kNetDrop `b` payload: where in the path the packet died.
enum DropReason : std::uint64_t {
  kDropInterceptor = 1,
  kDropLinkCut = 2,
  kDropLoss = 3,
  kDropNoHandler = 4,
  kDropFiltered = 5,
};
}  // namespace

Network::Network(Simulator& sim, NetConfig config) : sim_(sim), config_(config) {
  auto& reg = sim_.telemetry().metrics();
  metrics_.unicasts_sent = &reg.counter("net.unicasts_sent");
  metrics_.multicasts_sent = &reg.counter("net.multicasts_sent");
  metrics_.packets_delivered = &reg.counter("net.packets_delivered");
  metrics_.packets_dropped = &reg.counter("net.packets_dropped");
  metrics_.bytes_delivered = &reg.counter("net.bytes_delivered");
  metrics_.delivery_delay_ns = &reg.histogram("net.delivery_delay_ns");
}

NetStats Network::stats() const {
  return NetStats{
      .unicasts_sent = metrics_.unicasts_sent->value(),
      .multicasts_sent = metrics_.multicasts_sent->value(),
      .packets_delivered = metrics_.packets_delivered->value(),
      .packets_dropped = metrics_.packets_dropped->value(),
      .bytes_delivered = metrics_.bytes_delivered->value(),
  };
}

void Network::reset_stats() {
  metrics_.unicasts_sent->reset();
  metrics_.multicasts_sent->reset();
  metrics_.packets_delivered->reset();
  metrics_.packets_dropped->reset();
  metrics_.bytes_delivered->reset();
}

void Network::attach(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void Network::detach(NodeId node) {
  handlers_.erase(node);
  interceptors_.erase(node);
  for (auto& [group, members] : groups_) members.erase(node);
}

void Network::join_group(McastGroupId group, NodeId node) {
  groups_[group].insert(node);
}

void Network::leave_group(McastGroupId group, NodeId node) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  it->second.erase(node);
  if (it->second.empty()) groups_.erase(it);
}

std::vector<NodeId> Network::group_members(McastGroupId group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  return std::vector<NodeId>(it->second.begin(), it->second.end());
}

std::int64_t Network::sample_delay() {
  if (config_.max_delay_ns <= config_.min_delay_ns) return config_.min_delay_ns;
  return sim_.rng().next_in(config_.min_delay_ns, config_.max_delay_ns);
}

bool Network::link_up(NodeId a, NodeId b) const {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return !cut_links_.contains(key);
}

void Network::set_link(NodeId a, NodeId b, bool up) {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (up) {
    cut_links_.erase(key);
  } else {
    cut_links_.insert(key);
  }
}

void Network::partition(const std::set<NodeId>& side_a, const std::set<NodeId>& side_b) {
  for (NodeId a : side_a) {
    for (NodeId b : side_b) set_link(a, b, false);
  }
}

void Network::heal_all_links() { cut_links_.clear(); }

void Network::set_interceptor(NodeId node, Interceptor interceptor) {
  if (interceptor) {
    interceptors_[node] = std::move(interceptor);
  } else {
    interceptors_.erase(node);
  }
}

void Network::set_inbound_filter(NodeId node, InboundFilter filter) {
  if (filter) {
    inbound_filters_[node] = std::move(filter);
  } else {
    inbound_filters_.erase(node);
  }
}

void Network::deliver_copy(Packet packet) {
  auto& hub = sim_.telemetry();
  // Outbound interceptor: a compromised host's network stack.
  if (const auto it = interceptors_.find(packet.from); it != interceptors_.end()) {
    std::optional<BufView> mutated = it->second(packet);
    if (!mutated) {
      metrics_.packets_dropped->inc();
      hub.trace(telemetry::TraceKind::kNetDrop, packet.from, 0, packet.to.value,
                kDropInterceptor);
      return;
    }
    packet.payload = std::move(*mutated);
  }
  if (!link_up(packet.from, packet.to)) {
    metrics_.packets_dropped->inc();
    hub.trace(telemetry::TraceKind::kNetDrop, packet.from, 0, packet.to.value, kDropLinkCut);
    return;
  }
  if (sim_.rng().chance(config_.drop_probability)) {
    metrics_.packets_dropped->inc();
    hub.trace(telemetry::TraceKind::kNetDrop, packet.from, 0, packet.to.value, kDropLoss);
    return;
  }
  const int copies = sim_.rng().chance(config_.duplicate_probability) ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    const std::int64_t delay = sample_delay();
    sim_.schedule_after(delay, [this, packet, delay] {
      const auto handler = handlers_.find(packet.to);
      if (handler == handlers_.end()) {
        metrics_.packets_dropped->inc();
        sim_.telemetry().trace(telemetry::TraceKind::kNetDrop, packet.from, 0, packet.to.value,
                               kDropNoHandler);
        return;
      }
      if (const auto filter = inbound_filters_.find(packet.to);
          filter != inbound_filters_.end() && !filter->second(packet)) {
        metrics_.packets_dropped->inc();
        sim_.telemetry().trace(telemetry::TraceKind::kNetDrop, packet.from, 0, packet.to.value,
                               kDropFiltered);
        return;
      }
      metrics_.packets_delivered->inc();
      metrics_.bytes_delivered->inc(packet.payload.size());
      metrics_.delivery_delay_ns->record(delay);
      handler->second(packet);
    });
  }
}

void Network::send(NodeId from, NodeId to, BufView payload) {
  metrics_.unicasts_sent->inc();
  deliver_copy(Packet{from, to, std::nullopt, std::move(payload)});
}

void Network::multicast(NodeId from, McastGroupId group, BufView payload) {
  metrics_.multicasts_sent->inc();
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  for (NodeId member : it->second) {
    // Per-member Packet shares the sealed chunk: refcount bump, no memcpy.
    deliver_copy(Packet{from, member, group, payload});
  }
}

}  // namespace itdos::net
