#include "net/network.hpp"

#include <algorithm>

namespace itdos::net {

void Network::attach(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void Network::detach(NodeId node) {
  handlers_.erase(node);
  interceptors_.erase(node);
  for (auto& [group, members] : groups_) members.erase(node);
}

void Network::join_group(McastGroupId group, NodeId node) {
  groups_[group].insert(node);
}

void Network::leave_group(McastGroupId group, NodeId node) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  it->second.erase(node);
  if (it->second.empty()) groups_.erase(it);
}

std::vector<NodeId> Network::group_members(McastGroupId group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  return std::vector<NodeId>(it->second.begin(), it->second.end());
}

std::int64_t Network::sample_delay() {
  if (config_.max_delay_ns <= config_.min_delay_ns) return config_.min_delay_ns;
  return sim_.rng().next_in(config_.min_delay_ns, config_.max_delay_ns);
}

bool Network::link_up(NodeId a, NodeId b) const {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return !cut_links_.contains(key);
}

void Network::set_link(NodeId a, NodeId b, bool up) {
  const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (up) {
    cut_links_.erase(key);
  } else {
    cut_links_.insert(key);
  }
}

void Network::partition(const std::set<NodeId>& side_a, const std::set<NodeId>& side_b) {
  for (NodeId a : side_a) {
    for (NodeId b : side_b) set_link(a, b, false);
  }
}

void Network::heal_all_links() { cut_links_.clear(); }

void Network::set_interceptor(NodeId node, Interceptor interceptor) {
  if (interceptor) {
    interceptors_[node] = std::move(interceptor);
  } else {
    interceptors_.erase(node);
  }
}

void Network::set_inbound_filter(NodeId node, InboundFilter filter) {
  if (filter) {
    inbound_filters_[node] = std::move(filter);
  } else {
    inbound_filters_.erase(node);
  }
}

void Network::deliver_copy(Packet packet) {
  // Outbound interceptor: a compromised host's network stack.
  if (const auto it = interceptors_.find(packet.from); it != interceptors_.end()) {
    std::optional<Bytes> mutated = it->second(packet);
    if (!mutated) {
      ++stats_.packets_dropped;
      return;
    }
    packet.payload = std::move(*mutated);
  }
  if (!link_up(packet.from, packet.to)) {
    ++stats_.packets_dropped;
    return;
  }
  if (sim_.rng().chance(config_.drop_probability)) {
    ++stats_.packets_dropped;
    return;
  }
  const int copies = sim_.rng().chance(config_.duplicate_probability) ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    sim_.schedule_after(sample_delay(), [this, packet] {
      const auto handler = handlers_.find(packet.to);
      if (handler == handlers_.end()) {
        ++stats_.packets_dropped;
        return;
      }
      if (const auto filter = inbound_filters_.find(packet.to);
          filter != inbound_filters_.end() && !filter->second(packet)) {
        ++stats_.packets_dropped;
        return;
      }
      ++stats_.packets_delivered;
      stats_.bytes_delivered += packet.payload.size();
      handler->second(packet);
    });
  }
}

void Network::send(NodeId from, NodeId to, Bytes payload) {
  ++stats_.unicasts_sent;
  deliver_copy(Packet{from, to, std::nullopt, std::move(payload)});
}

void Network::multicast(NodeId from, McastGroupId group, Bytes payload) {
  ++stats_.multicasts_sent;
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  for (NodeId member : it->second) {
    deliver_copy(Packet{from, member, group, payload});
  }
}

}  // namespace itdos::net
