// Simulated network: unicast datagrams and IP-multicast groups over the
// discrete-event simulator (the paper's transport substrate, Figure 2's
// bottom layer).
//
// Fault model knobs cover everything the paper's assumptions mention:
// variable delay, loss, duplication, link cuts / partitions, and per-node
// Byzantine interceptors that can drop, mutate, delay or fabricate traffic.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/buffer.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "net/sim.hpp"

namespace itdos::net {

/// A datagram in flight. `group` is set for multicast deliveries.
/// The payload is a refcounted view: every in-flight copy of a multicast
/// (and every duplicated/delayed replay) shares one sealed chunk.
struct Packet {
  NodeId from;
  NodeId to;                               // receiver (per-copy for multicast)
  std::optional<McastGroupId> group;       // multicast group, if any
  BufView payload;
};

/// Latency / loss / duplication configuration.
struct NetConfig {
  std::int64_t min_delay_ns = micros(50);
  std::int64_t max_delay_ns = micros(200);
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

/// Aggregate traffic counters (benchmarks report these). A by-value view
/// assembled from the telemetry registry's `net.*` counters.
struct NetStats {
  std::uint64_t unicasts_sent = 0;
  std::uint64_t multicasts_sent = 0;       // one per multicast() call
  std::uint64_t packets_delivered = 0;     // per receiving endpoint
  std::uint64_t packets_dropped = 0;       // loss + cut links + interceptor drops
  std::uint64_t bytes_delivered = 0;
};

class Network {
 public:
  using Handler = std::function<void(const Packet&)>;

  /// An interceptor sees every packet a node emits; it returns the (possibly
  /// mutated) payload to deliver, or nullopt to drop. Used to model
  /// compromised hosts whose traffic an adversary controls. Mutation is
  /// copy-on-write: return the packet's own view to pass through untouched,
  /// or clone_bytes(), mutate, and return the clone.
  using Interceptor = std::function<std::optional<BufView>(const Packet&)>;

  Network(Simulator& sim, NetConfig config);

  /// Registers a node's receive handler. Re-attaching replaces the handler.
  void attach(NodeId node, Handler handler);

  /// Removes the node; in-flight packets to it are dropped on delivery.
  void detach(NodeId node);

  bool attached(NodeId node) const { return handlers_.contains(node); }

  void join_group(McastGroupId group, NodeId node);
  void leave_group(McastGroupId group, NodeId node);
  std::vector<NodeId> group_members(McastGroupId group) const;

  /// Sends a unicast datagram (unreliable, unordered).
  void send(NodeId from, NodeId to, BufView payload);

  /// Sends one datagram per current group member, including the sender if
  /// it is a member (IP multicast loopback semantics). All members share
  /// the same sealed payload chunk.
  void multicast(NodeId from, McastGroupId group, BufView payload);

  /// Cuts / restores the bidirectional link between two nodes.
  void set_link(NodeId a, NodeId b, bool up);

  /// Partitions the node set into two sides; all cross-side links are cut.
  void partition(const std::set<NodeId>& side_a, const std::set<NodeId>& side_b);

  /// Restores every cut link.
  void heal_all_links();

  /// Installs (or clears, with nullptr) an outbound interceptor for a node.
  void set_interceptor(NodeId node, Interceptor interceptor);

  /// An inbound filter guards a node's enclave link (the firewall-proxy
  /// seam, Figure 1): it sees every packet destined for the node and returns
  /// false to drop it. Runs at delivery time, after transit.
  using InboundFilter = std::function<bool(const Packet&)>;
  void set_inbound_filter(NodeId node, InboundFilter filter);

  NetStats stats() const;
  void reset_stats();

  Simulator& sim() { return sim_; }

 private:
  void deliver_copy(Packet packet);
  bool link_up(NodeId a, NodeId b) const;
  std::int64_t sample_delay();

  Simulator& sim_;
  NetConfig config_;
  // Registry-backed counters, resolved once so the hot path is one add.
  struct {
    telemetry::Counter* unicasts_sent;
    telemetry::Counter* multicasts_sent;
    telemetry::Counter* packets_delivered;
    telemetry::Counter* packets_dropped;
    telemetry::Counter* bytes_delivered;
    telemetry::Histogram* delivery_delay_ns;
  } metrics_;
  // Ordered containers throughout (DET-002): hash order varies across
  // libstdc++ versions, and any iteration here feeds delivery order.
  std::map<NodeId, Handler> handlers_;
  std::map<McastGroupId, std::set<NodeId>> groups_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;  // normalized (min, max)
  std::map<NodeId, Interceptor> interceptors_;
  std::map<NodeId, InboundFilter> inbound_filters_;
};

}  // namespace itdos::net
