#include "net/sim.hpp"

namespace itdos::net {

EventHandle Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Event{t, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  ++live_events_;
  return EventHandle{id};
}

EventHandle Simulator::schedule_after(std::int64_t delay_ns, std::function<void()> fn) {
  return schedule_at(now_ + delay_ns, std::move(fn));
}

void Simulator::cancel(EventHandle handle) {
  if (pending_ids_.erase(handle.id) == 0) return;  // fired or never scheduled
  cancelled_.insert(handle.id);
  --live_events_;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0) {
      continue;  // live_events_ already decremented at cancel()
    }
    pending_ids_.erase(ev.id);
    now_ = ev.when;
    --live_events_;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) ++count;
  return count;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Drop cancelled heads so their timestamps don't gate progress.
    if (cancelled_.erase(queue_.top().id) > 0) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    step();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace itdos::net
