// Deterministic discrete-event simulator.
//
// Every ITDOS deployment in this repository — replicas, clients, Group
// Manager elements, firewall proxies — executes as event handlers on one
// Simulator instance. Determinism is load-bearing: Byzantine scenarios,
// view changes and voting races replay identically for a given seed, which
// is what makes the paper's failure cases unit-testable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <set>
#include <vector>

#include "common/buffer.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "telemetry/telemetry.hpp"

namespace itdos::net {

/// Handle for a scheduled event; allows cancellation (timers).
struct EventHandle {
  std::uint64_t id = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1)
      : rng_(seed), telemetry_([this] { return now_; }) {}

  // The telemetry hub's clock captures `this`; pinning the address keeps it
  // valid for the simulator's lifetime.
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }

  /// The telemetry seam every component instruments through.
  telemetry::Hub& telemetry() { return telemetry_; }
  const telemetry::Hub& telemetry() const { return telemetry_; }

  /// The deployment-wide message arena: marshal buffers are acquired here
  /// and their capacity returns when the last in-flight view drops.
  Arena& arena() { return arena_; }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  /// Events at equal times fire in scheduling order (stable FIFO).
  EventHandle schedule_at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` `delay_ns` after now.
  EventHandle schedule_after(std::int64_t delay_ns, std::function<void()> fn);

  /// Cancels a scheduled event; no-op if already fired or cancelled.
  void cancel(EventHandle handle);

  /// Runs the next event. Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue is empty or `max_events` fired.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= deadline.
  std::size_t run_until(SimTime deadline);

  /// Runs events for `delay_ns` of simulated time from now.
  std::size_t run_for(std::int64_t delay_ns) { return run_until(now_ + delay_ns); }

  bool idle() const { return live_events_ == 0; }
  std::size_t pending_events() const { return live_events_; }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      // itdos-lint: allow(EPOCH-001) local event tiebreaker; seq is assigned by this simulator and cannot wrap within a run
      return seq > other.seq;
    }
  };

  SimTime now_;
  Rng rng_;
  telemetry::Hub telemetry_;
  Arena arena_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Ordered sets (DET-002): lookup-only today, but nothing downstream may
  // ever observe hash order from the scheduler.
  std::set<std::uint64_t> pending_ids_;  // queued and not cancelled
  std::set<std::uint64_t> cancelled_;
};

}  // namespace itdos::net
