// Process: base class for everything that lives on the simulated network.
// Owns attachment lifetime (RAII: detaches on destruction) and offers the
// send/multicast/timer surface the protocol layers use.
#pragma once

#include <memory>

#include "net/network.hpp"

namespace itdos::net {

class Process {
 public:
  Process(Network& net, NodeId id) : net_(net), id_(id) {
    net_.attach(id_, [this](const Packet& p) { on_packet(p); });
  }

  virtual ~Process() {
    *alive_ = false;
    net_.detach(id_);
  }

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  NodeId id() const { return id_; }

 protected:
  /// Handles an inbound datagram. Payload authenticity is the subclass's
  /// problem — the network is untrusted.
  virtual void on_packet(const Packet& packet) = 0;

  void send_to(NodeId to, BufView payload) { net_.send(id_, to, std::move(payload)); }

  /// The deployment-wide marshal arena — encode_into() here so sealed-chunk
  /// capacity recycles once the net queue and protocol logs drop their views.
  Arena& arena() { return net_.sim().arena(); }

  void multicast_to(McastGroupId group, BufView payload) {
    net_.multicast(id_, group, std::move(payload));
  }

  void join(McastGroupId group) { net_.join_group(group, id_); }
  void leave(McastGroupId group) { net_.leave_group(group, id_); }

  EventHandle set_timer(std::int64_t delay_ns, std::function<void()> fn) {
    // Timers must not outlive the process: crash-style teardown (element
    // replacement, recovery watchdog aborts) destroys processes with timers
    // still armed, and the simulator would otherwise fire them into freed
    // memory.
    return net_.sim().schedule_after(
        delay_ns, [alive = alive_, fn = std::move(fn)] {
          if (*alive) fn();
        });
  }

  void cancel_timer(EventHandle handle) { net_.sim().cancel(handle); }

  Simulator& sim() { return net_.sim(); }
  Network& net() { return net_; }
  SimTime now() const { return net_.sim().now(); }

 private:
  Network& net_;
  NodeId id_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace itdos::net
