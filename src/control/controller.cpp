#include "control/controller.hpp"

#include "common/log.hpp"

namespace itdos::control {

namespace {
constexpr std::string_view kLog = "itdos.control";

std::int64_t scale_pct(std::int64_t v, std::uint32_t pct) {
  return v / 100 * static_cast<std::int64_t>(pct) +
         v % 100 * static_cast<std::int64_t>(pct) / 100;
}

std::int64_t clamp(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace

ControlLaw::ControlLaw(ControlConfig config)
    : config_(config),
      period_ns_(config.base_period_ns),
      strikes_(config.conservative_strikes) {}

ControlOutputs ControlLaw::step(const ControlInputs& inputs) {
  const std::int64_t prev_period = period_ns_;
  const std::uint64_t prev_strikes = strikes_;

  // Difference the cumulative suspicion counter. The first step only
  // baselines it: suspicion accumulated before the controller existed must
  // not trigger an adjustment the moment it starts.
  std::uint64_t suspicion_delta = 0;
  if (primed_ && inputs.suspicion_events >= last_suspicion_) {
    suspicion_delta = inputs.suspicion_events - last_suspicion_;
  }
  last_suspicion_ = inputs.suspicion_events;
  primed_ = true;

  const bool overloaded = inputs.queue_depth >= config_.depth_high ||
                          inputs.delay_p99_ns >= config_.delay_high_ns;
  const bool calm_depth = inputs.queue_depth <= config_.depth_low;

  // LOCAL level. Suspicion outranks overload: an active adversary is the
  // one condition rejuvenation exists for.
  if (suspicion_delta > 0) {
    period_ns_ = scale_pct(period_ns_, config_.narrow_pct);
  } else if (overloaded) {
    period_ns_ = scale_pct(period_ns_, config_.widen_pct);
  } else if (calm_depth && period_ns_ != config_.base_period_ns) {
    // Relax toward the resting period, one narrow/widen step at a time, and
    // stop AT base — overshoot here is what oscillation is made of.
    if (period_ns_ > config_.base_period_ns) {
      const std::int64_t next = scale_pct(period_ns_, config_.narrow_pct);
      period_ns_ = next < config_.base_period_ns ? config_.base_period_ns : next;
    } else {
      const std::int64_t next = scale_pct(period_ns_, config_.widen_pct);
      period_ns_ = next > config_.base_period_ns ? config_.base_period_ns : next;
    }
  }
  period_ns_ = clamp(period_ns_, config_.min_period_ns, config_.max_period_ns);

  // GLOBAL level: fresh suspicion arms the aggressive policy; a run of calm
  // intervals stands back down to conservative.
  if (suspicion_delta > 0) {
    calm_streak_ = 0;
    strikes_ = config_.aggressive_strikes;
  } else if (strikes_ != config_.conservative_strikes &&
             ++calm_streak_ >= config_.calm_intervals) {
    strikes_ = config_.conservative_strikes;
    calm_streak_ = 0;
  }

  ControlOutputs out;
  out.period_ns = period_ns_;
  out.laggard_strikes = strikes_;
  out.changed = period_ns_ != prev_period || strikes_ != prev_strikes;
  return out;
}

ResponseController::ResponseController(core::ItdosSystem& system,
                                       recovery::RecoveryManager& manager,
                                       recovery::ProactiveScheduler& scheduler,
                                       ResponseControllerOptions options)
    : system_(system),
      manager_(manager),
      scheduler_(scheduler),
      options_(options),
      law_(options.law) {
  auto& reg = system_.sim().telemetry().metrics();
  period_gauge_ = &reg.gauge("control.period_ns");
  strikes_gauge_ = &reg.gauge("control.strikes");
}

ResponseController::~ResponseController() { *alive_ = false; }

void ResponseController::start() {
  if (running_) return;
  running_ = true;
  // Assert the baseline posture immediately: the scheduler gets the law's
  // resting period and the GM the conservative strike policy, so a run with
  // a controller differs from one without it from t=0, not from the first
  // disturbance.
  ++adjustments_;
  scheduler_.set_period(law_.period_ns());
  manager_.set_response_policy(law_.strikes());
  period_gauge_->set(law_.period_ns());
  strikes_gauge_->set(static_cast<std::int64_t>(law_.strikes()));
  system_.sim().telemetry().trace(
      telemetry::TraceKind::kControlAdjust,
      system_.directory().recovery_authority(),
      telemetry::trace_id(ConnectionId(0), RequestId(adjustments_)),
      static_cast<std::uint64_t>(law_.period_ns()), law_.strikes());
  tick_ = system_.sim().schedule_after(options_.interval_ns,
                                       [this, alive = alive_] {
                                         if (!*alive) return;
                                         tick();
                                       });
}

void ResponseController::stop() {
  if (!running_) return;
  running_ = false;
  system_.sim().cancel(tick_);
}

ControlInputs ResponseController::read_inputs() const {
  const auto& reg = system_.sim().telemetry().metrics();
  ControlInputs in;
  for (const auto& [name, gauge] : reg.gauges()) {
    if (name.starts_with("queue.") && name.ends_with(".depth") &&
        gauge.value() > 0 &&
        static_cast<std::uint64_t>(gauge.value()) > in.queue_depth) {
      in.queue_depth = static_cast<std::uint64_t>(gauge.value());
    }
  }
  if (const telemetry::Histogram* lat = reg.find_histogram("smiop.request_latency_ns")) {
    in.delay_p99_ns = static_cast<std::int64_t>(lat->percentile(99.0));
  }
  for (const auto& [name, counter] : reg.counters()) {
    if (name.ends_with(".faults_detected") || name.ends_with(".votes_timed_out") ||
        name.ends_with(".change_requests_sent")) {
      in.suspicion_events += counter.value();
    }
  }
  return in;
}

void ResponseController::tick() {
  if (!running_) return;
  const ControlInputs inputs = read_inputs();
  const ControlOutputs out = law_.step(inputs);
  if (out.changed) {
    ++adjustments_;
    scheduler_.set_period(out.period_ns);
    manager_.set_response_policy(out.laggard_strikes);
    period_gauge_->set(out.period_ns);
    strikes_gauge_->set(static_cast<std::int64_t>(out.laggard_strikes));
    system_.sim().telemetry().trace(
        telemetry::TraceKind::kControlAdjust,
        system_.directory().recovery_authority(),
        telemetry::trace_id(ConnectionId(0), RequestId(adjustments_)),
        static_cast<std::uint64_t>(out.period_ns), out.laggard_strikes);
    ITDOS_INFO(kLog) << "control adjust: depth=" << inputs.queue_depth
                     << " p99=" << inputs.delay_p99_ns << "ns suspicion="
                     << inputs.suspicion_events << " -> period="
                     << out.period_ns << "ns strikes=" << out.laggard_strikes;
  }
  tick_ = system_.sim().schedule_after(options_.interval_ns,
                                       [this, alive = alive_] {
                                         if (!*alive) return;
                                         tick();
                                       });
}

}  // namespace itdos::control
