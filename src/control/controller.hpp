// Feedback-driven intrusion response (DESIGN.md §6f). Closes the loop
// between live telemetry and the recovery subsystem's two actuators:
//
//   * LOCAL level — the proactive rejuvenation period. Rejuvenation is the
//     right defence against dormant compromise but each rotation costs a
//     replica for its MTTR; under overload that capacity matters more than
//     exposure, so the controller slows rotation when queues/latency climb
//     and speeds it back up when suspicion events (vote faults, timeouts,
//     change requests) say an adversary is active.
//   * GLOBAL level — the GM's suspicion-expulsion threshold
//     (SetResponsePolicy): conservative (2 strikes) in calm, aggressive
//     (1 strike) while suspicion is fresh, so a noisy-but-honest laggard is
//     not expelled on one incident yet an active intruder is cut fast.
//
// Split in two layers so the decision logic is testable without a simulator:
//   * ControlLaw    — a pure, deterministic step function over sampled
//     inputs. No clocks, no telemetry, no side effects.
//   * ResponseController — samples the metrics registry on a sim timer,
//     feeds the law, applies its outputs to ProactiveScheduler /
//     RecoveryManager, and traces every adjustment (control.adjust).
//
// Determinism contract: inputs come only from replicated/deterministic
// telemetry (queue depth gauges, latency histograms, counters), the law is
// pure integer/compare logic with multiplicative gains, and actuation goes
// through the ordered GM command path — so a controller run is a pure
// function of the seed, like everything else in the simulation. The
// controller deliberately does NOT touch admission max_depth: that bound is
// replicated static configuration (DET: elements may not read local load).
#pragma once

#include "itdos/system.hpp"
#include "recovery/proactive.hpp"

namespace itdos::control {

/// One sample of the signals the law reacts to.
struct ControlInputs {
  std::uint64_t queue_depth = 0;       // max replicated queue depth, any element
  std::int64_t delay_p99_ns = 0;       // voted-reply latency p99 (smiop)
  std::uint64_t suspicion_events = 0;  // CUMULATIVE faults+timeouts+changes
};

struct ControlConfig {
  // Local level: rejuvenation period bounds and resting point, ns.
  std::int64_t min_period_ns = millis(100);
  std::int64_t max_period_ns = seconds(4);
  std::int64_t base_period_ns = seconds(1);
  // Overload deadband on queue depth: widen at/above high, relax toward
  // base at/below low, hold in between (hysteresis kills oscillation).
  // NOTE: queue depth includes entries awaiting ordered GC, which lags
  // consumption by up to ~2x ack_interval per element — the band sits above
  // that residual, not at zero.
  std::uint64_t depth_high = 40;
  std::uint64_t depth_low = 16;
  std::int64_t delay_high_ns = millis(100);  // p99 above this also = overload
  // Multiplicative gains, percent. widen > 100 (slow down rotation under
  // load), narrow < 100 (speed it up under suspicion / relax toward base).
  std::uint32_t widen_pct = 150;
  std::uint32_t narrow_pct = 67;
  // Global level: GM suspicion-expulsion strikes.
  std::uint64_t conservative_strikes = 2;
  std::uint64_t aggressive_strikes = 1;
  int calm_intervals = 4;  // suspicion-free steps before relaxing strikes
};

struct ControlOutputs {
  std::int64_t period_ns = 0;
  std::uint64_t laggard_strikes = 0;
  bool changed = false;  // either output differs from the previous step
};

/// Pure two-level control law. step() is deterministic: the output sequence
/// is a function of the config and the input sequence alone.
class ControlLaw {
 public:
  explicit ControlLaw(ControlConfig config);

  ControlOutputs step(const ControlInputs& inputs);

  std::int64_t period_ns() const { return period_ns_; }
  std::uint64_t strikes() const { return strikes_; }
  const ControlConfig& config() const { return config_; }

 private:
  ControlConfig config_;
  std::int64_t period_ns_;
  std::uint64_t strikes_;
  std::uint64_t last_suspicion_ = 0;  // to difference the cumulative input
  int calm_streak_ = 0;
  bool primed_ = false;  // first step only baselines the suspicion counter
};

struct ResponseControllerOptions {
  std::int64_t interval_ns = millis(50);  // sampling/actuation cadence
  ControlConfig law;
};

/// Binds a ControlLaw to a running deployment: samples the registry each
/// interval, actuates the scheduler and the recovery manager's GM policy.
class ResponseController {
 public:
  ResponseController(core::ItdosSystem& system,
                     recovery::RecoveryManager& manager,
                     recovery::ProactiveScheduler& scheduler,
                     ResponseControllerOptions options);
  ~ResponseController();

  void start();
  void stop();

  /// Adjustments actually applied (law steps with changed=true).
  std::uint64_t adjustments() const { return adjustments_; }
  const ControlLaw& law() const { return law_; }

  /// The registry sample the controller would act on right now (exposed for
  /// tests and the adaptive adversary, which reads the same signals).
  ControlInputs read_inputs() const;

 private:
  void tick();

  core::ItdosSystem& system_;
  recovery::RecoveryManager& manager_;
  recovery::ProactiveScheduler& scheduler_;
  ResponseControllerOptions options_;
  ControlLaw law_;
  bool running_ = false;
  net::EventHandle tick_{};
  std::uint64_t adjustments_ = 0;
  telemetry::Gauge* period_gauge_;   // control.period_ns
  telemetry::Gauge* strikes_gauge_;  // control.strikes

  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace itdos::control
