// Proactive rejuvenation scheduler (DESIGN.md §6d).
//
// Waiting for detection means waiting for an intrusion to MANIFEST; a
// dormant compromise spends no budget until it strikes. Periodic restart
// from certified state bounds that exposure: every element is routinely
// retired and replaced with a fresh identity — new endpoints, fresh signing
// keys, state re-certified by f+1 peers, every connection of its domain
// rekeyed — whether or not anything looked wrong. An adversary must then
// compromise f+1 elements WITHIN one rejuvenation period rather than over
// the deployment's lifetime.
//
// Rounds are staggered: one slot per tick, round-robin across all
// registered slots, skipping domains already mid-recovery — so the
// scheduler never takes a second element of a domain down and live traffic
// keeps flowing on the remaining 3f elements.
#pragma once

#include "recovery/recovery_manager.hpp"

namespace itdos::recovery {

class ProactiveScheduler {
 public:
  ProactiveScheduler(RecoveryManager& manager, std::int64_t period_ns)
      : manager_(manager), period_ns_(period_ns) {}
  ~ProactiveScheduler();

  /// Registers every rank of a 3f+1 domain for rotation.
  void add_domain(DomainId domain, int n);

  void start();
  void stop();

  /// Rejuvenations initiated so far.
  std::uint64_t initiated() const { return initiated_; }

  /// Runtime retune (the §6f feedback controller's local actuator): the new
  /// period takes effect when the CURRENT tick re-arms — never mid-wait, so
  /// the schedule stays a pure function of the adjustment history.
  void set_period(std::int64_t period_ns) { period_ns_ = period_ns; }
  std::int64_t period_ns() const { return period_ns_; }

 private:
  void tick();

  RecoveryManager& manager_;
  std::int64_t period_ns_;
  std::vector<std::pair<DomainId, int>> slots_;  // (domain, rank) rotation
  std::size_t cursor_ = 0;
  bool running_ = false;
  net::EventHandle tick_{};
  std::uint64_t initiated_ = 0;

  // Same lifetime guard as the manager: pending ticks outlive stop()/dtor.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace itdos::recovery
