#include "recovery/recovery_manager.hpp"

#include "common/log.hpp"

namespace itdos::recovery {

namespace {
constexpr std::string_view kLog = "itdos.recovery";
}  // namespace

RecoveryManager::RecoveryManager(core::ItdosSystem& system, RecoveryConfig config)
    : system_(system), config_(config), tel_(&system.sim().telemetry()) {
  const core::SystemDirectory& directory = system_.directory();
  authority_ = std::make_unique<bft::Client>(
      system_.network(), directory.recovery_authority(),
      directory.gm().make_bft_config(directory.timing()), system_.keys());
  auto& reg = tel_->metrics();
  metrics_.started = &reg.counter("recovery.started");
  metrics_.completed = &reg.counter("recovery.completed");
  metrics_.aborted = &reg.counter("recovery.aborted");
  metrics_.failed = &reg.counter("recovery.failed");
  metrics_.mttr_ns = &reg.histogram("recovery.mttr_ns");
  metrics_.recovering = &reg.gauge("recovery.recovering");
}

RecoveryManager::~RecoveryManager() { *alive_ = false; }

void RecoveryManager::watch() {
  for (int i = 0; i < system_.gm_n(); ++i) {
    system_.gm_element(i).add_expulsion_observer(
        [this, alive = alive_](DomainId domain, NodeId identity) {
          if (!*alive) return;
          on_expulsion(domain, identity);
        });
  }
}

std::uint64_t RecoveryManager::epoch(DomainId domain) const {
  const auto it = epochs_.find(domain);
  return it == epochs_.end() ? 0 : it->second;
}

void RecoveryManager::on_expulsion(DomainId domain, NodeId identity) {
  // Every GM element echoes every ordered expulsion, and our own
  // membership_updates echo the retirements they cause: dedup on identity.
  if (handled_.contains({domain, identity})) return;
  handled_.insert({domain, identity});
  // The GM's own domain has no replacement path (its elements are not
  // DomainElements); only replication domains recover.
  if (domain == system_.directory().gm().id) return;
  const core::DomainInfo* info = system_.directory().find_domain(domain);
  if (info == nullptr) return;
  const int rank = info->rank_of_smiop(identity);
  if (rank < 0) return;  // identity already swapped out of the directory
  recover_now(domain, rank);
}

void RecoveryManager::set_response_policy(std::uint64_t laggard_strikes) {
  if (laggard_strikes == 0) laggard_strikes = 1;
  if (laggard_strikes == response_policy_) return;  // no-op; spare the GM
  response_policy_ = laggard_strikes;
  core::SetResponsePolicyMsg msg;
  msg.laggard_strikes = laggard_strikes;
  authority_->invoke(
      core::encode_gm_command(core::GmCommand(msg)),
      [alive = alive_, laggard_strikes](Result<Bytes> r) {
        if (!*alive) return;
        if (!r.is_ok()) return;  // BFT client retries internally until quorum
        Result<core::GmCommandResult> result =
            core::GmCommandResult::decode(r.value());
        if (result.is_ok() && !result.value().accepted) {
          ITDOS_WARN(kLog) << "GM rejected response policy "
                           << laggard_strikes << ": " << result.value().detail;
        }
      });
}

void RecoveryManager::recover_now(DomainId domain, int rank) {
  if (busy(domain)) {
    // At most one element per domain recovers at a time: taking a second
    // down would voluntarily open the very window recovery exists to close.
    auto& queue = queued_[domain];
    const auto it = active_.find(domain);
    if (it != active_.end() && it->second.rank == rank) return;
    for (const int queued_rank : queue) {
      if (queued_rank == rank) return;
    }
    queue.push_back(rank);
    return;
  }
  start(domain, rank, system_.sim().now(), /*attempt=*/1);
}

void RecoveryManager::start(DomainId domain, int rank, SimTime triggered_at,
                            int attempt) {
  const core::ItdosSystem::ReplacementTicket ticket =
      system_.admit_replacement(domain, rank);
  // Pre-mark both identities: the membership_update below echoes the
  // retirement of the old one, and a later retry would echo the retirement
  // of this fresh one — neither may re-trigger recovery.
  handled_.insert({domain, ticket.retired.smiop_node});
  handled_.insert({domain, ticket.admitted.smiop_node});

  Active active;
  active.rank = rank;
  active.attempt = attempt;
  active.retired = ticket.retired.smiop_node;
  active.admitted = ticket.admitted.smiop_node;
  active.triggered_at = triggered_at;
  active_[domain] = active;

  ++stats_.started;
  metrics_.started->inc();
  metrics_.recovering->set(static_cast<std::int64_t>(active_.size()));
  const NodeId authority_node = system_.directory().recovery_authority();
  tel_->trace(telemetry::TraceKind::kRecoveryStart, authority_node,
              telemetry::trace_id(ConnectionId(domain.value), RequestId(rank)),
              active.retired.value, static_cast<std::uint64_t>(attempt));
  ITDOS_INFO(kLog) << "recovery of " << domain.to_string() << " rank " << rank
                   << " attempt " << attempt << ": retiring "
                   << active.retired.to_string() << ", admitting "
                   << active.admitted.to_string();
  emit(RecoveryEvent{RecoveryEvent::Kind::kStarted, domain, rank, attempt,
                     active.retired, active.admitted, system_.sim().now(), 0, 0});

  // The ordered admission. We are the sole membership_update submitter, so
  // the epoch CAS below is against our own bookkeeping and acceptance is
  // deterministic; bump optimistically at submit time.
  core::MembershipUpdateMsg msg;
  msg.domain = domain;
  msg.rank = static_cast<std::uint32_t>(rank);
  msg.retired_element = ticket.retired.smiop_node;
  msg.admitted_element = ticket.admitted.smiop_node;
  msg.admitted_gm_client = ticket.admitted.gm_client_node;
  msg.admitted_self_client = ticket.admitted.self_client_node;
  msg.expected_epoch = epochs_[domain];
  ++epochs_[domain];
  authority_->invoke(
      core::encode_gm_command(core::GmCommand(msg)),
      [alive = alive_, domain](Result<Bytes> r) {
        if (!*alive) return;
        if (!r.is_ok()) return;  // BFT client retries internally until quorum
        Result<core::GmCommandResult> result = core::GmCommandResult::decode(r.value());
        if (result.is_ok() && !result.value().accepted) {
          ITDOS_WARN(kLog) << "GM rejected membership_update for "
                           << domain.to_string() << ": " << result.value().detail;
        }
      });

  arm_watchdog(domain);
  poll_completion(domain);
}

void RecoveryManager::arm_watchdog(DomainId domain) {
  Active& active = active_.at(domain);
  active.watchdog = system_.sim().schedule_after(
      config_.deadline_ns, [this, alive = alive_, domain] {
        if (!*alive) return;
        abort_attempt(domain);
      });
}

void RecoveryManager::poll_completion(DomainId domain) {
  const auto it = active_.find(domain);
  if (it == active_.end()) return;
  if (system_.element(domain, it->second.rank).replacement_complete()) {
    complete(domain);
    return;
  }
  it->second.poll = system_.sim().schedule_after(
      config_.poll_interval_ns, [this, alive = alive_, domain] {
        if (!*alive) return;
        poll_completion(domain);
      });
}

void RecoveryManager::complete(DomainId domain) {
  const auto it = active_.find(domain);
  if (it == active_.end()) return;
  const Active active = it->second;
  system_.sim().cancel(active.watchdog);
  system_.sim().cancel(active.poll);
  active_.erase(it);

  const std::int64_t mttr = system_.sim().now() - active.triggered_at;
  ++stats_.completed;
  stats_.last_mttr_ns = mttr;
  metrics_.completed->inc();
  metrics_.mttr_ns->record(mttr);
  metrics_.recovering->set(static_cast<std::int64_t>(active_.size()));
  tel_->trace(telemetry::TraceKind::kRecoveryComplete,
              system_.directory().recovery_authority(),
              telemetry::trace_id(ConnectionId(domain.value), RequestId(active.rank)),
              active.admitted.value, static_cast<std::uint64_t>(mttr));
  ITDOS_INFO(kLog) << "recovery of " << domain.to_string() << " rank "
                   << active.rank << " complete; MTTR " << mttr << "ns";
  emit(RecoveryEvent{RecoveryEvent::Kind::kCompleted, domain, active.rank,
                     active.attempt, active.retired, active.admitted,
                     system_.sim().now(), mttr, epoch(domain)});
  finish(domain);
}

void RecoveryManager::abort_attempt(DomainId domain) {
  const auto it = active_.find(domain);
  if (it == active_.end()) return;
  const Active active = it->second;
  system_.sim().cancel(active.poll);
  active_.erase(it);

  ++stats_.aborted;
  metrics_.aborted->inc();
  metrics_.recovering->set(static_cast<std::int64_t>(active_.size()));
  tel_->trace(telemetry::TraceKind::kRecoveryAbort,
              system_.directory().recovery_authority(),
              telemetry::trace_id(ConnectionId(domain.value), RequestId(active.rank)),
              active.admitted.value, static_cast<std::uint64_t>(active.attempt));
  ITDOS_WARN(kLog) << "recovery of " << domain.to_string() << " rank "
                   << active.rank << " attempt " << active.attempt
                   << " missed its deadline; aborting "
                   << active.admitted.to_string();
  emit(RecoveryEvent{RecoveryEvent::Kind::kAborted, domain, active.rank,
                     active.attempt, active.retired, active.admitted,
                     system_.sim().now(), 0, 0});

  // The half-bootstrapped fresh identity is crashed; a retry mints ANOTHER
  // fresh identity and retires this one by a further membership_update.
  system_.crash_element(domain, active.rank);
  if (active.attempt >= config_.max_attempts) {
    ++stats_.failed;
    metrics_.failed->inc();
    ITDOS_WARN(kLog) << "recovery of " << domain.to_string() << " rank "
                     << active.rank << " gave up after " << active.attempt
                     << " attempts";
    finish(domain);
    return;
  }
  const int rank = active.rank;
  const SimTime triggered_at = active.triggered_at;
  const int next_attempt = active.attempt + 1;
  system_.sim().schedule_after(
      config_.retry_backoff_ns,
      [this, alive = alive_, domain, rank, triggered_at, next_attempt] {
        if (!*alive) return;
        if (busy(domain)) {
          // Another slot grabbed the domain meanwhile; the retry keeps its
          // place at the head of the queue.
          queued_[domain].push_front(rank);
          return;
        }
        start(domain, rank, triggered_at, next_attempt);
      });
}

void RecoveryManager::finish(DomainId domain) {
  auto& queue = queued_[domain];
  if (queue.empty()) return;
  const int rank = queue.front();
  queue.pop_front();
  start(domain, rank, system_.sim().now(), /*attempt=*/1);
}

void RecoveryManager::emit(RecoveryEvent event) {
  for (const Listener& listener : listeners_) listener(event);
}

}  // namespace itdos::recovery
