#include "recovery/proactive.hpp"

namespace itdos::recovery {

ProactiveScheduler::~ProactiveScheduler() { *alive_ = false; }

void ProactiveScheduler::add_domain(DomainId domain, int n) {
  for (int rank = 0; rank < n; ++rank) slots_.emplace_back(domain, rank);
}

void ProactiveScheduler::start() {
  if (running_ || slots_.empty()) return;
  running_ = true;
  tick_ = manager_.system().sim().schedule_after(period_ns_,
                                                [this, alive = alive_] {
                                                  if (!*alive) return;
                                                  tick();
                                                });
}

void ProactiveScheduler::stop() {
  if (!running_) return;
  running_ = false;
  manager_.system().sim().cancel(tick_);
}

void ProactiveScheduler::tick() {
  if (!running_) return;
  // One slot per tick, round-robin; a domain mid-recovery is skipped rather
  // than queued behind itself (its turn comes round again).
  for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
    const auto [domain, rank] = slots_[cursor_];
    cursor_ = (cursor_ + 1) % slots_.size();
    if (manager_.busy(domain)) continue;
    ++initiated_;
    manager_.system().sim().telemetry().trace(
        telemetry::TraceKind::kRecoveryProactive,
        manager_.system().directory().recovery_authority(),
        telemetry::trace_id(ConnectionId(domain.value), RequestId(rank)),
        domain.value, static_cast<std::uint64_t>(rank));
    manager_.recover_now(domain, rank);
    break;
  }
  tick_ = manager_.system().sim().schedule_after(period_ns_,
                                                 [this, alive = alive_] {
                                                   if (!*alive) return;
                                                   tick();
                                                 });
}

}  // namespace itdos::recovery
