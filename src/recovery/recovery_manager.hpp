// Proactive recovery & expelled-replica replacement (DESIGN.md §6d).
//
// The paper's §4 leaves replacement of expelled elements as future work, and
// with it the window-of-vulnerability problem: every expulsion permanently
// spends one unit of a domain's intrusion budget f, so a patient adversary
// who compromises elements faster than operators re-provision them
// eventually holds f+1 and the domain is lost. This subsystem closes that
// loop mechanically:
//
//   * detection  — the manager subscribes to every GM element's expulsion
//     observer; the first echo of an ordered expulsion triggers recovery;
//   * replacement — a FRESH identity (new SMIOP / GM-client / self-client
//     endpoints, fresh signing keys; the BFT slot address is reused) is
//     spawned via ItdosSystem::admit_replacement and bootstraps exactly like
//     a crash replacement: BFT catch-up, then f+1 byte-identical state
//     bundles, then an ordered sync point;
//   * admission  — the manager, acting as the deployment's recovery
//     authority, submits a totally ordered membership_update to the GM. The
//     GM retires the old identity, admits the fresh one at the same rank,
//     bumps the domain's membership epoch, and rekeys every connection of
//     the domain under proactively refreshed DPRF sub-keys — so the expelled
//     identity is keyed out of all communication groups AND cannot re-enter
//     under its old name (stale identities fail the epoch CAS);
//   * watchdog   — recovery that does not complete by the configured
//     deadline is aborted: the half-bootstrapped element is crashed and the
//     attempt retried with ANOTHER fresh identity, up to a bounded number of
//     attempts, each retirement itself an ordered membership_update.
//
// At most one element per domain recovers at a time (further requests
// queue), so a domain never voluntarily drops below 3f of 3f+1 live
// elements — the recovery process itself must not open the very window it
// exists to close.
#pragma once

#include <deque>

#include "itdos/system.hpp"

namespace itdos::recovery {

struct RecoveryConfig {
  std::int64_t deadline_ns = seconds(2);       // watchdog: abort after this
  std::int64_t retry_backoff_ns = millis(100); // wait before a retry attempt
  std::int64_t poll_interval_ns = millis(5);   // completion poll cadence
  int max_attempts = 3;                        // fresh identities tried per slot

  /// Defaults from the deployment's protocol timing.
  static RecoveryConfig from_timing(const core::ProtocolTiming& timing) {
    RecoveryConfig config;
    config.deadline_ns = timing.recovery_deadline_ns;
    config.retry_backoff_ns = timing.recovery_retry_backoff_ns;
    return config;
  }
};

/// One recovery lifecycle transition, delivered to listeners (the fault
/// oracle learns deadlines and overlap budgets from these; benches measure
/// MTTR from them).
struct RecoveryEvent {
  enum class Kind : std::uint8_t { kStarted, kCompleted, kAborted };

  Kind kind{};
  DomainId domain;
  int rank = 0;
  int attempt = 0;           // 1-based
  NodeId retired;            // identity that left the slot
  NodeId admitted;           // fresh identity (kStarted/kCompleted)
  SimTime t{};               // simulation time of the transition
  std::int64_t mttr_ns = 0;  // kCompleted: trigger -> restored 3f+1
  std::uint64_t member_epoch = 0;  // kCompleted: domain epoch after admission
};

struct RecoveryStats {
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;    // watchdog aborts (individual attempts)
  std::uint64_t failed = 0;     // slots given up after max_attempts
  std::int64_t last_mttr_ns = 0;
};

/// Drives expel -> replace -> rekey cycles against one ItdosSystem. Owns the
/// recovery-authority BFT client toward the GM group; the GM state machine
/// accepts membership_update commands from this identity only.
class RecoveryManager {
 public:
  using Listener = std::function<void(const RecoveryEvent&)>;

  RecoveryManager(core::ItdosSystem& system, RecoveryConfig config);
  explicit RecoveryManager(core::ItdosSystem& system)
      : RecoveryManager(system,
                        RecoveryConfig::from_timing(system.directory().timing())) {}
  ~RecoveryManager();

  /// Subscribes to every GM element's expulsion observer: from here on,
  /// ordered expulsions trigger replacement automatically.
  void watch();

  /// Manually triggers recovery of a slot (proactive rejuvenation, or
  /// crash replacement without an expulsion). Queues if the domain is
  /// already recovering.
  void recover_now(DomainId domain, int rank);

  void add_listener(Listener listener) { listeners_.push_back(std::move(listener)); }

  /// True while an element of `domain` is mid-recovery.
  bool busy(DomainId domain) const { return active_.contains(domain); }

  const RecoveryStats& stats() const { return stats_; }
  const RecoveryConfig& config() const { return config_; }
  core::ItdosSystem& system() { return system_; }

  /// The membership epoch this manager has driven `domain` to (it is the
  /// sole submitter of membership_updates, so this tracks the GM's
  /// replicated epoch exactly).
  std::uint64_t epoch(DomainId domain) const;

  /// Submits an ordered SetResponsePolicy command to the GM (the §6f
  /// feedback controller's global actuator): suspicion-based expulsions will
  /// need `laggard_strikes` completed f+1 quorum tallies. Only this manager
  /// holds the recovery-authority identity the GM accepts it from.
  void set_response_policy(std::uint64_t laggard_strikes);

  /// Last policy submitted through set_response_policy (1 = baseline).
  std::uint64_t response_policy() const { return response_policy_; }

 private:
  struct Active {
    int rank = 0;
    int attempt = 0;
    NodeId retired;            // identity the current attempt replaces
    NodeId admitted;           // fresh identity of the current attempt
    SimTime triggered_at{};    // first trigger (MTTR measures from here)
    net::EventHandle watchdog{};
    net::EventHandle poll{};
  };

  void on_expulsion(DomainId domain, NodeId identity);
  void start(DomainId domain, int rank, SimTime triggered_at, int attempt);
  void arm_watchdog(DomainId domain);
  void poll_completion(DomainId domain);
  void complete(DomainId domain);
  void abort_attempt(DomainId domain);
  void finish(DomainId domain);  // pop the domain's queue, start next slot
  void emit(RecoveryEvent event);

  core::ItdosSystem& system_;
  RecoveryConfig config_;
  std::unique_ptr<bft::Client> authority_;  // recovery-authority identity

  std::map<DomainId, Active> active_;
  std::map<DomainId, std::deque<int>> queued_;          // ranks awaiting a slot
  std::map<DomainId, std::uint64_t> epochs_;            // driven membership epochs
  std::uint64_t response_policy_ = 1;                   // last submitted strikes
  std::set<std::pair<DomainId, NodeId>> handled_;       // dedup observer echoes
  std::vector<Listener> listeners_;
  RecoveryStats stats_;

  telemetry::Hub* tel_;
  struct {
    telemetry::Counter* started;
    telemetry::Counter* completed;
    telemetry::Counter* aborted;
    telemetry::Counter* failed;
    telemetry::Histogram* mttr_ns;
    telemetry::Gauge* recovering;  // slots mid-recovery, all domains
  } metrics_{};

  // The watchdog destroys elements and reschedules itself; lambdas in the
  // simulator hold a copy of this flag and become no-ops once the manager
  // is gone.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace itdos::recovery
