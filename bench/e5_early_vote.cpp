// E5 — §3.6 claim: the voter "requires a minimum of f+1 identical messages
// or 2f+1 total messages to perform a vote. It does not wait for all 3f+1
// messages to arrive before performing a vote since that would cause the
// system to be vulnerable to network delays and faulty processes that may be
// deliberately slow (or unresponsive)."
//
// Reproduced shape: with up to f crashed (or deliberately silent) elements,
// the decide-at-f+1 voter's latency is essentially unchanged, while a
// hypothetical wait-for-all-3f+1 voter never completes (reported as the
// time until ALL replies arrive — infinite when an element is down, measured
// here against a timeout).
#include "bench_util.hpp"

namespace itdos::bench {
namespace {

void BM_E5DecideLatency(benchmark::State& state) {
  // arg0 = number of crashed elements (0..f).
  const int crashed = static_cast<int>(state.range(0));
  const int f = 1;
  core::SystemOptions options;
  options.seed = 31;
  core::ItdosSystem system(options);
  const DomainId domain =
      system.add_domain(f, core::VotePolicy::exact(), calculator_installer());
  core::ItdosClient& client = system.add_client();
  const orb::ObjectRef ref = system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
  if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (int i = 0; i < crashed; ++i) system.crash_element(domain, 3 - i);

  std::int64_t total_sim_ns = 0;
  for (auto _ : state) {
    const SimTime before = system.sim().now();
    if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
      state.SkipWithError("invocation failed");
      return;
    }
    total_sim_ns += system.sim().now() - before;
  }
  state.counters["sim_us_to_decision"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["crashed_elements"] = benchmark::Counter(crashed);
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_E5DecideLatency)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(25);

void BM_E5WaitForAllBaseline(benchmark::State& state) {
  // The alternative design: wait for all 3f+1 replies. Measured as the
  // simulated time until the client has received every element's reply
  // (party stat replies_received). With a crashed element this never
  // happens; we report the time at which we gave up (the vote timeout) —
  // the availability failure the paper's rule avoids.
  const int crashed = static_cast<int>(state.range(0));
  const int f = 1;
  core::SystemOptions options;
  options.seed = 33;
  core::ItdosSystem system(options);
  const DomainId domain =
      system.add_domain(f, core::VotePolicy::exact(), calculator_installer());
  core::ClientOptions client_options;
  client_options.auto_report = false;
  core::ItdosClient& client = system.add_client(client_options);
  const orb::ObjectRef ref = system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
  if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  for (int i = 0; i < crashed; ++i) system.crash_element(domain, 3 - i);

  const std::uint64_t n = 3 * f + 1;
  std::int64_t total_sim_ns = 0;
  std::uint64_t gave_up = 0;
  for (auto _ : state) {
    const std::uint64_t replies_before = client.party().stats().replies_received;
    const SimTime before = system.sim().now();
    if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
      state.SkipWithError("invocation failed");
      return;
    }
    // Keep running until ALL n replies arrived or the give-up horizon.
    const SimTime horizon = system.sim().now() + millis(100);
    while (client.party().stats().replies_received - replies_before < n &&
           system.sim().now() < horizon) {
      if (!system.sim().step()) break;
    }
    if (client.party().stats().replies_received - replies_before < n) {
      ++gave_up;
      total_sim_ns += horizon - before;
    } else {
      total_sim_ns += system.sim().now() - before;
    }
  }
  state.counters["sim_us_to_all_replies"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["gave_up_fraction"] = benchmark::Counter(
      static_cast<double>(gave_up) / static_cast<double>(state.iterations()));
  state.counters["crashed_elements"] = benchmark::Counter(crashed);
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_E5WaitForAllBaseline)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)
    ->Iterations(10);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e5_early_vote");
