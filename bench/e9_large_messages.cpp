// E9 — §4 large messages: "While signing and voting on individual messages
// when they are of 'small' size can be a reasonable performance sacrifice
// for security, doing so on large ... objects could pose a significant
// problem." Sweep the request payload size through the fragmentation
// threshold and measure the full-stack cost.
#include "bench_util.hpp"

namespace itdos::bench {
namespace {

void BM_E9PayloadSweep(benchmark::State& state) {
  const std::size_t payload = static_cast<std::size_t>(state.range(0));
  core::SystemOptions options;
  options.seed = 91;
  options.timing.max_entry_bytes = 16384;
  options.timing.reply_vote_timeout_ns = seconds(2);
  core::ItdosSystem system(options);
  const DomainId domain =
      system.add_domain(1, core::VotePolicy::exact(), calculator_installer());
  core::ItdosClient& client = system.add_client();
  const orb::ObjectRef ref = system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
  if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }

  auto& ops = BenchReport::instance().registry().counter("e9.ops");
  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    system.network().reset_stats();
    const SimTime before = system.sim().now();
    const Result<cdr::Value> result = system.invoke_sync(
        client, ref, "echo", payload_of_size(payload), seconds(60));
    if (!result.is_ok()) {
      state.SkipWithError("invocation failed");
      return;
    }
    ops.inc();
    total_sim_ns += system.sim().now() - before;
    total_packets += system.network().stats().packets_delivered;
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["sim_us_per_call"] =
      benchmark::Counter(static_cast<double>(total_sim_ns) / 1e3 / iters);
  state.counters["pkts_per_call"] =
      benchmark::Counter(static_cast<double>(total_packets) / iters);
  state.counters["fragments"] = benchmark::Counter(static_cast<double>(
      (payload + options.timing.max_entry_bytes - 1) / options.timing.max_entry_bytes));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * payload));
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_E9PayloadSweep)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 16)->Arg(1 << 18)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e9_large_messages");
