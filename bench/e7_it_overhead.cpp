// E7 — the cost of intrusion tolerance: the same calculator workload on
//   (a) plain unreplicated CORBA over IIOP (no replication, no voting, no
//       encryption) — the baseline every CORBA deployment starts from, and
//   (b) ITDOS with f = 1..3.
//
// Reproduced shape: ITDOS pays a multiplicative latency and message-count
// overhead that grows with f — the price of tolerating f Byzantine servers,
// which §4 promises to quantify ("we will analyze the performance tradeoffs
// required for given levels of intrusion tolerance").
#include "bench_util.hpp"

#include "orb/iiop.hpp"

namespace itdos::bench {
namespace {

void BM_E7PlainIiop(benchmark::State& state) {
  net::Simulator sim(61);
  net::Network net(sim, net::NetConfig{micros(20), micros(80), 0.0, 0.0});
  orb::Orb server_orb(DomainId(1),
                      std::make_unique<orb::IiopProtocol>(
                          net, NodeId(11), orb::IiopDirectory{}));
  orb::IiopServer server(net, NodeId(1), server_orb);
  (void)server_orb.adapter().activate_with_key(ObjectId(1),
                                               std::make_shared<BenchCalculator>());
  orb::Orb client(DomainId(100),
                  std::make_unique<orb::IiopProtocol>(
                      net, NodeId(2), orb::IiopDirectory{{DomainId(1), NodeId(1)}}));
  orb::ObjectRef ref;
  ref.domain = DomainId(1);
  ref.key = ObjectId(1);
  ref.interface_name = "IDL:bench/Calc:1.0";

  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    net.reset_stats();
    const SimTime before = sim.now();
    std::optional<Result<cdr::Value>> outcome;
    client.invoke(ref, "add", int_args(20, 22),
                  [&](Result<cdr::Value> r) { outcome = std::move(r); });
    while (!outcome && sim.step()) {
    }
    if (!outcome || !outcome->is_ok()) {
      state.SkipWithError("IIOP invocation failed");
      return;
    }
    total_sim_ns += sim.now() - before;
    total_packets += net.stats().packets_delivered;
  }
  state.counters["sim_us_per_call"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["pkts_per_call"] = benchmark::Counter(
      static_cast<double>(total_packets) / static_cast<double>(state.iterations()));
  state.counters["replicas"] = benchmark::Counter(1.0);
  BenchReport::instance().harvest(sim);
}
BENCHMARK(BM_E7PlainIiop)->Iterations(100);

void BM_E7Itdos(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  core::SystemOptions options;
  options.seed = 62;
  core::ItdosSystem system(options);
  const DomainId domain =
      system.add_domain(f, core::VotePolicy::exact(), calculator_installer());
  core::ItdosClient& client = system.add_client();
  const orb::ObjectRef ref = system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
  if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    system.network().reset_stats();
    const SimTime before = system.sim().now();
    if (!system.invoke_sync(client, ref, "add", int_args(20, 22), seconds(30)).is_ok()) {
      state.SkipWithError("ITDOS invocation failed");
      return;
    }
    total_sim_ns += system.sim().now() - before;
    total_packets += system.network().stats().packets_delivered;
  }
  state.counters["sim_us_per_call"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["pkts_per_call"] = benchmark::Counter(
      static_cast<double>(total_packets) / static_cast<double>(state.iterations()));
  state.counters["replicas"] = benchmark::Counter(3.0 * f + 1);
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_E7Itdos)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond)
    ->Iterations(30);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e7_it_overhead");
