// E4 — §3.5 threshold key generation study.
//
// Compared designs:
//   * "traditional" Group Manager (the paper's strawman): each GM element
//     knows every communication key in full — one compromised element
//     exposes ALL keys;
//   * ITDOS distributed PRF: elements hold shares; f compromised elements
//     expose NOTHING (they miss at least one sub-key).
//
// Reproduced shapes: threshold keying costs more CPU (share evaluation +
// combination vs one PRF call), growing with C(n, f) sub-keys; the exposure
// counter collapses from "all connections" to zero. That cost/benefit is the
// paper's §3.5 argument.
#include "bench_util.hpp"

#include <set>

#include "itdos/group_manager.hpp"

namespace itdos::bench {
namespace {

using namespace itdos;

void BM_E4TraditionalKeygen(benchmark::State& state) {
  // One PRF evaluation per key, known in full to every GM element.
  const Bytes master = Rng(1).next_bytes(32);
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("e4.traditional_keygen_ns");
  telemetry::Counter& ops = reg.counter("e4.traditional_keygen_ops");
  std::uint64_t conn = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    ops.inc();
    const Bytes input = core::dprf_input(ConnectionId(++conn), KeyEpoch(1));
    const crypto::Digest key = crypto::hmac_sha256(master, input);
    benchmark::DoNotOptimize(key);
  }
  state.counters["keys_exposed_if_1_gm_compromised"] =
      benchmark::Counter(1.0);  // fraction: all of them
}
BENCHMARK(BM_E4TraditionalKeygen);

void BM_E4ThresholdDeal(benchmark::State& state) {
  // One-time setup cost: dealing C(n, f) sub-keys.
  const int f = static_cast<int>(state.range(0));
  const crypto::DprfParams params{3 * f + 1, f};
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto keys = crypto::dprf_deal(params, rng);
    benchmark::DoNotOptimize(keys);
  }
  state.counters["subkeys"] =
      benchmark::Counter(static_cast<double>(params.subsets().size()));
}
BENCHMARK(BM_E4ThresholdDeal)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_E4ThresholdElementEvaluate(benchmark::State& state) {
  // Per-connection cost at ONE GM element: evaluating its share.
  const int f = static_cast<int>(state.range(0));
  const crypto::DprfParams params{3 * f + 1, f};
  Rng rng(2);
  auto keys = crypto::dprf_deal(params, rng);
  crypto::DprfElement element(params, keys[0]);
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("e4.share_evaluate_ns");
  telemetry::Counter& ops = reg.counter("e4.share_evaluate_ops");
  std::uint64_t conn = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    ops.inc();
    const Bytes input = core::dprf_input(ConnectionId(++conn), KeyEpoch(1));
    auto share = element.evaluate(input);
    benchmark::DoNotOptimize(share);
  }
}
BENCHMARK(BM_E4ThresholdElementEvaluate)->Arg(1)->Arg(2)->Arg(3);

void BM_E4ThresholdCombine(benchmark::State& state) {
  // Party-side cost: verifying and combining 2f+1 shares into the key.
  const int f = static_cast<int>(state.range(0));
  const crypto::DprfParams params{3 * f + 1, f};
  Rng rng(3);
  auto keys = crypto::dprf_deal(params, rng);
  std::uint64_t conn = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Bytes input = core::dprf_input(ConnectionId(++conn), KeyEpoch(1));
    std::vector<crypto::DprfShare> shares;
    for (int i = 0; i < 2 * f + 1; ++i) {
      shares.push_back(crypto::DprfElement(params, keys[static_cast<std::size_t>(i)])
                           .evaluate(input));
    }
    state.ResumeTiming();
    ScopedHostTimer timer(
        BenchReport::instance().registry().histogram("e4.share_combine_ns"));
    BenchReport::instance().registry().counter("e4.share_combine_ops").inc();
    crypto::DprfCombiner combiner(params, input);
    for (auto& share : shares) (void)combiner.add_share(share);
    auto key = combiner.combine();
    benchmark::DoNotOptimize(key);
  }
  state.counters["keys_exposed_if_f_gm_compromised"] = benchmark::Counter(0.0);
}
BENCHMARK(BM_E4ThresholdCombine)->Arg(1)->Arg(2)->Arg(3);

void BM_E4ExposureAudit(benchmark::State& state) {
  // Not a timing bench: verifies and reports the exposure numbers the two
  // designs give an attacker who compromises `f` GM elements, over 100
  // established connections.
  const int f = static_cast<int>(state.range(0));
  const crypto::DprfParams params{3 * f + 1, f};
  Rng rng(4);
  const auto keys = crypto::dprf_deal(params, rng);
  const auto subsets = params.subsets();
  for (auto _ : state) {
    // Pool the sub-keys of the first f elements.
    std::set<int> covered;
    for (int i = 0; i < f; ++i) {
      for (const auto& [id, k] : keys[static_cast<std::size_t>(i)].subkeys) {
        covered.insert(id);
      }
    }
    // A key is exposed iff the coalition covers every sub-key.
    const bool exposed = covered.size() == subsets.size();
    benchmark::DoNotOptimize(exposed);
    if (exposed) {
      state.SkipWithError("threshold scheme leaked to an f-coalition!");
      return;
    }
  }
  state.counters["threshold_keys_exposed_of_100"] = benchmark::Counter(0.0);
  state.counters["traditional_keys_exposed_of_100"] = benchmark::Counter(100.0);
}
BENCHMARK(BM_E4ExposureAudit)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e4_threshold_keys");
