// F2 — Figure 2 reproduction: per-layer cost of one invocation through the
// SMIOP protocol stack. Each benchmark isolates one layer of the exploded
// stack the figure shows:
//
//   Marshal (CDR/GIOP)  ->  Seal (communication key)  ->  Secure Reliable
//   Multicast (PBFT ordering)  ->  Queue Management  ->  Unseal + Unmarshal
//   ->  Voter
//
// Payload size is swept so the per-layer scaling is visible (the §4 "large
// objects" concern).
#include "bench_util.hpp"

#include "bft/harness.hpp"
#include "itdos/queue.hpp"

namespace itdos::bench {
namespace {

cdr::RequestMessage request_of_size(std::size_t bytes) {
  cdr::RequestMessage req;
  req.request_id = RequestId(1);
  req.object_key = ObjectId(1);
  req.operation = "echo";
  req.interface_name = "IDL:bench/Calc:1.0";
  req.arguments = payload_of_size(bytes);
  return req;
}

void BM_Layer_Marshal(benchmark::State& state) {
  const auto req = request_of_size(static_cast<std::size_t>(state.range(0)));
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("fig2.marshal_ns");
  telemetry::Counter& ops = reg.counter("fig2.marshal_ops");
  std::size_t wire_size = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    const Bytes wire = cdr::encode_giop(cdr::GiopMessage(req));
    wire_size = wire.size();
    benchmark::DoNotOptimize(wire);
    ops.inc();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * wire_size));
}
BENCHMARK(BM_Layer_Marshal)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_Layer_Unmarshal(benchmark::State& state) {
  const Bytes wire = cdr::encode_giop(
      cdr::GiopMessage(request_of_size(static_cast<std::size_t>(state.range(0)))));
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("fig2.unmarshal_ns");
  telemetry::Counter& ops = reg.counter("fig2.unmarshal_ops");
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    auto parsed = cdr::parse_giop(wire);
    benchmark::DoNotOptimize(parsed);
    ops.inc();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_Layer_Unmarshal)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_Layer_Seal(benchmark::State& state) {
  const Bytes plain = cdr::encode_giop(
      cdr::GiopMessage(request_of_size(static_cast<std::size_t>(state.range(0)))));
  crypto::SymmetricKey key;
  key.bytes.fill(0x42);
  const Bytes aad = core::seal_aad(ConnectionId(1), RequestId(1), KeyEpoch(1), false);
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("fig2.seal_ns");
  telemetry::Counter& ops = reg.counter("fig2.seal_ops");
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    const Bytes sealed = crypto::seal(key, crypto::make_nonce(1, ++nonce), aad, plain);
    benchmark::DoNotOptimize(sealed);
    ops.inc();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * plain.size()));
}
BENCHMARK(BM_Layer_Seal)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_Layer_Unseal(benchmark::State& state) {
  const Bytes plain = cdr::encode_giop(
      cdr::GiopMessage(request_of_size(static_cast<std::size_t>(state.range(0)))));
  crypto::SymmetricKey key;
  key.bytes.fill(0x42);
  const Bytes aad = core::seal_aad(ConnectionId(1), RequestId(1), KeyEpoch(1), false);
  const Bytes sealed = crypto::seal(key, crypto::make_nonce(1, 1), aad, plain);
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("fig2.unseal_ns");
  telemetry::Counter& ops = reg.counter("fig2.unseal_ops");
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    auto opened = crypto::open(key, aad, sealed);
    benchmark::DoNotOptimize(opened);
    ops.inc();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * plain.size()));
}
BENCHMARK(BM_Layer_Unseal)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_Layer_BftOrdering(benchmark::State& state) {
  // The Secure Reliable Multicast layer alone: one ordered no-op request
  // through a 3f+1 PBFT group (f = 1).
  bft::ClusterOptions options;
  options.f = 1;
  bft::Cluster cluster(options,
                       [](int) { return std::make_unique<bft::LogStateMachine>(); });
  bft::Client& client = cluster.add_client();
  const BufView payload = Bytes(static_cast<std::size_t>(state.range(0)), 0x5a);
  std::int64_t total_sim_ns = 0;
  for (auto _ : state) {
    const SimTime before = cluster.sim().now();
    if (!cluster.invoke_sync(client, payload).is_ok()) {
      state.SkipWithError("ordering failed");
      return;
    }
    total_sim_ns += cluster.sim().now() - before;
  }
  state.counters["sim_us_per_order"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  BenchReport::instance().harvest(cluster.sim());
}
BENCHMARK(BM_Layer_BftOrdering)->Arg(64)->Arg(16384)->Iterations(50);

void BM_Layer_QueueManagement(benchmark::State& state) {
  // Append + consume + periodic ack bookkeeping per entry.
  core::QueueOptions options;
  options.n = 4;
  options.f = 1;
  core::QueueStateMachine queue(options);
  core::OrderedMsg msg;
  msg.conn = ConnectionId(1);
  msg.origin = NodeId(1);
  msg.epoch = KeyEpoch(1);
  msg.sealed_giop = Bytes(static_cast<std::size_t>(state.range(0)), 0x5a);
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("fig2.queue_append_ns");
  telemetry::Counter& ops = reg.counter("fig2.queue_append_ops");
  std::uint64_t rid = 0;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    ops.inc();
    msg.rid = RequestId(++rid);
    queue.execute(msg.encode(), NodeId(9), SeqNum(++seq));
    benchmark::DoNotOptimize(queue.next());
    if (rid % 8 == 0) {
      for (int e = 1; e <= 3; ++e) {
        queue.execute(core::QueueAckMsg{NodeId(100 + e), rid}.encode(), NodeId(9),
                      SeqNum(++seq));
      }
    }
  }
}
BENCHMARK(BM_Layer_QueueManagement)->Arg(64)->Arg(16384);

void BM_Layer_Vote(benchmark::State& state) {
  // One complete vote: 2f+1 = 3 ballots of the given payload size.
  const Bytes plain = cdr::encode_giop(
      cdr::GiopMessage(request_of_size(static_cast<std::size_t>(state.range(0)))));
  const auto parsed = cdr::parse_giop(plain);
  const auto& req = std::get<cdr::RequestMessage>(parsed.value());
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("fig2.vote_ns");
  telemetry::Counter& ops = reg.counter("fig2.vote_ops");
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    ops.inc();
    core::Vote vote(1, core::VotePolicy::exact());
    for (int i = 0; i < 3; ++i) {
      core::Ballot ballot;
      ballot.source = NodeId(static_cast<std::uint64_t>(i + 1));
      ballot.raw = plain;
      ballot.value = req.arguments;
      benchmark::DoNotOptimize(vote.add(std::move(ballot)));
    }
  }
}
BENCHMARK(BM_Layer_Vote)->Arg(64)->Arg(16384)->Arg(262144);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("fig2_stack_breakdown");
