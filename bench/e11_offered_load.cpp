// E11 — offered-load sweeps (DESIGN.md §6f): the latency-vs-offered-load
// curve of one replicated domain under an open-loop population, with and
// without the feedback response controller, calm and under an adaptive
// link adversary. Each curve point is an independent deployment driven by
// the same seed/arrival schedule, so points differ only in the offered
// rate. The "curves" block of BENCH_e11_offered_load.json carries the
// knee; the gauges block carries the queue.depth / admission.shed time
// series of the representative run (top rate, attack, controller on).
//
// Why the controller wins goodput under attack: both configurations run
// proactive rejuvenation on the same short resting period. The controller
// widens that period when replicated queue depth crosses its overload
// band — rotation costs a replica for its MTTR, and under overload that
// capacity buys more goodput than the exposure-window shrink is worth.
// The uncontrolled configuration keeps rotating mid-overload and pays
// for every recovery with voted-reply latency and vote timeouts.
#include "bench_util.hpp"

#include <optional>

#include "control/controller.hpp"
#include "fault/injector.hpp"
#include "load/sweep.hpp"
#include "recovery/proactive.hpp"
#include "recovery/recovery_manager.hpp"

namespace itdos::bench {
namespace {

/// Stateless ops, but rotation needs save/load to produce a replacement
/// bundle — an empty one keeps the real transfer path with trivial payload.
class RotatableCalculator : public BenchCalculator {
 public:
  Result<Bytes> save_state() const override { return Bytes{}; }
  Status load_state(ByteView) override { return Status::ok(); }
};

core::DomainElement::ServantInstaller rotatable_installer() {
  return [](orb::ObjectAdapter& adapter, int) {
    // Key 1 is free in a freshly built domain; activation cannot fail.
    (void)adapter.activate_with_key(ObjectId(1),
                                    std::make_shared<RotatableCalculator>());
  };
}

constexpr std::uint64_t kSeed = 2026;
constexpr std::int64_t kHorizonNs = millis(250);
constexpr std::int64_t kRestingPeriodNs = millis(400);

load::SweepOptions sweep_options() {
  load::SweepOptions options;
  options.rates = {800.0, 1600.0, 3200.0, 6400.0};
  options.arrival.kind = load::ArrivalKind::kFixedRate;
  options.arrival.horizon_ns = kHorizonNs;
  options.seed = kSeed;
  options.clients = 24;
  options.max_client_backlog = 48;
  options.mix.push_back(load::LoadOp{"add", int_args(2, 3), 3.0, {}});
  options.mix.push_back(load::LoadOp{"echo", payload_of_size(64), 1.0, {}});
  options.drain_ns = seconds(5);
  return options;
}

/// Runs one offered-load sweep and records its curve. `harvest_top` marks
/// the representative configuration: only its top-rate run merges into the
/// report registry, so the exported queue.depth / admission.shed series are
/// one clean run, not an interleaving of twelve.
void run_sweep(benchmark::State& state, const std::string& curve, bool attack,
               bool controller_on, bool harvest_top) {
  load::SweepOptions options = sweep_options();
  const double top_rate = options.rates.back();
  load::OfferedLoadSweep sweep(options);
  bool ok = true;

  sweep.run([&](double rate, const load::LoadOptions& load_options,
                const load::OfferedLoadSweep::Body& body) {
    core::SystemOptions system_options;
    system_options.seed = kSeed;
    system_options.timing.ack_interval = 2;  // tight GC: queues reopen fast
    system_options.timing.admission_max_depth = 24;
    core::ItdosSystem system(system_options);
    const DomainId domain =
        system.add_domain(1, core::VotePolicy::exact(), rotatable_installer());

    // Both configurations run the full recovery stack at the same resting
    // rotation period; only the feedback loop differs.
    recovery::RecoveryManager manager(system);
    manager.watch();
    recovery::ProactiveScheduler scheduler(manager, kRestingPeriodNs);
    scheduler.add_domain(domain, system.domain_n(domain));
    scheduler.start();

    std::optional<fault::FaultInjector> injector;
    if (attack) {
      fault::FaultPlan plan;
      plan.seed = kSeed;
      plan.heal_time = SimTime{kHorizonNs};
      fault::AdaptiveFault adaptive;
      adaptive.window.until = plan.heal_time;
      adaptive.interval_ns = millis(20);
      adaptive.delay_probability = 0.35;
      adaptive.delay_min_ns = micros(200);
      adaptive.delay_max_ns = millis(2);
      plan.adaptive_faults.push_back(adaptive);
      injector.emplace(system.network(), plan);
      injector->arm_links();
      for (const fault::AdaptiveFault& fault : injector->plan().adaptive_faults) {
        injector->arm_adaptive(fault, system, domain);
      }
    }

    std::optional<control::ResponseController> controller;
    if (controller_on) {
      control::ResponseControllerOptions copts;
      copts.interval_ns = millis(25);
      // Floor == base: suspicion cannot push rotation below the resting
      // rate in a run this short; overload response (widen) is live.
      copts.law.min_period_ns = kRestingPeriodNs;
      copts.law.base_period_ns = kRestingPeriodNs;
      copts.law.max_period_ns = seconds(4);
      // The admission bound caps depth at 24, so the overload band must sit
      // inside it; low stays above the ~2x ack_interval GC residual.
      copts.law.depth_high = 12;
      copts.law.depth_low = 6;
      controller.emplace(system, manager, scheduler, copts);
      controller->start();
    }

    const orb::ObjectRef ref =
        system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
    load::LoadGenerator generator(system, ref, load_options);
    body(system, generator);

    scheduler.stop();
    if (controller) controller->stop();
    system.settle();
    if (!generator.done()) ok = false;
    if (harvest_top && rate == top_rate) {
      BenchReport::instance().harvest(system.sim());
    }
  });

  std::uint64_t total_ok = 0;
  for (const load::SweepPoint& point : sweep.points()) {
    BenchReport::CurvePoint cp;
    cp.rate_per_s = point.rate_per_s;
    cp.offered = point.report.offered;
    cp.ok = point.report.ok;
    cp.overloaded = point.report.overloaded;
    cp.failed = point.report.failed;
    cp.starved = point.report.starved;
    cp.sheds = point.sheds;
    cp.p50_ns = point.report.p50_latency_ns;
    cp.p99_ns = point.report.p99_latency_ns;
    cp.goodput_per_s = point.report.goodput_per_s;
    BenchReport::instance().add_curve_point(curve, cp);
    total_ok += point.report.ok;
  }
  if (!ok) {
    state.SkipWithError("a sweep point did not drain");
    return;
  }
  state.counters["points"] =
      benchmark::Counter(static_cast<double>(sweep.points().size()));
  state.counters["ok_total"] =
      benchmark::Counter(static_cast<double>(total_ok));
  state.counters["goodput_top"] = benchmark::Counter(
      sweep.points().empty() ? 0.0
                             : sweep.points().back().report.goodput_per_s);
}

void BM_E11CalmBaseline(benchmark::State& state) {
  for (auto _ : state) {
    run_sweep(state, "calm_baseline", /*attack=*/false,
              /*controller_on=*/false, /*harvest_top=*/false);
  }
}
BENCHMARK(BM_E11CalmBaseline)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_E11AttackControllerOff(benchmark::State& state) {
  for (auto _ : state) {
    run_sweep(state, "attack_controller_off", /*attack=*/true,
              /*controller_on=*/false, /*harvest_top=*/false);
  }
}
BENCHMARK(BM_E11AttackControllerOff)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_E11AttackControllerOn(benchmark::State& state) {
  for (auto _ : state) {
    run_sweep(state, "attack_controller_on", /*attack=*/true,
              /*controller_on=*/true, /*harvest_top=*/true);
  }
}
BENCHMARK(BM_E11AttackControllerOn)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e11_offered_load");
