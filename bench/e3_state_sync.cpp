// E3 — §3.1 / §5 claim: "ITDOS improves scalability independent of the
// number of objects by using a message queue to synchronize replica state,
// as opposed to state transfer techniques."
//
// Two synchronization strategies over the same PBFT substrate:
//   * state-transfer baseline (stock Castro-Liskov): the application state
//     IS the checkpointed state — snapshot size grows with servant state;
//   * ITDOS message queue: the checkpointed state is the un-GC'd queue
//     window — snapshot size is independent of servant state.
//
// Reproduced shape: baseline snapshot cost/size linear in object-state size;
// queue snapshot flat. The recovery bench shows the same on the wire: a
// lagging baseline replica pulls the whole object state, a queue replica
// pulls only the window.
#include "bench_util.hpp"

#include "bft/harness.hpp"
#include "itdos/queue.hpp"

namespace itdos::bench {
namespace {

using namespace itdos;

/// Stock Castro-Liskov style application: object state in one contiguous
/// block, checkpointed wholesale.
class FatStateMachine : public bft::StateMachine {
 public:
  explicit FatStateMachine(std::size_t state_bytes) : state_(state_bytes, 0x7a) {}

  Bytes execute(const BufView& request, NodeId, SeqNum) override {
    // Touch a few bytes so execution isn't free.
    for (std::size_t i = 0; i < std::min<std::size_t>(request.size(), 16); ++i) {
      state_[i % state_.size()] ^= request[i];
    }
    return to_bytes("OK");
  }
  Bytes snapshot() const override { return state_; }
  Status restore(ByteView snapshot) override {
    state_.assign(snapshot.begin(), snapshot.end());
    return Status::ok();
  }

 private:
  Bytes state_;
};

core::QueueStateMachine loaded_queue(int entries) {
  core::QueueOptions options;
  options.n = 4;
  options.f = 1;
  core::QueueStateMachine queue(options);
  core::OrderedMsg msg;
  msg.conn = ConnectionId(1);
  msg.origin = NodeId(1);
  msg.epoch = KeyEpoch(1);
  msg.sealed_giop = Bytes(256, 0x5a);
  for (int i = 1; i <= entries; ++i) {
    msg.rid = RequestId(static_cast<std::uint64_t>(i));
    queue.execute(msg.encode(), NodeId(9), SeqNum(static_cast<std::uint64_t>(i)));
  }
  return queue;
}

void BM_E3SnapshotStateTransfer(benchmark::State& state) {
  // Baseline: snapshot size == servant state size (swept).
  FatStateMachine app(static_cast<std::size_t>(state.range(0)));
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("e3.snapshot_state_transfer_ns");
  telemetry::Counter& ops = reg.counter("e3.snapshot_state_transfer_ops");
  std::size_t snapshot_size = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    ops.inc();
    const Bytes snap = app.snapshot();
    snapshot_size = snap.size();
    benchmark::DoNotOptimize(snap);
  }
  state.counters["snapshot_kb"] =
      benchmark::Counter(static_cast<double>(snapshot_size) / 1024.0);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * snapshot_size));
}
BENCHMARK(BM_E3SnapshotStateTransfer)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_E3SnapshotMessageQueue(benchmark::State& state) {
  // ITDOS: snapshot size == queue window (16 entries here) regardless of
  // how big the servant state is — the arg only sizes a servant blob that
  // the queue snapshot never touches.
  const Bytes servant_state(static_cast<std::size_t>(state.range(0)), 0x7a);
  core::QueueStateMachine queue = loaded_queue(16);
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("e3.snapshot_message_queue_ns");
  telemetry::Counter& ops = reg.counter("e3.snapshot_message_queue_ops");
  std::size_t snapshot_size = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    ops.inc();
    const Bytes snap = queue.snapshot();
    snapshot_size = snap.size();
    benchmark::DoNotOptimize(snap);
    benchmark::DoNotOptimize(servant_state.data());
  }
  state.counters["snapshot_kb"] =
      benchmark::Counter(static_cast<double>(snapshot_size) / 1024.0);
}
BENCHMARK(BM_E3SnapshotMessageQueue)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_E3QueueSnapshotVsWindow(benchmark::State& state) {
  // The quantity queue snapshots DO scale with: the un-GC'd window size.
  core::QueueStateMachine queue = loaded_queue(static_cast<int>(state.range(0)));
  std::size_t snapshot_size = 0;
  for (auto _ : state) {
    const Bytes snap = queue.snapshot();
    snapshot_size = snap.size();
    benchmark::DoNotOptimize(snap);
  }
  state.counters["snapshot_kb"] =
      benchmark::Counter(static_cast<double>(snapshot_size) / 1024.0);
}
BENCHMARK(BM_E3QueueSnapshotVsWindow)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_E3RecoveryWireCost(benchmark::State& state) {
  // Full-path recovery: a replica is cut off, the group makes progress past
  // a checkpoint, the link heals and the replica state-transfers. Wire bytes
  // during recovery are dominated by the snapshot — object-state-sized for
  // the baseline, window-sized for ITDOS queues.
  const std::size_t object_state = static_cast<std::size_t>(state.range(0));
  std::uint64_t recovery_bytes_total = 0;
  std::uint64_t seed = 21;
  for (auto _ : state) {
    bft::ClusterOptions options;
    options.f = 1;
    options.seed = seed++;
    options.checkpoint_interval = 4;
    bft::Cluster cluster(options, [&](int) {
      return std::make_unique<FatStateMachine>(object_state);
    });
    const NodeId lagger = cluster.replica_id(3);
    for (int rank = 0; rank < 3; ++rank) {
      cluster.network().set_link(lagger, cluster.replica_id(rank), false);
    }
    bft::Client& client = cluster.add_client();
    for (int i = 0; i < 9; ++i) {
      if (!cluster.invoke_sync(client, to_bytes("x")).is_ok()) {
        state.SkipWithError("progress failed");
        return;
      }
    }
    cluster.settle();
    cluster.network().heal_all_links();
    cluster.network().reset_stats();
    for (int i = 0; i < 5; ++i) {
      (void)cluster.invoke_sync(client, to_bytes("x"));
    }
    cluster.settle();
    if (cluster.replica(3).stats().state_transfers == 0) {
      state.SkipWithError("no state transfer happened");
      return;
    }
    recovery_bytes_total += cluster.network().stats().bytes_delivered;
    BenchReport::instance().harvest(cluster.sim());
  }
  state.counters["recovery_wire_kb"] = benchmark::Counter(
      static_cast<double>(recovery_bytes_total) / 1024.0 /
      static_cast<double>(state.iterations()));
  state.counters["object_state_kb"] =
      benchmark::Counter(static_cast<double>(object_state) / 1024.0);
}
BENCHMARK(BM_E3RecoveryWireCost)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e3_state_sync");
