// F1 — Figure 1 reproduction: singleton client -> replicated server through
// the full ITDOS stack (GM connection establishment, BFT ordering, queue
// consumption, voted replies), swept over the fault threshold f.
//
// Paper claim exercised: the nominal configuration works and its cost grows
// with the replication degree (quantified further in e1/e7).
#include "bench_util.hpp"

#include <algorithm>

namespace itdos::bench {
namespace {

void BM_Fig1EndToEnd(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  core::SystemOptions options;
  options.seed = 42;
  core::ItdosSystem system(options);
  const DomainId domain =
      system.add_domain(f, core::VotePolicy::exact(), calculator_installer());
  core::ItdosClient& client = system.add_client();
  const orb::ObjectRef ref = system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");

  // Warm the connection (establishment is measured separately in fig3).
  if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
    state.SkipWithError("warmup invocation failed");
    return;
  }

  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    system.network().reset_stats();
    const SimTime before = system.sim().now();
    const Result<cdr::Value> result =
        system.invoke_sync(client, ref, "add", int_args(20, 22), seconds(30));
    if (!result.is_ok() || result.value().as_int64() != 42) {
      state.SkipWithError("invocation failed");
      return;
    }
    total_sim_ns += system.sim().now() - before;
    total_packets += system.network().stats().packets_delivered;
  }
  state.counters["sim_us_per_call"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["pkts_per_call"] = benchmark::Counter(
      static_cast<double>(total_packets) / static_cast<double>(state.iterations()));
  state.counters["replicas"] = benchmark::Counter(3.0 * f + 1);
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_Fig1EndToEnd)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond)
    ->Iterations(30);

void BM_Fig1EndToEndBatched(benchmark::State& state) {
  // The same stack with batch formation + pipelined agreement enabled in
  // every domain (ProtocolTiming knobs). Serial invocations measure the
  // LOW-LOAD cost of batching: each lone request rides out at most one
  // formation hold, so sim_us_per_call here vs BM_Fig1EndToEnd/1 is the
  // latency price of leaving batching on (acceptance: p99 within 1.5x).
  core::SystemOptions options;
  options.seed = 42;
  options.timing.batch_max_entries = 4;
  // A serial lone request always rides out the full hold; 60us keeps the
  // low-load latency price under 1.5x while still coalescing under load.
  options.timing.batch_max_hold_ns = micros(60);
  options.timing.pipeline_depth = 4;
  core::ItdosSystem system(options);
  const DomainId domain =
      system.add_domain(1, core::VotePolicy::exact(), calculator_installer());
  core::ItdosClient& client = system.add_client();
  const orb::ObjectRef ref =
      system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");

  if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
    state.SkipWithError("warmup invocation failed");
    return;
  }

  std::int64_t total_sim_ns = 0;
  std::vector<std::int64_t> latencies;
  for (auto _ : state) {
    const SimTime before = system.sim().now();
    const Result<cdr::Value> result =
        system.invoke_sync(client, ref, "add", int_args(20, 22), seconds(30));
    if (!result.is_ok() || result.value().as_int64() != 42) {
      state.SkipWithError("invocation failed");
      return;
    }
    const std::int64_t elapsed = system.sim().now() - before;
    total_sim_ns += elapsed;
    latencies.push_back(elapsed);
  }
  std::sort(latencies.begin(), latencies.end());
  state.counters["sim_us_per_call"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["p99_us"] = benchmark::Counter(
      static_cast<double>(latencies[latencies.size() * 99 / 100]) / 1e3);
  BenchReport::CurvePoint point;
  point.rate_per_s = 1;  // serial: one request in flight
  point.offered = latencies.size();
  point.ok = latencies.size();
  point.p50_ns = latencies[latencies.size() / 2];
  point.p99_ns = latencies[latencies.size() * 99 / 100];
  point.goodput_per_s =
      static_cast<double>(latencies.size()) * 1e9 / static_cast<double>(total_sim_ns);
  BenchReport::instance().add_curve_point("fig1_batched_lowload", point);
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_Fig1EndToEndBatched)->Unit(benchmark::kMillisecond)->Iterations(30);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("fig1_end_to_end");
