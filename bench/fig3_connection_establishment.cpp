// F3 — Figure 3 reproduction: connection establishment via the Group
// Manager (open_request -> threshold key generation -> share distribution ->
// combination) versus reuse of an established connection.
//
// Paper claim exercised (§3.4): "connection-establishment is a fairly
// heavyweight process, connection reuse enhances performance". The bench
// reports the simulated time of (a) the first invocation on a fresh
// connection (which includes the Figure-3 exchange) and (b) a subsequent
// invocation reusing it.
#include "bench_util.hpp"

namespace itdos::bench {
namespace {

void BM_Fig3ColdConnection(benchmark::State& state) {
  const int gm_f = static_cast<int>(state.range(0));
  std::int64_t total_sim_ns = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::SystemOptions options;
    options.seed = seed++;
    options.gm_f = gm_f;
    core::ItdosSystem system(options);
    const DomainId domain =
        system.add_domain(1, core::VotePolicy::exact(), calculator_installer());
    core::ItdosClient& client = system.add_client();
    const orb::ObjectRef ref =
        system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
    const SimTime before = system.sim().now();
    if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
      state.SkipWithError("cold invocation failed");
      return;
    }
    total_sim_ns += system.sim().now() - before;
    BenchReport::instance().harvest(system.sim());
  }
  state.counters["sim_us_first_call"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["gm_elements"] = benchmark::Counter(3.0 * gm_f + 1);
}
BENCHMARK(BM_Fig3ColdConnection)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->Iterations(10);

void BM_Fig3WarmConnection(benchmark::State& state) {
  const int gm_f = static_cast<int>(state.range(0));
  core::SystemOptions options;
  options.seed = 7;
  options.gm_f = gm_f;
  core::ItdosSystem system(options);
  const DomainId domain =
      system.add_domain(1, core::VotePolicy::exact(), calculator_installer());
  core::ItdosClient& client = system.add_client();
  const orb::ObjectRef ref = system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
  if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }
  std::int64_t total_sim_ns = 0;
  for (auto _ : state) {
    const SimTime before = system.sim().now();
    if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
      state.SkipWithError("warm invocation failed");
      return;
    }
    total_sim_ns += system.sim().now() - before;
  }
  state.counters["sim_us_per_call"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["gm_elements"] = benchmark::Counter(3.0 * gm_f + 1);
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_Fig3WarmConnection)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->Iterations(30);

void BM_Fig3SharesOnly(benchmark::State& state) {
  // The cryptographic part of establishment in isolation: every GM element
  // evaluates its DPRF share and the party combines 2f+1 of them.
  const int gm_f = static_cast<int>(state.range(0));
  const crypto::DprfParams params{3 * gm_f + 1, gm_f};
  Rng rng(11);
  const auto keys = crypto::dprf_deal(params, rng);
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("fig3.shares_combine_ns");
  telemetry::Counter& ops = reg.counter("fig3.shares_combine_ops");
  std::uint64_t conn = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    ops.inc();
    const Bytes input = core::dprf_input(ConnectionId(++conn), KeyEpoch(1));
    crypto::DprfCombiner combiner(params, input);
    for (int i = 0; i < 2 * gm_f + 1; ++i) {
      crypto::DprfElement element(params, keys[static_cast<std::size_t>(i)]);
      (void)combiner.add_share(element.evaluate(input));
    }
    auto key = combiner.combine();
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_Fig3SharesOnly)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("fig3_connection_establishment");
