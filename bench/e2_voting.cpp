// E2 — §3.6 voting study: unmarshalled (VVM-style) voting vs the
// byte-by-byte baseline (Immune [25], Rampart [36], stock Castro-Liskov),
// exact vs inexact policies, across payload shapes.
//
// Reproduced shapes:
//   * byte-by-byte voting FAILS to decide across heterogeneous replicas
//     (counter "decided" = 0) while unmarshalled voting decides on exactly
//     the same replies;
//   * inexact voting is required once replies carry platform float jitter;
//   * voting cost scales with the unmarshalled value size, and unmarshalled
//     voting costs more CPU than byte comparison — the price of
//     heterogeneity tolerance.
#include "bench_util.hpp"

#include "itdos/voting.hpp"

namespace itdos::bench {
namespace {

using namespace itdos;
using cdr::Value;
using core::Ballot;
using core::Vote;
using core::VotePolicy;

/// Replies from a heterogeneous 3f+1 group: alternating byte orders, with
/// optional per-replica float jitter.
std::vector<Ballot> heterogeneous_ballots(int n, std::size_t floats,
                                          double jitter) {
  std::vector<Ballot> out;
  for (int i = 0; i < n; ++i) {
    std::vector<Value> elems;
    for (std::size_t k = 0; k < floats; ++k) {
      elems.push_back(
          Value::float64(1.5 * static_cast<double>(k + 1) + i * jitter));
    }
    const Value value = Value::sequence(std::move(elems));
    Ballot ballot;
    ballot.source = NodeId(static_cast<std::uint64_t>(i + 1));
    ballot.raw = value.encode(i % 2 == 0 ? cdr::ByteOrder::kLittleEndian
                                         : cdr::ByteOrder::kBigEndian);
    ballot.value = value;
    out.push_back(std::move(ballot));
  }
  return out;
}

void run_policy_bench(benchmark::State& state, VotePolicy policy, double jitter) {
  const int f = 1;
  const auto ballots =
      heterogeneous_ballots(3 * f + 1, static_cast<std::size_t>(state.range(0)), jitter);
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("e2.vote_ns");
  telemetry::Counter& started = reg.counter("e2.votes_started");
  telemetry::Counter& decided_counter = reg.counter("e2.votes_decided");
  std::uint64_t decided = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    started.inc();
    Vote vote(f, policy);
    bool done = false;
    for (const Ballot& b : ballots) {
      if (vote.add(b)) {
        done = true;
        break;
      }
    }
    if (done) decided_counter.inc();
    decided += done ? 1 : 0;
  }
  state.counters["decided"] = benchmark::Counter(
      static_cast<double>(decided) / static_cast<double>(state.iterations()));
}

void BM_E2ExactUnmarshalled(benchmark::State& state) {
  run_policy_bench(state, VotePolicy::exact(), /*jitter=*/0.0);
}
BENCHMARK(BM_E2ExactUnmarshalled)->Arg(4)->Arg(64)->Arg(1024);

void BM_E2ByteByByte_Heterogeneous(benchmark::State& state) {
  // Expected: decided = 0 — the §3.6 failure. Fully heterogeneous replicas
  // (different byte orders AND per-platform float rounding) never produce
  // f+1 byte-identical replies.
  run_policy_bench(state, VotePolicy::byte_by_byte(), /*jitter=*/1e-12);
}
BENCHMARK(BM_E2ByteByByte_Heterogeneous)->Arg(4)->Arg(64)->Arg(1024);

void BM_E2ByteByByte_EndianOnly(benchmark::State& state) {
  // With ONLY byte-order diversity (2 platforms, 2 replicas each) a byte
  // voter still limps along by matching the same-endian pair — until any
  // same-endian replica fails. Expected: decided = 1, but support comes
  // exclusively from one platform (a 2-of-4 fragility the counters expose).
  run_policy_bench(state, VotePolicy::byte_by_byte(), /*jitter=*/0.0);
}
BENCHMARK(BM_E2ByteByByte_EndianOnly)->Arg(4)->Arg(64);

void BM_E2ExactUnderJitter(benchmark::State& state) {
  // Expected: decided = 0 — exact equality also fails on inexact values.
  run_policy_bench(state, VotePolicy::exact(), /*jitter=*/1e-12);
}
BENCHMARK(BM_E2ExactUnderJitter)->Arg(4)->Arg(64);

void BM_E2InexactUnderJitter(benchmark::State& state) {
  // Expected: decided = 1 — inexact voting absorbs platform jitter.
  run_policy_bench(state, VotePolicy::inexact(1e-9), /*jitter=*/1e-12);
}
BENCHMARK(BM_E2InexactUnderJitter)->Arg(4)->Arg(64)->Arg(1024);

void BM_E2ByteByByte_Homogeneous(benchmark::State& state) {
  // The baseline's home turf: identical platforms, identical bytes. This is
  // the case Immune/Rampart support; it is CHEAPER than unmarshalled voting
  // (raw memcmp), which is the trade-off ITDOS pays for heterogeneity.
  const int f = 1;
  std::vector<Value> elems;
  for (std::int64_t k = 0; k < state.range(0); ++k) elems.push_back(Value::int64(k));
  const Value value = Value::sequence(std::move(elems));
  const Bytes wire = value.encode(cdr::ByteOrder::kLittleEndian);
  std::uint64_t decided = 0;
  for (auto _ : state) {
    Vote vote(f, VotePolicy::byte_by_byte());
    bool done = false;
    for (int i = 0; i < 3 * f + 1 && !done; ++i) {
      Ballot b;
      b.source = NodeId(static_cast<std::uint64_t>(i + 1));
      b.raw = wire;
      done = vote.add(std::move(b)).has_value();
    }
    decided += done ? 1 : 0;
  }
  state.counters["decided"] = benchmark::Counter(
      static_cast<double>(decided) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E2ByteByByte_Homogeneous)->Arg(4)->Arg(64)->Arg(1024);

void BM_E2UnmarshalPlusVote(benchmark::State& state) {
  // Full receiver-side path: unmarshal each heterogeneous reply, then vote —
  // the true cost the voter adds per reply compared with memcmp.
  const int f = 1;
  const auto ballots =
      heterogeneous_ballots(3 * f + 1, static_cast<std::size_t>(state.range(0)), 0.0);
  for (auto _ : state) {
    Vote vote(f, VotePolicy::exact());
    for (const Ballot& b : ballots) {
      const cdr::ByteOrder order = (b.source.value % 2 == 1)
                                       ? cdr::ByteOrder::kLittleEndian
                                       : cdr::ByteOrder::kBigEndian;
      Ballot fresh;
      fresh.source = b.source;
      fresh.raw = b.raw;
      auto value = Value::decode(b.raw, order);
      if (value.is_ok()) fresh.value = std::move(value).take();
      if (vote.add(std::move(fresh))) break;
    }
  }
}
BENCHMARK(BM_E2UnmarshalPlusVote)->Arg(4)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e2_voting");
