// E8 — §3.1 nested invocations: a chain of replicated forwarder domains
// ending in a calculator domain, swept over chain depth. Each hop adds a
// full replicated round trip (ordered request copies voted at the target,
// direct replies voted at every caller element) while the caller's queue
// consumption is paused — the two-actor model's cost.
#include "bench_util.hpp"

namespace itdos::bench {
namespace {

class ChainForwarder : public orb::Servant {
 public:
  explicit ChainForwarder(orb::ObjectRef next) : next_(std::move(next)) {}
  std::string interface_name() const override { return "IDL:bench/Fwd:1.0"; }
  void dispatch(const std::string& operation, const cdr::Value& arguments,
                orb::ServerContext& context, orb::ReplySinkPtr sink) override {
    if (operation != "relay") {
      sink->reply(error(Errc::kInvalidArgument, "unknown op"));
      return;
    }
    const std::string next_op = next_.interface_name == "IDL:bench/Calc:1.0"
                                    ? "add"
                                    : "relay";
    context.invoke_nested(next_, next_op, arguments, [sink](Result<cdr::Value> r) {
      sink->reply(std::move(r));
    });
  }

 private:
  orb::ObjectRef next_;
};

void BM_E8NestedDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));  // forwarder hops
  core::SystemOptions options;
  options.seed = 71;
  core::ItdosSystem system(options);

  const DomainId calc_domain =
      system.add_domain(1, core::VotePolicy::exact(), calculator_installer());
  orb::ObjectRef next = system.object_ref(calc_domain, ObjectId(1), "IDL:bench/Calc:1.0");
  for (int hop = 0; hop < depth; ++hop) {
    const DomainId fwd = system.add_domain(
        1, core::VotePolicy::exact(), [next](orb::ObjectAdapter& adapter, int) {
          (void)adapter.activate_with_key(ObjectId(1),
                                          std::make_shared<ChainForwarder>(next));
        });
    next = system.object_ref(fwd, ObjectId(1), "IDL:bench/Fwd:1.0");
  }

  core::ItdosClient& client = system.add_client();
  const std::string op = depth == 0 ? "add" : "relay";
  // Warm all connections along the chain.
  if (!system.invoke_sync(client, next, op, int_args(1, 1), seconds(60)).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }

  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    system.network().reset_stats();
    const SimTime before = system.sim().now();
    const Result<cdr::Value> result =
        system.invoke_sync(client, next, op, int_args(20, 22), seconds(60));
    if (!result.is_ok() || result.value().as_int64() != 42) {
      state.SkipWithError("nested invocation failed");
      return;
    }
    total_sim_ns += system.sim().now() - before;
    total_packets += system.network().stats().packets_delivered;
  }
  state.counters["sim_us_per_call"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["pkts_per_call"] = benchmark::Counter(
      static_cast<double>(total_packets) / static_cast<double>(state.iterations()));
  state.counters["domains_in_chain"] = benchmark::Counter(depth + 1.0);
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_E8NestedDepth)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->Iterations(10);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e8_nested_invocations");
