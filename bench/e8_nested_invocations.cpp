// E8 — §3.1 nested invocations: a chain of replicated forwarder domains
// ending in a calculator domain, swept over chain depth. Each hop adds a
// full replicated round trip (ordered request copies voted at the target,
// direct replies voted at every caller element) while the caller's queue
// consumption is paused — the two-actor model's cost.
//
// The terminal hop is CROSS-DOMAIN in the sharded sense: the calculator's
// key is registered in the system shard map and the last forwarder invokes
// it through a routed ref (shard::ShardRouter), so the bench exercises the
// same location-transparent resolution path the bank workload uses. Every
// forwarder element also records the simulated latency of ITS nested round
// trip into the registry ("e8.d<depth>.hop<k>.latency_ns"), so the BENCH
// json carries a per-hop latency histogram alongside the end-to-end number.
#include "bench_util.hpp"

#include "shard/shard_map.hpp"

namespace itdos::bench {
namespace {

class ChainForwarder : public orb::Servant {
 public:
  /// `hop_histogram` names the per-hop latency series this forwarder's
  /// elements record their nested round trips into.
  ChainForwarder(core::ItdosSystem& system, orb::ObjectRef next,
                 std::string hop_histogram)
      : system_(system), next_(std::move(next)),
        hop_histogram_(std::move(hop_histogram)) {}

  std::string interface_name() const override { return "IDL:bench/Fwd:1.0"; }

  void dispatch(const std::string& operation, const cdr::Value& arguments,
                orb::ServerContext& context, orb::ReplySinkPtr sink) override {
    if (operation != "relay") {
      sink->reply(error(Errc::kInvalidArgument, "unknown op"));
      return;
    }
    const std::string next_op =
        next_.interface_name == "IDL:bench/Calc:1.0" ? "add" : "relay";
    const SimTime sent = system_.sim().now();
    context.invoke_nested(
        next_, next_op, arguments,
        [this, sink, sent](Result<cdr::Value> r) {
          system_.sim().telemetry().metrics().histogram(hop_histogram_)
              .record(system_.sim().now() - sent);
          sink->reply(std::move(r));
        });
  }

 private:
  core::ItdosSystem& system_;
  orb::ObjectRef next_;
  std::string hop_histogram_;
};

void BM_E8NestedDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));  // forwarder hops
  core::SystemOptions options;
  options.seed = 71;
  core::ItdosSystem system(options);

  const DomainId calc_domain =
      system.add_domain(1, core::VotePolicy::exact(), calculator_installer());
  // The terminal hop resolves through the shard map: the whole key space is
  // owned by the calculator domain, and callers carry a routed ref.
  system.shards().partition_evenly({calc_domain});
  orb::ObjectRef next =
      system.routed_ref(ObjectId(1), "IDL:bench/Calc:1.0");
  // Hops are numbered from the CLIENT side: hop 1 is the forwarder the
  // client calls, hop `depth` makes the routed terminal call.
  for (int hop = depth; hop >= 1; --hop) {
    const std::string histogram = "e8.d" + std::to_string(depth) + ".hop" +
                                  std::to_string(hop) + ".latency_ns";
    const DomainId fwd = system.add_domain(
        1, core::VotePolicy::exact(),
        [&system, next, histogram](orb::ObjectAdapter& adapter, int) {
          // Key 1 is free in a freshly built domain; activation cannot fail.
          (void)adapter.activate_with_key(
              ObjectId(1),
              std::make_shared<ChainForwarder>(system, next, histogram));
        });
    next = system.object_ref(fwd, ObjectId(1), "IDL:bench/Fwd:1.0");
  }
  core::ItdosClient& client = system.add_client();
  const std::string op = depth == 0 ? "add" : "relay";
  // Warm all connections along the chain.
  if (!system.invoke_sync(client, next, op, int_args(1, 1), seconds(60)).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }

  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    system.network().reset_stats();
    const SimTime before = system.sim().now();
    const Result<cdr::Value> result =
        system.invoke_sync(client, next, op, int_args(20, 22), seconds(60));
    if (!result.is_ok() || result.value().as_int64() != 42) {
      state.SkipWithError("nested invocation failed");
      return;
    }
    total_sim_ns += system.sim().now() - before;
    total_packets += system.network().stats().packets_delivered;
  }
  state.counters["sim_us_per_call"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 / static_cast<double>(state.iterations()));
  state.counters["pkts_per_call"] = benchmark::Counter(
      static_cast<double>(total_packets) / static_cast<double>(state.iterations()));
  state.counters["domains_in_chain"] = benchmark::Counter(depth + 1.0);
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_E8NestedDepth)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->Iterations(10);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e8_nested_invocations");
