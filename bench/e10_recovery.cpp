// E10 — recovery subsystem (DESIGN.md §6d): mean time to repair from the
// first forged reply to membership restored at 3f+1 with the fresh identity
// keyed in (detection -> expulsion -> replacement -> membership_update ->
// rekey), plus a GM-side micro-benchmark of the ordered membership_update
// command itself. The report's recovery.* counters, the recovery.mttr_ns
// histogram and the recovery.recovering gauge series feed the MTTR gate in
// scripts/bench_smoke.sh.
#include "bench_util.hpp"

#include <array>

#include "recovery/recovery_manager.hpp"

namespace itdos::bench {
namespace {

/// Calculator with persistence: replacements rebuild state from peer
/// bundles, so the measured cycle includes real state transfer.
class PersistentCalculator : public BenchCalculator {
 public:
  void dispatch(const std::string& operation, const cdr::Value& arguments,
                orb::ServerContext& context, orb::ReplySinkPtr sink) override {
    if (operation == "add") {
      for (const cdr::Value& v : arguments.elements()) total_ += v.as_int64();
      sink->reply(cdr::Value::int64(total_));
      return;
    }
    BenchCalculator::dispatch(operation, arguments, context, sink);
  }

  Result<Bytes> save_state() const override {
    cdr::Encoder enc(cdr::ByteOrder::kLittleEndian);
    enc.write_int64(total_);
    return enc.take();
  }

  Status load_state(ByteView state) override {
    cdr::Decoder dec(state, cdr::ByteOrder::kLittleEndian);
    ITDOS_ASSIGN_OR_RETURN(total_, dec.read_int64());
    return Status::ok();
  }

 private:
  std::int64_t total_ = 0;
};

void BM_E10ExpelToRestored(benchmark::State& state) {
  // Full repair pipeline: invoke (lie observed) -> proof-backed expulsion ->
  // fresh identity bootstraps -> ordered membership_update -> domain rekey.
  // MTTR is the manager's own trigger->restored measurement in sim time.
  std::int64_t total_mttr_ns = 0;
  std::uint64_t seed = 71;
  for (auto _ : state) {
    core::SystemOptions options;
    options.seed = seed++;
    core::ItdosSystem system(options);
    const DomainId domain = system.add_domain(
        1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
          // Key 1 is free in a freshly built domain; activation cannot fail.
          (void)adapter.activate_with_key(
              ObjectId(1), std::make_shared<PersistentCalculator>());
        });
    recovery::RecoveryManager manager(system);
    manager.watch();
    system.element(domain, 2).set_reply_mutator([](cdr::ReplyMessage reply) {
      reply.result = cdr::Value::int64(666);
      return reply;
    });
    core::ItdosClient& client = system.add_client();
    const orb::ObjectRef ref =
        system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");

    // Keep request traffic flowing while the repair runs: MTTR is measured
    // under load (a quiescent domain would lean on the watchdog retry for
    // its ordered sync point and measure the deadline instead).
    for (int i = 0; i < 30 && manager.stats().completed < 1; ++i) {
      if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30))
               .is_ok()) {
        state.SkipWithError("invocation failed");
        return;
      }
    }
    system.settle();
    if (manager.stats().completed < 1) {
      state.SkipWithError("recovery did not complete");
      return;
    }
    total_mttr_ns += manager.stats().last_mttr_ns;
    BenchReport::instance().harvest(system.sim());
  }
  state.counters["sim_ms_mttr"] = benchmark::Counter(
      static_cast<double>(total_mttr_ns) / 1e6 /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E10ExpelToRestored)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_E10ProactiveRotation(benchmark::State& state) {
  // Rejuvenating a HEALTHY element: no detection latency in the path, so
  // this isolates replacement + admission + rekey cost.
  std::int64_t total_mttr_ns = 0;
  std::uint64_t seed = 91;
  for (auto _ : state) {
    core::SystemOptions options;
    options.seed = seed++;
    core::ItdosSystem system(options);
    const DomainId domain = system.add_domain(
        1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
          // Key 1 is free in a freshly built domain; activation cannot fail.
          (void)adapter.activate_with_key(
              ObjectId(1), std::make_shared<PersistentCalculator>());
        });
    recovery::RecoveryManager manager(system);
    core::ItdosClient& client = system.add_client();
    const orb::ObjectRef ref =
        system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
    if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30))
             .is_ok()) {
      state.SkipWithError("invocation failed");
      return;
    }
    manager.recover_now(domain, 0);
    system.settle();
    if (manager.stats().completed < 1) {
      state.SkipWithError("rotation did not complete");
      return;
    }
    total_mttr_ns += manager.stats().last_mttr_ns;
    BenchReport::instance().harvest(system.sim());
  }
  state.counters["sim_ms_rotation"] = benchmark::Counter(
      static_cast<double>(total_mttr_ns) / 1e6 /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E10ProactiveRotation)->Unit(benchmark::kMillisecond)->Iterations(5);

/// GM-side micro: host cost of the ordered membership_update command
/// (validation chain + retirement + domain rekey under refreshed sub-keys)
/// as a function of the domain's f. Alternates two slots so every execution
/// takes the full accept path.
void BM_E10MembershipUpdate(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  core::DomainInfo gm;
  gm.id = DomainId(1);
  gm.f = 1;
  gm.group = McastGroupId(1);
  for (int i = 0; i < 4; ++i) {
    core::ElementInfo info;
    info.bft_node = NodeId(static_cast<std::uint64_t>(100 + i * 4));
    info.smiop_node = NodeId(static_cast<std::uint64_t>(101 + i * 4));
    info.gm_client_node = NodeId(static_cast<std::uint64_t>(102 + i * 4));
    info.self_client_node = NodeId(static_cast<std::uint64_t>(103 + i * 4));
    gm.elements.push_back(info);
  }
  auto directory =
      std::make_shared<core::SystemDirectory>(gm, core::ProtocolTiming{});
  core::DomainInfo server;
  server.id = DomainId(10);
  server.f = f;
  server.group = McastGroupId(10);
  for (int i = 0; i < 3 * f + 1; ++i) {
    core::ElementInfo info;
    info.bft_node = NodeId(static_cast<std::uint64_t>(500 + i * 4));
    info.smiop_node = NodeId(static_cast<std::uint64_t>(501 + i * 4));
    info.gm_client_node = NodeId(static_cast<std::uint64_t>(502 + i * 4));
    info.self_client_node = NodeId(static_cast<std::uint64_t>(503 + i * 4));
    server.elements.push_back(info);
  }
  directory->add_domain(server);
  const NodeId authority(8000);
  directory->set_recovery_authority(authority);
  auto keystore = std::make_shared<crypto::Keystore>();
  core::GmStateMachine machine(directory, keystore, nullptr);

  // One live connection so each admission has something to rekey.
  core::OpenRequestMsg open;
  open.client_node = NodeId(9000);
  open.target = DomainId(10);
  (void)machine.execute(core::encode_gm_command(core::GmCommand(open)),
                        NodeId(9000), SeqNum(1));

  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("e10.membership_update_ns");
  telemetry::Counter& ops = reg.counter("e10.membership_update_ops");
  std::uint64_t seq = 10;
  std::uint64_t fresh = 9100;
  std::uint64_t epoch = 0;
  // Track each slot's current holder; admissions alternate between ranks.
  std::array<NodeId, 2> holders = {server.elements[0].smiop_node,
                                   server.elements[1].smiop_node};
  for (auto _ : state) {
    core::MembershipUpdateMsg update;
    update.domain = DomainId(10);
    update.rank = static_cast<std::uint32_t>(epoch % 2);
    update.retired_element = holders[epoch % 2];
    update.admitted_element = NodeId(fresh++);
    update.admitted_gm_client = NodeId(fresh++);
    update.admitted_self_client = NodeId(fresh++);
    update.expected_epoch = epoch;
    holders[epoch % 2] = update.admitted_element;
    ++epoch;
    const BufView command = core::encode_gm_command(core::GmCommand(update));
    ScopedHostTimer timer(hist);
    ops.inc();
    const Bytes reply = machine.execute(command, authority, SeqNum(++seq));
    benchmark::DoNotOptimize(reply);
  }
  state.counters["elements"] = benchmark::Counter(3.0 * f + 1);
}
BENCHMARK(BM_E10MembershipUpdate)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e10_recovery");
