// E12 — sharded bank goodput (DESIGN.md §6g): the same open-loop deposit
// stream offered to a bank whose accounts are hash-sharded across 1, 2 or 4
// replication domains. Every op carries a routed ref (shard::ShardRouter),
// so ONE seed-deterministic arrival schedule fans out across however many
// domains the deployment has — the curves differ only in shard count. A
// single domain saturates its replicated admission bound and sheds; four
// domains split the stream and absorb it, which is the horizontal-scaling
// claim the "shards_*" curves carry (scripts/bench_gate.py enforces the
// 1 -> 4 goodput floor). BM_E12TellerTransfer adds the cross-domain price
// tag: one replicated teller front issuing nested withdraw+deposit pairs
// into two account domains.
#include "bench_util.hpp"

#include "load/sweep.hpp"
#include "shard/bank.hpp"
#include "shard/sharded_load.hpp"

namespace itdos::bench {
namespace {

constexpr std::uint64_t kSeed = 2027;
constexpr std::int64_t kHorizonNs = millis(250);
constexpr int kAccounts = 32;

/// One equally-weighted routed "deposit 1" op per account. Routed refs are
/// deployment-independent (the client's shard map resolves them), so the
/// same mix drives every shard count.
std::vector<load::LoadOp> routed_deposit_mix() {
  std::vector<load::LoadOp> mix;
  for (int id = 1; id <= kAccounts; ++id) {
    load::LoadOp op;
    op.operation = "deposit";
    op.argument = cdr::Value::sequence({cdr::Value::int64(1)});
    op.weight = 1.0;
    op.target = shard::ShardRouter::routed_ref(
        ObjectId(static_cast<std::uint64_t>(id)),
        std::string(shard::kAccountInterface));
    mix.push_back(op);
  }
  return mix;
}

load::SweepOptions sweep_options() {
  load::SweepOptions options;
  options.rates = {1600.0, 3200.0, 6400.0};
  options.arrival.kind = load::ArrivalKind::kFixedRate;
  options.arrival.horizon_ns = kHorizonNs;
  options.seed = kSeed;
  options.clients = 24;
  options.max_client_backlog = 48;
  options.mix = routed_deposit_mix();
  options.drain_ns = seconds(5);
  return options;
}

/// Sweeps the shared rate ladder against a fresh `shards`-domain bank per
/// point and records the curve as "shards_<n>". Only the top shard count
/// harvests its registry, so the exported gauge series are one clean run.
void run_shard_sweep(benchmark::State& state, int shards, bool harvest_top) {
  load::SweepOptions options = sweep_options();
  const double top_rate = options.rates.back();
  load::OfferedLoadSweep sweep(options);
  bool ok = true;

  sweep.run([&](double rate, const load::LoadOptions& load_options,
                const load::OfferedLoadSweep::Body& body) {
    core::SystemOptions system_options;
    system_options.seed = kSeed;
    system_options.timing.ack_interval = 2;  // tight GC: queues reopen fast
    system_options.timing.admission_max_depth = 24;
    core::ItdosSystem system(system_options);

    shard::BankSpec spec;
    spec.shards = shards;
    spec.tellers = 0;   // direct routed deposits; the front tier is E12's
    spec.clients = 0;   // second benchmark, not this sweep
    spec.accounts = kAccounts;
    shard::Bank bank = shard::Bank::build(system, spec);

    // The generator samples per-op targets from the mix; the default target
    // is an arbitrary routed ref and never dispatched.
    load::LoadGenerator generator(system, bank.account_ref(ObjectId(1)),
                                  load_options);
    body(system, generator);

    system.settle();
    if (!generator.done()) ok = false;
    if (harvest_top && rate == top_rate) {
      BenchReport::instance().harvest(system.sim());
    }
  });

  const std::string curve = "shards_" + std::to_string(shards);
  std::uint64_t total_ok = 0;
  for (const load::SweepPoint& point : sweep.points()) {
    BenchReport::CurvePoint cp;
    cp.rate_per_s = point.rate_per_s;
    cp.offered = point.report.offered;
    cp.ok = point.report.ok;
    cp.overloaded = point.report.overloaded;
    cp.failed = point.report.failed;
    cp.starved = point.report.starved;
    cp.sheds = point.sheds;
    cp.p50_ns = point.report.p50_latency_ns;
    cp.p99_ns = point.report.p99_latency_ns;
    cp.goodput_per_s = point.report.goodput_per_s;
    BenchReport::instance().add_curve_point(curve, cp);
    total_ok += point.report.ok;
  }
  if (!ok) {
    state.SkipWithError("a sweep point did not drain");
    return;
  }
  state.counters["shards"] = benchmark::Counter(static_cast<double>(shards));
  state.counters["ok_total"] = benchmark::Counter(static_cast<double>(total_ok));
  state.counters["goodput_top"] = benchmark::Counter(
      sweep.points().empty() ? 0.0
                             : sweep.points().back().report.goodput_per_s);
}

void BM_E12GoodputVsShards(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_shard_sweep(state, shards, /*harvest_top=*/shards == 4);
  }
}
BENCHMARK(BM_E12GoodputVsShards)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Cross-domain nested price tag: a replicated teller front issues
/// "transfer" (nested withdraw at one shard, deposit at another) — four
/// BFT-ordered hops end to end, with the callee's request vote suppressing
/// the 3f+1 replicated callers' duplicate copies.
void BM_E12TellerTransfer(benchmark::State& state) {
  core::SystemOptions system_options;
  system_options.seed = kSeed;
  core::ItdosSystem system(system_options);

  shard::BankSpec spec;
  spec.shards = 2;
  spec.tellers = 1;
  spec.clients = 1;
  spec.accounts = 8;
  shard::Bank bank = shard::Bank::build(system, spec);

  const std::int64_t from =
      static_cast<std::int64_t>(bank.accounts_of_shard(0).front().value);
  const std::int64_t to =
      static_cast<std::int64_t>(bank.accounts_of_shard(1).front().value);
  const cdr::Value args = cdr::Value::sequence(
      {cdr::Value::int64(from), cdr::Value::int64(to), cdr::Value::int64(1)});

  // Warm the full path: client -> teller -> both account domains.
  if (!system
           .invoke_sync(bank.client(), bank.teller_ref(), "transfer",
                        cdr::Value(args), seconds(60))
           .is_ok()) {
    state.SkipWithError("warmup transfer failed");
    return;
  }

  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  for (auto _ : state) {
    system.network().reset_stats();
    const SimTime before = system.sim().now();
    const Result<cdr::Value> result = system.invoke_sync(
        bank.client(), bank.teller_ref(), "transfer", cdr::Value(args),
        seconds(60));
    if (!result.is_ok()) {
      state.SkipWithError("transfer failed");
      return;
    }
    const std::int64_t elapsed = system.sim().now() - before;
    total_sim_ns += elapsed;
    total_packets += system.network().stats().packets_delivered;
    system.sim().telemetry().metrics().histogram("e12.transfer.latency_ns")
        .record(elapsed);
  }
  state.counters["sim_us_per_transfer"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e3 /
      static_cast<double>(state.iterations()));
  state.counters["pkts_per_transfer"] = benchmark::Counter(
      static_cast<double>(total_packets) /
      static_cast<double>(state.iterations()));
  BenchReport::instance().harvest(system.sim());
}
BENCHMARK(BM_E12TellerTransfer)->Unit(benchmark::kMillisecond)->Iterations(10);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e12_sharded_bank");
