// E1 — §3.2 claim: "BFT total-ordering protocols are expensive;
// additionally, the number of messages exchanged is directly related to the
// number of members in the ordering group. Given the non-linear performance
// penalties in large ordering groups, the ordering groups should be as small
// as possible."
//
// Reproduced shape: per-request message count grows quadratically with
// n = 3f+1 (PBFT's all-to-all PREPARE/COMMIT), and ordering latency grows
// with it. This is the paper's architectural justification for keeping
// clients OUT of the ordering group.
#include "bench_util.hpp"

#include <algorithm>

#include "bft/harness.hpp"

namespace itdos::bench {
namespace {

using namespace itdos;

void BM_E1OrderingCost(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  bft::ClusterOptions options;
  options.f = f;
  options.seed = 99;
  bft::Cluster cluster(options,
                       [](int) { return std::make_unique<bft::CounterStateMachine>(); });
  bft::Client& client = cluster.add_client();
  // Warm up (primary learns the client, log fills normally).
  if (!cluster.invoke_sync(client, to_bytes("add:0")).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }

  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  for (auto _ : state) {
    cluster.network().reset_stats();
    const SimTime before = cluster.sim().now();
    if (!cluster.invoke_sync(client, to_bytes("add:1")).is_ok()) {
      state.SkipWithError("invocation failed");
      return;
    }
    total_sim_ns += cluster.sim().now() - before;
    total_packets += cluster.network().stats().packets_delivered;
    total_bytes += cluster.network().stats().bytes_delivered;
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["n_replicas"] = benchmark::Counter(3.0 * f + 1);
  state.counters["sim_us_per_req"] =
      benchmark::Counter(static_cast<double>(total_sim_ns) / 1e3 / iters);
  state.counters["pkts_per_req"] =
      benchmark::Counter(static_cast<double>(total_packets) / iters);
  state.counters["wire_kb_per_req"] =
      benchmark::Counter(static_cast<double>(total_bytes) / 1024.0 / iters);
  BenchReport::instance().harvest(cluster.sim());
}
BENCHMARK(BM_E1OrderingCost)->DenseRange(1, 5)->Unit(benchmark::kMillisecond)
    ->Iterations(40);

void BM_E1ThroughputUnderLoad(benchmark::State& state) {
  // 50 pipelined requests from 2 clients: aggregate ordering throughput
  // (requests per simulated second) versus group size.
  const int f = static_cast<int>(state.range(0));
  std::int64_t total_sim_ns = 0;
  const int kRequests = 50;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    bft::ClusterOptions options;
    options.f = f;
    options.seed = seed++;
    bft::Cluster cluster(
        options, [](int) { return std::make_unique<bft::CounterStateMachine>(); });
    bft::Client& alice = cluster.add_client();
    bft::Client& bob = cluster.add_client();
    int completed = 0;
    for (int i = 0; i < kRequests / 2; ++i) {
      alice.invoke(to_bytes("add:1"), [&](Result<Bytes> r) { completed += r.is_ok(); });
      bob.invoke(to_bytes("add:1"), [&](Result<Bytes> r) { completed += r.is_ok(); });
    }
    const SimTime before = cluster.sim().now();
    cluster.settle();
    if (completed != kRequests) {
      state.SkipWithError("not all requests completed");
      return;
    }
    total_sim_ns += cluster.sim().now() - before;
    BenchReport::instance().harvest(cluster.sim());
  }
  const double sim_seconds = static_cast<double>(total_sim_ns) / 1e9;
  state.counters["req_per_sim_sec"] = benchmark::Counter(
      static_cast<double>(kRequests) * static_cast<double>(state.iterations()) /
      sim_seconds);
  state.counters["n_replicas"] = benchmark::Counter(3.0 * f + 1);
}
BENCHMARK(BM_E1ThroughputUnderLoad)->DenseRange(1, 4)->Unit(benchmark::kMillisecond)
    ->Iterations(5);

void BM_E1BatchPipelineSweep(benchmark::State& state) {
  // Batch-size x pipeline-depth sweep at f = 1 under saturating load:
  // 4 clients each keep `depth` requests in flight until 240 requests have
  // been ordered. Exported as a `curves` block (one curve per batch size,
  // x = pipeline depth) so bench_gate.py can hold the batched-speedup
  // floor: batching + pipelining must beat the single-slot baseline
  // (batch_1 at depth 1) by >= 2x goodput at saturation.
  const int batch_entries = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 60;
  constexpr int kTotal = kClients * kRequestsPerClient;

  for (auto _ : state) {
    bft::ClusterOptions options;
    options.f = 1;
    options.seed = 17;
    options.batch.max_entries = batch_entries;
    options.batch.max_hold_ns = micros(150);
    options.pipeline_depth = depth;
    bft::Cluster cluster(options, [](int) {
      return std::make_unique<bft::CounterStateMachine>();
    });

    std::vector<std::int64_t> latencies;
    latencies.reserve(kTotal);
    const SimTime start = cluster.sim().now();
    std::vector<bft::Client*> clients;
    for (int c = 0; c < kClients; ++c) clients.push_back(&cluster.add_client());
    for (int c = 0; c < kClients; ++c) {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const SimTime sent = cluster.sim().now();
        clients[c]->invoke(to_bytes("add:1"),
                           [&latencies, sent, &cluster](Result<Bytes> r) {
                             if (r.is_ok()) {
                               latencies.push_back(cluster.sim().now() - sent);
                             }
                           });
      }
    }
    cluster.settle();
    if (static_cast<int>(latencies.size()) != kTotal) {
      state.SkipWithError("sweep requests did not all complete");
      return;
    }
    const double sim_seconds =
        static_cast<double>(cluster.sim().now() - start) / 1e9;
    std::sort(latencies.begin(), latencies.end());
    BenchReport::CurvePoint point;
    point.rate_per_s = depth;  // x axis: client pipeline depth
    point.offered = kTotal;
    point.ok = latencies.size();
    point.p50_ns = latencies[latencies.size() / 2];
    point.p99_ns = latencies[latencies.size() * 99 / 100];
    point.goodput_per_s = static_cast<double>(kTotal) / sim_seconds;
    BenchReport::instance().add_curve_point(
        "batch_" + std::to_string(batch_entries), point);

    // MAC cost per ordered request: batching amortises the per-slot
    // authenticator fan-out across every entry in the slot.
    std::uint64_t macs = 0;
    const auto& metrics = cluster.sim().telemetry().metrics();
    for (int rank = 0; rank < cluster.n(); ++rank) {
      macs += metrics.counter_value(
          "bft." + std::to_string(cluster.replica_id(rank).value) +
          ".macs_computed");
    }
    BenchReport::instance().registry().histogram("bft.macs_per_op").record(
        static_cast<std::int64_t>(macs / static_cast<std::uint64_t>(kTotal)));

    state.counters["goodput_per_sim_s"] = benchmark::Counter(point.goodput_per_s);
    state.counters["p99_us"] =
        benchmark::Counter(static_cast<double>(point.p99_ns) / 1e3);
    state.counters["macs_per_op"] = benchmark::Counter(
        static_cast<double>(macs) / static_cast<double>(kTotal));
    BenchReport::instance().harvest(cluster.sim());
  }
}
BENCHMARK(BM_E1BatchPipelineSweep)
    ->ArgsProduct({{1, 4, 8}, {1, 4, 16}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e1_group_size_scaling");
