// E1 — §3.2 claim: "BFT total-ordering protocols are expensive;
// additionally, the number of messages exchanged is directly related to the
// number of members in the ordering group. Given the non-linear performance
// penalties in large ordering groups, the ordering groups should be as small
// as possible."
//
// Reproduced shape: per-request message count grows quadratically with
// n = 3f+1 (PBFT's all-to-all PREPARE/COMMIT), and ordering latency grows
// with it. This is the paper's architectural justification for keeping
// clients OUT of the ordering group.
#include "bench_util.hpp"

#include "bft/harness.hpp"

namespace itdos::bench {
namespace {

using namespace itdos;

void BM_E1OrderingCost(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  bft::ClusterOptions options;
  options.f = f;
  options.seed = 99;
  bft::Cluster cluster(options,
                       [](int) { return std::make_unique<bft::CounterStateMachine>(); });
  bft::Client& client = cluster.add_client();
  // Warm up (primary learns the client, log fills normally).
  if (!cluster.invoke_sync(client, to_bytes("add:0")).is_ok()) {
    state.SkipWithError("warmup failed");
    return;
  }

  std::int64_t total_sim_ns = 0;
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;
  for (auto _ : state) {
    cluster.network().reset_stats();
    const SimTime before = cluster.sim().now();
    if (!cluster.invoke_sync(client, to_bytes("add:1")).is_ok()) {
      state.SkipWithError("invocation failed");
      return;
    }
    total_sim_ns += cluster.sim().now() - before;
    total_packets += cluster.network().stats().packets_delivered;
    total_bytes += cluster.network().stats().bytes_delivered;
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["n_replicas"] = benchmark::Counter(3.0 * f + 1);
  state.counters["sim_us_per_req"] =
      benchmark::Counter(static_cast<double>(total_sim_ns) / 1e3 / iters);
  state.counters["pkts_per_req"] =
      benchmark::Counter(static_cast<double>(total_packets) / iters);
  state.counters["wire_kb_per_req"] =
      benchmark::Counter(static_cast<double>(total_bytes) / 1024.0 / iters);
  BenchReport::instance().harvest(cluster.sim());
}
BENCHMARK(BM_E1OrderingCost)->DenseRange(1, 5)->Unit(benchmark::kMillisecond)
    ->Iterations(40);

void BM_E1ThroughputUnderLoad(benchmark::State& state) {
  // 50 pipelined requests from 2 clients: aggregate ordering throughput
  // (requests per simulated second) versus group size.
  const int f = static_cast<int>(state.range(0));
  std::int64_t total_sim_ns = 0;
  const int kRequests = 50;
  std::uint64_t seed = 5;
  for (auto _ : state) {
    bft::ClusterOptions options;
    options.f = f;
    options.seed = seed++;
    bft::Cluster cluster(
        options, [](int) { return std::make_unique<bft::CounterStateMachine>(); });
    bft::Client& alice = cluster.add_client();
    bft::Client& bob = cluster.add_client();
    int completed = 0;
    for (int i = 0; i < kRequests / 2; ++i) {
      alice.invoke(to_bytes("add:1"), [&](Result<Bytes> r) { completed += r.is_ok(); });
      bob.invoke(to_bytes("add:1"), [&](Result<Bytes> r) { completed += r.is_ok(); });
    }
    const SimTime before = cluster.sim().now();
    cluster.settle();
    if (completed != kRequests) {
      state.SkipWithError("not all requests completed");
      return;
    }
    total_sim_ns += cluster.sim().now() - before;
    BenchReport::instance().harvest(cluster.sim());
  }
  const double sim_seconds = static_cast<double>(total_sim_ns) / 1e9;
  state.counters["req_per_sim_sec"] = benchmark::Counter(
      static_cast<double>(kRequests) * static_cast<double>(state.iterations()) /
      sim_seconds);
  state.counters["n_replicas"] = benchmark::Counter(3.0 * f + 1);
}
BENCHMARK(BM_E1ThroughputUnderLoad)->DenseRange(1, 4)->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e1_group_size_scaling");
