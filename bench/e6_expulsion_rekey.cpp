// E6 — §3.6 fault detection + §3.5 rekeying: end-to-end time from the first
// forged reply to the faulty element being keyed out (client holds the new
// epoch), via the singleton-client-with-proof path; plus GM-side
// micro-benchmarks of proof verification and the domain-quorum path.
#include "bench_util.hpp"

#include "cdr/giop.hpp"

namespace itdos::bench {
namespace {

void BM_E6DetectExpelRekey(benchmark::State& state) {
  // Full pipeline: invoke (lie observed) -> voter flags dissenter ->
  // change_request with signed proof -> GM re-vote -> expulsion -> DPRF
  // rekey -> client installs epoch 2.
  std::int64_t total_sim_ns = 0;
  std::uint64_t seed = 51;
  for (auto _ : state) {
    core::SystemOptions options;
    options.seed = seed++;
    core::ItdosSystem system(options);
    const DomainId domain =
        system.add_domain(1, core::VotePolicy::exact(), calculator_installer());
    system.element(domain, 2).set_reply_mutator([](cdr::ReplyMessage reply) {
      reply.result = cdr::Value::int64(666);
      return reply;
    });
    core::ItdosClient& client = system.add_client();
    const orb::ObjectRef ref =
        system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");

    const SimTime before = system.sim().now();
    if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
      state.SkipWithError("invocation failed");
      return;
    }
    // Run until the rekey lands at the client (epoch >= 2).
    const ConnectionId conn(1);
    const SimTime horizon = system.sim().now() + seconds(5);
    while (system.sim().now() < horizon) {
      const auto* entry = client.party().conn_table().find(conn);
      if (entry != nullptr && entry->record.epoch.value >= 2) break;
      if (!system.sim().step()) break;
    }
    const auto* entry = client.party().conn_table().find(conn);
    if (entry == nullptr || entry->record.epoch.value < 2) {
      state.SkipWithError("rekey did not complete");
      return;
    }
    total_sim_ns += system.sim().now() - before;
    BenchReport::instance().harvest(system.sim());
  }
  state.counters["sim_ms_detect_to_rekey"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e6 / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_E6DetectExpelRekey)->Unit(benchmark::kMillisecond)->Iterations(5);

/// GM-side micro: proof verification cost (signature checks + standalone
/// unmarshal + re-vote) as a function of the accused domain's f.
void BM_E6ProofVerification(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  // Build a directory with a target domain of 3f+1 elements.
  core::DomainInfo gm;
  gm.id = DomainId(1);
  gm.f = 1;
  gm.group = McastGroupId(1);
  for (int i = 0; i < 4; ++i) {
    core::ElementInfo info;
    info.bft_node = NodeId(static_cast<std::uint64_t>(100 + i * 4));
    info.smiop_node = NodeId(static_cast<std::uint64_t>(101 + i * 4));
    info.gm_client_node = NodeId(static_cast<std::uint64_t>(102 + i * 4));
    info.self_client_node = NodeId(static_cast<std::uint64_t>(103 + i * 4));
    gm.elements.push_back(info);
  }
  auto directory =
      std::make_shared<core::SystemDirectory>(gm, core::ProtocolTiming{});
  core::DomainInfo server;
  server.id = DomainId(10);
  server.f = f;
  server.group = McastGroupId(10);
  for (int i = 0; i < 3 * f + 1; ++i) {
    core::ElementInfo info;
    info.bft_node = NodeId(static_cast<std::uint64_t>(500 + i * 4));
    info.smiop_node = NodeId(static_cast<std::uint64_t>(501 + i * 4));
    info.gm_client_node = NodeId(static_cast<std::uint64_t>(502 + i * 4));
    info.self_client_node = NodeId(static_cast<std::uint64_t>(503 + i * 4));
    server.elements.push_back(info);
  }
  directory->add_domain(server);
  auto keystore = std::make_shared<crypto::Keystore>();
  core::GmStateMachine machine(directory, keystore, nullptr);

  // Establish a connection so the change_request has something to rekey.
  core::OpenRequestMsg open;
  open.client_node = NodeId(9000);
  open.target = DomainId(10);
  (void)machine.execute(core::encode_gm_command(core::GmCommand(open)), NodeId(9000),
                        SeqNum(1));

  // Build a (valid-signature, honest-majority) proof with 2f+1 replies; the
  // accused agrees, so the request is verified and then REJECTED — pure
  // verification cost, no state change, so the loop is repeatable.
  core::ChangeRequestMsg change;
  change.reporter = NodeId(9000);
  change.accused_domain = DomainId(10);
  change.accused_element = server.elements[0].smiop_node;
  change.conn = ConnectionId(1);
  change.rid = RequestId(1);
  Rng rng(5);
  for (int i = 0; i < 2 * f + 1; ++i) {
    const NodeId element = server.elements[static_cast<std::size_t>(i)].smiop_node;
    cdr::ReplyMessage reply;
    reply.request_id = RequestId(1);
    reply.result = cdr::Value::int64(42);
    core::ProofEntry entry;
    entry.element = element;
    entry.epoch = KeyEpoch(1);
    entry.plain_giop = cdr::encode_giop(cdr::GiopMessage(reply));
    const crypto::SigningKey key = keystore->issue(element, rng);
    entry.signature = key.sign(core::DirectReplyMsg::signed_region(
        change.conn, change.rid, element, KeyEpoch(1),
        crypto::sha256(ByteView(entry.plain_giop))));
    change.proof.push_back(std::move(entry));
  }
  const BufView command = core::encode_gm_command(core::GmCommand(change));

  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("e6.proof_verify_ns");
  telemetry::Counter& ops = reg.counter("e6.proof_verify_ops");
  std::uint64_t seq = 10;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    ops.inc();
    const Bytes reply = machine.execute(command, NodeId(9000), SeqNum(++seq));
    benchmark::DoNotOptimize(reply);
  }
  state.counters["proof_entries"] = benchmark::Counter(2.0 * f + 1);
}
BENCHMARK(BM_E6ProofVerification)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("e6_expulsion_rekey");
