// Shared helpers for the ITDOS benchmark harness.
//
// Two kinds of numbers appear in these benchmarks:
//   * wall-clock time per iteration (google-benchmark's native metric) —
//     the host CPU cost of running the protocol code;
//   * simulated time / message counts (reported as counters, suffix
//     "sim_us" / "pkts") — the protocol-level costs the paper's claims are
//     about. Network delays are identical across configurations (50-200us
//     per hop unless stated), so simulated-latency *ratios* are meaningful.
// Every bench binary additionally emits a machine-readable report,
// BENCH_<name>.json, assembled from telemetry::MetricsRegistry snapshots
// (simulation-backed benches harvest the simulator's registry; pure-CPU
// benches record host wall-clock per op into registry histograms). The
// report format is pinned by bench/bench_schema.json and checked by
// scripts/bench_smoke.sh.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "itdos/system.hpp"
#include "telemetry/telemetry.hpp"

namespace itdos::bench {

/// Accumulates telemetry across every benchmark in one binary; written out
/// as BENCH_<name>.json by ITDOS_BENCH_MAIN. Counters and histograms merge
/// additively, so benches that build a fresh system per iteration harvest
/// inside the loop and the report carries binary-wide totals.
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport report;
    return report;
  }

  telemetry::MetricsRegistry& registry() { return registry_; }

  /// One point of a latency-vs-offered-load curve (bench/e11_offered_load):
  /// outcome counts and latency percentiles at one offered rate.
  struct CurvePoint {
    double rate_per_s = 0.0;
    std::uint64_t offered = 0;
    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;  // explicit admission-control replies
    std::uint64_t failed = 0;      // timeouts / transport errors
    std::uint64_t starved = 0;     // arrivals the generator had to drop
    std::uint64_t sheds = 0;       // replicated admission sheds
    std::int64_t p50_ns = 0;
    std::int64_t p99_ns = 0;
    double goodput_per_s = 0.0;
  };

  /// Records a curve point under `curve` (e.g. "attack_controller_on").
  /// Keyed by (curve, rate): benchmark repeat iterations overwrite rather
  /// than duplicate their rate points.
  void add_curve_point(const std::string& curve, const CurvePoint& point) {
    auto& points = curves_[curve];
    for (CurvePoint& existing : points) {
      if (existing.rate_per_s == point.rate_per_s) {
        existing = point;
        return;
      }
    }
    points.push_back(point);
  }

  /// Merges the simulator's registry into the report (call before the
  /// simulator is destroyed).
  void harvest(const net::Simulator& sim) {
    registry_.merge_from(sim.telemetry().metrics());
  }

  /// Mirrors the process-wide buffer copy accounting (BufStats) into the
  /// registry as `buf.copies` / `buf.bytes_copied`. Called once by
  /// ITDOS_BENCH_MAIN just before the report is written, so the counters
  /// reflect every copy the binary's whole run made on the message path.
  void mirror_buf_stats() {
    registry_.counter("buf.copies").inc(BufStats::copies);
    registry_.counter("buf.bytes_copied").inc(BufStats::bytes_copied);
  }

  /// Writes BENCH_<name>.json into the working directory.
  void write(const std::string& name) const {
    std::ofstream out("BENCH_" + name + ".json");
    out << "{\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"bench\": \"" << name << "\",\n";

    out << "  \"counters\": {";
    const char* sep = "";
    for (const auto& [cname, counter] : registry_.counters()) {
      out << sep << "\n    \"" << cname << "\": " << counter.value();
      sep = ",";
    }
    out << "\n  },\n";

    out << "  \"gauges\": {";
    sep = "";
    for (const auto& [gname, gauge] : registry_.gauges()) {
      out << sep << "\n    \"" << gname << "\": {\"value\": " << gauge.value()
          << ", \"peak\": " << gauge.peak() << ", \"series\": [";
      const char* ssep = "";
      for (const auto& sample : gauge.series()) {
        out << ssep << "{\"t\": " << sample.t_ns << ", \"v\": " << sample.v << "}";
        ssep = ", ";
      }
      out << "]}";
      sep = ",";
    }
    out << "\n  },\n";

    out << "  \"histograms\": {";
    sep = "";
    for (const auto& [hname, hist] : registry_.histograms()) {
      if (hist.count() == 0) continue;  // nothing informative to report
      char mean[64];
      std::snprintf(mean, sizeof(mean), "%.3f", hist.mean());
      out << sep << "\n    \"" << hname << "\": {\"count\": " << hist.count()
          << ", \"min\": " << hist.min() << ", \"max\": " << hist.max()
          << ", \"mean\": " << mean << ", \"p50\": " << hist.percentile(50.0)
          << ", \"p95\": " << hist.percentile(95.0)
          << ", \"p99\": " << hist.percentile(99.0) << "}";
      sep = ",";
    }
    out << "\n  },\n";

    // Latency-vs-offered-load curves (optional: only offered-load benches
    // record them; their absence keeps every older report schema-valid).
    if (!curves_.empty()) {
      out << "  \"curves\": {";
      sep = "";
      for (const auto& [curve, points] : curves_) {
        out << sep << "\n    \"" << curve << "\": [";
        const char* psep = "";
        for (const CurvePoint& p : points) {
          char rate[64];
          char goodput[64];
          std::snprintf(rate, sizeof(rate), "%.3f", p.rate_per_s);
          std::snprintf(goodput, sizeof(goodput), "%.3f", p.goodput_per_s);
          out << psep << "\n      {\"rate_per_s\": " << rate
              << ", \"offered\": " << p.offered << ", \"ok\": " << p.ok
              << ", \"overloaded\": " << p.overloaded
              << ", \"failed\": " << p.failed << ", \"starved\": " << p.starved
              << ", \"sheds\": " << p.sheds << ", \"p50_ns\": " << p.p50_ns
              << ", \"p99_ns\": " << p.p99_ns
              << ", \"goodput_per_s\": " << goodput << "}";
          psep = ",";
        }
        out << "\n    ]";
        sep = ",";
      }
      out << "\n  },\n";
    }

    // Per-layer rollup: counter totals keyed on the first name segment
    // ("bft", "smiop", "queue", "vote", "gm", "net", ...).
    std::map<std::string, std::uint64_t> layers;
    for (const auto& [cname, counter] : registry_.counters()) {
      layers[cname.substr(0, cname.find('.'))] += counter.value();
    }
    out << "  \"layers\": {";
    sep = "";
    for (const auto& [layer, total] : layers) {
      out << sep << "\n    \"" << layer << "\": " << total;
      sep = ",";
    }
    out << "\n  }\n";
    out << "}\n";
  }

 private:
  BenchReport() = default;
  telemetry::MetricsRegistry registry_;
  std::map<std::string, std::vector<CurvePoint>> curves_;
};

/// RAII host-clock sampler: records wall-clock nanoseconds from construction
/// to destruction into a registry histogram. Gives pure-CPU benches (voting,
/// threshold crypto, marshalling) a latency histogram in the same report
/// format the simulation benches get from the telemetry seam.
class ScopedHostTimer {
 public:
  explicit ScopedHostTimer(telemetry::Histogram& hist)
      : hist_(hist), begin_(std::chrono::steady_clock::now()) {}
  ~ScopedHostTimer() {
    hist_.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - begin_)
                     .count());
  }
  ScopedHostTimer(const ScopedHostTimer&) = delete;
  ScopedHostTimer& operator=(const ScopedHostTimer&) = delete;

 private:
  telemetry::Histogram& hist_;
  std::chrono::steady_clock::time_point begin_;
};

/// A calculator servant shared by several benches.
class BenchCalculator : public orb::Servant {
 public:
  std::string interface_name() const override { return "IDL:bench/Calc:1.0"; }
  void dispatch(const std::string& operation, const cdr::Value& arguments,
                orb::ServerContext&, orb::ReplySinkPtr sink) override {
    if (operation == "add") {
      std::int64_t sum = 0;
      for (const cdr::Value& v : arguments.elements()) sum += v.as_int64();
      sink->reply(cdr::Value::int64(sum));
    } else if (operation == "echo") {
      sink->reply(arguments);
    } else {
      sink->reply(error(Errc::kInvalidArgument, "unknown op"));
    }
  }
};

inline core::DomainElement::ServantInstaller calculator_installer() {
  return [](orb::ObjectAdapter& adapter, int) {
    (void)adapter.activate_with_key(ObjectId(1), std::make_shared<BenchCalculator>());
  };
}

inline cdr::Value int_args(std::int64_t a, std::int64_t b) {
  return cdr::Value::sequence({cdr::Value::int64(a), cdr::Value::int64(b)});
}

/// A payload Value of roughly `bytes` marshalled size.
inline cdr::Value payload_of_size(std::size_t bytes) {
  std::string blob(bytes, 'x');
  return cdr::Value::sequence({cdr::Value::string(std::move(blob))});
}

}  // namespace itdos::bench

/// Replaces BENCHMARK_MAIN(): runs the registered benchmarks, then writes
/// the BENCH_<name>.json telemetry report. `name` is a string literal.
#define ITDOS_BENCH_MAIN(name)                                              \
  int main(int argc, char** argv) {                                         \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;     \
    ::benchmark::RunSpecifiedBenchmarks();                                  \
    ::benchmark::Shutdown();                                                \
    ::itdos::bench::BenchReport::instance().mirror_buf_stats();             \
    ::itdos::bench::BenchReport::instance().write(name);                    \
    return 0;                                                               \
  }
