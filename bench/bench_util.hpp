// Shared helpers for the ITDOS benchmark harness.
//
// Two kinds of numbers appear in these benchmarks:
//   * wall-clock time per iteration (google-benchmark's native metric) —
//     the host CPU cost of running the protocol code;
//   * simulated time / message counts (reported as counters, suffix
//     "sim_us" / "pkts") — the protocol-level costs the paper's claims are
//     about. Network delays are identical across configurations (50-200us
//     per hop unless stated), so simulated-latency *ratios* are meaningful.
#pragma once

#include <benchmark/benchmark.h>

#include "itdos/system.hpp"

namespace itdos::bench {

/// A calculator servant shared by several benches.
class BenchCalculator : public orb::Servant {
 public:
  std::string interface_name() const override { return "IDL:bench/Calc:1.0"; }
  void dispatch(const std::string& operation, const cdr::Value& arguments,
                orb::ServerContext&, orb::ReplySinkPtr sink) override {
    if (operation == "add") {
      std::int64_t sum = 0;
      for (const cdr::Value& v : arguments.elements()) sum += v.as_int64();
      sink->reply(cdr::Value::int64(sum));
    } else if (operation == "echo") {
      sink->reply(arguments);
    } else {
      sink->reply(error(Errc::kInvalidArgument, "unknown op"));
    }
  }
};

inline core::DomainElement::ServantInstaller calculator_installer() {
  return [](orb::ObjectAdapter& adapter, int) {
    (void)adapter.activate_with_key(ObjectId(1), std::make_shared<BenchCalculator>());
  };
}

inline cdr::Value int_args(std::int64_t a, std::int64_t b) {
  return cdr::Value::sequence({cdr::Value::int64(a), cdr::Value::int64(b)});
}

/// A payload Value of roughly `bytes` marshalled size.
inline cdr::Value payload_of_size(std::size_t bytes) {
  std::string blob(bytes, 'x');
  return cdr::Value::sequence({cdr::Value::string(std::move(blob))});
}

}  // namespace itdos::bench
