// Ablations — costs of individual ITDOS design choices:
//   * a1: adaptive vs fixed vote policies on dispersed float replies
//     (the §4 "adaptive voting" extension [32]);
//   * a2: queue-management ack cadence — GC responsiveness (retained window)
//     vs ordering overhead (§3.1's "garbage collection" knob);
//   * a3: firewall-proxy admission cost per message (Figure 1's proxies);
//   * a4: element replacement end-to-end time (§4 extension).
#include "bench_util.hpp"

#include "itdos/proxy.hpp"
#include "itdos/queue.hpp"

namespace itdos::bench {
namespace {

// ---------------------------------------------------------------------------
// a1: vote policy ablation
// ---------------------------------------------------------------------------

void run_dispersed_vote(benchmark::State& state, core::VotePolicy policy) {
  // 4 replies dispersed by ~1e-4 — beyond a 1e-9 epsilon, inside 1e-2.
  std::vector<core::Ballot> ballots;
  for (int i = 0; i < 4; ++i) {
    const cdr::Value v = cdr::Value::float64(1.0 + i * 1e-4);
    core::Ballot b;
    b.source = NodeId(static_cast<std::uint64_t>(i + 1));
    b.raw = v.encode(cdr::ByteOrder::kLittleEndian);
    b.value = v;
    ballots.push_back(std::move(b));
  }
  auto& reg = BenchReport::instance().registry();
  telemetry::Histogram& hist = reg.histogram("a1.vote_ns");
  telemetry::Counter& started = reg.counter("a1.votes_started");
  telemetry::Counter& decided_counter = reg.counter("a1.votes_decided");
  std::uint64_t decided = 0;
  for (auto _ : state) {
    ScopedHostTimer timer(hist);
    started.inc();
    core::Vote vote(1, policy);
    bool done = false;
    for (const auto& b : ballots) {
      if (vote.add(b)) {
        done = true;
        break;
      }
    }
    if (done) decided_counter.inc();
    decided += done ? 1 : 0;
  }
  state.counters["decided"] = benchmark::Counter(
      static_cast<double>(decided) / static_cast<double>(state.iterations()));
}

void BM_A1FixedTightEpsilon(benchmark::State& state) {
  run_dispersed_vote(state, core::VotePolicy::inexact(1e-9));  // starves
}
BENCHMARK(BM_A1FixedTightEpsilon);

void BM_A1FixedLooseEpsilon(benchmark::State& state) {
  run_dispersed_vote(state, core::VotePolicy::inexact(1e-2));  // decides, but
  // this precision is surrendered on EVERY vote, not just dispersed ones.
}
BENCHMARK(BM_A1FixedLooseEpsilon);

void BM_A1Adaptive(benchmark::State& state) {
  run_dispersed_vote(state, core::VotePolicy::adaptive(1e-9, 1e-2));
}
BENCHMARK(BM_A1Adaptive);

// ---------------------------------------------------------------------------
// a2: queue ack cadence
// ---------------------------------------------------------------------------

void BM_A2AckInterval(benchmark::State& state) {
  // Feed 512 entries; an element acks every `interval` consumptions. Report
  // the retained window (memory held hostage to GC cadence) and the ack
  // entries added to the ordered stream (ordering overhead).
  const std::uint64_t interval = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t retained = 0;
  std::uint64_t acks = 0;
  for (auto _ : state) {
    core::QueueOptions options;
    options.n = 4;
    options.f = 1;
    core::QueueStateMachine queue(options);
    std::uint64_t seq = 0;
    std::uint64_t consumed_since_ack = 0;
    std::uint64_t max_window = 0;
    acks = 0;
    core::OrderedMsg msg;
    msg.conn = ConnectionId(1);
    msg.origin = NodeId(9);
    msg.epoch = KeyEpoch(1);
    msg.sealed_giop = Bytes(128, 0x5a);
    for (int i = 1; i <= 512; ++i) {
      msg.rid = RequestId(static_cast<std::uint64_t>(i));
      queue.execute(msg.encode(), NodeId(9), SeqNum(++seq));
      (void)queue.next();
      if (++consumed_since_ack >= interval) {
        consumed_since_ack = 0;
        ++acks;
        // All four elements ack in lockstep (the best case for GC).
        for (int e = 1; e <= 4; ++e) {
          queue.execute(core::QueueAckMsg{NodeId(static_cast<std::uint64_t>(e)),
                                          queue.consumed_index()}
                            .encode(),
                        NodeId(9), SeqNum(++seq));
        }
      }
      max_window = std::max(max_window, queue.size());
    }
    retained = max_window;
  }
  state.counters["max_window_entries"] = benchmark::Counter(static_cast<double>(retained));
  state.counters["ack_rounds"] = benchmark::Counter(static_cast<double>(acks));
}
BENCHMARK(BM_A2AckInterval)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

// ---------------------------------------------------------------------------
// a3: firewall admission cost
// ---------------------------------------------------------------------------

void BM_A3FirewallAdmitValid(benchmark::State& state) {
  core::FirewallProxy proxy;
  bft::Envelope env;
  env.type = bft::MsgType::kPrepare;
  env.sender = NodeId(1);
  env.body = Bytes(static_cast<std::size_t>(state.range(0)), 0x5a);
  const net::Packet packet{NodeId(1), NodeId(2), std::nullopt, env.encode()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(proxy.admit(packet));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * packet.payload.size()));
}
BENCHMARK(BM_A3FirewallAdmitValid)->Arg(64)->Arg(4096)->Arg(65536);

void BM_A3FirewallRejectGarbage(benchmark::State& state) {
  core::FirewallProxy proxy;
  Rng rng(9);
  const net::Packet packet{NodeId(1), NodeId(2), std::nullopt,
                           rng.next_bytes(static_cast<std::size_t>(state.range(0)))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(proxy.admit(packet));
  }
}
BENCHMARK(BM_A3FirewallRejectGarbage)->Arg(64)->Arg(4096)->Arg(65536);

// ---------------------------------------------------------------------------
// a4: element replacement
// ---------------------------------------------------------------------------

class PersistentCalc : public BenchCalculator {
 public:
  Result<Bytes> save_state() const override { return Bytes{}; }
  Status load_state(ByteView) override { return Status::ok(); }
};

void BM_A4ReplacementTime(benchmark::State& state) {
  std::int64_t total_sim_ns = 0;
  std::uint64_t seed = 81;
  for (auto _ : state) {
    core::SystemOptions options;
    options.seed = seed++;
    core::ItdosSystem system(options);
    const DomainId domain = system.add_domain(
        1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
          (void)adapter.activate_with_key(ObjectId(1),
                                          std::make_shared<PersistentCalc>());
        });
    core::ItdosClient& client = system.add_client();
    const orb::ObjectRef ref =
        system.object_ref(domain, ObjectId(1), "IDL:bench/Calc:1.0");
    for (int i = 0; i < 4; ++i) {
      if (!system.invoke_sync(client, ref, "add", int_args(1, 1), seconds(30)).is_ok()) {
        state.SkipWithError("setup failed");
        return;
      }
    }
    system.crash_element(domain, 1);
    const SimTime before = system.sim().now();
    core::DomainElement& fresh = system.replace_element(domain, 1);
    const SimTime horizon = before + seconds(10);
    while (!fresh.replacement_complete() && system.sim().now() < horizon) {
      if (!system.sim().step()) break;
    }
    if (!fresh.replacement_complete()) {
      state.SkipWithError("replacement did not complete");
      return;
    }
    total_sim_ns += system.sim().now() - before;
    BenchReport::instance().harvest(system.sim());
  }
  state.counters["sim_ms_to_replace"] = benchmark::Counter(
      static_cast<double>(total_sim_ns) / 1e6 / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_A4ReplacementTime)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace itdos::bench

ITDOS_BENCH_MAIN("a1_ablations");
