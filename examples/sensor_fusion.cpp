// Sensor fusion: heterogeneous replica implementations + inexact voting
// (§3.6). Four replicas of a fusion service each compute a weighted mean of
// sensor samples with a DIFFERENT accumulation strategy (and different
// native byte orders), so no two replies are byte-identical — yet the
// middleware voter, comparing unmarshalled doubles within epsilon, delivers
// one agreed answer. A byte-by-byte voter on the same deployment starves.
//
// Run: build/examples/sensor_fusion
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "itdos/system.hpp"

using namespace itdos;
using cdr::Value;

/// Rank-diverse fusion implementations — same mathematical answer, different
/// floating-point rounding.
class FusionServant : public orb::Servant {
 public:
  explicit FusionServant(int rank) : rank_(rank) {}

  std::string interface_name() const override { return "IDL:sensors/Fusion:1.0"; }

  void dispatch(const std::string& operation, const Value& arguments,
                orb::ServerContext&, orb::ReplySinkPtr sink) override {
    if (operation != "fuse") {
      sink->reply(error(Errc::kInvalidArgument, "unknown operation"));
      return;
    }
    std::vector<double> samples;
    for (const Value& v : arguments.elements()) samples.push_back(v.as_float64());
    if (samples.empty()) {
      sink->reply(error(Errc::kInvalidArgument, "no samples"));
      return;
    }
    double mean = 0;
    switch (rank_ % 4) {
      case 0:  // forward accumulation
        mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
               static_cast<double>(samples.size());
        break;
      case 1:  // reverse accumulation
        mean = std::accumulate(samples.rbegin(), samples.rend(), 0.0) /
               static_cast<double>(samples.size());
        break;
      case 2: {  // sorted accumulation (numerically friendliest)
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
               static_cast<double>(sorted.size());
        break;
      }
      case 3: {  // running mean
        for (std::size_t i = 0; i < samples.size(); ++i) {
          mean += (samples[i] - mean) / static_cast<double>(i + 1);
        }
        break;
      }
    }
    // Model per-platform libm/FPU rounding: heterogeneous hosts legitimately
    // differ in the last ulps (§3.6 "the accuracy of floating point and
    // other data types may vary from platform to platform").
    mean += static_cast<double>(rank_) * 1e-13;
    sink->reply(Value::structure({cdr::Field("mean", Value::float64(mean)),
                                  cdr::Field("count", Value::int64(
                                                          static_cast<std::int64_t>(
                                                              samples.size())))}));
  }

 private:
  int rank_;
};

int main() {
  core::ItdosSystem system;

  // Inexact voting with epsilon 1e-9: rounding differences are equivalent,
  // real value faults are not.
  const DomainId domain = system.add_domain(
      1, core::VotePolicy::inexact(1e-9), [](orb::ObjectAdapter& adapter, int rank) {
        (void)adapter.activate_with_key(ObjectId(1),
                                        std::make_shared<FusionServant>(rank));
      });
  const orb::ObjectRef fusion =
      system.object_ref(domain, ObjectId(1), "IDL:sensors/Fusion:1.0");

  std::printf("deployment: 4 fusion replicas, per-rank algorithms, byte orders:");
  for (const auto& e : system.directory().find_domain(domain)->elements) {
    std::printf(" %s", e.byte_order == cdr::ByteOrder::kBigEndian ? "BE" : "LE");
  }
  std::printf("\n\n");

  core::ItdosClient& client = system.add_client();
  Rng rng(2026);
  for (int round = 1; round <= 3; ++round) {
    std::vector<Value> samples;
    const double base = 20.0 + round;
    for (int i = 0; i < 7; ++i) {
      samples.push_back(Value::float64(base + rng.next_double() - 0.5));
    }
    const Result<Value> result =
        system.invoke_sync(client, fusion, "fuse", Value::sequence(samples));
    if (result.is_ok()) {
      std::printf("round %d: fused mean = %.12f (from %lld samples)\n", round,
                  result.value().field("mean").value().as_float64(),
                  static_cast<long long>(
                      result.value().field("count").value().as_int64()));
    } else {
      std::printf("round %d failed: %s\n", round, result.status().to_string().c_str());
    }
  }

  // The same deployment with byte-by-byte voting (the Immune/Rampart-style
  // baseline) cannot decide: all four replies differ on the wire.
  core::ClientOptions byte_options;
  byte_options.policy_override = core::VotePolicy::byte_by_byte();
  byte_options.auto_report = false;
  core::ItdosClient& byte_client = system.add_client(byte_options);
  const Result<Value> byte_result = system.invoke_sync(
      byte_client, fusion, "fuse",
      Value::sequence({Value::float64(1.0), Value::float64(2.0), Value::float64(3.0)}));
  std::printf("\nbyte-by-byte voter on the same service: %s\n",
              byte_result.is_ok() ? "decided (unexpected!)"
                                  : byte_result.status().to_string().c_str());
  std::printf("  -> exactly the §3.6 failure mode ITDOS's unmarshalled voter fixes\n");
  return byte_result.is_ok() ? 1 : 0;
}
