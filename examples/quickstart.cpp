// Quickstart: a singleton client invoking a replicated, intrusion-tolerant
// calculator service (Figure 1 of the paper, minus the fault injection —
// see examples/intrusion_demo.cpp for that).
//
// Run: build/examples/quickstart
#include <cstdio>

#include "itdos/system.hpp"

using namespace itdos;
using core::ItdosSystem;
using cdr::Value;

/// Your servant: plain C++, no IDL compiler. Heterogeneous deployments can
/// install a different implementation per replica rank.
class Calculator : public orb::Servant {
 public:
  std::string interface_name() const override { return "IDL:demo/Calculator:1.0"; }

  void dispatch(const std::string& operation, const Value& arguments,
                orb::ServerContext&, orb::ReplySinkPtr sink) override {
    if (operation == "add") {
      std::int64_t sum = 0;
      for (const Value& v : arguments.elements()) sum += v.as_int64();
      sink->reply(Value::int64(sum));
    } else if (operation == "mul") {
      std::int64_t product = 1;
      for (const Value& v : arguments.elements()) product *= v.as_int64();
      sink->reply(Value::int64(product));
    } else {
      sink->reply(error(Errc::kInvalidArgument, "unknown operation"));
    }
  }
};

int main() {
  // 1. Bring up an ITDOS deployment: this creates the Group Manager
  //    replication domain (4 elements tolerating 1 Byzantine fault).
  ItdosSystem system;

  // 2. Add a replicated server domain: 3f+1 = 4 elements, each hosting the
  //    calculator; elements alternate byte order (heterogeneous platforms).
  const DomainId domain = system.add_domain(
      /*f=*/1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int rank) {
        (void)rank;
        (void)adapter.activate_with_key(ObjectId(1), std::make_shared<Calculator>());
      });

  // 3. Add a client and invoke. Under the hood this runs Figure 3: an
  //    open_request to the Group Manager, threshold key-share distribution,
  //    BFT-ordered delivery to all four elements, and middleware voting on
  //    the four (differently-encoded) replies.
  core::ItdosClient& client = system.add_client();
  const orb::ObjectRef calc =
      system.object_ref(domain, ObjectId(1), "IDL:demo/Calculator:1.0");

  const Result<Value> sum =
      system.invoke_sync(client, calc, "add",
                         Value::sequence({Value::int64(30), Value::int64(12)}));
  if (!sum.is_ok()) {
    std::fprintf(stderr, "invocation failed: %s\n", sum.status().to_string().c_str());
    return 1;
  }
  std::printf("add(30, 12)  -> %s\n", sum.value().to_string().c_str());

  const Result<Value> product =
      system.invoke_sync(client, calc, "mul",
                         Value::sequence({Value::int64(6), Value::int64(7)}));
  std::printf("mul(6, 7)    -> %s\n", product.value().to_string().c_str());

  const auto& stats = client.party().stats();
  std::printf("\nwhat happened under the hood:\n");
  std::printf("  open_requests to the Group Manager : %llu\n",
              static_cast<unsigned long long>(stats.opens_sent));
  std::printf("  ordered requests sent              : %llu\n",
              static_cast<unsigned long long>(stats.requests_sent));
  std::printf("  replies received from elements     : %llu\n",
              static_cast<unsigned long long>(stats.replies_received));
  std::printf("  votes decided                      : %llu\n",
              static_cast<unsigned long long>(stats.votes_decided));
  std::printf("  network packets delivered          : %llu\n",
              static_cast<unsigned long long>(system.network().stats().packets_delivered));
  return 0;
}
