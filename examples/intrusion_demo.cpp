// Intrusion demo: the full §3.6 fault story, narrated.
//
//   1. A replicated status service runs with one COMPROMISED element that
//      returns forged values (valid crypto, wrong data — an intrusion, not
//      a crash).
//   2. The client's voter masks the lie (f+1 matching correct replies win).
//   3. The client files a change_request with PROOF: the signed replies,
//      including the forged one.
//   4. The Group Manager re-votes the proof on unmarshalled data, confirms
//      the accusation, EXPELS the element and REKEYS the connection with
//      threshold-generated shares the expelled element never sees.
//   5. Service continues; the intruder is keyed out of all traffic.
//
// Run: build/examples/intrusion_demo
#include <cstdio>

#include "itdos/system.hpp"

using namespace itdos;
using cdr::Value;

class StatusService : public orb::Servant {
 public:
  std::string interface_name() const override { return "IDL:ops/Status:1.0"; }

  void dispatch(const std::string& operation, const Value& arguments,
                orb::ServerContext&, orb::ReplySinkPtr sink) override {
    (void)arguments;
    if (operation == "threat_level") {
      sink->reply(Value::structure({cdr::Field("level", Value::string("GREEN")),
                                    cdr::Field("confidence", Value::int64(97))}));
    } else {
      sink->reply(error(Errc::kInvalidArgument, "unknown operation"));
    }
  }
};

int main() {
  core::ItdosSystem system;
  const DomainId domain = system.add_domain(
      1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
        (void)adapter.activate_with_key(ObjectId(1), std::make_shared<StatusService>());
      });
  const orb::ObjectRef status =
      system.object_ref(domain, ObjectId(1), "IDL:ops/Status:1.0");

  // Compromise element 2: the intruder forges every reply. MACs, seals and
  // signatures are all VALID — only the value is wrong.
  const int intruder_rank = 2;
  system.element(domain, intruder_rank).set_reply_mutator([](cdr::ReplyMessage reply) {
    reply.result = Value::structure({cdr::Field("level", Value::string("RED")),
                                     cdr::Field("confidence", Value::int64(99))});
    return reply;
  });
  const NodeId intruder = system.element(domain, intruder_rank).smiop_node();
  std::printf("[setup] element rank %d (node %llu) is compromised and forging replies\n\n",
              intruder_rank, static_cast<unsigned long long>(intruder.value));

  core::ItdosClient& client = system.add_client();

  // --- step 1+2: the lie is masked by voting ---
  const Result<Value> first =
      system.invoke_sync(client, status, "threat_level", Value::sequence({}));
  std::printf("[invoke] threat_level() -> %s\n",
              first.is_ok() ? first.value().to_string().c_str()
                            : first.status().to_string().c_str());
  std::printf("         (the forged RED reply was outvoted by f+1 correct GREENs)\n\n");

  // --- step 3+4: detection, proof, expulsion, rekey ---
  system.settle();
  const auto& stats = client.party().stats();
  std::printf("[detect] dissenting replies observed : %llu\n",
              static_cast<unsigned long long>(stats.faults_detected));
  std::printf("[report] change_requests (with proof): %llu\n",
              static_cast<unsigned long long>(stats.change_requests_sent));
  const bool expelled = system.gm_element(0).state().is_expelled(domain, intruder);
  std::printf("[expel]  Group Manager verdict       : %s\n",
              expelled ? "EXPELLED (proof verified by GM's unmarshalled vote)"
                       : "still in (unexpected)");

  const ConnectionId conn = system.gm_element(0).state().connections().begin()->first;
  const auto* client_entry = client.party().conn_table().find(conn);
  const auto* intruder_entry =
      system.element(domain, intruder_rank).party().conn_table().find(conn);
  std::printf("[rekey]  client key epoch            : %llu\n",
              static_cast<unsigned long long>(client_entry->record.epoch.value));
  std::printf("[rekey]  intruder has epoch-2 key    : %s\n",
              (intruder_entry != nullptr && intruder_entry->keys.contains(2))
                  ? "yes (BUG!)"
                  : "no (keyed out)");

  // --- step 5: service continues without the intruder ---
  const Result<Value> second = system.invoke_sync(client, status, "threat_level",
                                                  Value::sequence({}), seconds(10));
  std::printf("\n[invoke] threat_level() after expulsion -> %s\n",
              second.is_ok() ? second.value().to_string().c_str()
                             : second.status().to_string().c_str());
  std::printf("[done]   availability and integrity preserved through the intrusion\n");
  return (expelled && second.is_ok()) ? 0 : 1;
}
