// Bank: two replication domains with nested invocations (§2 "servers can,
// in turn, be clients"; §3.1 nested invocation support).
//
//   client -> Teller domain (4 replicas) -> Ledger domain (4 replicas)
//
// The Teller's transfer() upcall performs TWO nested invocations on the
// replicated Ledger (debit, then credit) before replying. Each Teller
// element independently issues the nested calls; the Ledger's elements vote
// on the 4 ordered request copies and execute once; the nested replies are
// voted at each Teller element.
//
// Run: build/examples/bank
#include <cstdio>

#include "itdos/system.hpp"

using namespace itdos;
using cdr::Value;

class Ledger : public orb::Servant {
 public:
  std::string interface_name() const override { return "IDL:bank/Ledger:1.0"; }

  void dispatch(const std::string& operation, const Value& arguments,
                orb::ServerContext&, orb::ReplySinkPtr sink) override {
    if (operation == "adjust") {
      const std::string account = arguments.field("account").value().as_string();
      const std::int64_t delta = arguments.field("delta").value().as_int64();
      auto& balance = balances_[account];
      if (balance + delta < 0) {
        sink->reply(error(Errc::kInvalidArgument, "InsufficientFunds"));
        return;
      }
      balance += delta;
      sink->reply(Value::int64(balance));
    } else if (operation == "balance") {
      const std::string account = arguments.field("account").value().as_string();
      sink->reply(Value::int64(balances_[account]));
    } else {
      sink->reply(error(Errc::kInvalidArgument, "unknown operation"));
    }
  }

 private:
  std::map<std::string, std::int64_t> balances_{{"alice", 100}, {"bob", 50}};
};

class Teller : public orb::Servant {
 public:
  explicit Teller(orb::ObjectRef ledger) : ledger_(std::move(ledger)) {}

  std::string interface_name() const override { return "IDL:bank/Teller:1.0"; }

  void dispatch(const std::string& operation, const Value& arguments,
                orb::ServerContext& context, orb::ReplySinkPtr sink) override {
    if (operation != "transfer") {
      sink->reply(error(Errc::kInvalidArgument, "unknown operation"));
      return;
    }
    const std::string from = arguments.field("from").value().as_string();
    const std::string to = arguments.field("to").value().as_string();
    const std::int64_t amount = arguments.field("amount").value().as_int64();

    // Nested call 1: debit. The upcall pauses here; the element's queue
    // consumption resumes only after the voted reply arrives (§3.1).
    context.invoke_nested(
        ledger_, "adjust",
        Value::structure({cdr::Field("account", Value::string(from)),
                          cdr::Field("delta", Value::int64(-amount))}),
        [this, &context, to, amount, sink](Result<Value> debit) {
          if (!debit.is_ok()) {
            sink->reply(debit.status());  // e.g. InsufficientFunds
            return;
          }
          // Nested call 2: credit.
          context.invoke_nested(
              ledger_, "adjust",
              Value::structure({cdr::Field("account", Value::string(to)),
                                cdr::Field("delta", Value::int64(amount))}),
              [debit = std::move(debit).take(), sink](Result<Value> credit) {
                if (!credit.is_ok()) {
                  sink->reply(credit.status());
                  return;
                }
                sink->reply(Value::structure(
                    {cdr::Field("from_balance", debit),
                     cdr::Field("to_balance", std::move(credit).take())}));
              });
        });
  }

 private:
  orb::ObjectRef ledger_;
};

int main() {
  core::ItdosSystem system;

  const DomainId ledger_domain = system.add_domain(
      1, core::VotePolicy::exact(), [](orb::ObjectAdapter& adapter, int) {
        (void)adapter.activate_with_key(ObjectId(1), std::make_shared<Ledger>());
      });
  const orb::ObjectRef ledger =
      system.object_ref(ledger_domain, ObjectId(1), "IDL:bank/Ledger:1.0");

  const DomainId teller_domain = system.add_domain(
      1, core::VotePolicy::exact(), [&](orb::ObjectAdapter& adapter, int) {
        (void)adapter.activate_with_key(ObjectId(1), std::make_shared<Teller>(ledger));
      });
  const orb::ObjectRef teller =
      system.object_ref(teller_domain, ObjectId(1), "IDL:bank/Teller:1.0");

  core::ItdosClient& client = system.add_client();

  auto transfer = [&](const char* from, const char* to, std::int64_t amount) {
    const Result<Value> result = system.invoke_sync(
        client, teller, "transfer",
        Value::structure({cdr::Field("from", Value::string(from)),
                          cdr::Field("to", Value::string(to)),
                          cdr::Field("amount", Value::int64(amount))}),
        seconds(30));
    if (result.is_ok()) {
      std::printf("transfer %s -> %s (%lld): %s\n", from, to,
                  static_cast<long long>(amount), result.value().to_string().c_str());
    } else {
      std::printf("transfer %s -> %s (%lld): REFUSED (%s)\n", from, to,
                  static_cast<long long>(amount),
                  result.status().to_string().c_str());
    }
  };

  transfer("alice", "bob", 30);
  transfer("bob", "alice", 10);
  transfer("alice", "bob", 1000);  // refused: insufficient funds

  // Check the final balance straight from the ledger domain.
  const Result<Value> alice = system.invoke_sync(
      client, ledger, "balance",
      Value::structure({cdr::Field("account", Value::string("alice"))}), seconds(30));
  std::printf("alice's final balance: %s\n", alice.value().to_string().c_str());

  std::printf("\nledger elements voted on ordered request copies from the "
              "replicated teller:\n");
  std::printf("  ledger element 0 request-vote copies: %llu\n",
              static_cast<unsigned long long>(
                  system.element(ledger_domain, 0).stats().request_vote_copies));
  return 0;
}
