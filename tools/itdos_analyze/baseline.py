"""Baseline: known, documented-safe findings the gate must tolerate.

Fingerprints are (rule, relpath, normalized source-line text, occurrence
index) — deliberately NOT line numbers, so unrelated edits above a finding
don't churn the baseline. The occurrence index disambiguates identical
lines (e.g. two `seq < low` checks in one file).

The checked-in file (tools/itdos_analyze/baseline.json) carries a `reason`
per entry: a baseline without a reason is rejected, mirroring META-001 for
inline suppressions. `--update-baseline` rewrites the file from the current
findings, preserving reasons for entries that survive and stamping
`TODO: justify` on new ones — CI rejects TODO reasons, so an update is
always followed by a human pass.
"""

from __future__ import annotations

import json
import os
import re


def _normalize(line_text: str) -> str:
    return re.sub(r"\s+", " ", line_text.strip())


def fingerprint(finding, repo_root: str, file_lines: dict) -> tuple:
    rel = os.path.relpath(finding.path, repo_root).replace(os.sep, "/")
    lines = file_lines.get(finding.path, [])
    text = _normalize(lines[finding.line - 1]) \
        if 0 < finding.line <= len(lines) else ""
    return (finding.rule, rel, text)


class Baseline:
    def __init__(self, entries=None):
        # key (rule, rel, text) -> list of reasons (one per occurrence)
        self.entries: dict = {}
        for e in entries or []:
            key = (e["rule"], e["file"], e["line_text"])
            self.entries.setdefault(key, []).append(e.get("reason", ""))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls()
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
        return cls(data.get("findings", []))

    def invalid_reasons(self):
        bad = []
        for (rule, rel, text), reasons in sorted(self.entries.items()):
            for reason in reasons:
                if not reason.strip() or reason.strip().startswith("TODO"):
                    bad.append((rule, rel, text))
        return bad

    def apply(self, findings, repo_root: str, file_lines: dict):
        """Split findings into (new, baselined). Matching consumes
        occurrences, so a baseline entry covers exactly as many findings
        as it has occurrences."""
        budget = {k: list(v) for k, v in self.entries.items()}
        new, matched = [], []
        for f in findings:
            key = fingerprint(f, repo_root, file_lines)
            if budget.get(key):
                f.baselined = True
                f.baseline_reason = budget[key].pop(0)
                matched.append(f)
            else:
                new.append(f)
        return new, matched

    @staticmethod
    def write(path: str, findings, repo_root: str, file_lines: dict,
              old: "Baseline") -> None:
        budget = {k: list(v) for k, v in old.entries.items()}
        out = []
        for f in sorted(findings, key=lambda f: f.sort_key()):
            rule, rel, text = fingerprint(f, repo_root, file_lines)
            reasons = budget.get((rule, rel, text), [])
            reason = reasons.pop(0) if reasons else "TODO: justify"
            out.append({"rule": rule, "file": rel, "line_text": text,
                        "reason": reason})
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"comment": "Known, documented-safe analyzer findings."
                       " Update with --update-baseline, then replace every"
                       " TODO reason; the gate rejects TODOs.",
                       "findings": out}, fh, indent=2)
            fh.write("\n")
