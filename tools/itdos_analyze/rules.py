"""Analyzer rules over the whole-program model.

TAINT-001 lives in taint.py (dataflow); this module hosts the structural
rules and the glue that runs everything over a ProgramModel.
"""

from __future__ import annotations

import os
import re

from . import Finding
from .model import match_paren, match_brace
from .taint import TaintEngine

# ---------------------------------------------------------------------------
# TAINT-002: protocol state mutated before MAC/signature verification.
# ---------------------------------------------------------------------------

_TAINT2_DIRS = ("/bft/", "/itdos/", "/net/", "/shard/")
_MSG_PARAM_RE = re.compile(r"\b(Envelope|Packet)\b")
_VERIFY_CALL_NAMES = {"verify", "verify_envelope", "verify_sig", "open",
                      "authenticate", "check_auth", "tag_for", "unseal"}
# Mutating telemetry before verify is fine — counting malformed/rejected
# input is the point of those members.
_TELEMETRY_MEMBER_RE = re.compile(
    r"(metrics|stats|tel_|telemetry|trace|tracer|log|counter|gauge|hist"
    r"|rejected|accepted|dropped|discarded|malformed|overload|clock|now)")
_MUTATOR_METHODS = {"push_back", "push_front", "insert", "emplace",
                    "emplace_back", "erase", "clear", "pop_front",
                    "pop_back", "push", "pop", "assign", "resize"}


def check_taint002(program) -> list:
    out = []
    for func in program.functions:
        norm = func.path.replace(os.sep, "/")
        if not any(d in norm for d in _TAINT2_DIRS):
            continue
        if not any(_MSG_PARAM_RE.search(p.type_text) for p in func.params):
            continue
        toks = func.body
        verify_at = None
        for i, t in enumerate(toks):
            if (t.kind == "id" and t.text in _VERIFY_CALL_NAMES
                    and i + 1 < len(toks) and toks[i + 1].text == "("):
                verify_at = i
                break
        if verify_at is None:
            continue   # not the verification boundary for this message
        for i in range(verify_at):
            t = toks[i]
            if t.kind != "id" or not t.text.endswith("_") or len(t.text) < 2:
                continue
            if _TELEMETRY_MEMBER_RE.search(t.text):
                continue
            prev = toks[i - 1] if i >= 1 else None
            if prev is not None and prev.text in {".", "->"}:
                continue   # member of something else, not protocol state here
            nxt = toks[i + 1] if i + 1 < len(toks) else None
            nxt2 = toks[i + 2] if i + 2 < len(toks) else None
            mutated = False
            if nxt is not None and nxt.text == "=":
                mutated = True
            elif (nxt is not None and nxt.text in {".", "->"}
                  and nxt2 is not None and nxt2.kind == "id"):
                if (nxt2.text in _MUTATOR_METHODS and i + 3 < len(toks)
                        and toks[i + 3].text == "("):
                    mutated = True
                elif nxt2.text == "operator":
                    mutated = True
            elif ((nxt is not None and nxt.text in {"++", "--"})
                  or (prev is not None and prev.text in {"++", "--"})):
                mutated = True
            elif nxt is not None and nxt.text == "[":
                # state_[key] = ... : map insert-or-assign before verify
                close = _match_sq(toks, i + 1)
                if (close > 0 and close + 1 < len(toks)
                        and toks[close + 1].text == "="):
                    mutated = True
            if mutated:
                out.append(Finding(
                    "TAINT-002", func.path, t.line,
                    f"`{t.text}` mutated before the message's MAC/signature "
                    "is verified; move the write after the verify or count "
                    "it in telemetry instead", function=func.qual_name))
    return out


def _match_sq(toks, i):
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == "[":
            depth += 1
        elif toks[j].text == "]":
            depth -= 1
            if depth == 0:
                return j
    return -1


# ---------------------------------------------------------------------------
# PROTO-003: non-exhaustive switch over a protocol message/kind enum.
# ---------------------------------------------------------------------------

_PROTO_ENUM_RE = re.compile(r"(Kind|Type)$")


def check_proto003(program) -> list:
    out = []
    for sw in program.switches:
        if not _PROTO_ENUM_RE.search(sw.enum_name):
            continue
        # Nested enums collide on unqualified name (Foo::Kind vs Bar::Kind);
        # the switch's enum is the candidate whose enumerators cover every
        # observed case. Ambiguity (several covering candidates that would
        # disagree) means we cannot identify the enum — stay silent.
        candidates = [e for e in program.enums.get(sw.enum_name, [])
                      if sw.cases <= set(e.enumerators)]
        if not candidates:
            continue    # enum defined outside the scanned tree, or unknown
        missings = [[x for x in e.enumerators if x not in sw.cases]
                    for e in candidates]
        if any(sorted(m) != sorted(missings[0]) for m in missings[1:]):
            continue
        missing = missings[0]
        if not missing:
            continue
        listed = ", ".join(missing[:4]) + ("…" if len(missing) > 4 else "")
        via = (" (a `default:` label does not count as coverage — a new "
               "message kind must be routed deliberately)"
               if sw.has_default else "")
        out.append(Finding(
            "PROTO-003", sw.path, sw.line,
            f"switch over {sw.enum_name} misses {len(missing)} "
            f"enumerator(s): {listed}{via}; enumerate every kind"))
    return out


# ---------------------------------------------------------------------------
# BUF-002: a borrowed (non-owning) BufView escaping its storage's scope.
# The zero-copy contract (common/buffer.hpp): Arena-sealed views are
# refcounted and safe to hold; BufView::borrow() views alias storage the
# caller must keep alive and must never be returned off a local or stored
# into a member.
# ---------------------------------------------------------------------------

def check_buf002(program) -> list:
    out = []
    for func in program.functions:
        toks = func.body
        n = len(toks)
        param_names = {p.name for p in func.params if p.name}
        locals_seen: set = set()
        borrowed: dict[str, str] = {}   # var -> what it borrows from
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            nxt = toks[i + 1] if i + 1 < n else None
            prev = toks[i - 1] if i >= 1 else None

            # Track local declarations: `Type name = ...` / `auto name = ...`
            if (nxt is not None and nxt.text in {"=", ";", "{"}
                    and prev is not None
                    and (prev.kind == "id" or prev.text in {">", "&", "*"})
                    and prev.text not in {"return", "co_return"}
                    and (i < 2 or toks[i - 2].text not in {".", "->"})):
                locals_seen.add(t.text)

            if t.text == "borrow" and nxt is not None and nxt.text == "(":
                close = match_paren(toks, i + 1)
                src_ids = [x.text for x in toks[i + 2:close] if x.kind == "id"]
                src = src_ids[0] if src_ids else "?"
                # `auto v = BufView::borrow(x)` — find the var on the LHS.
                j = i - 1
                while j >= 0 and toks[j].text in {"::", "BufView", "ByteView",
                                                  "itdos", "common"}:
                    j -= 1
                if j >= 1 and toks[j].text == "=" and toks[j - 1].kind == "id":
                    borrowed[toks[j - 1].text] = src
                # `return BufView::borrow(local)` — direct escape.
                k = j
                while k >= 0 and toks[k].text in {"=", "(", "{", ","}:
                    k -= 1
                if k >= 0 and toks[k].text == "return" and src in locals_seen:
                    out.append(Finding(
                        "BUF-002", func.path, t.line,
                        f"returning a borrowed view of local `{src}`; the "
                        "storage dies with this frame — seal through an "
                        "Arena instead", function=func.qual_name))

            # Member store of a borrowed view: `member_ = bv;` or
            # `member_.push_back(bv)`.
            if t.text.endswith("_") and len(t.text) > 1 and nxt is not None:
                if prev is not None and prev.text in {".", "->"}:
                    continue
                rhs_lo = None
                if nxt.text == "=":
                    rhs_lo = i + 2
                elif (nxt.text == "." and i + 3 < n
                      and toks[i + 2].text in _MUTATOR_METHODS
                      and toks[i + 3].text == "("):
                    rhs_lo = i + 4
                if rhs_lo is not None:
                    end = rhs_lo
                    while end < n and toks[end].text not in {";", "{", "}"}:
                        end += 1
                    for x in toks[rhs_lo:end]:
                        if x.kind == "id" and (x.text in borrowed
                                               or x.text == "borrow"):
                            what = borrowed.get(x.text, "a borrowed view")
                            out.append(Finding(
                                "BUF-002", func.path, t.line,
                                f"storing a borrowed view into member "
                                f"`{t.text}`; borrows must not outlive the "
                                "call — seal into an Arena-backed BufView "
                                "instead", function=func.qual_name))
                            break

            # Returning a var that borrows from a local.
            if (t.text == "return" and nxt is not None and nxt.kind == "id"
                    and nxt.text in borrowed
                    and borrowed[nxt.text] in locals_seen
                    and borrowed[nxt.text] not in param_names):
                out.append(Finding(
                    "BUF-002", func.path, nxt.line,
                    f"returning `{nxt.text}`, a borrowed view of local "
                    f"`{borrowed[nxt.text]}`; the storage dies with this "
                    "frame — seal through an Arena instead",
                    function=func.qual_name))
    return out


# ---------------------------------------------------------------------------
# EPOCH-001: raw </> comparison of wrapping protocol counters. Use the
# serial-arithmetic helpers in src/common/counters.hpp.
# ---------------------------------------------------------------------------

_COUNTER_SEG_RE = re.compile(
    r"^(epoch|seq|seqno|seq_no|sequence|generation|gen|view|rid|timestamp"
    r"|epochs?_?|seqs?_?|views?_?|generations?_?|rids?_?|timestamps?_?"
    r"|last_stable|low_water|high_water)$", re.I)
_NOT_COUNTER_LAST_SEG = {"size", "length", "empty", "capacity", "remaining",
                         "count", "value_or", "data", "begin", "end"}
_RELOPS = {"<", ">", "<=", ">="}
_TYPEISH = {"::", ",", "*", "&", "<", ">"}


def _operand_chain(toks, i, direction):
    """Collect the dotted id chain to the left (direction=-1) or right
    (direction=+1) of the operator at index i. Returns list of segments."""
    segs = []
    j = i + direction
    n = len(toks)
    expect_id = True
    while 0 <= j < n:
        t = toks[j]
        if expect_id and t.kind == "id":
            segs.append(t.text)
            expect_id = False
        elif not expect_id and t.text in {".", "->", "::"}:
            expect_id = True
        elif not expect_id and t.text in {"(", ")"} and direction > 0:
            break
        else:
            break
        j += direction
    if direction < 0:
        segs.reverse()
    return segs


def _looks_like_template(toks, i):
    """Is the `<` at index i a template-argument opener? Heuristic: a
    matching `>` within 24 tokens containing only type-ish tokens, followed
    by something a template-id can precede."""
    depth = 0
    for j in range(i, min(i + 24, len(toks))):
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                nxt = toks[j + 1] if j + 1 < len(toks) else None
                return nxt is not None and (
                    nxt.kind == "id" or nxt.text in {"(", "{", "::", ">", ","})
        elif toks[j].kind not in {"id", "num"} and t not in _TYPEISH:
            return False
    return False


def _closes_template(toks, i):
    """Is the `>` at index i a template-argument closer? Mirror image of
    _looks_like_template: a matching `<` within 24 tokens to the left over
    only type-ish tokens, opened right after an identifier."""
    depth = 0
    for j in range(i, max(i - 24, -1), -1):
        t = toks[j].text
        if t == ">":
            depth += 1
        elif t == "<":
            depth -= 1
            if depth == 0:
                prev = toks[j - 1] if j >= 1 else None
                return prev is not None and prev.kind == "id"
        elif toks[j].kind not in {"id", "num"} and t not in _TYPEISH:
            return False
    return False


def check_epoch001(program) -> list:
    out = []
    for fm in program.files:
        norm = fm.path.replace(os.sep, "/")
        if norm.endswith("common/counters.hpp"):
            continue   # the helpers themselves compare raw values
        toks = fm.tokens
        n = len(toks)
        # for-loop headers are iteration, not protocol-ordering decisions.
        for_header: set = set()
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text == "for" and i + 1 < n \
                    and toks[i + 1].text == "(":
                close = match_paren(toks, i + 1)
                if close > 0:
                    for_header.update(range(i + 1, close + 1))
        for i, t in enumerate(toks):
            if t.text not in _RELOPS or i in for_header:
                continue
            if t.text == "<" and _looks_like_template(toks, i):
                continue
            if t.text == ">" and _closes_template(toks, i):
                continue
            left = _operand_chain(toks, i, -1)
            right = _operand_chain(toks, i, +1)
            # Comparison against a literal 0/1 is an emptiness/validity
            # check, not an ordering decision.
            nxt = toks[i + 1] if i + 1 < n else None
            prv = toks[i - 1] if i >= 1 else None
            if (nxt is not None and nxt.kind == "num"
                    and nxt.text in {"0", "1"}) or \
               (prv is not None and prv.kind == "num"
                    and prv.text in {"0", "1"}):
                continue

            def is_counter(chain):
                if not chain:
                    return False
                if chain[-1] in _NOT_COUNTER_LAST_SEG:
                    return False
                segs = chain[:-1] + [chain[-1]] if chain[-1] != "value" \
                    else chain[:-1]
                return any(_COUNTER_SEG_RE.match(s) for s in segs)

            if is_counter(left) or is_counter(right):
                lhs = ".".join(left) or "?"
                rhs = ".".join(right) or "?"
                out.append(Finding(
                    "EPOCH-001", fm.path, t.line,
                    f"raw `{t.text}` on wrapping counter(s) "
                    f"(`{lhs} {t.text} {rhs}`); use itdos::counters::"
                    "before/after (serial arithmetic, "
                    "common/counters.hpp)"))
    return out


# ---------------------------------------------------------------------------
# Program model + rule runner
# ---------------------------------------------------------------------------

class ProgramModel:
    def __init__(self, files):
        self.files = files                       # list[FileModel]
        self.functions = [fn for fm in files for fn in fm.functions]
        self.enums: dict = {}                    # name -> [Enum] (collisions!)
        self.switches = []
        for fm in files:
            for name, enum in fm.enums.items():
                self.enums.setdefault(name, []).append(enum)
            self.switches.extend(fm.switches)


def run_rules(program, enabled) -> list:
    findings = []
    if "TAINT-001" in enabled:
        findings += TaintEngine(program.functions).fixpoint().findings()
    if "TAINT-002" in enabled:
        findings += check_taint002(program)
    if "PROTO-003" in enabled:
        findings += check_proto003(program)
    if "BUF-002" in enabled:
        findings += check_buf002(program)
    if "EPOCH-001" in enabled:
        findings += check_epoch001(program)
    return findings
