"""SARIF 2.1.0 export — the CI artifact format code-scanning UIs ingest.

Baselined findings are included with a `suppressions` entry (kind
"external") so they render as suppressed rather than vanishing; the gate
itself only fails on unsuppressed results.
"""

from __future__ import annotations

import json
import os

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _rule_descriptor(rule_id: str, summary: str) -> dict:
    return {
        "id": rule_id,
        "shortDescription": {"text": summary},
        "defaultConfiguration": {"level": "error"},
    }


def to_sarif(findings, all_rules: dict, repo_root: str,
             tool_name: str = "itdos_analyze",
             tool_version: str = "1.0.0") -> dict:
    used = sorted({f.rule for f in findings} | set(all_rules))
    results = []
    for f in sorted(findings, key=lambda f: f.sort_key()):
        rel = os.path.relpath(f.path, repo_root).replace(os.sep, "/")
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": rel,
                                         "uriBaseId": "SRCROOT"},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        if f.baselined:
            result["suppressions"] = [{
                "kind": "external",
                "justification": f.baseline_reason or "baselined",
            }]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "version": tool_version,
                "informationUri":
                    "https://example.invalid/itdos/tools/itdos_analyze",
                "rules": [_rule_descriptor(r, all_rules.get(r, r))
                          for r in used],
            }},
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file://" + repo_root.rstrip("/") + "/"},
            },
            "results": results,
        }],
    }


def write_sarif(path: str, findings, all_rules: dict, repo_root: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings, all_rules, repo_root), fh, indent=2)
        fh.write("\n")
