"""Entry point: `python3 tools/itdos_analyze [args...]`.

When invoked by path, Python puts the package directory itself on
sys.path and leaves __package__ empty; bootstrap the parent (tools/) so
absolute imports of the package resolve.
"""

import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    from itdos_analyze import driver
else:
    from . import driver

if __name__ == "__main__":
    sys.exit(driver.main(sys.argv[1:]))
