"""Source model: functions, enums and switches extracted from C++ files.

Reuses tools/itdos_lint.py's lexer (libclang token stream when the bindings
are importable, built-in tokenizer otherwise) so both tools see the same
(kind, text, line) stream and honour the same suppression comments. On top
of that stream this module recovers a *function model* — name, parameters,
body token range — which is what the dataflow engine in taint.py walks.

The extractor is heuristic, not a full parser: it looks for
`name(params) [quals] [: ctor-inits] {` at namespace/class scope, skipping
control-flow keywords. That is exact enough for this codebase's style (and
for the fixtures), and the libclang backend feeds it the same token kinds,
so findings are identical across backends.
"""

from __future__ import annotations

import importlib.util
import os
import re
from dataclasses import dataclass, field

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_lint():
    import sys
    if "itdos_lint" in sys.modules:
        return sys.modules["itdos_lint"]
    spec = importlib.util.spec_from_file_location(
        "itdos_lint", os.path.join(_TOOLS_DIR, "itdos_lint.py"))
    mod = importlib.util.module_from_spec(spec)
    sys.modules["itdos_lint"] = mod     # dataclass decorators look this up
    spec.loader.exec_module(mod)
    return mod


LINT = _load_lint()
Token = LINT.Token
Suppressions = LINT.Suppressions

# Keywords that look like `name ( ... ) {` but are not function definitions.
_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "else", "do", "new", "delete", "case", "static_assert",
    "assert", "throw", "co_return", "co_await", "co_yield", "constexpr",
    "alignas", "defined", "__attribute__",
}

# Tokens allowed between `)` and the body `{`: cv/ref qualifiers, noexcept,
# trailing return types, override/final, requires-clauses.
_POST_PAREN_OK = {"const", "noexcept", "override", "final", "mutable", "&",
                  "&&", "->", "::", "throw", "requires", "<", ">", ",", "(",
                  ")", "[", "]", ".", "..."}


@dataclass
class Param:
    name: str
    type_text: str


@dataclass
class Function:
    name: str            # unqualified: "decode_envelope"
    qual_name: str       # "Envelope::decode" when class-qualified
    path: str
    line: int
    params: list = field(default_factory=list)   # [Param]
    body: list = field(default_factory=list)     # tokens between the braces
    is_method: bool = False


@dataclass
class Enum:
    name: str
    path: str
    line: int
    enumerators: list = field(default_factory=list)


@dataclass
class Switch:
    path: str
    line: int
    enum_name: str       # deduced from `case Qual::enumerator` labels
    cases: set = field(default_factory=set)
    has_default: bool = False
    subject_text: str = ""


def match_paren(tokens, i: int) -> int:
    """tokens[i] is '('; index of the matching ')', or -1."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return j
    return -1


def match_brace(tokens, i: int) -> int:
    """tokens[i] is '{'; index of the matching '}', or -1."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return j
    return -1


def _skip_ctor_inits(tokens, j: int) -> int:
    """tokens[j] is the first token after a ctor's `:`; returns the index of
    the body `{` after the member-initializer list, or -1."""
    n = len(tokens)
    while j < n:
        while j < n and (tokens[j].kind == "id"
                         or tokens[j].text in {"::", "<", ">", ",", "."}):
            j += 1
        if j >= n:
            return -1
        if tokens[j].text == "(":
            close = match_paren(tokens, j)
        elif tokens[j].text == "{":
            close = match_brace(tokens, j)
        else:
            return -1
        if close < 0:
            return -1
        j = close + 1
        while j < n and tokens[j].text == ".":  # pack expansion `...`
            j += 1
        if j < n and tokens[j].text == ",":
            j += 1
            continue
        return j if j < n and tokens[j].text == "{" else -1
    return -1


def _find_body_open(tokens, j: int) -> int:
    """Walk from just past a parameter list's `)` to the body `{`.
    Returns -1 for declarations (`;`), deleted/defaulted members (`=`), and
    anything else that is not a definition."""
    n = len(tokens)
    steps = 0
    while j < n and steps < 128:
        t = tokens[j].text
        if t == "{":
            return j
        if t in {";", "=", "}"}:
            return -1
        if t == ":" :
            return _skip_ctor_inits(tokens, j + 1)
        if tokens[j].kind == "id" or t in _POST_PAREN_OK:
            if j + 1 < n and tokens[j + 1].text == "(":
                close = match_paren(tokens, j + 1)
                if close < 0:
                    return -1
                j = close + 1
            else:
                j += 1
            steps += 1
            continue
        return -1
    return -1


def _qualified_name(tokens, k: int):
    """tokens[k] is the name identifier just before '('."""
    parts = [tokens[k].text]
    j = k - 1
    if j >= 0 and tokens[j].text == "~":
        parts[0] = "~" + parts[0]
        j -= 1
    while j >= 1 and tokens[j].text == "::" and tokens[j - 1].kind == "id":
        parts.insert(0, tokens[j - 1].text)
        j -= 2
    return parts[-1], "::".join(parts)


_NOT_PARAM_NAMES = {"const", "void", "int", "char", "bool", "float", "double",
                    "long", "short", "unsigned", "signed", "auto"}


def _make_param(chunk):
    toks = list(chunk)
    for idx, t in enumerate(toks):
        if t.text == "=":          # strip default argument
            toks = toks[:idx]
            break
    if not toks:
        return None
    name_tok = None
    if (len(toks) >= 2 and toks[-1].kind == "id"
            and toks[-1].text not in _NOT_PARAM_NAMES):
        name_tok = toks[-1]
    type_toks = toks[:-1] if name_tok else toks
    return Param(name=name_tok.text if name_tok else "",
                 type_text=" ".join(t.text for t in type_toks))


def _parse_params(tokens, open_i: int, close_i: int):
    params, chunk, depth = [], [], 0
    for j in range(open_i + 1, close_i):
        t = tokens[j].text
        if t in {"(", "<", "[", "{"}:
            depth += 1
        elif t in {")", ">", "]", "}"}:
            depth -= 1
        if t == "," and depth == 0:
            params.append(_make_param(chunk))
            chunk = []
        else:
            chunk.append(tokens[j])
    if chunk:
        params.append(_make_param(chunk))
    return [p for p in params if p is not None]


def extract_functions(tokens, path: str):
    out = []
    i, n = 0, len(tokens)
    while i < n:
        if tokens[i].text != "(":
            i += 1
            continue
        prev = tokens[i - 1] if i > 0 else None
        if (prev is None or prev.kind != "id"
                or prev.text in _CONTROL_KEYWORDS):
            i += 1
            continue
        p2 = tokens[i - 2] if i >= 2 else None
        if p2 is not None and p2.text in {".", "->"}:
            i += 1            # member call, not a definition
            continue
        close = match_paren(tokens, i)
        if close < 0:
            i += 1
            continue
        body_open = _find_body_open(tokens, close + 1)
        if body_open < 0:
            i = close + 1
            continue
        body_close = match_brace(tokens, body_open)
        if body_close < 0:
            i = close + 1
            continue
        name, qual = _qualified_name(tokens, i - 1)
        out.append(Function(
            name=name, qual_name=qual, path=path, line=prev.line,
            params=_parse_params(tokens, i, close),
            body=tokens[body_open + 1: body_close],
            is_method="::" in qual))
        i = body_close + 1     # nested lambdas stay part of the body
    return out


_ENUM_DEF_RE = re.compile(
    r"enum\s+class\s+([A-Za-z_]\w*)\s*(?::[^{(;]*)?\{(.*?)\}\s*;", re.DOTALL)


def extract_enums(text: str, path: str):
    enums = {}
    for m in _ENUM_DEF_RE.finditer(text):
        name, body = m.group(1), m.group(2)
        body = re.sub(r"//[^\n]*", "", body)
        body = re.sub(r"/\*.*?\*/", "", body, flags=re.DOTALL)
        enumerators = []
        for piece in body.split(","):
            im = re.match(r"\s*([A-Za-z_]\w*)", piece)
            if im:
                enumerators.append(im.group(1))
        if enumerators:
            enums[name] = Enum(name=name, path=path,
                               line=text[:m.start()].count("\n") + 1,
                               enumerators=enumerators)
    return enums


def extract_switches(tokens, path: str):
    out = []
    n = len(tokens)
    for i, tok in enumerate(tokens):
        if tok.kind != "id" or tok.text != "switch":
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            continue
        close = match_paren(tokens, i + 1)
        if close < 0 or close + 1 >= n or tokens[close + 1].text != "{":
            continue
        bclose = match_brace(tokens, close + 1)
        if bclose < 0:
            continue
        cases, has_default, enum_name = set(), False, None
        j = close + 2
        while j < bclose:
            t = tokens[j]
            # Skip nested switches: their cases belong to themselves (the
            # outer scan still visits them in their own right).
            if (t.kind == "id" and t.text == "switch" and j + 1 < bclose
                    and tokens[j + 1].text == "("):
                c2 = match_paren(tokens, j + 1)
                if c2 > 0 and c2 + 1 < bclose and tokens[c2 + 1].text == "{":
                    b2 = match_brace(tokens, c2 + 1)
                    if b2 > 0:
                        j = b2 + 1
                        continue
            if (t.kind == "id" and t.text == "default" and j + 1 < n
                    and tokens[j + 1].text == ":"):
                has_default = True
            if t.kind == "id" and t.text == "case":
                k = j + 1
                chain = []
                while k < bclose and (tokens[k].kind in {"id", "num"}
                                      or tokens[k].text == "::"):
                    chain.append(tokens[k].text)
                    k += 1
                if len(chain) >= 3 and chain[-2] == "::":
                    enum_name = chain[-3]
                    cases.add(chain[-1])
                j = k
                continue
            j += 1
        if enum_name and cases:
            out.append(Switch(path=path, line=tok.line, enum_name=enum_name,
                              cases=cases, has_default=has_default,
                              subject_text=" ".join(
                                  t.text for t in tokens[i + 2:close])))
    return out
