"""CLI driver: file collection, backends, baseline gate, unified lint run.

`python3 tools/itdos_analyze [paths...]` analyzes the tree (default: src/)
and exits 0 clean / 1 findings / 2 usage error — same contract as
itdos_lint.py. `--with-lint` additionally runs every itdos_lint rule
through this driver, so one invocation (and one ctest) covers both tools
with one suppression syntax.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from . import ANALYZE_RULES, FileModel, Finding
from . import model as model_mod
from .baseline import Baseline
from .model import LINT, Suppressions
from .rules import ProgramModel, run_rules
from .sarif import write_sarif

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baseline.json")


def pick_backend(requested: str):
    """Returns (name, lex_fn) — lex_fn(path, text) -> (tokens, comments)."""
    have_libclang = LINT._CINDEX is not None
    if requested == "libclang" and not have_libclang:
        raise SystemExit(
            "error: --backend libclang requested but the clang python "
            "bindings are not importable; install libclang or use "
            "--backend internal")
    if requested == "internal" or (requested == "auto" and not have_libclang):
        return "internal", lambda path, text: LINT._fallback_lex(text)
    return "libclang", LINT.lex


def load_compile_commands(path: str):
    """File set from compile_commands.json (the CI-accurate mode): absolute
    paths of every TU the build actually compiles."""
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    files = []
    for e in entries:
        p = e.get("file", "")
        if not os.path.isabs(p):
            p = os.path.normpath(os.path.join(e.get("directory", "."), p))
        files.append(p)
    return files


def build_file_models(files, lex_fn, backend_name):
    models, file_lines = [], {}
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as exc:
            print(f"warning: cannot read {path}: {exc}", file=sys.stderr)
            continue
        file_lines[path] = text.split("\n")
        tokens, comments = lex_fn(path, text)
        fm = FileModel(path=path, text=text, tokens=tokens,
                       comments=comments, backend=backend_name)
        fm.functions = model_mod.extract_functions(tokens, path)
        fm.enums = model_mod.extract_enums(text, path)
        fm.switches = model_mod.extract_switches(tokens, path)
        models.append(fm)
    return models, file_lines


def analyze(paths, enabled=None, backend="auto", compile_commands=None):
    """Programmatic entry point (used by scripts/analyze_stats.py).
    Returns (findings, stats, file_lines)."""
    enabled = set(ANALYZE_RULES) if enabled is None else enabled
    t0 = time.monotonic()
    backend_name, lex_fn = pick_backend(backend)
    files = LINT.collect_files(paths)
    if compile_commands:
        listed = set(load_compile_commands(compile_commands))
        known = set(files)
        roots = [os.path.abspath(p) for p in paths]
        for p in sorted(listed):
            if p in known or not os.path.exists(p):
                continue
            if any(os.path.abspath(p).startswith(r + os.sep) for r in roots):
                files.append(p)
    models, file_lines = build_file_models(files, lex_fn, backend_name)
    t_parse = time.monotonic()
    program = ProgramModel(models)
    findings = run_rules(program, enabled)

    # Inline suppressions (same syntax + semantics as itdos_lint).
    by_path = {fm.path: fm for fm in models}
    kept = []
    for f in findings:
        fm = by_path.get(f.path)
        if fm is not None:
            suppress = Suppressions(fm.text, fm.comments)
            if suppress.covers(f.rule, f.line):
                continue
        kept.append(f)
    kept.sort(key=lambda f: f.sort_key())
    t1 = time.monotonic()
    stats = {
        "backend": backend_name,
        "files": len(models),
        "functions": sum(len(fm.functions) for fm in models),
        "parse_s": round(t_parse - t0, 4),
        "rules_s": round(t1 - t_parse, 4),
        "wall_s": round(t1 - t0, 4),
        "per_rule": {rule: sum(1 for f in kept if f.rule == rule)
                     for rule in sorted(enabled)},
    }
    return kept, stats, file_lines


def run_lint_rules(paths, disabled, no_trace_check, trace_hpp, trace_cpp):
    """itdos_lint's rules through this driver (`--with-lint`)."""
    enabled = set(LINT.ALL_RULES) - disabled
    findings = []
    for path in LINT.collect_files(paths):
        findings += LINT.lint_file(path, enabled)
    if "TRACE-001" in enabled and not no_trace_check:
        hpp = trace_hpp or os.path.join(REPO_ROOT, "src", "telemetry",
                                        "trace.hpp")
        cpp = trace_cpp or os.path.join(REPO_ROOT, "src", "telemetry",
                                        "trace.cpp")
        if os.path.exists(hpp) and os.path.exists(cpp):
            findings += LINT.check_trace001(hpp, cpp)
    return [Finding(f.rule, f.path, f.line, f.message) for f in findings]


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="itdos_analyze",
        description="ITDOS trust-boundary static analyzer "
                    "(taint dataflow, protocol-state rules)")
    parser.add_argument("paths", nargs="*",
                        default=[os.path.join(REPO_ROOT, "src")],
                        help="files or directories (default: src/)")
    parser.add_argument("--json", action="store_true",
                        help="emit unbaselined findings as a JSON array")
    parser.add_argument("--sarif", metavar="FILE",
                        help="write SARIF 2.1 (all findings; baselined ones "
                        "carry suppressions) to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=DEFAULT_BASELINE,
                        help="baseline file (default: the checked-in one)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report everything)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings, "
                        "preserving reasons for surviving entries")
    parser.add_argument("--with-lint", action="store_true",
                        help="also run every itdos_lint rule (unified gate)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", help="disable a rule id "
                        "(repeatable, comma-separated ok)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--backend", choices=["auto", "libclang", "internal"],
                        default="auto",
                        help="token/AST backend (auto: libclang when the "
                        "python bindings import, else internal)")
    parser.add_argument("--compile-commands", metavar="FILE",
                        help="compile_commands.json: analyze every TU the "
                        "build compiles (CI mode)")
    parser.add_argument("--stats-json", metavar="FILE",
                        help="write per-rule counts + timings to FILE")
    parser.add_argument("--no-trace-check", action="store_true",
                        help="with --with-lint: skip the global TRACE-001 "
                        "table check (fixture runs)")
    parser.add_argument("--trace-hpp", default=None)
    parser.add_argument("--trace-cpp", default=None)
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, summary in ANALYZE_RULES.items():
            print(f"{rule}  {summary}")
        for rule, summary in LINT.ALL_RULES.items():
            print(f"{rule}  {summary}  [itdos_lint, via --with-lint]")
        return 0

    disabled = {r.strip() for spec in args.disable for r in spec.split(",")}
    known = set(ANALYZE_RULES) | set(LINT.ALL_RULES)
    unknown = disabled - known
    if unknown:
        print(f"error: unknown rule id(s): {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    enabled = set(ANALYZE_RULES) - disabled

    try:
        findings, stats, file_lines = analyze(
            args.paths, enabled, args.backend, args.compile_commands)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2

    if args.update_baseline:
        old = Baseline.load(args.baseline)
        Baseline.write(args.baseline, findings, REPO_ROOT, file_lines, old)
        print(f"itdos_analyze: baseline rewritten with {len(findings)} "
              f"finding(s) -> {args.baseline}", file=sys.stderr)
        return 0

    baselined = []
    if not args.no_baseline:
        base = Baseline.load(args.baseline)
        bad = base.invalid_reasons()
        if bad:
            for rule, rel, text in bad:
                print(f"error: baseline entry without a real reason: "
                      f"{rule} {rel} `{text}`", file=sys.stderr)
            return 2
        findings, baselined = base.apply(findings, REPO_ROOT, file_lines)

    lint_findings = []
    if args.with_lint:
        lint_findings = run_lint_rules(
            args.paths, disabled, args.no_trace_check,
            args.trace_hpp, args.trace_cpp)
        lint_findings.sort(key=lambda f: f.sort_key())

    gating = findings + lint_findings
    gating.sort(key=lambda f: f.sort_key())

    if args.sarif:
        all_rules = dict(ANALYZE_RULES)
        if args.with_lint:
            all_rules.update(LINT.ALL_RULES)
        write_sarif(args.sarif, gating + baselined, all_rules, REPO_ROOT)

    if args.stats_json:
        stats["baselined"] = len(baselined)
        stats["unbaselined"] = len(findings)
        stats["lint_findings"] = len(lint_findings)
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")

    if args.json:
        print(json.dumps(
            [{"rule": f.rule, "file": f.path, "line": f.line,
              "message": f.message} for f in gating], indent=2))
    else:
        for f in gating:
            print(f.render())
        print(f"itdos_analyze: {stats['files']} file(s), "
              f"{len(gating)} finding(s), {len(baselined)} baselined "
              f"[{stats['backend']} backend, {stats['wall_s']}s]",
              file=sys.stderr)
    return 1 if gating else 0
