"""itdos_analyze — trust-boundary static analyzer for the ITDOS tree.

Where tools/itdos_lint.py is a tokenizer-grade style gate, this package is a
dataflow pass: it parses every C++ file into a function model, tracks taint
from wire-decode *sources* to memory-shaping *sinks*, and flags flows with no
dominating guard. DESIGN.md §6h is the long-form model; the stable rule ids:

  TAINT-001  a tainted length/count reaches an allocation, copy or loop
             bound with no dominating bounds guard
  TAINT-002  protocol state mutated from a message before its MAC/signature
             is verified
  PROTO-003  non-exhaustive switch over a protocol message/kind enum
             (a `default:` label does not count as coverage)
  BUF-002    a borrowed (non-owning) BufView escapes the scope that keeps
             its storage alive (returned or stored into a member)
  EPOCH-001  raw </> comparison of epoch/seq/view/generation counters
             instead of the wraparound-safe helpers (common/counters.hpp)

Suppressions reuse the itdos_lint syntax verbatim:
  // itdos-lint: allow(TAINT-001) <reason>
on the offending line or alone on the line above. A reason is mandatory
(META-001, enforced by the shared driver).

Backends: libclang (python `clang` bindings + compile_commands.json) when
importable — exact token streams and AST function extents — else a built-in
degraded mode that lexes and extracts functions heuristically. Both feed the
same dataflow engine and report identical findings on well-formed code; the
fixture suite runs under whichever backend the host has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ANALYZE_RULES = {
    "TAINT-001": "unguarded tainted length/count at an allocation or copy sink",
    "TAINT-002": "protocol state mutated before MAC/signature verification",
    "PROTO-003": "non-exhaustive switch over a protocol message/kind enum",
    "BUF-002": "borrowed BufView escaping its storage's scope",
    "EPOCH-001": "raw </> comparison of a wrapping protocol counter",
}


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str
    # Extra context for baselining/SARIF: the function the finding is in and
    # the normalized text of the offending source line.
    function: str = ""
    context: str = ""
    baselined: bool = False
    baseline_reason: str = ""

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)


@dataclass
class FileModel:
    """Everything the rules need to know about one file."""
    path: str
    text: str
    tokens: list = field(default_factory=list)      # itdos_lint.Token
    comments: dict = field(default_factory=dict)    # line -> comment text
    functions: list = field(default_factory=list)   # model.Function
    enums: dict = field(default_factory=dict)       # name -> model.Enum
    switches: list = field(default_factory=list)    # model.Switch
    backend: str = "internal"
