"""Taint dataflow: decoder bytes -> memory-shaping sinks (TAINT-001).

Model (see DESIGN.md §6h):

  sources   integral reads off the wire: `dec.read_uint32()` etc., usually
            landing in a local via ITDOS_ASSIGN_OR_RETURN, plus calls to
            *source-like* functions (functions whose return value derives
            from an unguarded decoder read — computed as a summary).
  kills     a mention of the tainted variable inside an `if`/`while`
            condition that compares it (the codebase's early-return guard
            idiom), std::min/std::clamp re-bounding, passing it to a
            check_*/validate*/verify* helper (including through
            ITDOS_RETURN_IF_ERROR), or plain reassignment from clean data.
  sinks     container resize/reserve, memcpy/memmove/memset length,
            `new T[n]`, span subspan/first/last lengths, for-loop upper
            bounds, and indexing into raw buffers.

Flow sensitivity is linear: a guard kills taint for everything after it in
token order. That matches the decode style enforced elsewhere (guards are
early returns before use) and keeps the engine exact on both backends.

Interprocedural analysis is summary-based and cross-TU: every scanned file
contributes its functions to one global table keyed by (unqualified) name.
Summaries — "returns tainted" and "param #i reaches a sink unguarded" —
are iterated to a fixpoint, so a count read in one TU that flows through a
helper defined in another TU still reaches its sink report.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from . import Finding

_READ_RE = re.compile(r"^read_(u?int(8|16|32|64)|size|count|len|length)$")
_GUARD_CALL_RE = re.compile(r"^(check|validate|ensure|require|verify|clamp)")
_RESIZE_SINKS = {"resize", "reserve", "assign"}
_SPAN_SINKS = {"subspan", "first", "last", "substr"}
_COPY_SINKS = {"memcpy", "memmove", "memset"}
_BUFFERISH_RE = re.compile(r"(buf|bytes|data|raw|arr|scratch)", re.I)

# Origin labels: "src" = derives from a decoder read in this function;
# "param:<name>" = derives from the named parameter (used for summaries).
SRC = "src"


@dataclass
class Summary:
    returns_tainted: bool = False
    # param name -> (sink description, path, line) of the unguarded use
    sink_params: dict = field(default_factory=dict)


@dataclass
class _Site:
    """A would-be finding, kept with its origins so the final pass can
    decide whether it is a local finding or only a summary contribution."""
    line: int
    message: str
    origins: set


def _integral_param(p) -> bool:
    t = p.type_text
    return bool(re.search(r"(u?int\d+_t|size_t|size_type|unsigned|int|long)",
                          t)) and "*" not in t and "vector" not in t


class FunctionAnalysis:
    """One linear pass over a function body under a given summary table."""

    def __init__(self, func, summaries):
        self.func = func
        self.summaries = summaries
        self.tainted: dict[str, set] = {}
        self.sites: list[_Site] = []
        self.returns: set = set()   # origins of returned tainted values
        toks = func.body
        self.toks = toks
        self.n = len(toks)

    # -- helpers ----------------------------------------------------------

    def _ids_in(self, lo, hi):
        return [t for t in self.toks[lo:hi] if t.kind == "id"]

    def _origins_in(self, lo, hi):
        origins = set()
        for t in self.toks[lo:hi]:
            if t.kind == "id" and t.text in self.tainted:
                origins |= self.tainted[t.text]
        return origins

    def _kill_all_in(self, lo, hi):
        for t in self.toks[lo:hi]:
            if t.kind == "id":
                self.tainted.pop(t.text, None)

    def _match_paren(self, i):
        depth = 0
        for j in range(i, self.n):
            t = self.toks[j].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    return j
        return -1

    def _stmt_end(self, i):
        for j in range(i, min(i + 256, self.n)):
            if self.toks[j].text in {";", "{", "}"}:
                return j
        return min(i + 256, self.n)

    def _top_level_args(self, open_i, close_i):
        """Split a call's argument tokens on top-level commas; returns a
        list of (lo, hi) index ranges."""
        ranges, depth, lo = [], 0, open_i + 1
        for j in range(open_i + 1, close_i):
            t = self.toks[j].text
            if t in {"(", "[", "{", "<"}:
                depth += 1
            elif t in {")", "]", "}", ">"}:
                depth -= 1
            elif t == "," and depth == 0:
                ranges.append((lo, j))
                lo = j + 1
        ranges.append((lo, close_i))
        return ranges

    def _source_expr(self, lo, hi):
        """Does toks[lo:hi] introduce taint? Returns origins (possibly from
        a source-like callee) or an empty set."""
        origins = set()
        for j in range(lo, hi):
            t = self.toks[j]
            if t.kind != "id":
                continue
            nxt = self.toks[j + 1] if j + 1 < self.n else None
            if _READ_RE.match(t.text) and nxt is not None and nxt.text == "(":
                origins.add(SRC)
            elif nxt is not None and nxt.text == "(":
                summ = self.summaries.get(t.text)
                if summ is not None and summ.returns_tainted:
                    origins.add(SRC)
            if t.text in self.tainted:
                origins |= self.tainted[t.text]
        return origins

    # -- the walk ---------------------------------------------------------

    def run(self):
        for p in self.func.params:
            if p.name and _integral_param(p):
                self.tainted.setdefault(p.name, set()).add(f"param:{p.name}")
        i = 0
        while i < self.n:
            t = self.toks[i]
            nxt = self.toks[i + 1] if i + 1 < self.n else None
            if t.kind != "id":
                i += 1
                continue

            if t.text == "ITDOS_ASSIGN_OR_RETURN" and nxt and nxt.text == "(":
                i = self._handle_assign_or_return(i + 1)
                continue
            if (t.text in {"if", "while"} and nxt and nxt.text == "("):
                i = self._handle_condition(i + 1)
                continue
            if t.text == "for" and nxt and nxt.text == "(":
                i = self._handle_for(i + 1)
                continue
            if t.text == "ITDOS_RETURN_IF_ERROR" and nxt and nxt.text == "(":
                i = self._handle_guard_macro(i + 1)
                continue
            if t.text == "return":
                i = self._handle_return(i + 1)
                continue
            if t.text == "new":
                i = self._handle_new(i + 1)
                continue
            if t.text in _COPY_SINKS and nxt and nxt.text == "(":
                i = self._handle_copy(i, i + 1)
                continue
            if nxt and nxt.text == "(":
                i = self._handle_call(i, i + 1)
                continue
            if nxt and nxt.text == "=" :
                i = self._handle_assign(i)
                continue
            if nxt and nxt.text == "[":
                i = self._handle_index(i)
                continue
            i += 1
        return self

    def _handle_assign_or_return(self, open_i):
        close = self._match_paren(open_i)
        if close < 0:
            return open_i + 1
        args = self._top_level_args(open_i, close)
        if len(args) < 2:
            return close + 1
        decl_lo, decl_hi = args[0]
        decl_ids = self._ids_in(decl_lo, decl_hi)
        name = decl_ids[-1].text if decl_ids else None
        origins = set()
        for lo, hi in args[1:]:
            origins |= self._source_expr(lo, hi)
        if name:
            if origins:
                self.tainted[name] = set(origins)
            else:
                self.tainted.pop(name, None)
        return close + 1

    def _handle_condition(self, open_i):
        """`if (...)` / `while (...)`: comparing a tainted var kills it —
        the codebase guard idiom is an early return right after."""
        close = self._match_paren(open_i)
        if close < 0:
            return open_i + 1
        has_relop = any(self.toks[j].text in {"<", ">", "<=", ">=", "==", "!="}
                        for j in range(open_i + 1, close))
        guard_call = any(
            self.toks[j].kind == "id" and _GUARD_CALL_RE.match(self.toks[j].text)
            and j + 1 < close and self.toks[j + 1].text == "("
            for j in range(open_i + 1, close))
        if has_relop or guard_call:
            self._kill_all_in(open_i + 1, close)
        return close + 1

    def _handle_for(self, open_i):
        """A for-loop bounded by a tainted count is itself a sink; the
        header does NOT count as a guard."""
        close = self._match_paren(open_i)
        if close < 0:
            return open_i + 1
        semis = [j for j in range(open_i + 1, close)
                 if self.toks[j].text == ";"]
        if len(semis) == 2:
            cond_lo, cond_hi = semis[0] + 1, semis[1]
            if any(self.toks[j].text in {"<", "<=", ">", ">="}
                   for j in range(cond_lo, cond_hi)):
                origins = self._origins_in(cond_lo, cond_hi)
                if origins:
                    self.sites.append(_Site(
                        self.toks[cond_lo].line,
                        "loop bound uses a wire-derived count with no "
                        "dominating bounds check", origins))
        return close + 1

    def _handle_guard_macro(self, open_i):
        """ITDOS_RETURN_IF_ERROR(check_xxx(dec, n, ...)): passing a tainted
        var through a guard helper validates it."""
        close = self._match_paren(open_i)
        if close < 0:
            return open_i + 1
        guard_call = any(
            self.toks[j].kind == "id"
            and _GUARD_CALL_RE.match(self.toks[j].text)
            and j + 1 < close and self.toks[j + 1].text == "("
            for j in range(open_i + 1, close))
        if guard_call:
            self._kill_all_in(open_i + 1, close)
        return close + 1

    def _handle_return(self, i):
        end = self._stmt_end(i)
        self.returns |= self._origins_in(i, end)
        self.returns |= self._source_expr(i, end) - self._origins_in(i, end)
        return end + 1

    def _handle_new(self, i):
        """`new T[n]` with tainted n."""
        j = i
        while j < self.n and (self.toks[j].kind == "id"
                              or self.toks[j].text in {"::", "<", ">"}):
            j += 1
        if j < self.n and self.toks[j].text == "[":
            end = j
            depth = 0
            for k in range(j, self.n):
                if self.toks[k].text == "[":
                    depth += 1
                elif self.toks[k].text == "]":
                    depth -= 1
                    if depth == 0:
                        end = k
                        break
            origins = self._origins_in(j + 1, end)
            if origins:
                self.sites.append(_Site(
                    self.toks[j].line,
                    "array-new sized by a wire-derived value with no "
                    "dominating bounds check", origins))
            return end + 1
        return i

    def _handle_copy(self, name_i, open_i):
        close = self._match_paren(open_i)
        if close < 0:
            return open_i + 1
        args = self._top_level_args(open_i, close)
        if len(args) >= 3:
            origins = self._origins_in(*args[2])
            if origins:
                self.sites.append(_Site(
                    self.toks[name_i].line,
                    f"`{self.toks[name_i].text}` length is wire-derived with "
                    "no dominating bounds check", origins))
        return close + 1

    def _handle_call(self, name_i, open_i):
        name = self.toks[name_i].text
        close = self._match_paren(open_i)
        if close < 0:
            return open_i + 1
        prev = self.toks[name_i - 1] if name_i >= 1 else None
        is_member = prev is not None and prev.text in {".", "->"}
        args = self._top_level_args(open_i, close)

        if is_member and name in _RESIZE_SINKS | _SPAN_SINKS:
            # x.resize(n) / x.assign(n, v) / span.subspan(off, n)
            for lo, hi in args:
                origins = self._origins_in(lo, hi)
                if origins:
                    self.sites.append(_Site(
                        self.toks[name_i].line,
                        f"`.{name}()` sized by a wire-derived value with no "
                        "dominating bounds check", origins))
                    break
            return close + 1

        if name in {"min", "clamp"}:
            # std::min(n, cap) re-bounds n.
            self._kill_all_in(open_i + 1, close)
            return close + 1

        if _GUARD_CALL_RE.match(name):
            self._kill_all_in(open_i + 1, close)
            return close + 1

        summ = self.summaries.get(name) if not is_member else None
        if summ is not None and summ.sink_params:
            params = [p.name for p in self.summaries_params(name)]
            for pos, (lo, hi) in enumerate(args):
                pname = params[pos] if pos < len(params) else None
                if pname is None or pname not in summ.sink_params:
                    continue
                origins = self._origins_in(lo, hi)
                if origins:
                    what, spath, sline = summ.sink_params[pname]
                    self.sites.append(_Site(
                        self.toks[name_i].line,
                        f"wire-derived value passed to `{name}()`, which "
                        f"uses it unguarded ({what} at {spath}:{sline})",
                        origins))
        return close + 1

    def summaries_params(self, name):
        func = self.summaries.get(name)
        return func.params if func is not None and hasattr(func, "params") \
            else self._callee_params.get(name, [])

    _callee_params: dict = {}

    def _scan_sinks(self, lo, hi):
        """Sinks inside an expression range (assignment RHS): the main walk
        consumes whole statements on `=`, so `p = new T[n]` and
        `auto v = raw.subspan(0, n)` would otherwise never reach a sink
        handler."""
        j = lo
        while j < hi:
            t = self.toks[j]
            nxt = self.toks[j + 1] if j + 1 < self.n else None
            if t.kind != "id":
                j += 1
                continue
            if t.text == "new":
                j = self._handle_new(j + 1)
                continue
            if t.text in _COPY_SINKS and nxt is not None and nxt.text == "(":
                j = self._handle_copy(j, j + 1)
                continue
            if nxt is not None and nxt.text == "(":
                j = self._handle_call(j, j + 1)
                continue
            if nxt is not None and nxt.text == "[":
                j = self._handle_index(j)
                continue
            j += 1

    def _handle_assign(self, name_i):
        name = self.toks[name_i].text
        prev = self.toks[name_i - 1] if name_i >= 1 else None
        if prev is not None and prev.text in {".", "->"}:
            return name_i + 2          # member assign: not a local var
        end = self._stmt_end(name_i + 2)
        # Sinks (and min/clamp kills) in the RHS see the pre-store state;
        # the origin set is taken after, so `n = std::min(n, cap)` cleans n.
        self._scan_sinks(name_i + 2, end)
        origins = self._source_expr(name_i + 2, end)
        if origins:
            self.tainted[name] = set(origins)
        else:
            self.tainted.pop(name, None)   # reassigned from clean data
        return end + 1

    def _handle_index(self, name_i):
        """buf[n] with tainted n, for raw-buffer-ish bases only (map
        indexing with a wire key is safe and must not be flagged)."""
        name = self.toks[name_i].text
        if not _BUFFERISH_RE.search(name):
            return name_i + 1
        open_i = name_i + 1
        depth, end = 0, -1
        for k in range(open_i, self.n):
            if self.toks[k].text == "[":
                depth += 1
            elif self.toks[k].text == "]":
                depth -= 1
                if depth == 0:
                    end = k
                    break
        if end < 0:
            return name_i + 1
        origins = self._origins_in(open_i + 1, end)
        if origins:
            self.sites.append(_Site(
                self.toks[name_i].line,
                f"`{name}[...]` indexed by a wire-derived value with no "
                "dominating bounds check", origins))
        return end + 1


class TaintEngine:
    """Whole-program driver: summary fixpoint, then the reporting pass."""

    def __init__(self, functions):
        self.functions = functions                  # list[model.Function]
        self.by_name: dict[str, object] = {}
        counts: dict[str, int] = {}
        for f in functions:
            counts[f.name] = counts.get(f.name, 0) + 1
        for f in functions:
            # Cross-TU matching is by unqualified name; ambiguous names
            # (overloads, same name in two classes) are dropped from the
            # table rather than guessed at.
            if counts[f.name] == 1:
                self.by_name[f.name] = f
        self.summaries: dict[str, Summary] = {}

    def _summary_table(self):
        """What FunctionAnalysis sees: name -> Summary, plus callee params
        for positional matching."""
        FunctionAnalysis._callee_params = {
            name: f.params for name, f in self.by_name.items()}
        return self.summaries

    def _analyze(self, func):
        return FunctionAnalysis(func, self._summary_table()).run()

    def fixpoint(self, max_iter: int = 8):
        for _ in range(max_iter):
            changed = False
            for func in self.functions:
                if func.name not in self.by_name:
                    continue
                fa = self._analyze(func)
                summ = Summary()
                summ.returns_tainted = SRC in fa.returns
                for site in fa.sites:
                    for origin in sorted(site.origins):
                        if origin.startswith("param:"):
                            pname = origin.split(":", 1)[1]
                            summ.sink_params.setdefault(
                                pname, (site.message, func.path, site.line))
                old = self.summaries.get(func.name)
                if (old is None
                        or old.returns_tainted != summ.returns_tainted
                        or set(old.sink_params) != set(summ.sink_params)):
                    self.summaries[func.name] = summ
                    changed = True
            if not changed:
                break
        return self

    def findings(self):
        out = []
        for func in self.functions:
            fa = self._analyze(func)
            for site in fa.sites:
                if SRC not in site.origins:
                    continue    # param-only flow: summary, not a finding
                out.append(Finding(
                    "TAINT-001", func.path, site.line, site.message,
                    function=func.qual_name))
        return out
